/**
 * @file
 * Basic-block execution profiler: the cheapest classic profiling
 * baseline (one counter per executed block, one update per block).
 */

#ifndef HOTPATH_PROFILE_BLOCK_PROFILE_HH
#define HOTPATH_PROFILE_BLOCK_PROFILE_HH

#include "profile/cost_model.hh"
#include "profile/counter_table.hh"
#include "sim/event.hh"

namespace hotpath
{

/** Counts executions per basic block. */
class BlockProfiler : public ExecutionListener
{
  public:
    void onBlock(const BasicBlock &block) override;

    std::uint64_t countOf(BlockId block) const;

    /** Distinct blocks executed: the counter space. */
    std::size_t countersAllocated() const { return table.size(); }

    const ProfilingCost &cost() const { return opCost; }

  private:
    static std::uint64_t
    keyOf(BlockId block)
    {
        return static_cast<std::uint64_t>(block) + 1; // keys nonzero
    }

    CounterTable table;
    ProfilingCost opCost;
};

} // namespace hotpath

#endif // HOTPATH_PROFILE_BLOCK_PROFILE_HH
