#include "profile/counter_table.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

namespace
{

std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

CounterTable::CounterTable(std::size_t initial_capacity)
    : slots(roundUpPow2(initial_capacity < 8 ? 8 : initial_capacity))
{
    tmProbes = telemetry::counter("profile.counter_table.probes");
    tmInsertions =
        telemetry::counter("profile.counter_table.insertions");
    tmOccupancy = telemetry::gauge("profile.counter_table.occupancy");
}

std::size_t
CounterTable::probeIndex(std::uint64_t key) const
{
    return static_cast<std::size_t>(mix(key)) & (slots.size() - 1);
}

void
CounterTable::grow()
{
    // Erase-heavy schemes (retiring predictors) can fill the table
    // with tombstones while holding few live counters; doubling on
    // every such fill would balloon the backing array. When the dead
    // slots dominate, rehash at the same capacity instead - the
    // rehash drops every tombstone, so usedSlots falls back to
    // liveCount (under half the array, well below the 75% growth
    // threshold) and the insert that triggered us makes progress.
    std::vector<Slot> old = std::move(slots);
    const std::size_t capacity =
        liveCount * 2 < old.size() ? old.size() : old.size() * 2;
    slots.assign(capacity, Slot{});
    usedSlots = 0;
    liveCount = 0;
    for (const Slot &slot : old) {
        if (slot.key != 0 && !slot.dead)
            incrementImpl(slot.key, slot.count);
    }
}

std::uint64_t
CounterTable::increment(std::uint64_t key, std::uint64_t delta)
{
    const std::uint64_t probes_before = probeCount;
    const std::size_t live_before = liveCount;
    const std::uint64_t result = incrementImpl(key, delta);
    if (tmProbes)
        tmProbes->add(probeCount - probes_before);
    if (liveCount > live_before) {
        if (tmInsertions)
            tmInsertions->add(liveCount - live_before);
        if (tmOccupancy)
            tmOccupancy->recordMax(
                static_cast<std::int64_t>(liveCount));
    }
    return result;
}

std::uint64_t
CounterTable::incrementImpl(std::uint64_t key, std::uint64_t delta)
{
    HOTPATH_ASSERT(key != 0, "counter keys must be nonzero");
    if ((usedSlots + 1) * 4 >= slots.size() * 3)
        grow();

    std::size_t idx = probeIndex(key);
    std::size_t first_dead = slots.size();
    for (;;) {
        ++probeCount;
        Slot &slot = slots[idx];
        if (slot.key == key && !slot.dead) {
            slot.count += delta;
            return slot.count;
        }
        if (slot.key == 0) {
            // Insert, reusing an earlier tombstone when available.
            Slot &target =
                first_dead < slots.size() ? slots[first_dead] : slot;
            if (first_dead >= slots.size())
                ++usedSlots;
            target.key = key;
            target.count = delta;
            target.dead = false;
            ++liveCount;
            return delta;
        }
        if (slot.dead && first_dead == slots.size())
            first_dead = idx;
        idx = (idx + 1) & (slots.size() - 1);
    }
}

std::uint64_t
CounterTable::lookup(std::uint64_t key) const
{
    HOTPATH_ASSERT(key != 0, "counter keys must be nonzero");
    const std::uint64_t probes_before = probeCount;
    std::uint64_t result = 0;
    std::size_t idx = probeIndex(key);
    for (;;) {
        ++probeCount;
        const Slot &slot = slots[idx];
        if (slot.key == key && !slot.dead) {
            result = slot.count;
            break;
        }
        if (slot.key == 0)
            break;
        idx = (idx + 1) & (slots.size() - 1);
    }
    if (tmProbes)
        tmProbes->add(probeCount - probes_before);
    return result;
}

void
CounterTable::erase(std::uint64_t key)
{
    HOTPATH_ASSERT(key != 0, "counter keys must be nonzero");
    std::size_t idx = probeIndex(key);
    for (;;) {
        Slot &slot = slots[idx];
        if (slot.key == key && !slot.dead) {
            slot.dead = true;
            --liveCount;
            return;
        }
        if (slot.key == 0)
            return;
        idx = (idx + 1) & (slots.size() - 1);
    }
}

std::size_t
CounterTable::memoryBytes() const
{
    return slots.size() * sizeof(Slot);
}

} // namespace hotpath
