/**
 * @file
 * Bit-tracing path profiler (paper Section 2).
 *
 * Consumes completed PathRecords, whose signatures were built on the
 * fly by the splitter shifting branch outcomes into a history
 * register, and counts executions per signature in a path table. The
 * accounted cost is the paper's: one history-register shift per
 * branch on the path plus one path-table update per completed path.
 */

#ifndef HOTPATH_PROFILE_PATH_TABLE_HH
#define HOTPATH_PROFILE_PATH_TABLE_HH

#include <unordered_map>

#include "paths/splitter.hh"
#include "profile/cost_model.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

/** Per-signature execution statistics. */
struct PathTableEntry
{
    PathSignature signature;
    std::uint64_t count = 0;
    std::uint32_t branches = 0;
    std::uint32_t instructions = 0;
};

/** Counts path executions keyed by bit-tracing signature. */
class BitTracingProfiler : public PathSink
{
  public:
    BitTracingProfiler();

    void onPath(const PathRecord &record) override;

    /** Count for one signature (0 if never seen). */
    std::uint64_t countOf(const PathSignature &signature) const;

    /** Distinct paths (signatures) seen: the counter space. */
    std::size_t countersAllocated() const { return table.size(); }

    /** Total completed path executions observed. */
    std::uint64_t pathsObserved() const { return observed; }

    const ProfilingCost &cost() const { return opCost; }

    /** Visit every entry. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[sig, entry] : table)
            fn(entry);
    }

  private:
    std::unordered_map<PathSignature, PathTableEntry, PathSignatureHash>
        table;
    std::uint64_t observed = 0;
    ProfilingCost opCost;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmPaths = nullptr;
    telemetry::Gauge *tmCounters = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_PROFILE_PATH_TABLE_HH
