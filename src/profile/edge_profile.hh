/**
 * @file
 * Edge execution profiler: counts dynamic control transfers between
 * block pairs. Edge profiles are the classic middle ground between
 * block and path profiles ([6] in the paper compares them offline).
 */

#ifndef HOTPATH_PROFILE_EDGE_PROFILE_HH
#define HOTPATH_PROFILE_EDGE_PROFILE_HH

#include "profile/cost_model.hh"
#include "profile/counter_table.hh"
#include "sim/event.hh"

namespace hotpath
{

/** Counts executions per (from, to) edge. */
class EdgeProfiler : public ExecutionListener
{
  public:
    void onTransfer(const TransferEvent &event) override;

    std::uint64_t countOf(BlockId from, BlockId to) const;

    /** Distinct edges executed: the counter space. */
    std::size_t countersAllocated() const { return table.size(); }

    const ProfilingCost &cost() const { return opCost; }

  private:
    static std::uint64_t
    keyOf(BlockId from, BlockId to)
    {
        return ((static_cast<std::uint64_t>(from) + 1) << 32) |
               (static_cast<std::uint64_t>(to) + 1);
    }

    CounterTable table;
    ProfilingCost opCost;
};

} // namespace hotpath

#endif // HOTPATH_PROFILE_EDGE_PROFILE_HH
