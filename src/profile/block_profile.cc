#include "profile/block_profile.hh"

namespace hotpath
{

void
BlockProfiler::onBlock(const BasicBlock &block)
{
    table.increment(keyOf(block.id));
    ++opCost.counterUpdates;
}

std::uint64_t
BlockProfiler::countOf(BlockId block) const
{
    return table.lookup(keyOf(block));
}

} // namespace hotpath
