/**
 * @file
 * Open-addressing counter table with space accounting.
 *
 * Counter space is one of the paper's two overhead axes, so this
 * table reports exactly how many counters it holds and how many bytes
 * they occupy. Linear probing over a power-of-two array keeps the hot
 * increment path to a handful of instructions, which matters for the
 * micro overhead benches.
 */

#ifndef HOTPATH_PROFILE_COUNTER_TABLE_HH
#define HOTPATH_PROFILE_COUNTER_TABLE_HH

#include <cstdint>
#include <vector>

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

/** Maps 64-bit keys to 64-bit counters; keys must be nonzero. */
class CounterTable
{
  public:
    explicit CounterTable(std::size_t initial_capacity = 64);

    /** Add `delta` to the counter for `key`; returns the new value. */
    std::uint64_t increment(std::uint64_t key, std::uint64_t delta = 1);

    /** Current value for `key` (0 if absent; does not insert). */
    std::uint64_t lookup(std::uint64_t key) const;

    /** Remove a key (used by retiring schemes); no-op if absent. */
    void erase(std::uint64_t key);

    /** Number of live counters: the scheme's counter space. */
    std::size_t size() const { return liveCount; }

    /** Bytes occupied by the backing array. */
    std::size_t memoryBytes() const;

    /** Total probes performed (diagnostic for the micro benches). */
    std::uint64_t probes() const { return probeCount; }

    /** Visit every (key, count) pair. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots) {
            if (slot.key != 0 && !slot.dead)
                fn(slot.key, slot.count);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t count = 0;
        bool dead = false;
    };

    std::size_t probeIndex(std::uint64_t key) const;
    void grow();
    std::uint64_t incrementImpl(std::uint64_t key, std::uint64_t delta);

    std::vector<Slot> slots;
    std::size_t liveCount = 0;
    std::size_t usedSlots = 0; // live + tombstones
    mutable std::uint64_t probeCount = 0;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmProbes = nullptr;
    telemetry::Counter *tmInsertions = nullptr;
    telemetry::Gauge *tmOccupancy = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_PROFILE_COUNTER_TABLE_HH
