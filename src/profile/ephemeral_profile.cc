#include "profile/ephemeral_profile.hh"

#include "support/logging.hh"

namespace hotpath
{

EphemeralBlockProfiler::EphemeralBlockProfiler(
    std::uint64_t sample_budget)
    : sampleBudget(sample_budget)
{
    HOTPATH_ASSERT(sample_budget >= 1, "sample budget must be >= 1");
}

void
EphemeralBlockProfiler::onBlock(const BasicBlock &block)
{
    if (retired.count(block.id))
        return; // probe already deleted: zero steady-state cost

    ++opCost.counterUpdates;
    const std::uint64_t count = table.increment(keyOf(block.id));
    if (count >= sampleBudget) {
        // Delete the probe; one table update models the code patch.
        retired.insert(block.id);
        ++opCost.tableUpdates;
    }
}

std::uint64_t
EphemeralBlockProfiler::countOf(BlockId block) const
{
    return table.lookup(keyOf(block));
}

bool
EphemeralBlockProfiler::probeRetired(BlockId block) const
{
    return retired.count(block) > 0;
}

} // namespace hotpath
