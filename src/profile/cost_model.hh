/**
 * @file
 * Profiling-operation accounting shared by all schemes.
 *
 * The paper's Section 4 argues in terms of two overheads: the amount
 * of counter space and the number of runtime profiling operations
 * (counter updates, history-register shifts, table lookups). Every
 * profiler and predictor in this library reports its work in this
 * common currency so the overhead comparisons (Figure 4, the micro
 * benches, the Dynamo cost model) are apples to apples.
 */

#ifndef HOTPATH_PROFILE_COST_MODEL_HH
#define HOTPATH_PROFILE_COST_MODEL_HH

#include <cstdint>

namespace hotpath
{

/** Runtime profiling work performed by a scheme. */
struct ProfilingCost
{
    /** Plain counter increments (e.g. NET head counters). */
    std::uint64_t counterUpdates = 0;
    /** History-register shift operations (bit tracing, per branch). */
    std::uint64_t historyShifts = 0;
    /** Hash/path-table lookups or updates (per completed path). */
    std::uint64_t tableUpdates = 0;

    /** Total operations, unweighted. */
    std::uint64_t
    total() const
    {
        return counterUpdates + historyShifts + tableUpdates;
    }

    ProfilingCost &
    operator+=(const ProfilingCost &other)
    {
        counterUpdates += other.counterUpdates;
        historyShifts += other.historyShifts;
        tableUpdates += other.tableUpdates;
        return *this;
    }
};

} // namespace hotpath

#endif // HOTPATH_PROFILE_COST_MODEL_HH
