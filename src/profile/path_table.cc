#include "profile/path_table.hh"

#include "telemetry/telemetry.hh"

namespace hotpath
{

BitTracingProfiler::BitTracingProfiler()
{
    tmPaths = telemetry::counter("profile.path_table.paths_observed");
    tmCounters = telemetry::gauge("profile.path_table.counters");
}

void
BitTracingProfiler::onPath(const PathRecord &record)
{
    PathTableEntry &entry = table[record.signature];
    if (entry.count == 0) {
        entry.signature = record.signature;
        entry.branches = record.branches;
        entry.instructions = record.instructions;
        if (tmCounters)
            tmCounters->recordMax(
                static_cast<std::int64_t>(table.size()));
    }
    ++entry.count;
    ++observed;
    if (tmPaths)
        tmPaths->add(1);

    // Bit tracing pays one shift per branch while the path executes
    // and one table update when it completes.
    opCost.historyShifts += record.branches;
    opCost.tableUpdates += 1;
}

std::uint64_t
BitTracingProfiler::countOf(const PathSignature &signature) const
{
    const auto it = table.find(signature);
    return it == table.end() ? 0 : it->second.count;
}

} // namespace hotpath
