#include "profile/path_table.hh"

namespace hotpath
{

void
BitTracingProfiler::onPath(const PathRecord &record)
{
    PathTableEntry &entry = table[record.signature];
    if (entry.count == 0) {
        entry.signature = record.signature;
        entry.branches = record.branches;
        entry.instructions = record.instructions;
    }
    ++entry.count;
    ++observed;

    // Bit tracing pays one shift per branch while the path executes
    // and one table update when it completes.
    opCost.historyShifts += record.branches;
    opCost.tableUpdates += 1;
}

std::uint64_t
BitTracingProfiler::countOf(const PathSignature &signature) const
{
    const auto it = table.find(signature);
    return it == table.end() ? 0 : it->second.count;
}

} // namespace hotpath
