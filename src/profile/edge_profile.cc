#include "profile/edge_profile.hh"

namespace hotpath
{

void
EdgeProfiler::onTransfer(const TransferEvent &event)
{
    table.increment(keyOf(event.from, event.to));
    ++opCost.counterUpdates;
}

std::uint64_t
EdgeProfiler::countOf(BlockId from, BlockId to) const
{
    return table.lookup(keyOf(from, to));
}

} // namespace hotpath
