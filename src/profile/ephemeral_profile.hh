/**
 * @file
 * Ephemeral instrumentation (paper Section 7, [18]).
 *
 * The related-work idea attributed to M. Smith: keep profiling cheap
 * by making instrumentation removable - a probe is planted, samples
 * a bounded number of events, and is then deleted, so steady-state
 * execution runs probe-free. Applied to block profiling, every block
 * carries a probe for its first `sampleBudget` executions only.
 *
 * The scheme trades accuracy for overhead in a different way than
 * NET: it caps the per-block cost (like NET caps per-head cost) but
 * still instruments every block, and after probe removal it is blind
 * to later shifts - the micro bench races it against the always-on
 * profilers, and the tests check the truncation semantics.
 */

#ifndef HOTPATH_PROFILE_EPHEMERAL_PROFILE_HH
#define HOTPATH_PROFILE_EPHEMERAL_PROFILE_HH

#include <unordered_set>

#include "profile/cost_model.hh"
#include "profile/counter_table.hh"
#include "sim/event.hh"

namespace hotpath
{

/** Block profiler whose probes retire after a sample budget. */
class EphemeralBlockProfiler : public ExecutionListener
{
  public:
    /** @param sample_budget Executions counted per block before the
     *         probe is removed. */
    explicit EphemeralBlockProfiler(std::uint64_t sample_budget);

    void onBlock(const BasicBlock &block) override;

    /** Count observed for a block (saturates at the budget). */
    std::uint64_t countOf(BlockId block) const;

    /** True once the block's probe has been removed. */
    bool probeRetired(BlockId block) const;

    /** Probes planted (== distinct blocks seen). */
    std::size_t countersAllocated() const { return table.size(); }

    /** Probes removed so far. */
    std::size_t probesRetired() const { return retired.size(); }

    /** Instrumentation events: probe executions + insert/delete. */
    const ProfilingCost &cost() const { return opCost; }

    std::uint64_t budget() const { return sampleBudget; }

  private:
    static std::uint64_t
    keyOf(BlockId block)
    {
        return static_cast<std::uint64_t>(block) + 1;
    }

    std::uint64_t sampleBudget;
    CounterTable table;
    std::unordered_set<BlockId> retired;
    ProfilingCost opCost;
};

} // namespace hotpath

#endif // HOTPATH_PROFILE_EPHEMERAL_PROFILE_HH
