/**
 * @file
 * PathEvent stream persistence.
 *
 * Materialized streams (and the traces the CFG pipeline produces
 * through the registry) can be saved to disk and replayed later, so
 * an expensive workload synthesis or recording runs once and the
 * sweeps and system models consume the artifact. The format is a
 * simple versioned binary container (host endianness; these are
 * local experiment artifacts, not interchange files).
 */

#ifndef HOTPATH_WORKLOAD_STREAM_IO_HH
#define HOTPATH_WORKLOAD_STREAM_IO_HH

#include <iosfwd>
#include <vector>

#include "paths/path_event.hh"

namespace hotpath
{

/** Write a stream to a binary container. */
void savePathStream(std::ostream &os,
                    const std::vector<PathEvent> &stream);

/** Read a stream back; panics on a malformed container. */
std::vector<PathEvent> loadPathStream(std::istream &is);

/** Convenience: save to / load from a file path. */
void savePathStreamFile(const std::string &path,
                        const std::vector<PathEvent> &stream);
std::vector<PathEvent> loadPathStreamFile(const std::string &path);

} // namespace hotpath

#endif // HOTPATH_WORKLOAD_STREAM_IO_HH
