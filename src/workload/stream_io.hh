/**
 * @file
 * PathEvent stream persistence.
 *
 * Materialized streams (and the traces the CFG pipeline produces
 * through the registry) can be saved to disk and replayed later, so
 * an expensive workload synthesis or recording runs once and the
 * sweeps and system models consume the artifact.
 *
 * MIGRATION NOTE (container v2): the original container was a raw
 * host-endian struct dump private to this module. There is now
 * exactly one event encoding in the tree - the engine wire format
 * (engine/wire_format.hh) - and this module delegates to it: a v2
 * container is a 16-byte header (magic, event count) followed by
 * standard wire frames (session 0, sequence 0..n, varint + delta
 * encoded, CRC-checked). Files written by the v1 code cannot be
 * loaded anymore; loading one fails with an explicit "re-materialize
 * the stream" message. The v2 format is also what the streaming
 * engine accepts over its ingest path, so a saved stream doubles as
 * a replayable serving workload.
 */

#ifndef HOTPATH_WORKLOAD_STREAM_IO_HH
#define HOTPATH_WORKLOAD_STREAM_IO_HH

#include <iosfwd>
#include <vector>

#include "paths/path_event.hh"

namespace hotpath
{

/** Write a stream to a binary container (wire-format frames). */
void savePathStream(std::ostream &os,
                    const std::vector<PathEvent> &stream);

/** Read a stream back; panics on a malformed container. */
std::vector<PathEvent> loadPathStream(std::istream &is);

/** Convenience: save to / load from a file path. */
void savePathStreamFile(const std::string &path,
                        const std::vector<PathEvent> &stream);
std::vector<PathEvent> loadPathStreamFile(const std::string &path);

} // namespace hotpath

#endif // HOTPATH_WORKLOAD_STREAM_IO_HH
