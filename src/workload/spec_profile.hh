/**
 * @file
 * Published per-benchmark statistics from the paper (Tables 1 and 2)
 * plus the structural shape parameters our substituted workloads use.
 *
 * The paper profiled SPECint95 and deltablue on PA-RISC. We do not
 * have those binaries or traces, so the calibrated workloads
 * (workload/synthesis.hh) are fitted to exactly these published
 * numbers; the shape parameters (path lengths, instructions per
 * block) are our calibration for the Dynamo cost model and are
 * documented as such in DESIGN.md / EXPERIMENTS.md.
 */

#ifndef HOTPATH_WORKLOAD_SPEC_PROFILE_HH
#define HOTPATH_WORKLOAD_SPEC_PROFILE_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace hotpath
{

/** Published + calibration data for one benchmark. */
struct SpecTarget
{
    std::string_view name;

    // Table 1.
    std::uint64_t paths = 0;      // #Paths (dynamic paths)
    double flowMillions = 0;      // Flow (M path executions)
    std::uint64_t hotPaths = 0;   // |HotPath_0.1%|
    double hotFlowPercent = 0;    // % of flow captured by the hot set

    // Table 2.
    std::uint64_t heads = 0;      // #Unique path heads

    // Shape calibration (ours, for the Dynamo model and metadata).
    double avgBlocksPerPath = 8;  // mean blocks per path
    double instrPerBlock = 6;     // mean instructions per block

    /** True for programs Dynamo bails out on (go, gcc, ...). */
    bool dynamoBailsOut = false;
};

/** All nine benchmarks, in the paper's table order. */
const std::vector<SpecTarget> &specTargets();

/** Look up a benchmark by name; panics if unknown. */
const SpecTarget &specTarget(std::string_view name);

/** The paper's hot threshold: 0.1% of the total flow. */
constexpr double kPaperHotFraction = 0.001;

} // namespace hotpath

#endif // HOTPATH_WORKLOAD_SPEC_PROFILE_HH
