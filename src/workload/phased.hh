/**
 * @file
 * Phased workloads (paper Section 6.1).
 *
 * A PhasedWorkload replays one calibrated benchmark several times in
 * a row, relocating the whole path population to a fresh id range in
 * each phase: phase k executes paths [k*N, (k+1)*N) and heads
 * [k*H, (k+1)*H), so the working set changes completely at every
 * phase boundary while the per-phase statistics (path count, flow,
 * head count, hot set size) stay fixed. This models a program moving
 * to a different code region - paths that were hot in phase k are
 * pure phase-induced noise in phase k+1: they never execute again.
 * It is the stress input for phase-change detection and the flush
 * heuristic (experiment X2).
 */

#ifndef HOTPATH_WORKLOAD_PHASED_HH
#define HOTPATH_WORKLOAD_PHASED_HH

#include "workload/synthesis.hh"

namespace hotpath
{

/** Multi-phase wrapper around a CalibratedWorkload. */
class PhasedWorkload
{
  public:
    PhasedWorkload(const SpecTarget &target, WorkloadConfig config,
                   std::size_t phases);

    const CalibratedWorkload &base() const { return baseload; }
    std::size_t numPhases() const { return phaseCount; }

    /** Total distinct paths across all phases. */
    std::size_t
    numPaths() const
    {
        return baseload.numPaths() * phaseCount;
    }

    /** Total distinct heads across all phases. */
    std::size_t
    numHeads() const
    {
        return baseload.numHeads() * phaseCount;
    }

    /** Events per phase (= the base workload's flow). */
    std::uint64_t phaseLength() const { return baseload.totalFlow(); }

    /** Total events across all phases. */
    std::uint64_t
    totalFlow() const
    {
        return phaseLength() * phaseCount;
    }

    /** Path that plays base-path `p`'s role in phase `k`. */
    PathIndex
    mapPath(PathIndex p, std::size_t k) const
    {
        return static_cast<PathIndex>(
            p + k * baseload.numPaths());
    }

    /** Base path behind a phased path id. */
    PathIndex
    basePath(PathIndex p) const
    {
        return static_cast<PathIndex>(p % baseload.numPaths());
    }

    /** Phase a path id belongs to. */
    std::size_t
    phaseOfPath(PathIndex p) const
    {
        return p / baseload.numPaths();
    }

    /** Fully populated event for one execution of phased path `p`. */
    PathEvent eventFor(PathIndex p) const;

    /** Hot paths of phase `k` (the relocated hot tier). */
    std::vector<PathIndex> hotPathsOfPhase(std::size_t k) const;

    /** Phase index of stream position `time`. */
    std::size_t
    phaseAt(std::uint64_t time) const
    {
        const std::size_t k =
            static_cast<std::size_t>(time / phaseLength());
        return k < phaseCount ? k : phaseCount - 1;
    }

    /** Materialize the full multi-phase stream. */
    std::vector<PathEvent> materializeStream() const;

  private:
    CalibratedWorkload baseload;
    std::size_t phaseCount;
};

} // namespace hotpath

#endif // HOTPATH_WORKLOAD_PHASED_HH
