#include "workload/phased.hh"

#include "support/logging.hh"

namespace hotpath
{

PhasedWorkload::PhasedWorkload(const SpecTarget &target,
                               WorkloadConfig config, std::size_t phases)
    : baseload(target, config), phaseCount(phases)
{
    HOTPATH_ASSERT(phases >= 1, "need at least one phase");
}

PathEvent
PhasedWorkload::eventFor(PathIndex p) const
{
    const std::size_t k = phaseOfPath(p);
    HOTPATH_ASSERT(k < phaseCount, "phased path id out of range");
    PathEvent event = baseload.eventFor(basePath(p));
    event.path = p;
    event.head = static_cast<HeadIndex>(
        event.head + k * baseload.numHeads());
    return event;
}

std::vector<PathIndex>
PhasedWorkload::hotPathsOfPhase(std::size_t k) const
{
    HOTPATH_ASSERT(k < phaseCount, "phase out of range");
    std::vector<PathIndex> hot;
    hot.reserve(baseload.numHotPaths());
    for (std::size_t p = 0; p < baseload.numHotPaths(); ++p)
        hot.push_back(mapPath(static_cast<PathIndex>(p), k));
    return hot;
}

std::vector<PathEvent>
PhasedWorkload::materializeStream() const
{
    std::vector<PathEvent> stream;
    stream.reserve(totalFlow());
    for (std::size_t k = 0; k < phaseCount; ++k) {
        baseload.generateStream(
            /*salt=*/k + 1,
            [&](const PathEvent &event, std::uint64_t) {
                stream.push_back(eventFor(mapPath(event.path, k)));
            });
    }
    return stream;
}

} // namespace hotpath
