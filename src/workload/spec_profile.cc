#include "workload/spec_profile.hh"

#include "support/logging.hh"

namespace hotpath
{

const std::vector<SpecTarget> &
specTargets()
{
    // Columns: name, #paths, flow(M), hot paths, hot flow %, heads,
    // then our shape calibration and the Figure 5 bail-out flag.
    static const std::vector<SpecTarget> targets = {
        {"compress", 230, 3061, 45, 99.6, 143, 6, 11, false},
        {"gcc", 36738, 2191, 137, 47.5, 8873, 9, 5, true},
        {"go", 29629, 1214, 172, 55.5, 1813, 10, 5, true},
        {"ijpeg", 62125, 635, 74, 93.3, 669, 8, 9, true},
        {"li", 1391, 3985, 111, 93.8, 710, 10, 6, false},
        {"m88ksim", 1426, 2014, 107, 92.5, 651, 11, 6, false},
        {"perl", 2776, 1514, 146, 88.5, 1053, 15, 7, false},
        {"vortex", 5825, 3016, 95, 85.8, 3414, 12, 6, true},
        {"deltablue", 505, 1799, 28, 93.9, 268, 14, 7, false},
    };
    return targets;
}

const SpecTarget &
specTarget(std::string_view name)
{
    for (const SpecTarget &target : specTargets()) {
        if (target.name == name)
            return target;
    }
    fatal("unknown benchmark '" + std::string(name) + "'");
}

} // namespace hotpath
