/**
 * @file
 * Calibrated workload synthesis.
 *
 * A CalibratedWorkload is our substitute for one of the paper's
 * benchmark executions: an integer path-frequency distribution plus a
 * path-to-head assignment constructed to hit the published Table 1
 * and Table 2 statistics exactly:
 *
 *  - the number of distinct dynamic paths,
 *  - the size of the 0.1% HotPath set and the flow it captures,
 *  - the number of unique path heads,
 *
 * at a configurable fraction of the paper's total flow (replaying
 * billions of path executions is pointless; every metric in Sections
 * 3 and 5 is a rate). The hot tier is a geometric ladder ending just
 * above the hot threshold; the cold tier is a Zipf-skewed tail; the
 * event stream interleaves paths in bursts (loops execute in runs)
 * using an exact without-replacement draw, so the materialized stream
 * contains precisely freq(p) executions of every path p.
 */

#ifndef HOTPATH_WORKLOAD_SYNTHESIS_HH
#define HOTPATH_WORKLOAD_SYNTHESIS_HH

#include <functional>
#include <vector>

#include "paths/path_event.hh"
#include "support/random.hh"
#include "workload/spec_profile.hh"

namespace hotpath
{

/** Workload synthesis parameters. */
struct WorkloadConfig
{
    /** Fraction of the paper's flow to replay (1e-3 = millions). */
    double flowScale = 1e-3;

    /** Hot threshold as a fraction of flow (paper: 0.001). */
    double hotFraction = kPaperHotFraction;

    /** Seed for the distribution shaping and the stream order. */
    std::uint64_t seed = 42;

    /** Mean consecutive executions of the same path (loop bursts). */
    double meanRunLength = 4.0;

    /**
     * Grow the flow beyond flowScale if needed to keep the tiers
     * feasible (every dynamic path must execute at least once).
     */
    bool autoRescale = true;
};

/** One benchmark's synthesized path population and stream factory. */
class CalibratedWorkload
{
  public:
    CalibratedWorkload(const SpecTarget &target, WorkloadConfig config);

    const SpecTarget &target() const { return spec; }
    const WorkloadConfig &config() const { return cfg; }

    /** Total path executions in the synthesized run. */
    std::uint64_t totalFlow() const { return flow; }

    /** Hot threshold in executions: hot iff freq > this. */
    std::uint64_t hotThreshold() const { return threshold; }

    std::size_t numPaths() const { return freq.size(); }
    std::size_t numHeads() const { return headCount; }

    /** Paths 0..hotPaths-1 are the hot tier, descending frequency. */
    std::size_t numHotPaths() const { return spec.hotPaths; }

    std::uint64_t frequency(PathIndex path) const { return freq[path]; }
    HeadIndex headOf(PathIndex path) const { return head[path]; }
    std::uint32_t blocksOf(PathIndex path) const { return blocks[path]; }

    std::uint32_t
    instructionsOf(PathIndex path) const
    {
        return instructions[path];
    }

    /** Flow of the constructed hot tier. */
    std::uint64_t hotFlow() const;

    /** The fully populated event for one execution of `path`. */
    PathEvent eventFor(PathIndex path) const;

    /**
     * Materialize the full event stream: exactly frequency(p)
     * executions of each path, interleaved in bursts. `salt` varies
     * the order without changing the distribution.
     */
    std::vector<PathEvent> materializeStream(std::uint64_t salt = 0) const;

    /**
     * Stream the same events through a callback without materializing
     * (the Dynamo benches replay tens of millions of events).
     * Callback signature: void(const PathEvent &, std::uint64_t time).
     */
    template <typename Fn>
    void
    generateStream(std::uint64_t salt, Fn &&fn) const
    {
        std::uint64_t time = 0;
        generateRuns(salt,
                     [&](PathIndex path, std::uint64_t run) {
                         const PathEvent event = eventFor(path);
                         for (std::uint64_t k = 0; k < run; ++k)
                             fn(event, time++);
                     });
    }

  private:
    /** Draw (path, run-length) bursts without replacement. */
    void generateRuns(
        std::uint64_t salt,
        const std::function<void(PathIndex, std::uint64_t)> &emit) const;

    void buildFrequencies();
    void assignHeads();
    void assignShapes();

    SpecTarget spec;
    WorkloadConfig cfg;
    std::uint64_t flow = 0;
    std::uint64_t threshold = 0;
    std::size_t headCount = 0;
    std::vector<std::uint64_t> freq;
    std::vector<HeadIndex> head;
    std::vector<std::uint32_t> blocks;
    std::vector<std::uint32_t> instructions;
};

/**
 * Integer distribution helpers (exposed for the property tests).
 * Both return vectors whose elements satisfy the stated bounds and
 * sum exactly to `sum`; they panic on infeasible inputs.
 */
std::vector<std::uint64_t> buildGeometricTier(std::size_t n,
                                              std::uint64_t sum,
                                              std::uint64_t min_freq);
std::vector<std::uint64_t> buildZipfTier(std::size_t n,
                                         std::uint64_t sum,
                                         std::uint64_t max_freq,
                                         double skew = 1.1);

} // namespace hotpath

#endif // HOTPATH_WORKLOAD_SYNTHESIS_HH
