#include "workload/stream_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

constexpr std::uint64_t kStreamMagic = 0x4850455653313000ull;

struct PackedEvent
{
    PathIndex path;
    HeadIndex head;
    std::uint32_t blocks;
    std::uint32_t branches;
    std::uint32_t instructions;
};

} // namespace

void
savePathStream(std::ostream &os, const std::vector<PathEvent> &stream)
{
    const std::uint64_t magic = kStreamMagic;
    const std::uint64_t count = stream.size();
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const PathEvent &event : stream) {
        const PackedEvent packed = {event.path, event.head,
                                    event.blocks, event.branches,
                                    event.instructions};
        os.write(reinterpret_cast<const char *>(&packed),
                 sizeof(packed));
    }
    HOTPATH_ASSERT(os.good(), "stream write failed");
}

std::vector<PathEvent>
loadPathStream(std::istream &is)
{
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    HOTPATH_ASSERT(is.good() && magic == kStreamMagic,
                   "bad path-stream header");
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    HOTPATH_ASSERT(is.good(), "truncated path-stream header");

    std::vector<PathEvent> stream;
    stream.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedEvent packed;
        is.read(reinterpret_cast<char *>(&packed), sizeof(packed));
        HOTPATH_ASSERT(is.good(), "truncated path-stream body");
        PathEvent event;
        event.path = packed.path;
        event.head = packed.head;
        event.blocks = packed.blocks;
        event.branches = packed.branches;
        event.instructions = packed.instructions;
        stream.push_back(event);
    }
    return stream;
}

void
savePathStreamFile(const std::string &path,
                   const std::vector<PathEvent> &stream)
{
    std::ofstream file(path, std::ios::binary);
    HOTPATH_ASSERT(file.is_open(), "cannot open '", path,
                   "' for writing");
    savePathStream(file, stream);
}

std::vector<PathEvent>
loadPathStreamFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    HOTPATH_ASSERT(file.is_open(), "cannot open '", path,
                   "' for reading");
    return loadPathStream(file);
}

} // namespace hotpath
