#include "workload/stream_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "engine/wire_format.hh"
#include "support/logging.hh"

namespace hotpath
{

namespace
{

/** v2 container: this magic, u64 event count, then wire frames. */
constexpr std::uint64_t kStreamMagic = 0x4850455653323000ull;
/** v1 (raw struct dump) magic, recognized only to explain itself. */
constexpr std::uint64_t kStreamMagicV1 = 0x4850455653313000ull;

constexpr std::size_t kEventsPerFrame = 4096;

} // namespace

void
savePathStream(std::ostream &os, const std::vector<PathEvent> &stream)
{
    const std::uint64_t magic = kStreamMagic;
    const std::uint64_t count = stream.size();
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));

    const std::vector<std::uint8_t> frames =
        wire::encodeEventStream(stream, /*session=*/0,
                                kEventsPerFrame);
    os.write(reinterpret_cast<const char *>(frames.data()),
             static_cast<std::streamsize>(frames.size()));
    HOTPATH_ASSERT(os.good(), "stream write failed");
}

std::vector<PathEvent>
loadPathStream(std::istream &is)
{
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    HOTPATH_ASSERT(is.good(), "truncated path-stream header");
    HOTPATH_ASSERT(magic != kStreamMagicV1,
                   "v1 path-stream container is no longer readable; "
                   "re-materialize and re-save the stream");
    HOTPATH_ASSERT(magic == kStreamMagic, "bad path-stream header");
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    HOTPATH_ASSERT(is.good(), "truncated path-stream header");

    // Slurp the frame section (experiment artifacts are in-memory
    // sized) and decode frame by frame.
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());

    std::vector<PathEvent> stream;
    stream.reserve(count);
    std::size_t offset = 0;
    std::uint64_t expected_sequence = 0;
    wire::DecodedFrame frame;
    while (offset < bytes.size()) {
        const wire::DecodeStatus status = wire::decodeFrame(
            bytes.data(), bytes.size(), offset, frame);
        HOTPATH_ASSERT(status == wire::DecodeStatus::Ok,
                       "malformed path-stream frame: ",
                       wire::decodeStatusName(status));
        HOTPATH_ASSERT(frame.header.kind ==
                           wire::FrameKind::PathEvents,
                       "path-stream container holds a non-event "
                       "frame");
        HOTPATH_ASSERT(frame.header.sequence == expected_sequence++,
                       "path-stream frames out of sequence");
        stream.insert(stream.end(), frame.events.begin(),
                      frame.events.end());
    }
    HOTPATH_ASSERT(stream.size() == count,
                   "path-stream event count mismatch");
    return stream;
}

void
savePathStreamFile(const std::string &path,
                   const std::vector<PathEvent> &stream)
{
    std::ofstream file(path, std::ios::binary);
    HOTPATH_ASSERT(file.is_open(), "cannot open '", path,
                   "' for writing");
    savePathStream(file, stream);
}

std::vector<PathEvent>
loadPathStreamFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    HOTPATH_ASSERT(file.is_open(), "cannot open '", path,
                   "' for reading");
    return loadPathStream(file);
}

} // namespace hotpath
