#include "workload/synthesis.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

/** Fenwick tree over path multiplicities for exact stream draws. */
class Fenwick
{
  public:
    explicit Fenwick(const std::vector<std::uint64_t> &values)
        : tree(values.size() + 1, 0)
    {
        for (std::size_t i = 0; i < values.size(); ++i)
            add(i, static_cast<std::int64_t>(values[i]));
    }

    void
    add(std::size_t index, std::int64_t delta)
    {
        for (std::size_t i = index + 1; i < tree.size(); i += i & (~i + 1))
            tree[i] += delta;
    }

    /** Largest index whose prefix sum is <= `target`; O(log n). */
    std::size_t
    findPrefix(std::uint64_t target) const
    {
        std::size_t pos = 0;
        std::size_t mask = 1;
        while (mask * 2 < tree.size())
            mask *= 2;
        std::int64_t remaining = static_cast<std::int64_t>(target);
        for (; mask > 0; mask /= 2) {
            const std::size_t next = pos + mask;
            if (next < tree.size() && tree[next] <= remaining) {
                remaining -= tree[next];
                pos = next;
            }
        }
        return pos; // 0-based element index
    }

  private:
    std::vector<std::int64_t> tree;
};

/** Deterministic per-path jitter in [lo, hi] from a hash. */
double
jitter(std::uint64_t key, std::uint64_t salt, double lo, double hi)
{
    SplitMix64 mixer(key * 0x9e3779b97f4a7c15ull + salt);
    const double u =
        static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
}

} // namespace

std::vector<std::uint64_t>
buildGeometricTier(std::size_t n, std::uint64_t sum,
                   std::uint64_t min_freq)
{
    if (n == 0) {
        HOTPATH_ASSERT(sum == 0, "flow assigned to an empty tier");
        return {};
    }
    HOTPATH_ASSERT(min_freq >= 1);
    HOTPATH_ASSERT(sum >= n * min_freq,
                   "geometric tier infeasible: sum too small");

    const double a = static_cast<double>(min_freq);
    const double target = static_cast<double>(sum);
    const double count = static_cast<double>(n);

    // Sum of a * r^k for k in [0, n): monotone increasing in r.
    auto tier_sum = [&](double r) {
        if (r <= 1.0 + 1e-12)
            return a * count;
        return a * (std::pow(r, count) - 1.0) / (r - 1.0);
    };

    double lo = 1.0;
    double hi = 2.0;
    while (tier_sum(hi) < target && hi < 1e9)
        hi *= 2.0;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (tier_sum(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    const double r = 0.5 * (lo + hi);

    // Descending frequencies; element 0 is the hottest.
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double value =
            a * std::pow(r, static_cast<double>(n - 1 - i));
        out[i] = std::max<std::uint64_t>(
            min_freq, static_cast<std::uint64_t>(std::llround(value)));
    }

    // Exact-sum fixup on the largest elements, preserving the floor.
    std::int64_t diff = static_cast<std::int64_t>(sum);
    for (std::uint64_t v : out)
        diff -= static_cast<std::int64_t>(v);
    std::size_t i = 0;
    while (diff != 0) {
        HOTPATH_ASSERT(i < out.size() * 4,
                       "geometric tier fixup did not converge");
        std::uint64_t &v = out[i % out.size()];
        if (diff > 0) {
            v += static_cast<std::uint64_t>(diff);
            diff = 0;
        } else {
            const std::uint64_t room = v - min_freq;
            const std::uint64_t cut = std::min<std::uint64_t>(
                room, static_cast<std::uint64_t>(-diff));
            v -= cut;
            diff += static_cast<std::int64_t>(cut);
        }
        ++i;
    }
    std::sort(out.begin(), out.end(), std::greater<>());
    return out;
}

std::vector<std::uint64_t>
buildZipfTier(std::size_t n, std::uint64_t sum, std::uint64_t max_freq,
              double skew)
{
    if (n == 0) {
        HOTPATH_ASSERT(sum == 0, "flow assigned to an empty tier");
        return {};
    }
    HOTPATH_ASSERT(max_freq >= 1);
    HOTPATH_ASSERT(sum >= n, "zipf tier infeasible: sum too small");
    HOTPATH_ASSERT(sum <= n * max_freq,
                   "zipf tier infeasible: sum exceeds the cap");

    std::vector<std::uint64_t> out(n, 1);
    std::uint64_t remaining = sum - n;
    if (remaining == 0)
        return out;

    // Proportional pass over Zipf weights, capped per element.
    const std::vector<double> weights = zipfWeights(n, skew);
    const double total_weight =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    for (std::size_t i = 0; i < n && remaining > 0; ++i) {
        const double share =
            static_cast<double>(sum - n) * weights[i] / total_weight;
        std::uint64_t give = static_cast<std::uint64_t>(share);
        give = std::min(give, max_freq - out[i]);
        give = std::min(give, remaining);
        out[i] += give;
        remaining -= give;
    }

    // Greedy pass for the residue, hottest ranks first.
    for (std::size_t i = 0; i < n && remaining > 0; ++i) {
        const std::uint64_t give =
            std::min(remaining, max_freq - out[i]);
        out[i] += give;
        remaining -= give;
    }
    HOTPATH_ASSERT(remaining == 0, "zipf tier fixup did not converge");
    return out;
}

CalibratedWorkload::CalibratedWorkload(const SpecTarget &target,
                                       WorkloadConfig config)
    : spec(target), cfg(config)
{
    HOTPATH_ASSERT(cfg.flowScale > 0.0 && cfg.flowScale <= 1.0,
                   "flow scale out of range");
    HOTPATH_ASSERT(spec.hotPaths <= spec.paths);
    HOTPATH_ASSERT(spec.heads <= spec.paths,
                   "more heads than paths is unsupported");
    buildFrequencies();
    assignHeads();
    assignShapes();
}

void
CalibratedWorkload::buildFrequencies()
{
    const std::uint64_t n_hot = spec.hotPaths;
    const std::uint64_t n_cold = spec.paths - spec.hotPaths;

    std::uint64_t f = static_cast<std::uint64_t>(
        std::llround(spec.flowMillions * 1e6 * cfg.flowScale));

    for (int attempt = 0;; ++attempt) {
        HOTPATH_ASSERT(attempt < 64, "workload rescale did not converge");
        const std::uint64_t h = static_cast<std::uint64_t>(
            cfg.hotFraction * static_cast<double>(f));
        std::uint64_t s_hot = static_cast<std::uint64_t>(
            std::llround(spec.hotFlowPercent / 100.0 *
                         static_cast<double>(f)));
        if (n_cold == 0)
            s_hot = f; // no cold tier to absorb the rounding residue
        s_hot = std::min(s_hot, f);
        const std::uint64_t s_cold = f - s_hot;

        const bool feasible = h >= 1 && s_hot >= n_hot * (h + 1) &&
                              s_cold >= n_cold &&
                              (n_cold == 0 || s_cold <= n_cold * h) &&
                              (n_cold > 0 || s_cold == 0);
        if (feasible) {
            flow = f;
            threshold = h;
            freq = buildGeometricTier(
                static_cast<std::size_t>(n_hot), s_hot, h + 1);
            std::vector<std::uint64_t> cold = buildZipfTier(
                static_cast<std::size_t>(n_cold), s_cold, h);
            freq.insert(freq.end(), cold.begin(), cold.end());
            return;
        }
        HOTPATH_ASSERT(cfg.autoRescale,
                       "workload infeasible at this flow scale; "
                       "enable autoRescale or raise flowScale");
        f += f / 4 + 1000;
    }
}

void
CalibratedWorkload::assignHeads()
{
    const std::size_t n_hot = spec.hotPaths;
    const std::size_t n_cold = spec.paths - spec.hotPaths;
    const std::size_t total_heads = spec.heads;

    // Hot paths share heads lightly (~1.5 hot paths per hot head):
    // loops usually have one or two dominant paths (paper S4.1).
    std::size_t hot_heads =
        n_hot == 0 ? 0 : std::max<std::size_t>(1, (2 * n_hot + 2) / 3);
    hot_heads = std::min(hot_heads, total_heads);
    // The cold tier must be able to claim every remaining fresh head.
    const std::size_t fresh_needed = total_heads - hot_heads;
    HOTPATH_ASSERT(fresh_needed <= n_cold || n_cold == 0,
                   "cannot realize the head count: too few cold paths");

    head.assign(spec.paths, kInvalidHead);
    for (std::size_t i = 0; i < n_hot; ++i)
        head[i] = static_cast<HeadIndex>(i * hot_heads / n_hot);

    // First cold paths claim the remaining fresh heads, the rest
    // share across all heads (cold iterations at hot heads included,
    // which is what makes NET's speculative pick imperfect).
    std::size_t next = 0;
    for (std::size_t j = 0; j < n_cold; ++j) {
        const std::size_t p = n_hot + j;
        if (j < fresh_needed) {
            head[p] = static_cast<HeadIndex>(hot_heads + j);
        } else {
            head[p] = static_cast<HeadIndex>(next % total_heads);
            next += 7; // co-prime stride spreads deterministically
        }
    }
    headCount = total_heads;

    if (n_hot == spec.paths && hot_heads < total_heads) {
        // Degenerate: all paths hot but more heads requested; spread
        // hot paths over all heads instead.
        for (std::size_t i = 0; i < n_hot; ++i)
            head[i] = static_cast<HeadIndex>(i * total_heads / n_hot);
    }
}

void
CalibratedWorkload::assignShapes()
{
    blocks.resize(spec.paths);
    instructions.resize(spec.paths);
    for (std::size_t p = 0; p < spec.paths; ++p) {
        const double b_jitter = jitter(p, cfg.seed, 0.6, 1.4);
        const double i_jitter = jitter(p, cfg.seed ^ 0xabcd, 0.7, 1.3);
        const auto b = static_cast<std::uint32_t>(std::max<long long>(
            2, std::llround(spec.avgBlocksPerPath * b_jitter)));
        blocks[p] = b;
        instructions[p] = std::max(
            b, static_cast<std::uint32_t>(std::llround(
                   b * spec.instrPerBlock * i_jitter)));
    }
}

std::uint64_t
CalibratedWorkload::hotFlow() const
{
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < spec.hotPaths; ++p)
        total += freq[p];
    return total;
}

PathEvent
CalibratedWorkload::eventFor(PathIndex path) const
{
    HOTPATH_ASSERT(path < freq.size(), "bad path index");
    PathEvent event;
    event.path = path;
    event.head = head[path];
    event.blocks = blocks[path];
    event.branches = blocks[path]; // roughly one branch per block
    event.instructions = instructions[path];
    return event;
}

void
CalibratedWorkload::generateRuns(
    std::uint64_t salt,
    const std::function<void(PathIndex, std::uint64_t)> &emit) const
{
    std::vector<std::uint64_t> remaining = freq;
    Fenwick tree(remaining);
    std::uint64_t total = flow;
    Rng rng(cfg.seed ^ (salt * 0x9e3779b97f4a7c15ull + 0x1234));

    const double p_end =
        cfg.meanRunLength <= 1.0 ? 1.0 : 1.0 / cfg.meanRunLength;

    while (total > 0) {
        const std::uint64_t pick = rng.nextBounded(total);
        const std::size_t path = tree.findPrefix(pick);
        HOTPATH_ASSERT(remaining[path] > 0, "draw hit an empty path");

        // Burst: geometric run length with the configured mean.
        std::uint64_t run = 1;
        if (p_end < 1.0) {
            const double u = rng.nextDouble();
            double extra = std::log1p(-u) / std::log1p(-p_end);
            if (!(extra >= 0.0))
                extra = 0.0;
            extra = std::min(extra, 1e9);
            run = 1 + static_cast<std::uint64_t>(extra);
        }
        run = std::min(run, remaining[path]);

        emit(static_cast<PathIndex>(path), run);
        remaining[path] -= run;
        tree.add(path, -static_cast<std::int64_t>(run));
        total -= run;
    }
}

std::vector<PathEvent>
CalibratedWorkload::materializeStream(std::uint64_t salt) const
{
    std::vector<PathEvent> stream;
    stream.reserve(flow);
    generateRuns(salt, [&](PathIndex path, std::uint64_t run) {
        const PathEvent event = eventFor(path);
        for (std::uint64_t k = 0; k < run; ++k)
            stream.push_back(event);
    });
    return stream;
}

} // namespace hotpath
