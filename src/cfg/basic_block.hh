/**
 * @file
 * Basic block record.
 *
 * Blocks are owned by the Program in one flat vector; BlockId is the
 * index. Addresses are assigned by Program::finalize() from the layout
 * order, which is what makes "backward branch" well defined.
 */

#ifndef HOTPATH_CFG_BASIC_BLOCK_HH
#define HOTPATH_CFG_BASIC_BLOCK_HH

#include <string>
#include <vector>

#include "cfg/branch.hh"
#include "cfg/types.hh"

namespace hotpath
{

/** One basic block of a procedure CFG. */
struct BasicBlock
{
    BlockId id = kInvalidBlock;
    ProcId proc = kInvalidProc;

    /** Optional label for tests/diagnostics; unique per procedure. */
    std::string label;

    /** Number of instructions, including the terminator. */
    std::uint32_t instrCount = 1;

    /** Start address; assigned by Program::finalize(). */
    Addr addr = 0;

    /** Terminator kind. */
    BranchKind kind = BranchKind::Fallthrough;

    /**
     * Successor blocks. Meaning depends on kind:
     *  - Fallthrough/Jump: exactly one successor;
     *  - Conditional: [0] = taken target, [1] = fallthrough;
     *  - Indirect: one or more potential targets;
     *  - Call: [0] = return continuation in this procedure;
     *  - Return: empty (dynamic).
     */
    std::vector<BlockId> successors;

    /** Callee procedure for Call blocks. */
    ProcId callee = kInvalidProc;

    /** Address of the terminator instruction (the branch site). */
    Addr
    branchSite() const
    {
        return addr + static_cast<Addr>(instrCount - 1) * kInstrBytes;
    }

    /** Address one past the end of the block. */
    Addr
    endAddr() const
    {
        return addr + static_cast<Addr>(instrCount) * kInstrBytes;
    }
};

} // namespace hotpath

#endif // HOTPATH_CFG_BASIC_BLOCK_HH
