/**
 * @file
 * Fundamental identifier types shared by the CFG, simulation and path
 * layers.
 */

#ifndef HOTPATH_CFG_TYPES_HH
#define HOTPATH_CFG_TYPES_HH

#include <cstdint>
#include <limits>

namespace hotpath
{

/** Code address. Blocks are laid out at 4-byte instruction granularity. */
using Addr = std::uint64_t;

/** Global basic-block identifier (index into Program's block vector). */
using BlockId = std::uint32_t;

/** Procedure identifier (index into Program's procedure vector). */
using ProcId = std::uint32_t;

constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();
constexpr ProcId kInvalidProc = std::numeric_limits<ProcId>::max();

/** Size of one instruction slot in the synthetic address space. */
constexpr Addr kInstrBytes = 4;

} // namespace hotpath

#endif // HOTPATH_CFG_TYPES_HH
