#include "cfg/program.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace hotpath
{

ProcId
Program::addProcedure(std::string name)
{
    HOTPATH_ASSERT(!isFinalized, "program already finalized");
    const auto id = static_cast<ProcId>(procStore.size());
    Procedure proc;
    proc.id = id;
    proc.name = std::move(name);
    procStore.push_back(std::move(proc));
    return id;
}

BlockId
Program::addBlock(ProcId proc, std::uint32_t instr_count,
                  BranchKind kind, std::string label)
{
    HOTPATH_ASSERT(!isFinalized, "program already finalized");
    HOTPATH_ASSERT(proc < procStore.size(), "bad procedure id");
    HOTPATH_ASSERT(instr_count > 0, "block needs at least one instr");

    const auto id = static_cast<BlockId>(blockStore.size());
    BasicBlock block;
    block.id = id;
    block.proc = proc;
    block.instrCount = instr_count;
    block.kind = kind;
    block.label = std::move(label);
    blockStore.push_back(std::move(block));

    Procedure &owner = procStore[proc];
    if (owner.blocks.empty())
        owner.entry = id;
    owner.blocks.push_back(id);
    return id;
}

void
Program::setSuccessors(BlockId block, std::vector<BlockId> successors)
{
    HOTPATH_ASSERT(!isFinalized, "program already finalized");
    HOTPATH_ASSERT(block < blockStore.size(), "bad block id");
    blockStore[block].successors = std::move(successors);
}

void
Program::setCallee(BlockId block, ProcId callee)
{
    HOTPATH_ASSERT(!isFinalized, "program already finalized");
    HOTPATH_ASSERT(block < blockStore.size(), "bad block id");
    HOTPATH_ASSERT(callee < procStore.size(), "bad callee id");
    blockStore[block].callee = callee;
}

void
Program::finalize()
{
    HOTPATH_ASSERT(!isFinalized, "finalize() called twice");

    // Lay out blocks procedure by procedure in declaration order so
    // that address comparisons define loop back edges.
    Addr cursor = 0x1000;
    for (Procedure &proc : procStore) {
        for (BlockId id : proc.blocks) {
            BasicBlock &block = blockStore[id];
            block.addr = cursor;
            cursor += static_cast<Addr>(block.instrCount) * kInstrBytes;
            instrTotal += block.instrCount;
        }
    }

    validate();

    // Derived sets: static backward edges and their targets. Calls and
    // returns transfer across procedures; only intra-procedural
    // successor edges can be static back edges.
    for (const BasicBlock &block : blockStore) {
        if (block.kind == BranchKind::Call ||
            block.kind == BranchKind::Return) {
            continue;
        }
        for (BlockId succ : block.successors) {
            if (isBackwardTransfer(block.branchSite(),
                                   blockStore[succ].addr)) {
                backEdges.emplace_back(block.id, succ);
                if (backTargetSet.insert(succ).second)
                    backTargets.push_back(succ);
            }
        }
    }
    std::sort(backTargets.begin(), backTargets.end());

    addrIndex.reserve(blockStore.size());
    for (const BasicBlock &block : blockStore)
        addrIndex.emplace_back(block.addr, block.id);
    std::sort(addrIndex.begin(), addrIndex.end());

    isFinalized = true;
}

BlockId
Program::blockAtAddr(Addr addr) const
{
    const auto it = std::lower_bound(
        addrIndex.begin(), addrIndex.end(),
        std::make_pair(addr, BlockId{0}));
    if (it == addrIndex.end() || it->first != addr)
        return kInvalidBlock;
    return it->second;
}

void
Program::validate() const
{
    HOTPATH_ASSERT(!procStore.empty(), "program has no procedures");

    for (const Procedure &proc : procStore) {
        HOTPATH_ASSERT(!proc.blocks.empty(),
                       "procedure '", proc.name, "' has no blocks");
        bool has_return = false;
        for (BlockId id : proc.blocks) {
            if (blockStore[id].kind == BranchKind::Return)
                has_return = true;
        }
        HOTPATH_ASSERT(has_return, "procedure '", proc.name,
                       "' has no return block");
    }

    for (const BasicBlock &block : blockStore) {
        const char *where = block.label.empty()
            ? "<unlabeled>" : block.label.c_str();
        switch (block.kind) {
          case BranchKind::Fallthrough:
          case BranchKind::Jump:
            HOTPATH_ASSERT(block.successors.size() == 1,
                           "block ", where,
                           ": fallthrough/jump needs 1 successor");
            break;
          case BranchKind::Conditional:
            HOTPATH_ASSERT(block.successors.size() == 2,
                           "block ", where,
                           ": conditional needs 2 successors");
            break;
          case BranchKind::Indirect:
            HOTPATH_ASSERT(!block.successors.empty(),
                           "block ", where,
                           ": indirect needs >= 1 successor");
            break;
          case BranchKind::Call:
            HOTPATH_ASSERT(block.successors.size() == 1,
                           "block ", where,
                           ": call needs 1 continuation successor");
            HOTPATH_ASSERT(block.callee != kInvalidProc &&
                               block.callee < procStore.size(),
                           "block ", where, ": call without callee");
            break;
          case BranchKind::Return:
            HOTPATH_ASSERT(block.successors.empty(),
                           "block ", where,
                           ": return must have no successors");
            break;
        }

        // All static successors stay within the owning procedure.
        for (BlockId succ : block.successors) {
            HOTPATH_ASSERT(succ < blockStore.size(),
                           "block ", where, ": bad successor id");
            HOTPATH_ASSERT(blockStore[succ].proc == block.proc,
                           "block ", where,
                           ": successor crosses procedures");
        }
    }
}

std::string
Program::toDot() const
{
    std::ostringstream os;
    os << "digraph program {\n";
    os << "  node [shape=box fontname=monospace];\n";
    for (const Procedure &proc : procStore) {
        os << "  subgraph cluster_" << proc.id << " {\n";
        os << "    label=\"" << proc.name << "\";\n";
        for (BlockId id : proc.blocks) {
            const BasicBlock &block = blockStore[id];
            os << "    b" << id << " [label=\""
               << (block.label.empty() ? std::to_string(id)
                                       : block.label)
               << "\\n" << branchKindName(block.kind) << " @0x"
               << std::hex << block.addr << std::dec << "\"];\n";
        }
        os << "  }\n";
    }
    for (const BasicBlock &block : blockStore) {
        for (BlockId succ : block.successors) {
            const bool back = isBackwardTransfer(
                block.branchSite(), blockStore[succ].addr);
            os << "  b" << block.id << " -> b" << succ;
            if (back)
                os << " [color=red label=back]";
            os << ";\n";
        }
        if (block.kind == BranchKind::Call) {
            os << "  b" << block.id << " -> b"
               << procStore[block.callee].entry
               << " [style=dashed label=call];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace hotpath
