/**
 * @file
 * Whole-program control-flow representation.
 *
 * A Program is a set of procedures over one flat block vector. After
 * construction, finalize() lays blocks out in declaration order,
 * assigns addresses, validates structural invariants and computes the
 * static backward-edge set (potential loop back edges) and the set of
 * potential path-head blocks (targets of backward branches), which is
 * exactly what the NET predictor instruments.
 */

#ifndef HOTPATH_CFG_PROGRAM_HH
#define HOTPATH_CFG_PROGRAM_HH

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cfg/basic_block.hh"

namespace hotpath
{

/** A procedure: an entry block plus the blocks it owns. */
struct Procedure
{
    ProcId id = kInvalidProc;
    std::string name;
    BlockId entry = kInvalidBlock;
    std::vector<BlockId> blocks;
};

/** A whole program: procedures, blocks, addresses and derived sets. */
class Program
{
  public:
    /** Add a procedure; the first added procedure is the entry. */
    ProcId addProcedure(std::string name);

    /**
     * Add a block to a procedure. The first block added to a
     * procedure becomes its entry.
     */
    BlockId addBlock(ProcId proc, std::uint32_t instr_count,
                     BranchKind kind, std::string label = "");

    /** Set the successor list of a block. */
    void setSuccessors(BlockId block, std::vector<BlockId> successors);

    /** Set the callee of a Call block. */
    void setCallee(BlockId block, ProcId callee);

    /**
     * Assign addresses (declaration order), validate the structure and
     * compute derived sets. Must be called exactly once before use.
     */
    void finalize();

    bool finalized() const { return isFinalized; }

    // Accessors -----------------------------------------------------

    const BasicBlock &block(BlockId id) const { return blockStore[id]; }
    const Procedure &procedure(ProcId id) const { return procStore[id]; }
    std::size_t numBlocks() const { return blockStore.size(); }
    std::size_t numProcedures() const { return procStore.size(); }
    ProcId entryProcedure() const { return 0; }

    /** Total static instruction count across all blocks. */
    std::uint64_t totalInstructions() const { return instrTotal; }

    /** Static backward edges (branch block -> target block). */
    const std::vector<std::pair<BlockId, BlockId>> &
    backwardEdges() const
    {
        return backEdges;
    }

    /** Blocks that are targets of some static backward edge. */
    const std::vector<BlockId> &
    backwardTargets() const
    {
        return backTargets;
    }

    /** True if `block` is the target of some static backward edge. */
    bool
    isBackwardTarget(BlockId block) const
    {
        return backTargetSet.count(block) > 0;
    }

    /** Look up a block by its start address; kInvalidBlock if none. */
    BlockId blockAtAddr(Addr addr) const;

    /** Emit the whole program as a GraphViz DOT digraph. */
    std::string toDot() const;

  private:
    void validate() const;

    std::vector<Procedure> procStore;
    std::vector<BasicBlock> blockStore;
    std::vector<std::pair<BlockId, BlockId>> backEdges;
    std::vector<BlockId> backTargets;
    std::unordered_set<BlockId> backTargetSet;
    std::vector<std::pair<Addr, BlockId>> addrIndex;
    std::uint64_t instrTotal = 0;
    bool isFinalized = false;
};

} // namespace hotpath

#endif // HOTPATH_CFG_PROGRAM_HH
