/**
 * @file
 * Branch classification for basic-block terminators.
 *
 * The paper's path definition hinges on distinguishing *backward taken*
 * branches (loop closing, by address comparison) from forward control
 * transfers, and on calls/returns, which a path may cross when they are
 * forward. The kinds below describe the static terminator of a block;
 * whether a particular dynamic transfer is backward is decided by
 * comparing the branch-site address against the target address.
 */

#ifndef HOTPATH_CFG_BRANCH_HH
#define HOTPATH_CFG_BRANCH_HH

#include <string_view>

#include "cfg/types.hh"

namespace hotpath
{

/** Static terminator kind of a basic block. */
enum class BranchKind : std::uint8_t
{
    /** No branch: execution falls through to the single successor. */
    Fallthrough,
    /** Two-way conditional branch: successor 0 taken, 1 fallthrough. */
    Conditional,
    /** Unconditional direct jump to the single successor. */
    Jump,
    /** Multi-way indirect jump (switch tables, virtual dispatch). */
    Indirect,
    /** Procedure call; successor 0 is the return continuation. */
    Call,
    /** Procedure return; target determined by the call stack. */
    Return,
};

/** Human-readable kind name for diagnostics and DOT dumps. */
constexpr std::string_view
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Fallthrough: return "fallthrough";
      case BranchKind::Conditional: return "conditional";
      case BranchKind::Jump: return "jump";
      case BranchKind::Indirect: return "indirect";
      case BranchKind::Call: return "call";
      case BranchKind::Return: return "return";
    }
    return "unknown";
}

/**
 * A dynamic control transfer is backward iff the target address does
 * not lie after the branch site. Backward taken branches terminate
 * paths and their targets are the potential path heads (paper S3).
 */
constexpr bool
isBackwardTransfer(Addr branch_site, Addr target)
{
    return target <= branch_site;
}

} // namespace hotpath

#endif // HOTPATH_CFG_BRANCH_HH
