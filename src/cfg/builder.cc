#include "cfg/builder.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace hotpath
{

// ProcedureBuilder::BlockHandle ------------------------------------

void
ProcedureBuilder::BlockHandle::fallthrough(std::string next)
{
    auto &spec = proc.blocks[blockIndex];
    HOTPATH_ASSERT(!spec.terminatorSet, "terminator set twice");
    spec.kind = BranchKind::Fallthrough;
    spec.successorLabels = {std::move(next)};
    spec.terminatorSet = true;
}

void
ProcedureBuilder::BlockHandle::jump(std::string next)
{
    auto &spec = proc.blocks[blockIndex];
    HOTPATH_ASSERT(!spec.terminatorSet, "terminator set twice");
    spec.kind = BranchKind::Jump;
    spec.successorLabels = {std::move(next)};
    spec.terminatorSet = true;
}

void
ProcedureBuilder::BlockHandle::cond(std::string taken, std::string fall)
{
    auto &spec = proc.blocks[blockIndex];
    HOTPATH_ASSERT(!spec.terminatorSet, "terminator set twice");
    spec.kind = BranchKind::Conditional;
    spec.successorLabels = {std::move(taken), std::move(fall)};
    spec.terminatorSet = true;
}

void
ProcedureBuilder::BlockHandle::indirect(std::vector<std::string> targets)
{
    auto &spec = proc.blocks[blockIndex];
    HOTPATH_ASSERT(!spec.terminatorSet, "terminator set twice");
    HOTPATH_ASSERT(!targets.empty(), "indirect needs targets");
    spec.kind = BranchKind::Indirect;
    spec.successorLabels = std::move(targets);
    spec.terminatorSet = true;
}

void
ProcedureBuilder::BlockHandle::call(std::string callee, std::string after)
{
    auto &spec = proc.blocks[blockIndex];
    HOTPATH_ASSERT(!spec.terminatorSet, "terminator set twice");
    spec.kind = BranchKind::Call;
    spec.calleeName = std::move(callee);
    spec.successorLabels = {std::move(after)};
    spec.terminatorSet = true;
}

void
ProcedureBuilder::BlockHandle::ret()
{
    auto &spec = proc.blocks[blockIndex];
    HOTPATH_ASSERT(!spec.terminatorSet, "terminator set twice");
    spec.kind = BranchKind::Return;
    spec.successorLabels.clear();
    spec.terminatorSet = true;
}

ProcedureBuilder::BlockHandle
ProcedureBuilder::block(std::string label, std::uint32_t instr_count)
{
    for (const BlockSpec &existing : blocks) {
        HOTPATH_ASSERT(existing.label != label,
                       "duplicate block label '", label, "'");
    }
    BlockSpec spec;
    spec.label = std::move(label);
    spec.instrCount = instr_count;
    blocks.push_back(std::move(spec));
    return BlockHandle(*this, blocks.size() - 1);
}

// ProgramBuilder ----------------------------------------------------

ProcedureBuilder &
ProgramBuilder::proc(std::string name)
{
    for (ProcedureBuilder &existing : procs) {
        if (existing.procName == name)
            return existing;
    }
    procs.push_back(ProcedureBuilder(std::move(name)));
    return procs.back();
}

Program
ProgramBuilder::build()
{
    Program program;

    std::unordered_map<std::string, ProcId> proc_ids;
    for (ProcedureBuilder &proc : procs)
        proc_ids[proc.procName] = program.addProcedure(proc.procName);

    // First pass: create all blocks so labels can be resolved.
    std::unordered_map<std::string, BlockId> block_ids;
    for (ProcedureBuilder &proc : procs) {
        const ProcId pid = proc_ids[proc.procName];
        for (ProcedureBuilder::BlockSpec &spec : proc.blocks) {
            HOTPATH_ASSERT(spec.terminatorSet, "block '", spec.label,
                           "' in '", proc.procName,
                           "' has no terminator");
            const BlockId bid = program.addBlock(
                pid, spec.instrCount, spec.kind, spec.label);
            block_ids[proc.procName + "/" + spec.label] = bid;
        }
    }

    // Second pass: resolve successor labels and callees.
    for (ProcedureBuilder &proc : procs) {
        for (ProcedureBuilder::BlockSpec &spec : proc.blocks) {
            const BlockId bid =
                block_ids.at(proc.procName + "/" + spec.label);
            std::vector<BlockId> successors;
            for (const std::string &label : spec.successorLabels) {
                const auto it =
                    block_ids.find(proc.procName + "/" + label);
                HOTPATH_ASSERT(it != block_ids.end(),
                               "unresolved block label '", label,
                               "' in procedure '", proc.procName, "'");
                successors.push_back(it->second);
            }
            program.setSuccessors(bid, std::move(successors));
            if (spec.kind == BranchKind::Call) {
                const auto it = proc_ids.find(spec.calleeName);
                HOTPATH_ASSERT(it != proc_ids.end(),
                               "unresolved callee '", spec.calleeName,
                               "'");
                program.setCallee(bid, it->second);
            }
        }
    }

    program.finalize();
    return program;
}

BlockId
findBlock(const Program &program, std::string_view label)
{
    std::string_view proc_part;
    std::string_view label_part = label;
    if (const auto slash = label.find('/');
        slash != std::string_view::npos) {
        proc_part = label.substr(0, slash);
        label_part = label.substr(slash + 1);
    }

    BlockId found = kInvalidBlock;
    for (BlockId id = 0; id < program.numBlocks(); ++id) {
        const BasicBlock &block = program.block(id);
        if (block.label != label_part)
            continue;
        if (!proc_part.empty() &&
            program.procedure(block.proc).name != proc_part) {
            continue;
        }
        HOTPATH_ASSERT(found == kInvalidBlock,
                       "ambiguous block label '", std::string(label),
                       "'");
        found = id;
    }
    HOTPATH_ASSERT(found != kInvalidBlock, "no block labeled '",
                   std::string(label), "'");
    return found;
}

} // namespace hotpath
