/**
 * @file
 * Fluent builder for Programs, used by tests, examples and the
 * synthetic program generator.
 *
 * Blocks are referred to by label; references are resolved when
 * build() is called, so forward references (loops!) read naturally:
 *
 * @code
 * ProgramBuilder builder;
 * auto &main = builder.proc("main");
 * main.block("entry", 4).fallthrough("head");
 * main.block("head", 2).cond("body", "exit");
 * main.block("body", 3).jump("head");          // backward edge
 * main.block("exit", 1).ret();
 * Program prog = builder.build();
 * @endcode
 */

#ifndef HOTPATH_CFG_BUILDER_HH
#define HOTPATH_CFG_BUILDER_HH

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/program.hh"

namespace hotpath
{

class ProgramBuilder;

/** Builder scope for one procedure. */
class ProcedureBuilder
{
  public:
    /** Terminator configuration for the block being defined. */
    class BlockHandle
    {
      public:
        /** Fall through to `next`. */
        void fallthrough(std::string next);
        /** Unconditional jump to `next`. */
        void jump(std::string next);
        /** Conditional: `taken` if taken, else `fall`. */
        void cond(std::string taken, std::string fall);
        /** Indirect jump with the given potential targets. */
        void indirect(std::vector<std::string> targets);
        /** Call `callee` procedure, continue at `after`. */
        void call(std::string callee, std::string after);
        /** Procedure return. */
        void ret();

      private:
        friend class ProcedureBuilder;
        BlockHandle(ProcedureBuilder &owner, std::size_t index)
            : proc(owner), blockIndex(index)
        {}
        ProcedureBuilder &proc;
        std::size_t blockIndex;
    };

    /** Define a block with `instr_count` instructions. */
    BlockHandle block(std::string label, std::uint32_t instr_count = 1);

    const std::string &name() const { return procName; }

  private:
    friend class ProgramBuilder;

    struct BlockSpec
    {
        std::string label;
        std::uint32_t instrCount = 1;
        BranchKind kind = BranchKind::Fallthrough;
        std::vector<std::string> successorLabels;
        std::string calleeName;
        bool terminatorSet = false;
    };

    explicit ProcedureBuilder(std::string name)
        : procName(std::move(name))
    {}

    std::string procName;
    std::vector<BlockSpec> blocks;
};

/** Whole-program builder; the first procedure defined is the entry. */
class ProgramBuilder
{
  public:
    /**
     * Get or create the builder for procedure `name`. The returned
     * reference stays valid across further proc() calls (procedures
     * live in a deque).
     */
    ProcedureBuilder &proc(std::string name);

    /** Resolve all references, finalize and return the Program. */
    Program build();

  private:
    std::deque<ProcedureBuilder> procs;
};

/**
 * Find a block by label, optionally qualified as "proc/label". Panics
 * if the label is missing or ambiguous. Test/diagnostic helper.
 */
BlockId findBlock(const Program &program, std::string_view label);

} // namespace hotpath

#endif // HOTPATH_CFG_BUILDER_HH
