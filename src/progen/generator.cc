#include "progen/generator.hh"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfg/builder.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace hotpath
{

namespace
{

/** A branch whose behaviour must be configured after the build. */
struct Intent
{
    enum class Kind
    {
        Dominant, // biased diamond: flips in alternate phases
        Balanced, // 50/50 diamond: phase-invariant
        Latch,    // loop back edge: trip count
        Driver,   // main's outer loop
        Indirect, // switch weights
    };

    std::string label; // qualified "proc/label"
    Kind kind = Kind::Dominant;
    double prob = 0.5;
    std::vector<double> weights;
};

/**
 * Emits the blocks of one procedure.
 *
 * Blocks whose successor is not yet known when they are conceptually
 * created ("open" blocks: loop heads, diamond joins, loop exits) are
 * only recorded here and declared to the builder the moment their
 * fallthrough target becomes known. Declaration order is layout order
 * and layout order defines which edges are backward, so the
 * bookkeeping preserves the intended loop structure: a head is always
 * declared before its body, a latch after it.
 */
class ProcEmitter
{
  public:
    ProcEmitter(ProcedureBuilder &proc, const ProgenConfig &cfg,
                Rng &rng, std::vector<Intent> &intents,
                std::size_t proc_index, std::size_t total_procs)
        : proc(proc), cfg(cfg), rng(rng), intents(intents),
          procIndex(proc_index), totalProcs(total_procs)
    {}

    /** Emit a full loop-nest body from "entry" to a return block. */
    void
    emitBody()
    {
        open("entry");
        std::string cursor = "entry";
        for (std::size_t l = 0; l < cfg.loopsPerProc; ++l)
            cursor = emitLoop(cursor, l * 64, cfg.nestDepth);
        resolve(cursor, "ret");
        proc.block("ret", instrs()).ret();
    }

    /** Emit main's driver loop calling fn0..fn{n-1} each iteration. */
    void
    emitDriver()
    {
        HOTPATH_ASSERT(totalProcs >= 1, "driver needs callees");
        open("entry");
        resolve("entry", "dh");
        open("dh");
        resolve("dh", "c0");
        for (std::size_t i = 0; i < totalProcs; ++i) {
            // Each call block continues directly at the next one; the
            // last continues at the latch.
            const std::string call_block = "c" + std::to_string(i);
            const std::string after =
                i + 1 < totalProcs ? "c" + std::to_string(i + 1)
                                   : "dlatch";
            proc.block(call_block, instrs())
                .call("fn" + std::to_string(i), after);
        }
        proc.block("dlatch", instrs()).cond("dh", "dexit");
        Intent intent;
        intent.label = qualified("dlatch");
        intent.kind = Intent::Kind::Driver;
        intent.prob = cfg.driverContinueProb;
        intents.push_back(intent);

        proc.block("dexit", instrs()).fallthrough("ret");
        proc.block("ret", instrs()).ret();
    }

  private:
    std::uint32_t
    instrs()
    {
        return static_cast<std::uint32_t>(rng.nextInRange(
            cfg.minInstrPerBlock, cfg.maxInstrPerBlock));
    }

    std::string
    qualified(const std::string &label) const
    {
        return proc.name() + "/" + label;
    }

    /** Record a block to be declared once its target is known. */
    void
    open(const std::string &label)
    {
        HOTPATH_ASSERT(!openBlocks.count(label),
                       "block opened twice: ", label);
        openBlocks.emplace(label, instrs());
    }

    /** Declare an open block with a fallthrough to `target`. */
    void
    resolve(const std::string &label, const std::string &target)
    {
        const auto it = openBlocks.find(label);
        HOTPATH_ASSERT(it != openBlocks.end(),
                       "resolving a block that is not open: ", label);
        proc.block(label, it->second).fallthrough(target);
        openBlocks.erase(it);
    }

    std::string
    emitLoop(const std::string &come_from, std::size_t index,
             std::size_t depth)
    {
        const std::string tag =
            "l" + std::to_string(index) + "d" + std::to_string(depth);
        const std::string head = tag + "_head";
        resolve(come_from, head);
        open(head);

        std::string cursor = head;
        for (std::size_t d = 0; d < cfg.diamondsPerBody; ++d) {
            cursor = emitDiamond(cursor, tag, d);
            if (d == cfg.diamondsPerBody / 2) {
                if (depth > 1) {
                    cursor =
                        emitLoop(cursor, index + d + 1, depth - 1);
                }
                if (rng.nextBool(cfg.callDensity) &&
                    procIndex + 1 < totalProcs) {
                    cursor = emitCall(cursor, tag, d);
                }
            }
        }

        const std::string latch = tag + "_latch";
        const std::string exit = tag + "_exit";
        resolve(cursor, latch);
        proc.block(latch, instrs()).cond(head, exit);
        Intent intent;
        intent.label = qualified(latch);
        intent.kind = Intent::Kind::Latch;
        intent.prob = cfg.loopContinueProb;
        intents.push_back(intent);

        open(exit);
        return exit;
    }

    std::string
    emitDiamond(const std::string &come_from, const std::string &tag,
                std::size_t index)
    {
        const std::string base = tag + "_d" + std::to_string(index);
        const std::string split = base + "_s";
        const std::string join = base + "_j";
        resolve(come_from, split);

        if (rng.nextBool(cfg.indirectDensity) &&
            cfg.indirectFanout >= 2) {
            std::vector<std::string> targets;
            for (std::size_t t = 0; t < cfg.indirectFanout; ++t)
                targets.push_back(base + "_c" + std::to_string(t));
            proc.block(split, instrs()).indirect(targets);
            for (const std::string &target : targets)
                proc.block(target, instrs()).jump(join);

            Intent intent;
            intent.label = qualified(split);
            intent.kind = Intent::Kind::Indirect;
            intent.weights = zipfWeights(cfg.indirectFanout, 1.2);
            intents.push_back(intent);
        } else {
            proc.block(split, instrs()).cond(base + "_a", base + "_b");
            proc.block(base + "_a", instrs()).jump(join);
            proc.block(base + "_b", instrs()).fallthrough(join);

            Intent intent;
            intent.label = qualified(split);
            if (rng.nextBool(cfg.balancedFraction)) {
                intent.kind = Intent::Kind::Balanced;
                intent.prob = 0.5;
            } else {
                intent.kind = Intent::Kind::Dominant;
                intent.prob = cfg.dominantTakenProb;
            }
            intents.push_back(intent);
        }

        open(join);
        return join;
    }

    std::string
    emitCall(const std::string &come_from, const std::string &tag,
             std::size_t index)
    {
        const std::string call_block =
            tag + "_call" + std::to_string(index);
        const std::string after =
            tag + "_after" + std::to_string(index);
        resolve(come_from, call_block);

        const std::size_t callee = static_cast<std::size_t>(
            rng.nextInRange(static_cast<std::int64_t>(procIndex + 1),
                            static_cast<std::int64_t>(totalProcs - 1)));
        proc.block(call_block, instrs())
            .call("fn" + std::to_string(callee), after);
        open(after);
        return after;
    }

    ProcedureBuilder &proc;
    const ProgenConfig &cfg;
    Rng &rng;
    std::vector<Intent> &intents;
    std::size_t procIndex;
    std::size_t totalProcs;
    std::unordered_map<std::string, std::uint32_t> openBlocks;
};

/** Build the program and collect the behaviour intents. */
std::unique_ptr<Program>
buildProgram(const ProgenConfig &cfg, std::vector<Intent> &intents)
{
    Rng rng(cfg.seed);
    ProgramBuilder builder;

    ProcedureBuilder &main = builder.proc("main");
    // Declare callees up front so call targets resolve.
    for (std::size_t i = 0; i < cfg.procedures; ++i)
        builder.proc("fn" + std::to_string(i));

    if (cfg.procedures == 0) {
        ProcEmitter emitter(main, cfg, rng, intents, 0, 1);
        emitter.emitBody();
    } else {
        ProcEmitter emitter(main, cfg, rng, intents, 0,
                            cfg.procedures);
        emitter.emitDriver();
        for (std::size_t i = 0; i < cfg.procedures; ++i) {
            ProcedureBuilder &proc =
                builder.proc("fn" + std::to_string(i));
            ProcEmitter body(proc, cfg, rng, intents, i,
                             cfg.procedures);
            body.emitBody();
        }
    }
    return std::make_unique<Program>(builder.build());
}

/** Translate intents into one behaviour phase. */
PhaseSpec
phaseFromIntents(const Program &program,
                 const std::vector<Intent> &intents, bool flipped,
                 std::uint64_t length_blocks)
{
    PhaseSpec spec;
    spec.lengthBlocks = length_blocks;
    for (const Intent &intent : intents) {
        const BlockId block = findBlock(program, intent.label);
        switch (intent.kind) {
          case Intent::Kind::Dominant:
            spec.takenProbability[block] =
                flipped ? 1.0 - intent.prob : intent.prob;
            break;
          case Intent::Kind::Balanced:
          case Intent::Kind::Latch:
          case Intent::Kind::Driver:
            spec.takenProbability[block] = intent.prob;
            break;
          case Intent::Kind::Indirect: {
            std::vector<double> weights = intent.weights;
            if (flipped)
                std::reverse(weights.begin(), weights.end());
            spec.indirectWeights[block] = std::move(weights);
            break;
          }
        }
    }
    return spec;
}

} // namespace

SyntheticProgram::SyntheticProgram(const ProgenConfig &config)
    : cfg(config)
{
    std::vector<Intent> intents;
    prog = buildProgram(cfg, intents);
    model = std::make_unique<BehaviorModel>(*prog);
    model->addPhase(phaseFromIntents(*prog, intents, false, 0));
    model->finalize();
}

PhasedSyntheticProgram::PhasedSyntheticProgram(
    const ProgenConfig &config, std::size_t phases,
    std::uint64_t phase_blocks)
    : cfg(config)
{
    HOTPATH_ASSERT(phases >= 1, "need at least one phase");
    std::vector<Intent> intents;
    prog = buildProgram(cfg, intents);
    model = std::make_unique<BehaviorModel>(*prog);
    for (std::size_t k = 0; k < phases; ++k) {
        const bool last = k + 1 == phases;
        model->addPhase(phaseFromIntents(
            *prog, intents, k % 2 == 1, last ? 0 : phase_blocks));
    }
    model->finalize();
}

} // namespace hotpath
