/**
 * @file
 * Named generator presets.
 *
 * Six qualitative program shapes covering the axes the evaluation
 * cares about: dominance (does NET's speculative pick win?), call
 * density (does the interprocedural path definition matter?),
 * indirect branching (signature disambiguation), loop nesting and
 * path-population size. Used by tests, benches and examples that
 * want a recognizable workload without hand-rolling a ProgenConfig.
 */

#ifndef HOTPATH_PROGEN_PRESETS_HH
#define HOTPATH_PROGEN_PRESETS_HH

#include <string_view>
#include <vector>

#include "progen/generator.hh"

namespace hotpath
{

/** A named preset. */
struct ProgenPreset
{
    std::string_view name;
    std::string_view summary;
    ProgenConfig config;
};

/**
 * All presets:
 *  - "loopy": tight nested loops, strong dominance - the NET-friendly
 *    shape (compress-like);
 *  - "branchy": wide bodies, weak dominance - many warm paths
 *    (go-like);
 *  - "callheavy": calls in every loop body - exercises the
 *    interprocedural definition (li-like);
 *  - "switchy": indirect branches everywhere - signature-indexed
 *    dispatch (perl-like);
 *  - "flat": one huge single-level loop population (vortex-like);
 *  - "spiky": very strong dominance, tiny hot set (deltablue-like).
 */
const std::vector<ProgenPreset> &progenPresets();

/** Look up a preset by name; panics if unknown. */
const ProgenPreset &progenPreset(std::string_view name);

} // namespace hotpath

#endif // HOTPATH_PROGEN_PRESETS_HH
