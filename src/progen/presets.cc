#include "progen/presets.hh"

#include "support/logging.hh"

namespace hotpath
{

namespace
{

ProgenConfig
base(std::uint64_t seed)
{
    ProgenConfig config;
    config.seed = seed;
    return config;
}

ProgenConfig
loopy()
{
    ProgenConfig config = base(1001);
    config.procedures = 2;
    config.loopsPerProc = 1;
    config.nestDepth = 3;
    config.diamondsPerBody = 2;
    config.dominantTakenProb = 0.95;
    config.balancedFraction = 0.0;
    config.indirectDensity = 0.0;
    config.callDensity = 0.0;
    config.loopContinueProb = 0.98;
    return config;
}

ProgenConfig
branchy()
{
    ProgenConfig config = base(1002);
    config.procedures = 3;
    config.loopsPerProc = 2;
    config.nestDepth = 1;
    config.diamondsPerBody = 8;
    config.dominantTakenProb = 0.65;
    config.balancedFraction = 0.5;
    config.indirectDensity = 0.05;
    return config;
}

ProgenConfig
callheavy()
{
    ProgenConfig config = base(1003);
    config.procedures = 6;
    config.loopsPerProc = 1;
    config.nestDepth = 2;
    config.diamondsPerBody = 3;
    config.callDensity = 1.0;
    config.dominantTakenProb = 0.85;
    return config;
}

ProgenConfig
switchy()
{
    ProgenConfig config = base(1004);
    config.procedures = 3;
    config.loopsPerProc = 2;
    config.diamondsPerBody = 4;
    config.indirectDensity = 0.6;
    config.indirectFanout = 5;
    config.dominantTakenProb = 0.8;
    return config;
}

ProgenConfig
flat()
{
    ProgenConfig config = base(1005);
    config.procedures = 1;
    config.loopsPerProc = 4;
    config.nestDepth = 1;
    config.diamondsPerBody = 10;
    config.dominantTakenProb = 0.75;
    config.balancedFraction = 0.3;
    return config;
}

ProgenConfig
spiky()
{
    ProgenConfig config = base(1006);
    config.procedures = 2;
    config.loopsPerProc = 1;
    config.nestDepth = 2;
    config.diamondsPerBody = 3;
    config.dominantTakenProb = 0.98;
    config.balancedFraction = 0.0;
    config.indirectDensity = 0.0;
    config.loopContinueProb = 0.99;
    return config;
}

} // namespace

const std::vector<ProgenPreset> &
progenPresets()
{
    static const std::vector<ProgenPreset> presets = {
        {"loopy", "tight nested loops, strong dominance", loopy()},
        {"branchy", "wide bodies, weak dominance", branchy()},
        {"callheavy", "calls in every loop body", callheavy()},
        {"switchy", "indirect dispatch everywhere", switchy()},
        {"flat", "one large single-level loop population", flat()},
        {"spiky", "near-deterministic hot spine", spiky()},
    };
    return presets;
}

const ProgenPreset &
progenPreset(std::string_view name)
{
    for (const ProgenPreset &preset : progenPresets()) {
        if (preset.name == name)
            return preset;
    }
    fatal("unknown progen preset '" + std::string(name) + "'");
}

} // namespace hotpath
