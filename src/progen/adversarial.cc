#include "progen/adversarial.hh"

#include "support/logging.hh"

namespace hotpath
{

namespace
{

/** Head/path id bases per regime, spaced so streams can be mixed
 *  into one engine without id collisions. */
constexpr std::uint32_t kThrashHead = 1;
constexpr std::uint32_t kThrashPathBase = 1000;
constexpr std::uint32_t kThrashNoiseBase = 5'000'000;
constexpr std::uint32_t kChurnBase = 10'000;
constexpr std::uint32_t kZipfHotBase = 20'000;
constexpr std::uint32_t kZipfTailBase = 30'000;

PathEvent
makeEvent(std::uint32_t path, std::uint32_t head,
          std::uint32_t instructions)
{
    PathEvent event;
    event.path = path;
    event.head = head;
    event.blocks = instructions / 50 + 1;
    event.branches = event.blocks;
    event.instructions = instructions;
    return event;
}

} // namespace

const char *
adversarialKindName(AdversarialKind kind)
{
    switch (kind) {
    case AdversarialKind::PhaseThrash:
        return "phase-thrash";
    case AdversarialKind::HeadChurn:
        return "head-churn";
    case AdversarialKind::ZipfTail:
        return "zipf-tail";
    }
    return "unknown";
}

AdversarialStream::AdversarialStream(AdversarialKind kind,
                                     AdversarialConfig config)
    : streamKind(kind), cfg(config), rngState(config.seed)
{
    HOTPATH_ASSERT(cfg.phaseLength > 0, "phaseLength must be > 0");
    HOTPATH_ASSERT(cfg.churnInterval > 0, "churnInterval must be > 0");
    HOTPATH_ASSERT(cfg.liveHeads > 0, "liveHeads must be > 0");
    HOTPATH_ASSERT(cfg.hotHeads > 0, "hotHeads must be > 0");
    HOTPATH_ASSERT(cfg.tailHeads > 0, "tailHeads must be > 0");
    HOTPATH_ASSERT(cfg.burstMaxEvents >= cfg.burstMinEvents,
                   "burst bounds inverted");
    HOTPATH_ASSERT(cfg.hotRotateInterval > 0,
                   "hotRotateInterval must be > 0");
}

std::uint64_t
AdversarialStream::nextRandom()
{
    // SplitMix64 - the repo's standard deterministic PRNG.
    rngState += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rngState;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

PathEvent
AdversarialStream::next()
{
    PathEvent event;
    switch (streamKind) {
    case AdversarialKind::PhaseThrash:
        event = nextPhaseThrash();
        break;
    case AdversarialKind::HeadChurn:
        event = nextHeadChurn();
        break;
    case AdversarialKind::ZipfTail:
        event = nextZipfTail();
        break;
    }
    ++tick;
    return event;
}

PathEvent
AdversarialStream::nextPhaseThrash()
{
    // One constant head; its dominant path is replaced every phase,
    // with a sprinkle of one-shot noise paths that keep the head's
    // counter ticking even while the dominant path is cached.
    if (nextRandom() % 1000 < cfg.noisePermille) {
        const std::uint32_t noise_path =
            kThrashNoiseBase + static_cast<std::uint32_t>(tick);
        return makeEvent(noise_path, kThrashHead,
                         cfg.hotInstructions);
    }
    const std::uint64_t phase = tick / cfg.phaseLength;
    const std::uint32_t path =
        kThrashPathBase + static_cast<std::uint32_t>(phase);
    return makeEvent(path, kThrashHead, cfg.hotInstructions);
}

PathEvent
AdversarialStream::nextHeadChurn()
{
    // A whole generation of heads lives for churnInterval events,
    // then retires wholesale; paths map 1:1 to heads.
    const std::uint64_t generation = tick / cfg.churnInterval;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(nextRandom() % cfg.liveHeads);
    const std::uint32_t head =
        kChurnBase +
        static_cast<std::uint32_t>(generation * cfg.liveHeads) + slot;
    return makeEvent(head, head, cfg.hotInstructions);
}

PathEvent
AdversarialStream::nextZipfTail()
{
    // Tail burst in progress: keep hammering the burst head.
    if (burstRemaining > 0) {
        --burstRemaining;
        return makeEvent(burstHead, burstHead, cfg.tailInstructions);
    }

    // Round-robin hot-head rotation: every hotRotateInterval events
    // one hot slot gets a fresh identity, so even the most
    // conservative τ keeps paying a re-learning tax.
    const std::uint32_t due_rotations = static_cast<std::uint32_t>(
        tick / cfg.hotRotateInterval);
    if (due_rotations > hotRotations)
        hotRotations = due_rotations;

    // Maybe start a tail burst.
    if (nextRandom() % 1000 < cfg.tailBurstPermille) {
        burstHead = kZipfTailBase + tailCursor;
        tailCursor = (tailCursor + 1) % cfg.tailHeads;
        const std::uint32_t span =
            cfg.burstMaxEvents - cfg.burstMinEvents + 1;
        burstRemaining =
            cfg.burstMinEvents +
            static_cast<std::uint32_t>(nextRandom() % span) - 1;
        return makeEvent(burstHead, burstHead, cfg.tailInstructions);
    }

    // Hot traffic: pick a slot, derive its current identity from the
    // rotation count (slot r of rotation k is retired by rotation
    // r + 1, r + 1 + hotHeads, ...).
    const std::uint32_t slot =
        static_cast<std::uint32_t>(nextRandom() % cfg.hotHeads);
    const std::uint32_t slot_generation =
        hotRotations / cfg.hotHeads +
        ((hotRotations % cfg.hotHeads) > slot ? 1u : 0u);
    const std::uint32_t head =
        kZipfHotBase + slot_generation * cfg.hotHeads + slot;
    return makeEvent(head, head, cfg.hotInstructions);
}

const char *
AdversarialStream::name() const
{
    return adversarialKindName(streamKind);
}

std::string
AdversarialStream::describe() const
{
    switch (streamKind) {
    case AdversarialKind::PhaseThrash:
        return "dominant path replaced every " +
               std::to_string(cfg.phaseLength) + " events";
    case AdversarialKind::HeadChurn:
        return std::to_string(cfg.liveHeads) +
               " heads retired wholesale every " +
               std::to_string(cfg.churnInterval) + " events";
    case AdversarialKind::ZipfTail:
        return std::to_string(cfg.hotHeads) +
               " hot heads with bursty " +
               std::to_string(cfg.tailHeads) + "-head tail";
    }
    return "unknown";
}

} // namespace hotpath
