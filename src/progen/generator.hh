/**
 * @file
 * Synthetic CFG program generation.
 *
 * Builds whole programs with the control structure the paper's
 * workloads exhibit - nested loops whose bodies are chains of
 * conditional diamonds, occasional indirect (switch-like) branches,
 * and forward calls across an acyclic call graph - plus a matching
 * BehaviorModel (biased branch probabilities create dominant paths;
 * latch probabilities set loop trip counts). The CFG pipeline
 * (Machine -> PathSplitter -> predictors) runs on these programs in
 * the examples, the integration tests and the micro benches.
 */

#ifndef HOTPATH_PROGEN_GENERATOR_HH
#define HOTPATH_PROGEN_GENERATOR_HH

#include <memory>

#include "sim/behavior.hh"

namespace hotpath
{

/** Shape parameters for a generated program. */
struct ProgenConfig
{
    std::uint64_t seed = 1;

    /** Callee procedures besides main. */
    std::size_t procedures = 4;

    /** Top-level loops per procedure. */
    std::size_t loopsPerProc = 2;

    /** Nesting depth of each loop (1 = no inner loop). */
    std::size_t nestDepth = 2;

    /** Conditional diamonds per loop body. */
    std::size_t diamondsPerBody = 4;

    /** Probability a diamond is an indirect (switch) instead. */
    double indirectDensity = 0.15;

    /** Targets of each indirect branch. */
    std::size_t indirectFanout = 3;

    /** Probability a loop body contains a call to a later proc. */
    double callDensity = 0.25;

    /** Taken probability of a dominant diamond branch. */
    double dominantTakenProb = 0.85;

    /** Fraction of diamonds that are balanced (no dominant side). */
    double balancedFraction = 0.2;

    /** Backward-latch taken probability (mean trip count). */
    double loopContinueProb = 0.95;

    /** Continue probability of main's driver loop. */
    double driverContinueProb = 0.99;

    /** Instruction count range per block. */
    std::uint32_t minInstrPerBlock = 2;
    std::uint32_t maxInstrPerBlock = 8;
};

/** A generated program bundled with its branch behaviour. */
class SyntheticProgram
{
  public:
    explicit SyntheticProgram(const ProgenConfig &config);

    const Program &program() const { return *prog; }
    const BehaviorModel &behavior() const { return *model; }
    const ProgenConfig &config() const { return cfg; }

  private:
    ProgenConfig cfg;
    std::unique_ptr<Program> prog;
    std::unique_ptr<BehaviorModel> model;
};

/**
 * A phased variant: the base behaviour for `phase_blocks` executed
 * blocks, then a phase with every dominant diamond flipped to the
 * other side, alternating `phases` times. Used by the phase-change
 * examples and tests.
 */
class PhasedSyntheticProgram
{
  public:
    PhasedSyntheticProgram(const ProgenConfig &config,
                           std::size_t phases,
                           std::uint64_t phase_blocks);

    const Program &program() const { return *prog; }
    const BehaviorModel &behavior() const { return *model; }

  private:
    ProgenConfig cfg;
    std::unique_ptr<Program> prog;
    std::unique_ptr<BehaviorModel> model;
};

} // namespace hotpath

#endif // HOTPATH_PROGEN_GENERATOR_HH
