/**
 * @file
 * Adversarial path-event workloads for the adaptive control plane.
 *
 * Each stream is built to defeat one *static* prediction delay (τ)
 * while rewarding another - the regimes the controller in src/control
 * must tell apart and chase (bench/ext_adaptive_tau.cpp measures how
 * well it does):
 *
 *  - PhaseThrash: one constant head whose dominant path is replaced
 *    every `phaseLength` events, plus a sprinkle of one-shot noise
 *    paths. A reactive τ re-learns each phase almost immediately; a
 *    conservative τ spends the whole phase still counting and never
 *    promotes anything.
 *  - HeadChurn: a rotating working set of heads, each with a single
 *    path, retired wholesale every `churnInterval` events and
 *    replaced by a fresh generation. Rewards a small τ (promote
 *    before the generation dies); starves a big one.
 *  - ZipfTail: a few permanent hot heads carrying most of the
 *    traffic, interleaved with bursts on a long tail of short-lived
 *    heads. A small τ promotes the tail bursts too, churning the
 *    fragment cache out from under the hot paths; a conservative τ
 *    promotes only what stays hot. Occasionally one hot head rotates
 *    to a fresh identity, so the most conservative τ also leaks
 *    coverage - the middle of the ladder wins.
 *
 * Everything is integer arithmetic over a SplitMix64 stream, so a
 * given (kind, config, seed) reproduces the identical event sequence
 * on every platform - the byte-determinism the X13 bench gates
 * depend on.
 */

#ifndef HOTPATH_PROGEN_ADVERSARIAL_HH
#define HOTPATH_PROGEN_ADVERSARIAL_HH

#include <cstdint>
#include <string>

#include "paths/path_event.hh"

namespace hotpath
{

/** Which adversarial regime to generate. */
enum class AdversarialKind
{
    /** Dominant path replaced every phase under a constant head. */
    PhaseThrash,
    /** The head working set itself rotates wholesale. */
    HeadChurn,
    /** Stable hot heads plus bursty short-lived tail heads. */
    ZipfTail,
};

/** Stable short name ("phase-thrash", "head-churn", "zipf-tail"). */
const char *adversarialKindName(AdversarialKind kind);

/** Stream shape parameters (defaults tuned for ext_adaptive_tau's
 *  2000-event epochs; see the file comment for what each regime
 *  punishes). */
struct AdversarialConfig
{
    std::uint64_t seed = 1;

    // PhaseThrash ---------------------------------------------------
    /** Events between dominant-path replacements. */
    std::uint64_t phaseLength = 200;
    /** Permille of events that are one-shot noise paths. */
    std::uint32_t noisePermille = 40;

    // HeadChurn -----------------------------------------------------
    /** Events between wholesale working-set rotations. */
    std::uint64_t churnInterval = 1000;
    /** Heads alive in each generation. */
    std::uint32_t liveHeads = 8;

    // ZipfTail ------------------------------------------------------
    /** Permanent hot heads. */
    std::uint32_t hotHeads = 8;
    /** Distinct short-lived tail heads to cycle through. Large
     *  enough that a head practically never recurs within a run, so
     *  tail counters never accumulate to a mid-ladder τ - the tail
     *  must stay junk for every rung but the most reactive. */
    std::uint32_t tailHeads = 512;
    /** Permille chance (per non-burst event) that a tail burst
     *  starts (2 => a burst roughly every 500 hot events; with the
     *  burst lengths below the tail carries ~6% of traffic - enough
     *  to wreck a reactive τ's cache, not enough to drown the hot
     *  set, and rare enough that burst clustering cannot mimic the
     *  HeadChurn counter-allocation signature). */
    std::uint32_t tailBurstPermille = 2;
    /** Tail burst length bounds (events, inclusive). Kept below any
     *  mid-ladder τ so only the most reactive rung promotes tail
     *  paths. */
    std::uint32_t burstMinEvents = 24;
    /** See burstMinEvents. */
    std::uint32_t burstMaxEvents = 40;
    /** Events between single hot-head identity rotations. */
    std::uint64_t hotRotateInterval = 4000;
    /** Instructions on each hot path (small: many fit the cache). */
    std::uint32_t hotInstructions = 250;
    /** Instructions on each tail path (large: promoting one evicts
     *  many hot fragments). */
    std::uint32_t tailInstructions = 2400;
};

/**
 * One adversarial event stream; call next() forever. Deterministic
 * for a given (kind, config): no clocks, no global state.
 */
class AdversarialStream
{
  public:
    AdversarialStream(AdversarialKind kind,
                      AdversarialConfig config = {});

    /** Produce the next event in the stream. */
    PathEvent next();

    /** The regime being generated. */
    AdversarialKind kind() const { return streamKind; }

    /** adversarialKindName(kind()). */
    const char *name() const;

    /** One-line human description of the regime (bench reports). */
    std::string describe() const;

    /** Events generated so far. */
    std::uint64_t produced() const { return tick; }

  private:
    PathEvent nextPhaseThrash();
    PathEvent nextHeadChurn();
    PathEvent nextZipfTail();

    /** SplitMix64 step (the repo's standard deterministic PRNG). */
    std::uint64_t nextRandom();

    AdversarialKind streamKind;
    AdversarialConfig cfg;
    std::uint64_t rngState;
    std::uint64_t tick = 0;

    // ZipfTail burst state.
    std::uint32_t burstRemaining = 0;
    std::uint32_t burstHead = 0;
    std::uint32_t tailCursor = 0;
    std::uint32_t hotRotations = 0;
};

} // namespace hotpath

#endif // HOTPATH_PROGEN_ADVERSARIAL_HH
