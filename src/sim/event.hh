/**
 * @file
 * Dynamic execution events emitted by the Machine.
 *
 * The profiling and path layers observe execution exclusively through
 * these events, mirroring how an instrumentation engine or emulator
 * (Dynamo interprets; Pin/DynamoRIO instrument) exposes a running
 * program to a profiler.
 */

#ifndef HOTPATH_SIM_EVENT_HH
#define HOTPATH_SIM_EVENT_HH

#include <cstddef>

#include "cfg/basic_block.hh"

namespace hotpath
{

/** One dynamic control transfer between blocks. */
struct TransferEvent
{
    /** Block whose terminator executed. */
    BlockId from = kInvalidBlock;
    /** Destination block. */
    BlockId to = kInvalidBlock;
    /** Address of the branch instruction. */
    Addr site = 0;
    /** Address of the destination. */
    Addr target = 0;
    /** Static kind of the terminator. */
    BranchKind kind = BranchKind::Fallthrough;
    /** For conditionals: whether the branch was taken. */
    bool taken = false;
    /** True iff target <= site (a backward transfer). */
    bool backward = false;
};

/**
 * One executed block together with its outgoing transfer, as the
 * Machine batches them. The per-record hook order is onBlock, then
 * onProgramEnd (when flagged), then onTransfer (when present) -
 * exactly the order a live unbatched run dispatches.
 */
struct ExecutionRecord
{
    /** The block that executed (owned by the Program). */
    const BasicBlock *block = nullptr;
    /** Its outgoing transfer; meaningful iff hasTransfer. */
    TransferEvent transfer;
    /** The entry procedure returned after this block. */
    bool programEnd = false;
    /** False only for the final block of a non-restarting run. */
    bool hasTransfer = false;
};

/**
 * Observer interface for dynamic execution. Default implementations
 * ignore everything so listeners override only what they need.
 *
 * Event sources (the Machine, TraceLog::replay) deliver execution in
 * batches: one onBatch() virtual call per listener per few hundred
 * blocks instead of two per block. The default onBatch() replays the
 * batch through the fine-grained hooks, so existing listeners see the
 * exact event sequence they always did; hot listeners may override
 * onBatch() directly and skip the per-event virtual dispatch.
 */
class ExecutionListener
{
  public:
    virtual ~ExecutionListener() = default;

    /** A basic block begins executing. */
    virtual void onBlock(const BasicBlock &block) { (void)block; }

    /** The block's terminator transferred control. */
    virtual void onTransfer(const TransferEvent &event) { (void)event; }

    /** The outermost procedure returned (one program run finished). */
    virtual void onProgramEnd() {}

    /** A batch of executed blocks; see class comment. */
    virtual void
    onBatch(const ExecutionRecord *records, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i) {
            const ExecutionRecord &record = records[i];
            onBlock(*record.block);
            if (record.programEnd)
                onProgramEnd();
            if (record.hasTransfer)
                onTransfer(record.transfer);
        }
    }
};

} // namespace hotpath

#endif // HOTPATH_SIM_EVENT_HH
