/**
 * @file
 * Dynamic execution events emitted by the Machine.
 *
 * The profiling and path layers observe execution exclusively through
 * these events, mirroring how an instrumentation engine or emulator
 * (Dynamo interprets; Pin/DynamoRIO instrument) exposes a running
 * program to a profiler.
 */

#ifndef HOTPATH_SIM_EVENT_HH
#define HOTPATH_SIM_EVENT_HH

#include "cfg/basic_block.hh"

namespace hotpath
{

/** One dynamic control transfer between blocks. */
struct TransferEvent
{
    /** Block whose terminator executed. */
    BlockId from = kInvalidBlock;
    /** Destination block. */
    BlockId to = kInvalidBlock;
    /** Address of the branch instruction. */
    Addr site = 0;
    /** Address of the destination. */
    Addr target = 0;
    /** Static kind of the terminator. */
    BranchKind kind = BranchKind::Fallthrough;
    /** For conditionals: whether the branch was taken. */
    bool taken = false;
    /** True iff target <= site (a backward transfer). */
    bool backward = false;
};

/**
 * Observer interface for dynamic execution. Default implementations
 * ignore everything so listeners override only what they need.
 */
class ExecutionListener
{
  public:
    virtual ~ExecutionListener() = default;

    /** A basic block begins executing. */
    virtual void onBlock(const BasicBlock &block) { (void)block; }

    /** The block's terminator transferred control. */
    virtual void onTransfer(const TransferEvent &event) { (void)event; }

    /** The outermost procedure returned (one program run finished). */
    virtual void onProgramEnd() {}
};

} // namespace hotpath

#endif // HOTPATH_SIM_EVENT_HH
