/**
 * @file
 * The execution machine: runs a Program under a BehaviorModel and
 * streams block/transfer events to registered listeners.
 *
 * This plays the role of the emulator in Dynamo (or of the traced
 * native execution in an instrumentation system): the rest of the
 * library only ever sees the event stream, never the "real" program.
 */

#ifndef HOTPATH_SIM_MACHINE_HH
#define HOTPATH_SIM_MACHINE_HH

#include <vector>

#include "sim/behavior.hh"
#include "sim/dispatch.hh"
#include "sim/event.hh"
#include "support/random.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

/** Configuration for a Machine run. */
struct MachineConfig
{
    /** RNG seed; identical seeds replay identical executions. */
    std::uint64_t seed = 1;

    /**
     * When the entry procedure returns, restart it from its entry
     * block (simulating a driver loop) instead of stopping.
     */
    bool restartOnExit = true;

    /** Safety cap on call-stack depth. */
    std::size_t maxCallDepth = 4096;
};

/** Executes a Program, driving listeners with the event stream. */
class Machine
{
  public:
    Machine(const Program &program, const BehaviorModel &behavior,
            MachineConfig config = {});

    /** Attach a listener; not owned. */
    void addListener(ExecutionListener *listener);

    /**
     * Install the fragment dispatch hook (not owned; nullptr
     * uninstalls). At most one hook may be active: it owns the
     * interpret-vs-fragment decision for every block. Listeners see
     * a byte-identical event stream with or without a hook - see
     * sim/dispatch.hh for the contract.
     */
    void setDispatchHook(DispatchHook *hook);

    /**
     * Execute until `max_blocks` more blocks have run (or the program
     * exits with restartOnExit=false). Returns blocks executed.
     */
    std::uint64_t run(std::uint64_t max_blocks);

    /** Total blocks executed across all run() calls. */
    std::uint64_t blocksExecuted() const { return blockCount; }

    /** Total instructions executed across all run() calls. */
    std::uint64_t instructionsExecuted() const { return instrCount; }

    /** Number of completed program runs (entry-proc returns). */
    std::uint64_t programRuns() const { return runCount; }

    /** Block about to execute next. */
    BlockId currentBlock() const { return current; }

    /** Deepest call stack seen across all run() calls. */
    std::size_t callDepthHighWater() const { return depthHighWater; }

  private:
    /** Blocks buffered between listener dispatches. */
    static constexpr std::size_t kBatchBlocks = 256;

    /** Pick the dynamic successor of `block`; kInvalidBlock = exit. */
    BlockId step(const BasicBlock &block, ExecutionRecord &record);

    /** Deliver the buffered records to every listener. */
    void flushBatch();

    /** Active phase, advanced as blockCount crosses boundaries. */
    std::size_t currentPhase();

    const Program &prog;
    const BehaviorModel &model;
    MachineConfig cfg;
    Rng rng;

    BlockId current;
    std::vector<BlockId> callStack;
    std::vector<ExecutionListener *> listeners;
    DispatchHook *hook = nullptr;
    // Fragment-follow cursor; persists across run() calls so a
    // max_blocks boundary never splits a fragment's accounting.
    const StitchedFragment *following = nullptr;
    std::size_t followPosition = 0;
    std::vector<ExecutionRecord> batch;
    std::uint64_t blockCount = 0;
    std::uint64_t instrCount = 0;
    std::uint64_t runCount = 0;
    std::size_t depthHighWater = 0;
    bool finished = false;

    // Incremental phase cursor; replaces a per-block schedule scan.
    std::size_t phaseIndex = 0;
    std::uint64_t phaseEnd = 0;
    bool phaseCursorValid = false;

    // Telemetry handles; nullptr when no registry was attached at
    // construction time (the common, uninstrumented case).
    telemetry::Counter *tmBlocks = nullptr;
    telemetry::Counter *tmInstructions = nullptr;
    telemetry::Counter *tmRuns = nullptr;
    telemetry::Gauge *tmCallDepthHwm = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_SIM_MACHINE_HH
