#include "sim/trace_log.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "cfg/program.hh"
#include "support/logging.hh"

namespace hotpath
{

namespace
{
constexpr std::uint64_t kTraceMagic = 0x48504c4f47313000ull; // "HPLOG10"
} // namespace

void
TraceLog::onBlock(const BasicBlock &block)
{
    blocks.push_back(block.id);
}

void
TraceLog::onBatch(const ExecutionRecord *records, std::size_t count)
{
    blocks.reserve(blocks.size() + count);
    for (std::size_t i = 0; i < count; ++i)
        blocks.push_back(records[i].block->id);
}

void
TraceLog::appendAll(const std::vector<BlockId> &ids)
{
    blocks.insert(blocks.end(), ids.begin(), ids.end());
}

void
TraceLog::save(std::ostream &os) const
{
    const std::uint64_t magic = kTraceMagic;
    const std::uint64_t count = blocks.size();
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(reinterpret_cast<const char *>(blocks.data()),
             static_cast<std::streamsize>(count * sizeof(BlockId)));
}

void
TraceLog::load(std::istream &is)
{
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    HOTPATH_ASSERT(is.good() && magic == kTraceMagic,
                   "bad trace stream header");
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    HOTPATH_ASSERT(is.good(), "truncated trace stream");
    blocks.assign(count, kInvalidBlock);
    is.read(reinterpret_cast<char *>(blocks.data()),
            static_cast<std::streamsize>(count * sizeof(BlockId)));
    HOTPATH_ASSERT(is.good(), "truncated trace stream body");
}

void
TraceLog::replay(
    const Program &program,
    const std::vector<ExecutionListener *> &listeners) const
{
    // Dispatch is batched like a live Machine run: records accumulate
    // and each listener gets one onBatch() call per chunk, which is
    // what keeps the BM_*Replay micro benches at the cost of the
    // profiling work instead of the virtual-call plumbing.
    constexpr std::size_t kBatchBlocks = 256;
    std::vector<ExecutionRecord> batch;
    batch.reserve(kBatchBlocks);
    const auto flush = [&] {
        if (batch.empty())
            return;
        for (ExecutionListener *l : listeners)
            l->onBatch(batch.data(), batch.size());
        batch.clear();
    };

    std::vector<BlockId> call_stack;

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const BasicBlock &block = program.block(blocks[i]);
        ExecutionRecord &record = batch.emplace_back();
        record.block = &block;

        if (i + 1 >= blocks.size())
            break;
        const BlockId next = blocks[i + 1];

        TransferEvent &event = record.transfer;
        event.from = block.id;
        event.to = next;
        event.site = block.branchSite();
        event.target = program.block(next).addr;
        event.kind = block.kind;
        event.backward = isBackwardTransfer(event.site, event.target);

        switch (block.kind) {
          case BranchKind::Fallthrough:
            HOTPATH_ASSERT(next == block.successors[0],
                           "illegal fallthrough transition in trace");
            event.taken = false;
            break;
          case BranchKind::Jump:
            HOTPATH_ASSERT(next == block.successors[0],
                           "illegal jump transition in trace");
            event.taken = true;
            break;
          case BranchKind::Conditional:
            HOTPATH_ASSERT(next == block.successors[0] ||
                               next == block.successors[1],
                           "illegal conditional transition in trace");
            event.taken = next == block.successors[0];
            break;
          case BranchKind::Indirect: {
            const auto &succ = block.successors;
            HOTPATH_ASSERT(std::find(succ.begin(), succ.end(), next) !=
                               succ.end(),
                           "illegal indirect transition in trace");
            event.taken = true;
            break;
          }
          case BranchKind::Call:
            HOTPATH_ASSERT(
                next == program.procedure(block.callee).entry,
                "call transition does not enter the callee");
            call_stack.push_back(block.successors[0]);
            event.taken = true;
            break;
          case BranchKind::Return:
            event.taken = true;
            if (call_stack.empty()) {
                const BlockId entry =
                    program.procedure(program.entryProcedure()).entry;
                HOTPATH_ASSERT(next == entry,
                               "return transition with empty stack "
                               "does not restart the program");
                record.programEnd = true;
            } else {
                HOTPATH_ASSERT(next == call_stack.back(),
                               "return transition does not match the "
                               "call site");
                call_stack.pop_back();
            }
            break;
        }

        record.hasTransfer = true;
        if (batch.size() >= kBatchBlocks)
            flush();
    }
    flush();
}

} // namespace hotpath
