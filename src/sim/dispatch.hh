/**
 * @file
 * The fragment dispatch hook: how a code cache takes over execution.
 *
 * A Dynamo-style runtime does not merely *observe* the program - it
 * owns dispatch. Between basic blocks the runtime decides whether the
 * next block executes in the interpreter or from a stitched fragment
 * in the code cache, and fragments transfer control to each other
 * directly once their exit stubs are linked.
 *
 * The Machine models that ownership with a single optional
 * DispatchHook. Before every block it consults the hook; the hook may
 * hand back a StitchedFragment whose blocks the Machine then executes
 * *from the fragment's own storage* until the live control flow
 * diverges from the stitched tail (a guard exit) or the fragment
 * completes. The hook sees every executed block synchronously, tagged
 * with the regime that ran it, which is what lets an engine account
 * interpreter cycles, fragment cycles and dispatch costs exactly.
 *
 * Observable-equivalence contract: installing a hook MUST NOT change
 * the event stream. The Machine draws successors from the behavior
 * model in the same order whether a block runs interpreted or from a
 * fragment, and listeners receive byte-identical ExecutionRecords
 * either way. tests/dynamo_cache_test.cc enforces this for every
 * cache policy and under an armed fault plan.
 */

#ifndef HOTPATH_SIM_DISPATCH_HH
#define HOTPATH_SIM_DISPATCH_HH

#include <cstddef>
#include <vector>

#include "sim/event.hh"

namespace hotpath
{

/**
 * A materialized trace: the linear block sequence of one predicted
 * hot path, stitched into a standalone unit the Machine can dispatch
 * through. The pointers refer to blocks owned by the Program (the
 * stitched copy shares the originals' shape; only layout and
 * optimization differ, which the cost model prices separately).
 */
struct StitchedFragment
{
    /** Entry block of the fragment (the trace head). */
    BlockId head = kInvalidBlock;

    /** The stitched block sequence, head first; never empty. */
    std::vector<const BasicBlock *> blocks;
};

/**
 * The runtime half of fragment dispatch. Install one per Machine with
 * Machine::setDispatchHook; the Machine then routes every block
 * through exactly one of onFragmentBlock / onInterpretedBlock.
 *
 * Lifetime contract: the StitchedFragment returned by enter() must
 * stay valid until the matching onFragmentExit fires - the Machine
 * reads the stitched blocks while following. An engine satisfies this
 * by never evicting mid-follow, which holds by construction when
 * insertion (and therefore eviction) only happens on interpreted
 * flow.
 */
class DispatchHook
{
  public:
    virtual ~DispatchHook() = default;

    /**
     * The Machine is about to execute `head` with no fragment active.
     * Return a resident fragment whose first block is `head` to
     * execute from the cache, or nullptr to interpret this block.
     */
    virtual const StitchedFragment *enter(BlockId head) = 0;

    /**
     * One block executed from `fragment` at stitched `position`. The
     * record is fully populated (transfer included when present) and
     * identical to what listeners will see.
     */
    virtual void
    onFragmentBlock(const ExecutionRecord &record,
                    const StitchedFragment &fragment,
                    std::size_t position)
    {
        (void)record;
        (void)fragment;
        (void)position;
    }

    /**
     * Control left `fragment` after the block at `exit_position`.
     * `completed` distinguishes running off the fragment's end from a
     * guard exit (the live successor diverged from the stitched
     * tail). `target` is the block control transferred to, or
     * kInvalidBlock when the program exited. enter(target) is
     * consulted on the next iteration, so fragment-to-fragment
     * transfers appear as onFragmentExit followed by enter.
     */
    virtual void
    onFragmentExit(const StitchedFragment &fragment,
                   std::size_t exit_position, BlockId target,
                   bool completed)
    {
        (void)fragment;
        (void)exit_position;
        (void)target;
        (void)completed;
    }

    /**
     * One block executed in the interpreter (no fragment active, or
     * enter() declined). Same record the listeners will see.
     */
    virtual void
    onInterpretedBlock(const ExecutionRecord &record)
    {
        (void)record;
    }
};

} // namespace hotpath

#endif // HOTPATH_SIM_DISPATCH_HH
