/**
 * @file
 * Trace recording and replay.
 *
 * A TraceLog captures the executed block sequence of a Machine run;
 * replay() re-derives the full transfer event stream from the Program
 * structure and drives listeners exactly as the live run did. This is
 * the "instruction trace" substitute for the paper's native program
 * runs: record once, replay into any number of profiling schemes.
 */

#ifndef HOTPATH_SIM_TRACE_LOG_HH
#define HOTPATH_SIM_TRACE_LOG_HH

#include <iosfwd>
#include <vector>

#include "sim/event.hh"

namespace hotpath
{

class Program;

/** Recorded block-granularity execution trace. */
class TraceLog : public ExecutionListener
{
  public:
    /** Record from a live Machine (attach via addListener). */
    void onBlock(const BasicBlock &block) override;

    /** Batched recording: one append loop per Machine batch. */
    void onBatch(const ExecutionRecord *records,
                 std::size_t count) override;

    /** Number of recorded block executions. */
    std::size_t size() const { return blocks.size(); }
    bool empty() const { return blocks.empty(); }

    const std::vector<BlockId> &sequence() const { return blocks; }

    /** Append a block id directly (for synthetic traces in tests). */
    void append(BlockId block) { blocks.push_back(block); }

    /** Bulk append (wire-format import, trace stitching). */
    void appendAll(const std::vector<BlockId> &ids);

    /** Drop all recorded blocks. */
    void clear() { blocks.clear(); }

    /** Serialize to a binary stream. */
    void save(std::ostream &os) const;

    /** Deserialize from a binary stream (replaces contents). */
    void load(std::istream &is);

    /**
     * Replay the trace against `program`, driving `listeners` with
     * the same onBlock/onTransfer/onProgramEnd stream a live run
     * produces. Panics if the trace is not a legal execution of the
     * program (used as a structural property check in tests).
     */
    void replay(const Program &program,
                const std::vector<ExecutionListener *> &listeners) const;

  private:
    std::vector<BlockId> blocks;
};

} // namespace hotpath

#endif // HOTPATH_SIM_TRACE_LOG_HH
