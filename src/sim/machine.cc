#include "sim/machine.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

Machine::Machine(const Program &program, const BehaviorModel &behavior,
                 MachineConfig config)
    : prog(program), model(behavior), cfg(config), rng(config.seed),
      current(program.procedure(program.entryProcedure()).entry)
{
    HOTPATH_ASSERT(program.finalized(), "program not finalized");
    tmBlocks = telemetry::counter("sim.machine.blocks");
    tmInstructions = telemetry::counter("sim.machine.instructions");
    tmRuns = telemetry::counter("sim.machine.program_runs");
    tmCallDepthHwm = telemetry::gauge("sim.machine.call_depth_hwm");
}

void
Machine::addListener(ExecutionListener *listener)
{
    HOTPATH_ASSERT(listener != nullptr);
    listeners.push_back(listener);
}

void
Machine::setDispatchHook(DispatchHook *dispatch_hook)
{
    HOTPATH_ASSERT(following == nullptr,
                   "cannot swap the dispatch hook mid-fragment");
    hook = dispatch_hook;
}

void
Machine::flushBatch()
{
    if (batch.empty())
        return;
    for (ExecutionListener *l : listeners)
        l->onBatch(batch.data(), batch.size());
    batch.clear();
}

std::size_t
Machine::currentPhase()
{
    if (!phaseCursorValid) {
        // Lazy: the model may be finalized after the Machine is
        // constructed, but must be by the first run().
        phaseIndex = model.phaseAt(blockCount);
        phaseEnd = model.phaseEndBlock(phaseIndex);
        phaseCursorValid = true;
    }
    while (phaseEnd != 0 && blockCount >= phaseEnd) {
        if (phaseIndex + 1 >= model.numPhases()) {
            phaseEnd = 0; // past the schedule: stay in the last
            break;
        }
        ++phaseIndex;
        phaseEnd = model.phaseEndBlock(phaseIndex);
    }
    return phaseIndex;
}

BlockId
Machine::step(const BasicBlock &block, ExecutionRecord &record)
{
    const std::size_t phase = currentPhase();
    TransferEvent &event = record.transfer;
    BlockId next = kInvalidBlock;
    event.from = block.id;
    event.site = block.branchSite();
    event.kind = block.kind;
    event.taken = false;

    switch (block.kind) {
      case BranchKind::Fallthrough:
        next = block.successors[0];
        break;
      case BranchKind::Jump:
        next = block.successors[0];
        event.taken = true;
        break;
      case BranchKind::Conditional: {
        const bool taken =
            rng.nextBool(model.takenProbability(phase, block.id));
        next = taken ? block.successors[0] : block.successors[1];
        event.taken = taken;
        break;
      }
      case BranchKind::Indirect: {
        const std::size_t pick =
            model.sampleIndirect(phase, block.id, rng);
        next = block.successors[pick];
        event.taken = true;
        break;
      }
      case BranchKind::Call: {
        HOTPATH_ASSERT(callStack.size() < cfg.maxCallDepth,
                       "call stack overflow (recursion too deep)");
        callStack.push_back(block.successors[0]);
        if (callStack.size() > depthHighWater)
            depthHighWater = callStack.size();
        next = prog.procedure(block.callee).entry;
        event.taken = true;
        break;
      }
      case BranchKind::Return: {
        event.taken = true;
        if (callStack.empty()) {
            // Entry procedure returned: one program run finished.
            ++runCount;
            record.programEnd = true;
            if (!cfg.restartOnExit) {
                finished = true;
                return kInvalidBlock;
            }
            next = prog.procedure(prog.entryProcedure()).entry;
        } else {
            next = callStack.back();
            callStack.pop_back();
        }
        break;
      }
    }

    event.to = next;
    event.target = prog.block(next).addr;
    event.backward = isBackwardTransfer(event.site, event.target);
    return next;
}

std::uint64_t
Machine::run(std::uint64_t max_blocks)
{
    telemetry::emit(telemetry::TraceEventKind::RunStart, "sim",
                    {{"max_blocks", max_blocks},
                     {"at_block", blockCount}});
    const std::uint64_t instr_before = instrCount;
    const std::uint64_t runs_before = runCount;

    // Listener dispatch is batched: records accumulate here and are
    // delivered kBatchBlocks at a time, one onBatch() virtual call
    // per listener per batch instead of two calls per block.
    batch.reserve(kBatchBlocks);

    std::uint64_t executed = 0;
    while (executed < max_blocks && !finished) {
        // Fragment dispatch: with no fragment active, the hook picks
        // the regime for the block at `current`. While following, the
        // block is read from the fragment's own stitched storage.
        if (hook != nullptr && following == nullptr) {
            following = hook->enter(current);
            followPosition = 0;
            HOTPATH_ASSERT(following == nullptr ||
                               (!following->blocks.empty() &&
                                following->blocks[0]->id == current),
                           "fragment does not start at the dispatch "
                           "block");
        }
        const BasicBlock &block = following != nullptr
            ? *following->blocks[followPosition]
            : prog.block(current);
        ExecutionRecord &record = batch.emplace_back();
        record.block = &block;
        ++blockCount;
        ++executed;
        instrCount += block.instrCount;

        const BlockId next = step(block, record);
        record.hasTransfer = next != kInvalidBlock;
        if (following != nullptr) {
            hook->onFragmentBlock(record, *following, followPosition);
            const bool completed =
                followPosition + 1 == following->blocks.size();
            if (completed || next == kInvalidBlock ||
                following->blocks[followPosition + 1]->id != next) {
                hook->onFragmentExit(*following, followPosition, next,
                                     completed);
                following = nullptr;
            } else {
                ++followPosition;
            }
        } else if (hook != nullptr) {
            hook->onInterpretedBlock(record);
        }
        if (next == kInvalidBlock)
            break;
        current = next;
        if (batch.size() >= kBatchBlocks)
            flushBatch();
    }
    flushBatch();

    if (tmBlocks)
        tmBlocks->add(executed);
    if (tmInstructions)
        tmInstructions->add(instrCount - instr_before);
    if (tmRuns)
        tmRuns->add(runCount - runs_before);
    if (tmCallDepthHwm)
        tmCallDepthHwm->recordMax(
            static_cast<std::int64_t>(depthHighWater));
    telemetry::emit(telemetry::TraceEventKind::RunStop, "sim",
                    {{"blocks", executed},
                     {"instructions", instrCount - instr_before},
                     {"program_runs", runCount - runs_before}});
    return executed;
}

} // namespace hotpath
