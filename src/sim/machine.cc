#include "sim/machine.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

Machine::Machine(const Program &program, const BehaviorModel &behavior,
                 MachineConfig config)
    : prog(program), model(behavior), cfg(config), rng(config.seed),
      current(program.procedure(program.entryProcedure()).entry)
{
    HOTPATH_ASSERT(program.finalized(), "program not finalized");
    tmBlocks = telemetry::counter("sim.machine.blocks");
    tmInstructions = telemetry::counter("sim.machine.instructions");
    tmRuns = telemetry::counter("sim.machine.program_runs");
    tmCallDepthHwm = telemetry::gauge("sim.machine.call_depth_hwm");
}

void
Machine::addListener(ExecutionListener *listener)
{
    HOTPATH_ASSERT(listener != nullptr);
    listeners.push_back(listener);
}

BlockId
Machine::step(const BasicBlock &block, TransferEvent &event)
{
    const std::size_t phase = model.phaseAt(blockCount);
    BlockId next = kInvalidBlock;
    event.from = block.id;
    event.site = block.branchSite();
    event.kind = block.kind;
    event.taken = false;

    switch (block.kind) {
      case BranchKind::Fallthrough:
        next = block.successors[0];
        break;
      case BranchKind::Jump:
        next = block.successors[0];
        event.taken = true;
        break;
      case BranchKind::Conditional: {
        const bool taken =
            rng.nextBool(model.takenProbability(phase, block.id));
        next = taken ? block.successors[0] : block.successors[1];
        event.taken = taken;
        break;
      }
      case BranchKind::Indirect: {
        const std::size_t pick =
            model.sampleIndirect(phase, block.id, rng);
        next = block.successors[pick];
        event.taken = true;
        break;
      }
      case BranchKind::Call: {
        HOTPATH_ASSERT(callStack.size() < cfg.maxCallDepth,
                       "call stack overflow (recursion too deep)");
        callStack.push_back(block.successors[0]);
        if (callStack.size() > depthHighWater)
            depthHighWater = callStack.size();
        next = prog.procedure(block.callee).entry;
        event.taken = true;
        break;
      }
      case BranchKind::Return: {
        event.taken = true;
        if (callStack.empty()) {
            // Entry procedure returned: one program run finished.
            ++runCount;
            for (ExecutionListener *l : listeners)
                l->onProgramEnd();
            if (!cfg.restartOnExit) {
                finished = true;
                return kInvalidBlock;
            }
            next = prog.procedure(prog.entryProcedure()).entry;
        } else {
            next = callStack.back();
            callStack.pop_back();
        }
        break;
      }
    }

    event.to = next;
    event.target = prog.block(next).addr;
    event.backward = isBackwardTransfer(event.site, event.target);
    return next;
}

std::uint64_t
Machine::run(std::uint64_t max_blocks)
{
    telemetry::emit(telemetry::TraceEventKind::RunStart, "sim",
                    {{"max_blocks", max_blocks},
                     {"at_block", blockCount}});
    const std::uint64_t instr_before = instrCount;
    const std::uint64_t runs_before = runCount;

    std::uint64_t executed = 0;
    while (executed < max_blocks && !finished) {
        const BasicBlock &block = prog.block(current);
        for (ExecutionListener *l : listeners)
            l->onBlock(block);
        ++blockCount;
        ++executed;
        instrCount += block.instrCount;

        TransferEvent event;
        const BlockId next = step(block, event);
        if (next == kInvalidBlock)
            break;
        for (ExecutionListener *l : listeners)
            l->onTransfer(event);
        current = next;
    }

    if (tmBlocks)
        tmBlocks->add(executed);
    if (tmInstructions)
        tmInstructions->add(instrCount - instr_before);
    if (tmRuns)
        tmRuns->add(runCount - runs_before);
    if (tmCallDepthHwm)
        tmCallDepthHwm->recordMax(
            static_cast<std::int64_t>(depthHighWater));
    telemetry::emit(telemetry::TraceEventKind::RunStop, "sim",
                    {{"blocks", executed},
                     {"instructions", instrCount - instr_before},
                     {"program_runs", runCount - runs_before}});
    return executed;
}

} // namespace hotpath
