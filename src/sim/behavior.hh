/**
 * @file
 * Branch behaviour models.
 *
 * A BehaviorModel tells the Machine how the program's dynamic control
 * decisions distribute: per-conditional taken probabilities and
 * per-indirect target weights. Behaviour can change over time through
 * a phase schedule (Section 6.1 of the paper studies exactly this
 * effect); each phase carries its own overrides and lasts for a given
 * number of executed blocks.
 */

#ifndef HOTPATH_SIM_BEHAVIOR_HH
#define HOTPATH_SIM_BEHAVIOR_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cfg/program.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace hotpath
{

/** Behaviour overrides for one execution phase. */
struct PhaseSpec
{
    /** Phase length in executed blocks; 0 = lasts forever. */
    std::uint64_t lengthBlocks = 0;

    /** Taken probability per conditional block (default 0.5). */
    std::unordered_map<BlockId, double> takenProbability;

    /** Successor weights per indirect block (default uniform). */
    std::unordered_map<BlockId, std::vector<double>> indirectWeights;
};

/**
 * Time-phased branch behaviour for one Program. Phase 0 also provides
 * the base behaviour; later phases fall back to phase 0 for any block
 * they do not override.
 *
 * finalize() compiles the sparse per-phase override maps into dense
 * per-block arrays indexed by BlockId, so the Machine's inner loop
 * never touches a hash table: a conditional costs one array load, an
 * indirect one array load plus an alias-table draw.
 */
class BehaviorModel
{
  public:
    explicit BehaviorModel(const Program &program);

    /** Append a phase; at least one phase must exist before use. */
    void addPhase(PhaseSpec spec);

    /** Convenience for single-phase models. */
    void setTakenProbability(BlockId block, double p);
    void setIndirectWeights(BlockId block, std::vector<double> weights);

    /** Finish configuration; builds per-phase samplers. */
    void finalize();

    std::size_t numPhases() const { return phases.size(); }

    /** Phase index active after `blocks_executed` blocks. */
    std::size_t phaseAt(std::uint64_t blocks_executed) const;

    /**
     * Cumulative block boundary at which `phase` ends (0 = open
     * ended). Lets callers track the active phase incrementally
     * instead of re-scanning the schedule per block.
     */
    std::uint64_t
    phaseEndBlock(std::size_t phase) const
    {
        HOTPATH_ASSERT(isFinalized && phase < compiled.size());
        return compiled[phase].endBlock;
    }

    /** Taken probability of a conditional block in a phase. */
    double
    takenProbability(std::size_t phase, BlockId block) const
    {
        HOTPATH_ASSERT(isFinalized && phase < compiled.size());
        return compiled[phase].takenProb[block];
    }

    /** Sample a successor index for an indirect block in a phase. */
    std::size_t
    sampleIndirect(std::size_t phase, BlockId block, Rng &rng) const
    {
        HOTPATH_ASSERT(isFinalized && phase < compiled.size());
        const CompiledPhase &cp = compiled[phase];
        const std::int32_t slot = cp.indirectSlot[block];
        if (slot >= 0)
            return cp.samplers[static_cast<std::size_t>(slot)]
                .sample(rng);
        // Uniform fallback over the successors.
        return rng.nextBounded(prog.block(block).successors.size());
    }

  private:
    struct CompiledPhase
    {
        std::vector<double> takenProb;
        /** Per-block index into `samplers`; -1 = uniform fallback. */
        std::vector<std::int32_t> indirectSlot;
        std::vector<AliasSampler> samplers;
        std::uint64_t endBlock = 0; // cumulative boundary, 0 = open
    };

    const Program &prog;
    std::vector<PhaseSpec> phases;
    std::vector<CompiledPhase> compiled;
    bool isFinalized = false;
};

} // namespace hotpath

#endif // HOTPATH_SIM_BEHAVIOR_HH
