/**
 * @file
 * Branch behaviour models.
 *
 * A BehaviorModel tells the Machine how the program's dynamic control
 * decisions distribute: per-conditional taken probabilities and
 * per-indirect target weights. Behaviour can change over time through
 * a phase schedule (Section 6.1 of the paper studies exactly this
 * effect); each phase carries its own overrides and lasts for a given
 * number of executed blocks.
 */

#ifndef HOTPATH_SIM_BEHAVIOR_HH
#define HOTPATH_SIM_BEHAVIOR_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cfg/program.hh"
#include "support/random.hh"

namespace hotpath
{

/** Behaviour overrides for one execution phase. */
struct PhaseSpec
{
    /** Phase length in executed blocks; 0 = lasts forever. */
    std::uint64_t lengthBlocks = 0;

    /** Taken probability per conditional block (default 0.5). */
    std::unordered_map<BlockId, double> takenProbability;

    /** Successor weights per indirect block (default uniform). */
    std::unordered_map<BlockId, std::vector<double>> indirectWeights;
};

/**
 * Time-phased branch behaviour for one Program. Phase 0 also provides
 * the base behaviour; later phases fall back to phase 0 for any block
 * they do not override.
 */
class BehaviorModel
{
  public:
    explicit BehaviorModel(const Program &program);

    /** Append a phase; at least one phase must exist before use. */
    void addPhase(PhaseSpec spec);

    /** Convenience for single-phase models. */
    void setTakenProbability(BlockId block, double p);
    void setIndirectWeights(BlockId block, std::vector<double> weights);

    /** Finish configuration; builds per-phase samplers. */
    void finalize();

    std::size_t numPhases() const { return phases.size(); }

    /** Phase index active after `blocks_executed` blocks. */
    std::size_t phaseAt(std::uint64_t blocks_executed) const;

    /** Taken probability of a conditional block in a phase. */
    double takenProbability(std::size_t phase, BlockId block) const;

    /** Sample a successor index for an indirect block in a phase. */
    std::size_t sampleIndirect(std::size_t phase, BlockId block,
                               Rng &rng) const;

  private:
    struct CompiledPhase
    {
        std::vector<double> takenProb;
        std::unordered_map<BlockId, AliasSampler> indirect;
        std::uint64_t endBlock = 0; // cumulative boundary, 0 = open
    };

    const Program &prog;
    std::vector<PhaseSpec> phases;
    std::vector<CompiledPhase> compiled;
    bool isFinalized = false;
};

} // namespace hotpath

#endif // HOTPATH_SIM_BEHAVIOR_HH
