#include "sim/behavior.hh"

#include "support/logging.hh"

namespace hotpath
{

BehaviorModel::BehaviorModel(const Program &program) : prog(program)
{
    HOTPATH_ASSERT(program.finalized(),
                   "behavior model needs a finalized program");
}

void
BehaviorModel::addPhase(PhaseSpec spec)
{
    HOTPATH_ASSERT(!isFinalized, "behavior model already finalized");
    phases.push_back(std::move(spec));
}

void
BehaviorModel::setTakenProbability(BlockId block, double p)
{
    HOTPATH_ASSERT(!isFinalized, "behavior model already finalized");
    HOTPATH_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
    if (phases.empty())
        phases.emplace_back();
    phases.front().takenProbability[block] = p;
}

void
BehaviorModel::setIndirectWeights(BlockId block,
                                  std::vector<double> weights)
{
    HOTPATH_ASSERT(!isFinalized, "behavior model already finalized");
    if (phases.empty())
        phases.emplace_back();
    phases.front().indirectWeights[block] = std::move(weights);
}

void
BehaviorModel::finalize()
{
    HOTPATH_ASSERT(!isFinalized, "behavior model already finalized");
    if (phases.empty())
        phases.emplace_back();

    std::uint64_t boundary = 0;
    for (std::size_t pi = 0; pi < phases.size(); ++pi) {
        const PhaseSpec &spec = phases[pi];
        CompiledPhase phase;

        phase.takenProb.assign(prog.numBlocks(), 0.5);
        if (pi > 0) {
            // Inherit phase-0 probabilities as the base behaviour.
            phase.takenProb = compiled[0].takenProb;
        }
        for (const auto &[block, p] : spec.takenProbability) {
            HOTPATH_ASSERT(block < prog.numBlocks(), "bad block id");
            HOTPATH_ASSERT(
                prog.block(block).kind == BranchKind::Conditional,
                "taken probability on a non-conditional block");
            phase.takenProb[block] = p;
        }

        // Indirect samplers: overrides here, else phase-0 entry, else
        // the uniform fallback in sampleIndirect(). The sparse
        // overrides compile into a dense per-block slot array so the
        // per-branch lookup is one load.
        phase.indirectSlot.assign(prog.numBlocks(), -1);
        if (pi > 0) {
            phase.indirectSlot = compiled[0].indirectSlot;
            phase.samplers = compiled[0].samplers;
        }
        for (const auto &[block, weights] : spec.indirectWeights) {
            HOTPATH_ASSERT(block < prog.numBlocks(), "bad block id");
            const BasicBlock &b = prog.block(block);
            HOTPATH_ASSERT(b.kind == BranchKind::Indirect,
                           "indirect weights on a non-indirect block");
            HOTPATH_ASSERT(weights.size() == b.successors.size(),
                           "weight count != successor count");
            const std::int32_t slot = phase.indirectSlot[block];
            if (slot >= 0) {
                phase.samplers[static_cast<std::size_t>(slot)] =
                    AliasSampler(weights);
            } else {
                phase.indirectSlot[block] =
                    static_cast<std::int32_t>(phase.samplers.size());
                phase.samplers.emplace_back(weights);
            }
        }

        if (spec.lengthBlocks == 0) {
            phase.endBlock = 0;
        } else {
            boundary += spec.lengthBlocks;
            phase.endBlock = boundary;
        }
        compiled.push_back(std::move(phase));
    }
    isFinalized = true;
}

std::size_t
BehaviorModel::phaseAt(std::uint64_t blocks_executed) const
{
    HOTPATH_ASSERT(isFinalized, "behavior model not finalized");
    for (std::size_t pi = 0; pi < compiled.size(); ++pi) {
        if (compiled[pi].endBlock == 0 ||
            blocks_executed < compiled[pi].endBlock) {
            return pi;
        }
    }
    return compiled.size() - 1; // past the schedule: stay in the last
}

} // namespace hotpath
