#include "cluster/hash_ring.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hotpath::cluster
{

namespace
{

/** SplitMix64 finalizer - the ring's only hash primitive. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

HashRing::HashRing(HashRingConfig config) : cfg(config)
{
    if (cfg.virtualNodes == 0)
        cfg.virtualNodes = 1;
}

void
HashRing::addNode(std::uint64_t node)
{
    if (!members.insert(node).second)
        return;
    points.reserve(points.size() + cfg.virtualNodes);
    for (std::size_t replica = 0; replica < cfg.virtualNodes;
         ++replica) {
        // Chain the mixes so (seed, node, replica) decorrelate even
        // for small consecutive values of all three.
        const std::uint64_t hash =
            mix64(mix64(cfg.seed ^ mix64(node)) ^ replica);
        points.emplace_back(hash, node);
    }
    std::sort(points.begin(), points.end());
}

bool
HashRing::removeNode(std::uint64_t node)
{
    if (members.erase(node) == 0)
        return false;
    points.erase(std::remove_if(points.begin(), points.end(),
                                [node](const auto &point) {
                                    return point.second == node;
                                }),
                 points.end());
    return true;
}

std::uint64_t
HashRing::ownerOf(std::uint64_t key) const
{
    HOTPATH_ASSERT(!points.empty(), "ownerOf() on an empty ring");
    const std::uint64_t hash = mix64(cfg.seed ^ mix64(key));
    // First point strictly after the key's hash, wrapping to the
    // ring's first point past the top.
    auto it = std::upper_bound(
        points.begin(), points.end(), hash,
        [](std::uint64_t h, const auto &point) {
            return h < point.first;
        });
    if (it == points.end())
        it = points.begin();
    return it->second;
}

std::vector<std::uint64_t>
HashRing::nodes() const
{
    return std::vector<std::uint64_t>(members.begin(), members.end());
}

} // namespace hotpath::cluster
