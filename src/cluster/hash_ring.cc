#include "cluster/hash_ring.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hotpath::cluster
{

namespace
{

/** SplitMix64 finalizer - the ring's only hash primitive. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

HashRing::HashRing(HashRingConfig config) : cfg(config)
{
    if (cfg.virtualNodes == 0)
        cfg.virtualNodes = 1;
}

void
HashRing::addNode(std::uint64_t node)
{
    addNode(node, cfg.virtualNodes);
}

void
HashRing::addNode(std::uint64_t node, std::size_t point_count)
{
    if (point_count == 0)
        point_count = 1;
    if (!members.insert(node).second)
        return;
    points.reserve(points.size() + point_count);
    for (std::size_t replica = 0; replica < point_count; ++replica) {
        // Chain the mixes so (seed, node, replica) decorrelate even
        // for small consecutive values of all three. Replica `i` of
        // a node hashes the same at every weight, so re-weighting
        // only adds or removes the tail replicas' arcs.
        const std::uint64_t hash =
            mix64(mix64(cfg.seed ^ mix64(node)) ^ replica);
        points.emplace_back(hash, node);
    }
    std::sort(points.begin(), points.end());
}

bool
HashRing::setNodeWeight(std::uint64_t node, std::size_t point_count)
{
    if (members.count(node) == 0)
        return false;
    removeNode(node);
    addNode(node, point_count);
    return true;
}

std::size_t
HashRing::nodePoints(std::uint64_t node) const
{
    std::size_t count = 0;
    for (const auto &point : points)
        if (point.second == node)
            ++count;
    return count;
}

bool
HashRing::removeNode(std::uint64_t node)
{
    if (members.erase(node) == 0)
        return false;
    points.erase(std::remove_if(points.begin(), points.end(),
                                [node](const auto &point) {
                                    return point.second == node;
                                }),
                 points.end());
    return true;
}

std::uint64_t
HashRing::ownerOf(std::uint64_t key) const
{
    HOTPATH_ASSERT(!points.empty(), "ownerOf() on an empty ring");
    const std::uint64_t hash = mix64(cfg.seed ^ mix64(key));
    // First point strictly after the key's hash, wrapping to the
    // ring's first point past the top.
    auto it = std::upper_bound(
        points.begin(), points.end(), hash,
        [](std::uint64_t h, const auto &point) {
            return h < point.first;
        });
    if (it == points.end())
        it = points.begin();
    return it->second;
}

std::vector<std::uint64_t>
HashRing::nodes() const
{
    return std::vector<std::uint64_t>(members.begin(), members.end());
}

} // namespace hotpath::cluster
