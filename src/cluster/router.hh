/**
 * @file
 * The cluster routing tier: one frontend process that consistent-
 * hashes sessions onto a fleet of net::Server backends, speaking the
 * hotpath_wire frame format on both sides.
 *
 * Threading model: one router thread runs a ::poll loop over the
 * frontend listener, every client connection, every backend
 * connection (net::Client sockets) and an eventfd wakeup; an admin
 * thread serves the introspection HTTP endpoint. All routing state -
 * the hash ring, the session routes, the per-backend in-flight
 * ledgers - is owned by the router thread; control operations
 * (addBackend/removeBackend) post commands through a locked queue
 * and the eventfd.
 *
 * In-flight ledger: every frame accepted from a client is recorded
 * against the backend it was routed to (per-session FIFO, keyed by
 * sequence) before it is sent, and the entry keeps the encoded frame
 * bytes. A backend reply retires the matching entry and is forwarded
 * to the owning client; a broken backend connection replays every
 * ledgered frame - to the same backend after a successful reconnect,
 * or to the session's new owner after failover - so every accepted
 * frame is answered exactly once even when a backend dies mid-burst.
 *
 * Session migration: a topology change (addBackend/removeBackend)
 * rebuilds the ring and, for every tracked session whose owner
 * changed, runs the drain-and-rehash protocol: new frames for the
 * session are parked; a FrameKind::SessionState export request goes
 * to the old owner; the snapshot reply is re-encoded as an import
 * frame to the new owner; the import's ack completes the migration
 * and the parked frames flow to the new owner. Predictor history
 * (NET counters, fragment cache, sequence cursor) survives the move
 * bit-for-bit - see Engine::exportSession/importSession.
 *
 * Failover: when a backend connection breaks, the router retries the
 * connect (net::Client's deterministic jittered backoff); if the
 * backend stays unreachable it is declared dead, removed from the
 * ring, its sessions rehash to the survivors (history lost for those
 * sessions only - there is nobody left to export from), and its
 * ledger replays. With zero live backends the router answers every
 * frame itself with an empty prediction reply so the tier never
 * strands a client.
 *
 * Everything is mirrored into cluster.* telemetry instruments and an
 * admin endpoint (/metrics, /healthz, /topology, /stats), matching
 * the serving layer's observability discipline.
 */

#ifndef HOTPATH_CLUSTER_ROUTER_HH
#define HOTPATH_CLUSTER_ROUTER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.hh"
#include "net/client.hh"
#include "net/socket.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

namespace cluster
{

/** Address of one backend net::Server. */
struct BackendAddress
{
    /** Backend IPv4 address (dotted quad). */
    std::string host = "127.0.0.1";

    /** Backend TCP port. */
    std::uint16_t port = 0;
};

/** Router parameters. */
struct RouterConfig
{
    /** IPv4 address the frontend listener binds (dotted quad). */
    std::string bindAddress = "127.0.0.1";

    /** Frontend TCP port; 0 binds an ephemeral port (read it back
     *  with Router::port()). */
    std::uint16_t port = 0;

    /** Initial backend fleet; start() connects to each in order. */
    std::vector<BackendAddress> backends;

    /** Ring points per backend (HashRingConfig::virtualNodes). */
    std::size_t virtualNodes = 64;

    /** Ring hash seed; the session->backend map is a pure function
     *  of (seed, membership), deterministic across runs. */
    std::uint64_t ringSeed = 0;

    /** Connect attempts per backend (initial connect and the
     *  reconnect probe before failover declares it dead). */
    std::uint32_t connectAttempts = 4;

    /** Backend connect backoff base, in milliseconds
     *  (ClientConfig::retryBaseMs). */
    std::uint64_t retryBaseMs = 5;

    /** Backend connect backoff exponent cap
     *  (ClientConfig::retryMaxExponent). */
    std::uint32_t retryMaxExponent = 4;

    /** Seed for the backends' deterministic connect jitter
     *  (ClientConfig::retryJitterSeed, xored with the backend id). */
    std::uint64_t retryJitterSeed = 0;

    /** Router maintenance tick in milliseconds (poll timeout,
     *  drain-quiet granularity). */
    std::uint64_t tickMs = 10;

    /** Bytes per read(2) on a readable client socket. */
    std::size_t readChunkBytes = 64 * 1024;

    /** Cap on a client connection's reassembly buffer; a client
     *  streaming this much without completing a frame is cut off. */
    std::size_t maxInBufferBytes = std::size_t{1} << 20;

    /** Cap on a client connection's unsent reply backlog; replies
     *  beyond it are dropped (counted). */
    std::size_t maxOutBufferBytes = std::size_t{1} << 20;

    /** Longest drain() waits for in-flight frames and reply flushes,
     *  in milliseconds. */
    std::uint64_t drainTimeoutMs = 5000;

    /**
     * Admin (introspection) HTTP listener port: -1 disables it, 0
     * binds an ephemeral port (read it back with
     * Router::adminPort()). Serves plain HTTP/1.0 GETs: /metrics
     * (Prometheus text), /healthz (drain state), /topology (the
     * ring: backends, liveness, in-flight, owned sessions) and
     * /stats (flat JSON consumed by examples/engine_top).
     */
    int adminPort = -1;
};

/** Aggregate router counters (mirrored in cluster.* telemetry). */
struct RouterStats
{
    /** Client connections accepted. */
    std::uint64_t accepted = 0;
    /** Client connections closed. */
    std::uint64_t closed = 0;
    /** Complete frames accepted from clients. */
    std::uint64_t framesIn = 0;
    /** Client frames forwarded to a backend (first send). */
    std::uint64_t framesRouted = 0;
    /** Ledgered frames re-sent after a reconnect or failover. */
    std::uint64_t framesReplayed = 0;
    /** Export/import frames the router itself sent to backends. */
    std::uint64_t migrationFrames = 0;
    /** Payload bytes moved by session migration (export replies +
     *  import frames). */
    std::uint64_t migrationBytes = 0;
    /** Replies forwarded to clients. */
    std::uint64_t responsesOut = 0;
    /** Replies the router synthesized itself (no live backends). */
    std::uint64_t responsesSynthesized = 0;
    /** Replies dropped (client gone or its backlog overflowed). */
    std::uint64_t responsesDropped = 0;
    /** Corrupt regions resynced past in client input. */
    std::uint64_t framesResynced = 0;
    /** Bytes skipped while resyncing client input. */
    std::uint64_t resyncBytesSkipped = 0;
    /** Topology rebuilds (add/remove/failover). */
    std::uint64_t rehashes = 0;
    /** Backend re-weights applied (setBackendWeights load hints). */
    std::uint64_t weightUpdates = 0;
    /** Sessions whose state completed a migration. */
    std::uint64_t sessionsMigrated = 0;
    /** Backend connections re-established after a break. */
    std::uint64_t backendReconnects = 0;
    /** Backends declared dead and failed over. */
    std::uint64_t failovers = 0;
    /** Client connections currently open. */
    std::size_t activeConnections = 0;
    /** Backends currently connected. */
    std::size_t backendsLive = 0;
    /** Ledger entries currently awaiting a backend reply. */
    std::size_t inFlightTotal = 0;
    /** Sessions with a tracked route. */
    std::size_t sessionsTracked = 0;
    /** Frames parked behind an in-progress migration. */
    std::size_t parkedFrames = 0;
};

/** One backend's row in Router::topology(). */
struct BackendSnapshot
{
    /** Stable backend id (ring node id). */
    std::uint64_t id = 0;
    /** Backend address. */
    std::string host;
    /** Backend port. */
    std::uint16_t port = 0;
    /** True while the backend's connection is up. */
    bool alive = false;
    /** True while the backend is draining out (removeBackend). */
    bool retiring = false;
    /** Ledger entries awaiting this backend's reply. */
    std::size_t inFlight = 0;
    /** Sessions currently routed to this backend. */
    std::size_t sessionsOwned = 0;
    /** Frames this backend has been sent (routed + replayed +
     *  migration traffic). */
    std::uint64_t framesSent = 0;
    /** Ring points the backend currently projects (scaled by the
     *  last applied load-hint weight; 0 while off the ring). */
    std::size_t ringPoints = 0;
};

/** The consistent-hash routing frontend; see the file comment. */
class Router
{
  public:
    /** Configure a router; nothing runs until start(). */
    explicit Router(RouterConfig config);

    /** Stops and joins everything still running. */
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Connect the configured backends, bind the frontend listener
     * and spawn the router (and admin) threads. Returns false when
     * the bind or every configured backend connect fails; backends
     * that fail to connect individually are reported dead in
     * topology() but do not fail start().
     */
    bool start();

    /** The bound frontend port (valid after start()). */
    std::uint16_t port() const { return boundPort; }

    /** The bound admin port (valid after start() when
     *  RouterConfig::adminPort >= 0; otherwise 0). */
    std::uint16_t adminPort() const { return boundAdminPort; }

    /**
     * Add a backend to the fleet (asynchronous: posts a command to
     * the router thread). The router connects it, rebuilds the ring
     * and migrates every session whose owner changed. Returns the
     * new backend's id. Observe completion via stats().rehashes or
     * topology().
     */
    std::uint64_t addBackend(const BackendAddress &address);

    /**
     * Retire a backend (asynchronous). Its ring points are removed
     * immediately, every session it owned migrates out through the
     * drain-and-rehash protocol, and the connection closes once its
     * ledger is empty. Unknown ids are ignored.
     */
    void removeBackend(std::uint64_t id);

    /**
     * Apply per-backend load hints (asynchronous): each (backend id,
     * weight in permille of nominal) entry re-weights that backend's
     * share of the ring - its point count becomes
     * virtualNodes * weight / 1000, clamped to at least 1 - and
     * sessions whose owner changed migrate through the usual
     * drain-and-rehash protocol. 1000 restores the nominal share; an
     * overloaded backend hinted down to 500 sheds roughly half its
     * arc to the rest of the fleet. Unknown, dead or retiring
     * backend ids are ignored. This is the attachment point for the
     * adaptive control plane: a controller watching the backends'
     * control_* stats posts its exported load hints here.
     */
    void setBackendWeights(
        std::vector<std::pair<std::uint64_t, std::uint32_t>>
            weights_permille);

    /**
     * Graceful drain: stop accepting, wait until every accepted
     * frame has been answered and flushed (bounded by
     * RouterConfig::drainTimeoutMs). Client connections stay open
     * until stop().
     */
    void drain();

    /** drain(), then stop and join all threads (idempotent). */
    void stop();

    /** Aggregate routing counters. */
    RouterStats stats() const;

    /** Per-backend fleet snapshot (id order). */
    std::vector<BackendSnapshot> topology() const;

  private:
    /** A frame awaiting its backend reply. */
    struct Pending
    {
        /** Matches the reply's echoed sequence. */
        std::uint64_t sequence = 0;
        /** Client connection owed the reply (0 = router-internal
         *  migration traffic). */
        std::uint64_t clientConn = 0;
        /** What the entry is waiting for. */
        enum class Phase : std::uint8_t
        {
            Normal, ///< client frame; Predictions reply
            Export, ///< export request; SessionState reply
            Import  ///< import frame; Predictions ack
        } phase = Phase::Normal;
        /** Encoded frame bytes, kept for replay. */
        std::vector<std::uint8_t> bytes;
    };

    /** One backend and its in-flight ledger. */
    struct Backend
    {
        std::uint64_t id = 0;
        BackendAddress address;
        std::unique_ptr<net::Client> client;
        /** Connection believed up. */
        bool alive = false;
        /** Draining out after removeBackend(). */
        bool retiring = false;
        /** Permanently gone (failover or retirement complete). */
        bool dead = false;
        /** Connection broke; the recovery pass must reconnect or
         *  fail over. */
        bool needsRecovery = false;
        /** Per-session FIFO of frames awaiting replies. */
        std::unordered_map<std::uint64_t, std::deque<Pending>>
            ledger;
        std::size_t inFlight = 0;
        std::uint64_t framesSent = 0;
        /** Eagerly registered per-backend in-flight gauge. */
        telemetry::Gauge *tmInFlight = nullptr;
    };

    /** One frontend (client) connection. */
    struct ClientConn
    {
        net::Fd fd;
        std::uint64_t id = 0;
        std::vector<std::uint8_t> in;
        std::vector<std::uint8_t> out;
        std::size_t outOff = 0;
        bool readClosed = false;
        /** Frames accepted whose replies have not yet been posted
         *  back to this connection. */
        std::uint64_t inFlight = 0;
    };

    /** Where a session's frames go right now. */
    struct SessionRoute
    {
        std::uint64_t owner = 0;
        /** True once `owner` has been assigned from the ring (owner
         *  id 0 is a valid backend, so 0 alone cannot mean
         *  "unassigned"). */
        bool assigned = false;
        /** Migration target while `migrating` is set. */
        std::uint64_t pendingOwner = 0;
        bool migrating = false;
        /** Frames parked until the migration completes. */
        std::deque<Pending> parked;
    };

    /** Control commands posted to the router thread. */
    struct Command
    {
        enum class Kind : std::uint8_t
        {
            AddBackend,
            RemoveBackend,
            SetWeights
        } kind = Kind::AddBackend;
        BackendAddress address;
        std::uint64_t id = 0;
        /** (backend id, permille of nominal) for SetWeights. */
        std::vector<std::pair<std::uint64_t, std::uint32_t>> weights;
    };

    /** Build a Backend (client + per-backend gauge); no connect. */
    std::unique_ptr<Backend>
    makeBackendLocked(std::uint64_t id,
                      const BackendAddress &address);
    /** The backend with `id`, or nullptr. */
    Backend *findBackend(std::uint64_t id);
    void routerLoop();
    void acceptPending();
    /** Read a client socket and process its input; returns false
     *  when the connection must be closed. */
    bool handleClientReadable(ClientConn &conn);
    /** Parse and route every complete frame in conn.in; returns
     *  false when the connection must be closed. */
    bool processClientInput(ClientConn &conn);
    /** Route one accepted frame (or park it behind a migration). */
    void routeFrame(const wire::FrameHeader &header,
                    std::vector<std::uint8_t> frame,
                    std::uint64_t client_conn);
    /** Adjust a client connection's owed-reply count (no-op when
     *  the connection is gone). */
    void bumpClientInFlight(std::uint64_t client_conn,
                            std::int64_t delta);
    /** Ledger a frame against `backend` and send it. */
    void sendToBackend(Backend &backend, std::uint64_t session,
                       Pending entry);
    void handleBackendReadable(Backend &backend);
    /** Retire the ledger entry matching a reply; returns false when
     *  nothing matched (stale reply after a replay). */
    bool settleReply(Backend &backend,
                     const net::PredictionReply &reply);
    /** Forward a backend reply to its client connection. */
    void forwardReply(std::uint64_t client_conn,
                      const net::PredictionReply &reply);
    /** Answer a frame with an empty synthesized prediction reply
     *  (no live backends). */
    void synthesizeReply(std::uint64_t session,
                         std::uint64_t sequence,
                         std::uint64_t client_conn);
    /** synthesizeReply() plus the owed-reply decrement, for frames
     *  that were already counted against their connection. */
    void synthesizeToConn(std::uint64_t session,
                          std::uint64_t sequence,
                          std::uint64_t client_conn);
    void flushClient(ClientConn &conn);
    void closeClient(std::uint64_t conn_id);
    /** Reconnect a broken backend and replay its ledger, or declare
     *  it dead and fail its sessions over. */
    void handleBackendBroken(Backend &backend);
    /** Re-send every ledgered frame on a freshly reconnected
     *  backend connection. */
    void replayToSelf(Backend &backend);
    /** Remove a dead backend from the ring and rehash its sessions
     *  and ledger onto the survivors. */
    void failover(Backend &backend);
    /** Move a dead backend's ledger entries to each session's new
     *  owner (or synthesize replies when nobody is left). */
    void redistributeLedger(Backend &backend);
    /** Rebuild ownership after a ring change: start migrations for
     *  sessions whose owner moved (live old owner) or rehash them
     *  directly (dead old owner). */
    void rehashSessions();
    /** Begin the drain-and-rehash protocol for one session: park
     *  new frames and send the export request to the old owner. */
    void startMigration(std::uint64_t session, SessionRoute &route,
                        std::uint64_t new_owner);
    /** Progress a migration on a SessionState export reply. */
    void handleExportReply(const net::PredictionReply &reply);
    /** Complete a migration on the import ack. */
    void finishMigration(std::uint64_t session);
    /** Flush a migrated/abandoned session's parked frames. */
    void unparkSession(std::uint64_t session, SessionRoute &route);
    /** Close retiring backends whose ledgers drained. */
    void reapRetiring();
    void executeCommand(const Command &command);
    void wakeRouter();
    /** Recompute the derived gauges and the quiescence flag (router
     *  thread, once per loop pass). */
    void refreshDerived();
    /** Refresh the locked topology snapshot (router thread only). */
    void publishTopology();
    void adminLoop();
    void serveAdminRequest(net::Fd &conn);
    /** Response body + status for an admin request path. */
    std::string adminResponse(const std::string &path,
                              int &status) const;
    /** The /stats document: flat JSON (scalars and flat numeric
     *  arrays only; engine_top scans it without a JSON parser). */
    std::string statsJson() const;
    /** The /topology document (JSON). */
    std::string topologyJson() const;

    RouterConfig cfg;
    HashRing ring;
    net::Fd listener;
    std::uint16_t boundPort = 0;
    net::Fd adminListener;
    std::uint16_t boundAdminPort = 0;
    net::Fd wakeup; ///< eventfd: command queue + stop/drain nudges
    std::thread routerThread;
    std::thread adminThread;
    std::atomic<bool> stopping{false};
    std::atomic<bool> draining{false};
    std::atomic<bool> started{false};
    /** Set while the router thread considers itself fully idle (no
     *  in-flight frames, no parked frames, everything flushed). */
    std::atomic<bool> quiescent{true};

    std::uint64_t nextConnId = 1;
    std::uint64_t nextBackendId = 0;
    /** Sequence source for router-generated migration frames. */
    std::uint64_t migrationSequence = 1;

    // Router-thread-owned state.
    std::unordered_map<std::uint64_t, ClientConn> conns;
    std::vector<std::unique_ptr<Backend>> backends;
    std::unordered_map<std::uint64_t, SessionRoute> routes;

    std::mutex cmdMu;
    std::deque<Command> commands;
    std::atomic<std::uint64_t> nextCommandBackendId{0};

    mutable std::mutex topoMu;
    std::vector<BackendSnapshot> topoSnapshot;

    // Aggregates (relaxed atomics, read by stats()).
    std::atomic<std::uint64_t> nAccepted{0};
    std::atomic<std::uint64_t> nClosed{0};
    std::atomic<std::uint64_t> nFramesIn{0};
    std::atomic<std::uint64_t> nFramesRouted{0};
    std::atomic<std::uint64_t> nFramesReplayed{0};
    std::atomic<std::uint64_t> nMigrationFrames{0};
    std::atomic<std::uint64_t> nMigrationBytes{0};
    std::atomic<std::uint64_t> nResponsesOut{0};
    std::atomic<std::uint64_t> nResponsesSynthesized{0};
    std::atomic<std::uint64_t> nResponsesDropped{0};
    std::atomic<std::uint64_t> nResynced{0};
    std::atomic<std::uint64_t> nResyncBytes{0};
    std::atomic<std::uint64_t> nRehashes{0};
    std::atomic<std::uint64_t> nWeightUpdates{0};
    std::atomic<std::uint64_t> nSessionsMigrated{0};
    std::atomic<std::uint64_t> nBackendReconnects{0};
    std::atomic<std::uint64_t> nFailovers{0};
    std::atomic<std::uint64_t> nActive{0};
    std::atomic<std::uint64_t> nBackendsLive{0};
    std::atomic<std::uint64_t> nInFlight{0};
    std::atomic<std::uint64_t> nSessionsTracked{0};
    std::atomic<std::uint64_t> nParked{0};

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmAccepted = nullptr;
    telemetry::Counter *tmClosed = nullptr;
    telemetry::Counter *tmFramesIn = nullptr;
    telemetry::Counter *tmFramesRouted = nullptr;
    telemetry::Counter *tmFramesReplayed = nullptr;
    telemetry::Counter *tmMigrationFrames = nullptr;
    telemetry::Counter *tmMigrationBytes = nullptr;
    telemetry::Counter *tmResponsesOut = nullptr;
    telemetry::Counter *tmResponsesSynthesized = nullptr;
    telemetry::Counter *tmResponsesDropped = nullptr;
    telemetry::Counter *tmResynced = nullptr;
    telemetry::Counter *tmResyncBytes = nullptr;
    telemetry::Counter *tmRehashes = nullptr;
    telemetry::Counter *tmWeightUpdates = nullptr;
    telemetry::Counter *tmSessionsMigrated = nullptr;
    telemetry::Counter *tmBackendReconnects = nullptr;
    telemetry::Counter *tmFailovers = nullptr;
    telemetry::Gauge *tmActive = nullptr;
    telemetry::Gauge *tmBackendsLive = nullptr;
    telemetry::Gauge *tmInFlightTotal = nullptr;
    telemetry::Gauge *tmParked = nullptr;
};

} // namespace cluster
} // namespace hotpath

#endif // HOTPATH_CLUSTER_ROUTER_HH
