/**
 * @file
 * Consistent-hash ring for the cluster routing tier.
 *
 * Each node is projected onto the ring at `virtualNodes` hashed
 * points; a key is owned by the node whose point follows the key's
 * hash clockwise. Adding or removing one node therefore moves only
 * the keys in the arcs adjacent to that node's points - the property
 * the router's session-migration protocol depends on: a topology
 * change must not reshuffle sessions between two backends that both
 * survived it.
 *
 * All hashing is SplitMix64 seeded from the ring config, so two
 * rings built with the same seed and the same membership agree on
 * every owner - deterministic across processes and runs.
 */

#ifndef HOTPATH_CLUSTER_HASH_RING_HH
#define HOTPATH_CLUSTER_HASH_RING_HH

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace hotpath::cluster
{

/** Ring construction parameters. */
struct HashRingConfig
{
    /** Points per node on the ring. More points smooth the load
     *  split at the cost of a larger sorted point table. */
    std::size_t virtualNodes = 64;

    /** Seed for every ring hash; two rings with the same seed and
     *  membership agree on every ownerOf() answer. */
    std::uint64_t seed = 0;
};

/** Consistent-hash ring; see the file comment. Not thread-safe. */
class HashRing
{
  public:
    /** An empty ring (no nodes; ownerOf() must not be called). */
    explicit HashRing(HashRingConfig config = {});

    /** Add a node (its virtualNodes points); no-op if present. */
    void addNode(std::uint64_t node);

    /**
     * Add a node with an explicit point count - weighted membership.
     * The control plane's load hints scale a backend's share of the
     * ring by granting it more or fewer points than the configured
     * virtualNodes (a node with half the points owns roughly half
     * the arc). `point_count` is clamped to at least 1; no-op if the
     * node is already a member.
     */
    void addNode(std::uint64_t node, std::size_t point_count);

    /**
     * Re-weight a member node to `point_count` points (remove +
     * re-add; the node's points rehash to the same positions a fresh
     * weighted add would produce, so two rings that applied the same
     * weights agree). Returns false if the node is not a member.
     */
    bool setNodeWeight(std::uint64_t node, std::size_t point_count);

    /** Points `node` currently projects onto the ring (0 if not a
     *  member). */
    std::size_t nodePoints(std::uint64_t node) const;

    /** Remove a node; returns false if it was not a member. */
    bool removeNode(std::uint64_t node);

    /** True when `node` is a member. */
    bool contains(std::uint64_t node) const
    {
        return members.count(node) != 0;
    }

    /** True when no nodes are on the ring. */
    bool empty() const { return members.empty(); }

    /** Number of member nodes. */
    std::size_t nodeCount() const { return members.size(); }

    /** The node owning `key`. The ring must not be empty. */
    std::uint64_t ownerOf(std::uint64_t key) const;

    /** Member node ids in ascending order. */
    std::vector<std::uint64_t> nodes() const;

  private:
    HashRingConfig cfg;
    /** Ring points, sorted by (hash, node) - the node id breaks
     *  hash collisions so ownership stays deterministic. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> points;
    std::set<std::uint64_t> members;
};

} // namespace hotpath::cluster

#endif // HOTPATH_CLUSTER_HASH_RING_HH
