/**
 * @file
 * cluster::Router implementation; see router.hh for the design.
 */

#include "cluster/router.hh"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "engine/wire_format.hh"
#include "support/logging.hh"
#include "telemetry/exposition.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::cluster
{

namespace
{

/** What one pollfd in the router loop's array refers to. */
struct PollTarget
{
    enum class Kind : std::uint8_t
    {
        Wakeup,
        Listener,
        Client,
        Backend
    } kind = Kind::Wakeup;
    std::uint64_t id = 0;
};

} // namespace

Router::Router(RouterConfig config)
    : cfg(std::move(config)),
      ring(HashRingConfig{config.virtualNodes, config.ringSeed})
{
    // `config` was moved; rebuild the ring config from `cfg`.
    ring = HashRing(HashRingConfig{cfg.virtualNodes, cfg.ringSeed});

    // Eager registration: every cluster.* instrument exists at zero
    // from construction, so a metrics scrape never misses a counter
    // that simply has not fired yet (the observability audit holds
    // the router to the same discipline as the engine and server).
    tmAccepted = telemetry::counter("cluster.connections.accepted");
    tmClosed = telemetry::counter("cluster.connections.closed");
    tmFramesIn = telemetry::counter("cluster.frames.in");
    tmFramesRouted = telemetry::counter("cluster.frames.routed");
    tmFramesReplayed = telemetry::counter("cluster.frames.replayed");
    tmMigrationFrames =
        telemetry::counter("cluster.migration.frames");
    tmMigrationBytes = telemetry::counter("cluster.migration.bytes");
    tmResponsesOut = telemetry::counter("cluster.responses.out");
    tmResponsesSynthesized =
        telemetry::counter("cluster.responses.synthesized");
    tmResponsesDropped =
        telemetry::counter("cluster.responses.dropped");
    tmResynced = telemetry::counter("cluster.frames.resynced");
    tmResyncBytes =
        telemetry::counter("cluster.resync.bytes.skipped");
    tmRehashes = telemetry::counter("cluster.rehash.events");
    tmWeightUpdates = telemetry::counter("cluster.weight.updates");
    tmSessionsMigrated =
        telemetry::counter("cluster.sessions.migrated");
    tmBackendReconnects =
        telemetry::counter("cluster.backend.reconnects");
    tmFailovers = telemetry::counter("cluster.failovers");
    tmActive = telemetry::gauge("cluster.connections.active");
    tmBackendsLive = telemetry::gauge("cluster.backends.live");
    tmInFlightTotal = telemetry::gauge("cluster.backend.inflight");
    tmParked = telemetry::gauge("cluster.frames.parked");

    for (const BackendAddress &address : cfg.backends) {
        const std::uint64_t id = nextBackendId++;
        backends.push_back(makeBackendLocked(id, address));
    }
    nextCommandBackendId.store(nextBackendId,
                               std::memory_order_relaxed);
}

Router::~Router() { stop(); }

std::unique_ptr<Router::Backend>
Router::makeBackendLocked(std::uint64_t id,
                          const BackendAddress &address)
{
    auto backend = std::make_unique<Backend>();
    backend->id = id;
    backend->address = address;
    net::ClientConfig cc;
    cc.host = address.host;
    cc.port = address.port;
    cc.connectAttempts = cfg.connectAttempts;
    cc.retryBaseMs = cfg.retryBaseMs;
    cc.retryMaxExponent = cfg.retryMaxExponent;
    // Distinct jitter stream per backend so a fleet-wide reconnect
    // storm (every backend restarted at once) spreads apart.
    cc.retryJitterSeed = cfg.retryJitterSeed ^ id;
    backend->client = std::make_unique<net::Client>(cc);
    backend->tmInFlight = telemetry::gauge(
        "cluster.backend." + std::to_string(id) + ".inflight");
    return backend;
}

bool
Router::start()
{
    if (started.load())
        return false;

    listener = net::listenTcp(cfg.bindAddress, cfg.port, &boundPort);
    if (!listener.valid()) {
        warn("cluster: frontend bind failed");
        return false;
    }
    wakeup = net::Fd(::eventfd(0, EFD_NONBLOCK));
    if (!wakeup.valid()) {
        warn("cluster: eventfd creation failed");
        listener.reset();
        return false;
    }
    if (cfg.adminPort >= 0) {
        adminListener = net::listenTcp(
            cfg.bindAddress,
            static_cast<std::uint16_t>(cfg.adminPort),
            &boundAdminPort);
        if (!adminListener.valid()) {
            warn("cluster: admin bind failed");
            listener.reset();
            wakeup.reset();
            return false;
        }
    }

    for (auto &backend : backends) {
        if (backend->client->connect()) {
            backend->alive = true;
            ring.addNode(backend->id);
        } else {
            warn("cluster: backend unreachable at start");
            backend->dead = true;
        }
    }

    stopping.store(false);
    draining.store(false);
    started.store(true);
    publishTopology();
    routerThread = std::thread([this] { routerLoop(); });
    if (adminListener.valid())
        adminThread = std::thread([this] { adminLoop(); });
    return true;
}

std::uint64_t
Router::addBackend(const BackendAddress &address)
{
    const std::uint64_t id =
        nextCommandBackendId.fetch_add(1, std::memory_order_relaxed);
    Command command;
    command.kind = Command::Kind::AddBackend;
    command.address = address;
    command.id = id;
    {
        std::lock_guard<std::mutex> lock(cmdMu);
        commands.push_back(std::move(command));
    }
    wakeRouter();
    return id;
}

void
Router::removeBackend(std::uint64_t id)
{
    Command command;
    command.kind = Command::Kind::RemoveBackend;
    command.id = id;
    {
        std::lock_guard<std::mutex> lock(cmdMu);
        commands.push_back(std::move(command));
    }
    wakeRouter();
}

void
Router::setBackendWeights(
    std::vector<std::pair<std::uint64_t, std::uint32_t>>
        weights_permille)
{
    Command command;
    command.kind = Command::Kind::SetWeights;
    command.weights = std::move(weights_permille);
    {
        std::lock_guard<std::mutex> lock(cmdMu);
        commands.push_back(std::move(command));
    }
    wakeRouter();
}

void
Router::wakeRouter()
{
    if (!wakeup.valid())
        return;
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t wrote =
        ::write(wakeup.get(), &one, sizeof(one));
}

// Router thread --------------------------------------------------

void
Router::routerLoop()
{
    std::vector<pollfd> pfds;
    std::vector<PollTarget> targets;
    bool listenerClosed = false;

    while (!stopping.load(std::memory_order_relaxed)) {
        // Drain pending control commands first: a topology change
        // must be visible before the frames that follow it.
        for (;;) {
            Command command;
            {
                std::lock_guard<std::mutex> lock(cmdMu);
                if (commands.empty())
                    break;
                command = std::move(commands.front());
                commands.pop_front();
            }
            executeCommand(command);
        }

        if (draining.load(std::memory_order_relaxed) &&
            !listenerClosed) {
            listener.reset(); // new connections refused from here on
            listenerClosed = true;
        }

        // Recover any backend whose connection broke since the last
        // pass (send failure or read error).
        for (auto &backend : backends) {
            if (backend->needsRecovery && !backend->dead)
                handleBackendBroken(*backend);
        }
        reapRetiring();

        pfds.clear();
        targets.clear();
        pfds.push_back({wakeup.get(), POLLIN, 0});
        targets.push_back({PollTarget::Kind::Wakeup, 0});
        if (listener.valid()) {
            pfds.push_back({listener.get(), POLLIN, 0});
            targets.push_back({PollTarget::Kind::Listener, 0});
        }
        for (const auto &[id, conn] : conns) {
            short events = POLLIN;
            if (conn.out.size() > conn.outOff)
                events |= POLLOUT;
            pfds.push_back({conn.fd.get(), events, 0});
            targets.push_back({PollTarget::Kind::Client, id});
        }
        for (const auto &backend : backends) {
            if (!backend->alive)
                continue;
            const int fd = backend->client->socketFd();
            if (fd < 0)
                continue;
            pfds.push_back({fd, POLLIN, 0});
            targets.push_back(
                {PollTarget::Kind::Backend, backend->id});
        }

        const int ready = ::poll(pfds.data(), pfds.size(),
                                 static_cast<int>(cfg.tickMs));
        if (ready < 0 && errno != EINTR)
            break;

        std::vector<std::uint64_t> closing;
        for (std::size_t i = 0; ready > 0 && i < pfds.size(); ++i) {
            const short revents = pfds[i].revents;
            if (revents == 0)
                continue;
            switch (targets[i].kind) {
            case PollTarget::Kind::Wakeup: {
                std::uint64_t buf = 0;
                while (::read(wakeup.get(), &buf, sizeof(buf)) > 0) {
                }
                break;
            }
            case PollTarget::Kind::Listener:
                acceptPending();
                break;
            case PollTarget::Kind::Client: {
                auto it = conns.find(targets[i].id);
                if (it == conns.end())
                    break;
                ClientConn &conn = it->second;
                bool alive = true;
                if (revents & (POLLIN | POLLHUP | POLLERR))
                    alive = handleClientReadable(conn);
                if (alive && (revents & POLLOUT))
                    flushClient(conn);
                if (!alive || (conn.readClosed &&
                               conn.out.size() == conn.outOff &&
                               conn.inFlight == 0))
                    closing.push_back(targets[i].id);
                break;
            }
            case PollTarget::Kind::Backend: {
                for (auto &backend : backends) {
                    if (backend->id == targets[i].id) {
                        handleBackendReadable(*backend);
                        break;
                    }
                }
                break;
            }
            }
        }
        for (const std::uint64_t id : closing)
            closeClient(id);

        refreshDerived();
        publishTopology();
    }
}

void
Router::acceptPending()
{
    for (;;) {
        net::Fd conn(::accept4(listener.get(), nullptr, nullptr,
                          SOCK_NONBLOCK));
        if (!conn.valid())
            return; // EAGAIN (or a transient error): back to poll
        net::setNoDelay(conn.get());
        const std::uint64_t id = nextConnId++;
        ClientConn client;
        client.fd = std::move(conn);
        client.id = id;
        conns.emplace(id, std::move(client));
        nAccepted.fetch_add(1, std::memory_order_relaxed);
        if (tmAccepted)
            tmAccepted->add(1);
        nActive.fetch_add(1, std::memory_order_relaxed);
        if (tmActive)
            tmActive->add(1);
    }
}

bool
Router::handleClientReadable(ClientConn &conn)
{
    std::vector<std::uint8_t> chunk(cfg.readChunkBytes);
    for (;;) {
        const ssize_t got =
            ::read(conn.fd.get(), chunk.data(), chunk.size());
        if (got > 0) {
            conn.in.insert(conn.in.end(), chunk.data(),
                           chunk.data() +
                               static_cast<std::size_t>(got));
            if (conn.in.size() > cfg.maxInBufferBytes)
                return false; // garbage or hostile lengths
            if (static_cast<std::size_t>(got) < chunk.size())
                break;
            continue;
        }
        if (got == 0) {
            conn.readClosed = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }
    return processClientInput(conn);
}

bool
Router::processClientInput(ClientConn &conn)
{
    std::size_t offset = 0;
    while (offset < conn.in.size()) {
        wire::FrameHeader header;
        std::size_t frame_end = 0;
        const wire::DecodeStatus status = wire::peekFrameHeader(
            conn.in.data(), conn.in.size(), offset, header,
            frame_end);
        if (status == wire::DecodeStatus::Ok) {
            nFramesIn.fetch_add(1, std::memory_order_relaxed);
            if (tmFramesIn)
                tmFramesIn->add(1);
            std::vector<std::uint8_t> frame(
                conn.in.begin() +
                    static_cast<std::ptrdiff_t>(offset),
                conn.in.begin() +
                    static_cast<std::ptrdiff_t>(frame_end));
            routeFrame(header, std::move(frame), conn.id);
            offset = frame_end;
            continue;
        }
        if (status == wire::DecodeStatus::Truncated)
            break; // frame still arriving
        // Corrupt region: resync at the next trustworthy boundary,
        // the same discipline the backends apply.
        bool complete = false;
        const std::size_t next = wire::findFrameBoundary(
            conn.in.data(), conn.in.size(), offset + 1, &complete);
        nResynced.fetch_add(1, std::memory_order_relaxed);
        if (tmResynced)
            tmResynced->add(1);
        nResyncBytes.fetch_add(next - offset,
                               std::memory_order_relaxed);
        if (tmResyncBytes)
            tmResyncBytes->add(
                static_cast<std::int64_t>(next - offset));
        offset = next;
        if (!complete)
            break;
    }
    if (offset > 0)
        conn.in.erase(conn.in.begin(),
                      conn.in.begin() +
                          static_cast<std::ptrdiff_t>(offset));
    return true;
}

Router::Backend *
Router::findBackend(std::uint64_t id)
{
    for (auto &backend : backends)
        if (backend->id == id)
            return backend.get();
    return nullptr;
}

void
Router::routeFrame(const wire::FrameHeader &header,
                   std::vector<std::uint8_t> frame,
                   std::uint64_t client_conn)
{
    const std::uint64_t session = header.session;
    if (ring.empty() && routes.find(session) == routes.end()) {
        // No backends and no route: the router is the fleet; answer
        // with an empty prediction reply so the client's accounting
        // never strands a frame.
        synthesizeReply(session, header.sequence, client_conn);
        return;
    }

    SessionRoute &route = routes[session];
    Pending entry;
    entry.sequence = header.sequence;
    entry.clientConn = client_conn;
    entry.bytes = std::move(frame);

    if (route.migrating) {
        route.parked.push_back(std::move(entry));
        bumpClientInFlight(client_conn, 1);
        return;
    }
    if (!route.assigned) {
        if (ring.empty()) {
            synthesizeReply(session, header.sequence, client_conn);
            return;
        }
        route.owner = ring.ownerOf(session);
        route.assigned = true;
    } else if (!ring.contains(route.owner)) {
        // Owner vanished since the route was assigned; rehash or,
        // if nobody is left, answer directly.
        if (ring.empty()) {
            synthesizeReply(session, header.sequence, client_conn);
            return;
        }
        route.owner = ring.ownerOf(session);
    }
    Backend *backend = findBackend(route.owner);
    HOTPATH_ASSERT(backend != nullptr,
                   "route owner is not a known backend");
    bumpClientInFlight(client_conn, 1);
    nFramesRouted.fetch_add(1, std::memory_order_relaxed);
    if (tmFramesRouted)
        tmFramesRouted->add(1);
    sendToBackend(*backend, session, std::move(entry));
}

void
Router::bumpClientInFlight(std::uint64_t client_conn,
                           std::int64_t delta)
{
    auto it = conns.find(client_conn);
    if (it == conns.end())
        return;
    it->second.inFlight = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(it->second.inFlight) + delta);
}

void
Router::sendToBackend(Backend &backend, std::uint64_t session,
                      Pending entry)
{
    auto &queue = backend.ledger[session];
    queue.push_back(std::move(entry));
    ++backend.inFlight;
    ++backend.framesSent;
    const Pending &sent = queue.back();
    if (backend.alive &&
        !backend.client->sendFrame(sent.bytes.data(),
                                   sent.bytes.size())) {
        backend.alive = false;
        backend.needsRecovery = true;
    }
    // Not alive: the entry stays ledgered; the recovery pass replays
    // it after a reconnect or fails it over.
}

void
Router::handleBackendReadable(Backend &backend)
{
    std::vector<net::PredictionReply> replies;
    const int got = backend.client->poll(replies, 0);
    if (got < 0) {
        backend.alive = false;
        backend.needsRecovery = true;
        return;
    }
    for (const net::PredictionReply &reply : replies)
        settleReply(backend, reply);
}

bool
Router::settleReply(Backend &backend,
                    const net::PredictionReply &reply)
{
    auto it = backend.ledger.find(reply.session);
    if (it == backend.ledger.end())
        return false;
    auto &queue = it->second;
    auto match = queue.end();
    for (auto entry = queue.begin(); entry != queue.end(); ++entry) {
        if (entry->sequence != reply.sequence)
            continue;
        // An export request is answered by a SessionState frame;
        // everything else by a Predictions frame.
        if ((entry->phase == Pending::Phase::Export) !=
            reply.isState)
            continue;
        match = entry;
        break;
    }
    if (match == queue.end())
        return false;
    const Pending entry = std::move(*match);
    queue.erase(match);
    if (queue.empty())
        backend.ledger.erase(it);
    --backend.inFlight;

    switch (entry.phase) {
    case Pending::Phase::Normal:
        forwardReply(entry.clientConn, reply);
        break;
    case Pending::Phase::Export:
        handleExportReply(reply);
        break;
    case Pending::Phase::Import:
        finishMigration(reply.session);
        break;
    }
    return true;
}

void
Router::forwardReply(std::uint64_t client_conn,
                     const net::PredictionReply &reply)
{
    bumpClientInFlight(client_conn, -1);
    auto it = conns.find(client_conn);
    if (it == conns.end()) {
        nResponsesDropped.fetch_add(1, std::memory_order_relaxed);
        if (tmResponsesDropped)
            tmResponsesDropped->add(1);
        return;
    }
    ClientConn &conn = it->second;
    if (conn.out.size() - conn.outOff > cfg.maxOutBufferBytes) {
        nResponsesDropped.fetch_add(1, std::memory_order_relaxed);
        if (tmResponsesDropped)
            tmResponsesDropped->add(1);
        return;
    }
    if (reply.isState)
        wire::appendSessionStateFrame(conn.out, reply.session,
                                      reply.sequence, reply.state);
    else
        wire::appendPredictionFrame(conn.out, reply.session,
                                    reply.sequence,
                                    reply.predictions.data(),
                                    reply.predictions.size());
    nResponsesOut.fetch_add(1, std::memory_order_relaxed);
    if (tmResponsesOut)
        tmResponsesOut->add(1);
    flushClient(conn);
}

void
Router::synthesizeReply(std::uint64_t session,
                        std::uint64_t sequence,
                        std::uint64_t client_conn)
{
    auto it = conns.find(client_conn);
    if (it == conns.end()) {
        nResponsesDropped.fetch_add(1, std::memory_order_relaxed);
        if (tmResponsesDropped)
            tmResponsesDropped->add(1);
        return;
    }
    ClientConn &conn = it->second;
    wire::appendPredictionFrame(conn.out, session, sequence, nullptr,
                                0);
    nResponsesSynthesized.fetch_add(1, std::memory_order_relaxed);
    if (tmResponsesSynthesized)
        tmResponsesSynthesized->add(1);
    flushClient(conn);
}

void
Router::flushClient(ClientConn &conn)
{
    while (conn.outOff < conn.out.size()) {
        const ssize_t wrote =
            ::send(conn.fd.get(), conn.out.data() + conn.outOff,
                   conn.out.size() - conn.outOff, MSG_NOSIGNAL);
        if (wrote > 0) {
            conn.outOff += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // POLLOUT will resume the flush
        if (wrote < 0 && errno == EINTR)
            continue;
        return; // broken pipe: the read side will close the conn
    }
    conn.out.clear();
    conn.outOff = 0;
}

void
Router::closeClient(std::uint64_t conn_id)
{
    auto it = conns.find(conn_id);
    if (it == conns.end())
        return;
    conns.erase(it);
    nClosed.fetch_add(1, std::memory_order_relaxed);
    if (tmClosed)
        tmClosed->add(1);
    nActive.fetch_sub(1, std::memory_order_relaxed);
    if (tmActive)
        tmActive->add(-1);
}

// Failure handling -----------------------------------------------

void
Router::handleBackendBroken(Backend &backend)
{
    backend.needsRecovery = false;
    // A fresh client: the old reassembly buffer may hold a torn
    // reply from the dead connection and must not leak into the new
    // stream.
    net::ClientConfig cc;
    cc.host = backend.address.host;
    cc.port = backend.address.port;
    cc.connectAttempts = cfg.connectAttempts;
    cc.retryBaseMs = cfg.retryBaseMs;
    cc.retryMaxExponent = cfg.retryMaxExponent;
    cc.retryJitterSeed = cfg.retryJitterSeed ^ backend.id;
    backend.client = std::make_unique<net::Client>(cc);
    if (backend.client->connect()) {
        backend.alive = true;
        nBackendReconnects.fetch_add(1, std::memory_order_relaxed);
        if (tmBackendReconnects)
            tmBackendReconnects->add(1);
        replayToSelf(backend);
        return;
    }
    failover(backend);
}

void
Router::replayToSelf(Backend &backend)
{
    // Re-send every ledgered frame on the fresh connection. The
    // backend may process a frame twice (its first reply died with
    // the old connection) but the router answers each client frame
    // exactly once: the ledger entry is still open.
    for (auto &[session, queue] : backend.ledger) {
        for (const Pending &entry : queue) {
            if (!backend.client->sendFrame(entry.bytes.data(),
                                           entry.bytes.size())) {
                backend.alive = false;
                backend.needsRecovery = true;
                return;
            }
            nFramesReplayed.fetch_add(1, std::memory_order_relaxed);
            if (tmFramesReplayed)
                tmFramesReplayed->add(1);
        }
    }
}

void
Router::failover(Backend &backend)
{
    backend.dead = true;
    backend.alive = false;
    ring.removeNode(backend.id);
    nFailovers.fetch_add(1, std::memory_order_relaxed);
    if (tmFailovers)
        tmFailovers->add(1);
    nRehashes.fetch_add(1, std::memory_order_relaxed);
    if (tmRehashes)
        tmRehashes->add(1);

    // Rehash the dead backend's sessions. There is nobody left to
    // export from, so these sessions lose their predictor history -
    // the price of failover - while sessions on surviving backends
    // keep their owners (the consistent-hash property) and stay
    // byte-identical to an undisturbed run.
    for (auto &[session, route] : routes) {
        if (route.migrating) {
            if (route.owner == backend.id) {
                // The export request will never be answered: adopt
                // the target without history.
                route.owner = route.pendingOwner;
                route.migrating = false;
                unparkSession(session, route);
            } else if (route.pendingOwner == backend.id) {
                // The import target died; the ledgered import frame
                // is redistributed below to the new target.
                if (ring.empty()) {
                    route.migrating = false;
                    route.assigned = false;
                    unparkSession(session, route);
                } else {
                    route.pendingOwner = ring.ownerOf(session);
                }
            }
        } else if (route.owner == backend.id) {
            route.owner = ring.empty() ? 0 : ring.ownerOf(session);
            route.assigned = !ring.empty();
        }
    }
    redistributeLedger(backend);
    publishTopology();
}

void
Router::redistributeLedger(Backend &backend)
{
    auto ledger = std::move(backend.ledger);
    backend.ledger.clear();
    backend.inFlight = 0;
    for (auto &[session, queue] : ledger) {
        for (Pending &entry : queue) {
            switch (entry.phase) {
            case Pending::Phase::Export:
                // The migration this export belonged to was
                // abandoned in failover(); nothing to do.
                break;
            case Pending::Phase::Import: {
                auto rit = routes.find(session);
                if (rit == routes.end() || !rit->second.migrating)
                    break; // migration abandoned
                Backend *target =
                    findBackend(rit->second.pendingOwner);
                if (target == nullptr || target->dead) {
                    rit->second.migrating = false;
                    rit->second.assigned = false;
                    unparkSession(session, rit->second);
                    break;
                }
                nFramesReplayed.fetch_add(
                    1, std::memory_order_relaxed);
                if (tmFramesReplayed)
                    tmFramesReplayed->add(1);
                sendToBackend(*target, session, std::move(entry));
                break;
            }
            case Pending::Phase::Normal: {
                auto rit = routes.find(session);
                Backend *target =
                    (rit != routes.end() && rit->second.assigned &&
                     !rit->second.migrating)
                        ? findBackend(rit->second.owner)
                        : nullptr;
                if (target == nullptr || target->dead) {
                    synthesizeToConn(session, entry.sequence,
                                     entry.clientConn);
                    break;
                }
                nFramesReplayed.fetch_add(
                    1, std::memory_order_relaxed);
                if (tmFramesReplayed)
                    tmFramesReplayed->add(1);
                sendToBackend(*target, session, std::move(entry));
                break;
            }
            }
        }
    }
}

void
Router::synthesizeToConn(std::uint64_t session,
                         std::uint64_t sequence,
                         std::uint64_t client_conn)
{
    bumpClientInFlight(client_conn, -1);
    synthesizeReply(session, sequence, client_conn);
}

// Migration ------------------------------------------------------

void
Router::rehashSessions()
{
    for (auto &[session, route] : routes) {
        if (route.migrating) {
            // Chained topology change: retarget the move if its
            // destination left the ring before the import was sent
            // (an in-flight import completes and re-chains in
            // finishMigration).
            if (!ring.empty() &&
                !ring.contains(route.pendingOwner))
                route.pendingOwner = ring.ownerOf(session);
            continue;
        }
        if (ring.empty())
            continue; // routeFrame answers directly from here on
        const std::uint64_t newOwner = ring.ownerOf(session);
        if (!route.assigned) {
            // Headless route (total failover in the past): adopt
            // the new owner directly; there is no history to move.
            route.owner = newOwner;
            route.assigned = true;
            unparkSession(session, route);
            continue;
        }
        if (newOwner == route.owner)
            continue;
        startMigration(session, route, newOwner);
    }
}

void
Router::startMigration(std::uint64_t session, SessionRoute &route,
                       std::uint64_t new_owner)
{
    Backend *old = findBackend(route.owner);
    if (old == nullptr || !old->alive || old->dead) {
        // No history to move; the new owner rebuilds from scratch.
        route.owner = new_owner;
        route.assigned = true;
        return;
    }
    route.migrating = true;
    route.pendingOwner = new_owner;

    wire::SessionState request;
    request.request = true;
    Pending entry;
    entry.sequence = migrationSequence++;
    entry.clientConn = 0;
    entry.phase = Pending::Phase::Export;
    wire::appendSessionStateFrame(entry.bytes, session,
                                  entry.sequence, request);
    nMigrationFrames.fetch_add(1, std::memory_order_relaxed);
    if (tmMigrationFrames)
        tmMigrationFrames->add(1);
    sendToBackend(*old, session, std::move(entry));
}

void
Router::handleExportReply(const net::PredictionReply &reply)
{
    const std::uint64_t session = reply.session;
    auto rit = routes.find(session);
    if (rit == routes.end() || !rit->second.migrating)
        return; // migration abandoned while the export was in flight
    SessionRoute &route = rit->second;
    Backend *target = findBackend(route.pendingOwner);
    if (target == nullptr || target->dead) {
        // Target died and nobody replaced it: finish without state.
        route.migrating = false;
        route.owner =
            ring.empty() ? 0 : ring.ownerOf(session);
        route.assigned = !ring.empty();
        unparkSession(session, route);
        return;
    }

    Pending entry;
    entry.sequence = migrationSequence++;
    entry.clientConn = 0;
    entry.phase = Pending::Phase::Import;
    wire::appendSessionStateFrame(entry.bytes, session,
                                  entry.sequence, reply.state);
    nMigrationFrames.fetch_add(1, std::memory_order_relaxed);
    if (tmMigrationFrames)
        tmMigrationFrames->add(1);
    nMigrationBytes.fetch_add(entry.bytes.size(),
                              std::memory_order_relaxed);
    if (tmMigrationBytes)
        tmMigrationBytes->add(
            static_cast<std::int64_t>(entry.bytes.size()));
    sendToBackend(*target, session, std::move(entry));
}

void
Router::finishMigration(std::uint64_t session)
{
    auto rit = routes.find(session);
    if (rit == routes.end() || !rit->second.migrating)
        return;
    SessionRoute &route = rit->second;
    route.owner = route.pendingOwner;
    route.migrating = false;
    nSessionsMigrated.fetch_add(1, std::memory_order_relaxed);
    if (tmSessionsMigrated)
        tmSessionsMigrated->add(1);
    if (!ring.empty() && !ring.contains(route.owner)) {
        // The destination left the ring while the import was in
        // flight (chained topology change): move again.
        startMigration(session, route, ring.ownerOf(session));
        return;
    }
    unparkSession(session, route);
}

void
Router::unparkSession(std::uint64_t session, SessionRoute &route)
{
    while (!route.parked.empty()) {
        Pending entry = std::move(route.parked.front());
        route.parked.pop_front();
        Backend *target =
            route.assigned ? findBackend(route.owner) : nullptr;
        if (target == nullptr || target->dead) {
            synthesizeToConn(session, entry.sequence,
                             entry.clientConn);
            continue;
        }
        nFramesRouted.fetch_add(1, std::memory_order_relaxed);
        if (tmFramesRouted)
            tmFramesRouted->add(1);
        sendToBackend(*target, session, std::move(entry));
    }
}

void
Router::reapRetiring()
{
    // A retiring backend leaves the fleet - and the topology - once
    // its ledger is empty and no route points at it. A backend that
    // died by failover (dead but not retiring) stays visible in the
    // topology as not-alive instead; only an operator-requested
    // removal disappears.
    bool removed = false;
    for (auto it = backends.begin(); it != backends.end();) {
        Backend &backend = **it;
        if (!backend.retiring) {
            ++it;
            continue;
        }
        if (backend.alive) {
            if (backend.inFlight != 0) {
                ++it;
                continue;
            }
            bool referenced = false;
            for (const auto &[session, route] : routes) {
                if ((route.assigned &&
                     route.owner == backend.id) ||
                    (route.migrating &&
                     route.pendingOwner == backend.id)) {
                    referenced = true;
                    break;
                }
            }
            if (referenced) {
                ++it;
                continue;
            }
            backend.client->close();
        }
        if (backend.tmInFlight)
            backend.tmInFlight->set(0);
        it = backends.erase(it);
        removed = true;
    }
    if (removed)
        publishTopology();
}

void
Router::executeCommand(const Command &command)
{
    switch (command.kind) {
    case Command::Kind::AddBackend: {
        auto backend = makeBackendLocked(command.id, command.address);
        Backend *raw = backend.get();
        backends.push_back(std::move(backend));
        if (raw->client->connect()) {
            raw->alive = true;
            ring.addNode(raw->id);
            nRehashes.fetch_add(1, std::memory_order_relaxed);
            if (tmRehashes)
                tmRehashes->add(1);
            rehashSessions();
        } else {
            warn("cluster: addBackend connect failed");
            raw->dead = true;
        }
        publishTopology();
        break;
    }
    case Command::Kind::RemoveBackend: {
        Backend *backend = findBackend(command.id);
        if (backend == nullptr || backend->dead ||
            backend->retiring)
            break;
        ring.removeNode(backend->id);
        backend->retiring = true;
        nRehashes.fetch_add(1, std::memory_order_relaxed);
        if (tmRehashes)
            tmRehashes->add(1);
        rehashSessions();
        publishTopology();
        break;
    }
    case Command::Kind::SetWeights: {
        // Load hints from the control plane: scale each hinted
        // backend's ring share. Only re-weight members the hint
        // actually changes, so a steady controller posting the same
        // hints every epoch causes no rehash churn.
        bool changed = false;
        for (const auto &[id, permille] : command.weights) {
            Backend *backend = findBackend(id);
            if (backend == nullptr || backend->dead ||
                backend->retiring || !ring.contains(id))
                continue;
            std::size_t points =
                cfg.virtualNodes * permille / 1000;
            if (points == 0)
                points = 1;
            if (ring.nodePoints(id) == points)
                continue;
            ring.setNodeWeight(id, points);
            changed = true;
            nWeightUpdates.fetch_add(1, std::memory_order_relaxed);
            if (tmWeightUpdates)
                tmWeightUpdates->add(1);
        }
        if (changed) {
            nRehashes.fetch_add(1, std::memory_order_relaxed);
            if (tmRehashes)
                tmRehashes->add(1);
            rehashSessions();
            publishTopology();
        }
        break;
    }
    }
}

// Bookkeeping ----------------------------------------------------

void
Router::refreshDerived()
{
    std::size_t inflight = 0;
    std::size_t live = 0;
    for (const auto &backend : backends) {
        inflight += backend->inFlight;
        if (backend->alive)
            ++live;
        if (backend->tmInFlight)
            backend->tmInFlight->set(
                static_cast<std::int64_t>(backend->inFlight));
    }
    std::size_t parked = 0;
    for (const auto &[session, route] : routes)
        parked += route.parked.size();

    nInFlight.store(inflight, std::memory_order_relaxed);
    nParked.store(parked, std::memory_order_relaxed);
    nBackendsLive.store(live, std::memory_order_relaxed);
    nSessionsTracked.store(routes.size(),
                           std::memory_order_relaxed);
    if (tmInFlightTotal)
        tmInFlightTotal->set(static_cast<std::int64_t>(inflight));
    if (tmParked)
        tmParked->set(static_cast<std::int64_t>(parked));
    if (tmBackendsLive)
        tmBackendsLive->set(static_cast<std::int64_t>(live));

    bool flushed = true;
    for (const auto &[id, conn] : conns) {
        if (conn.out.size() > conn.outOff) {
            flushed = false;
            break;
        }
    }
    bool recovering = false;
    for (const auto &backend : backends) {
        if (backend->needsRecovery) {
            recovering = true;
            break;
        }
    }
    quiescent.store(inflight == 0 && parked == 0 && flushed &&
                        !recovering,
                    std::memory_order_relaxed);
}

void
Router::publishTopology()
{
    std::vector<BackendSnapshot> snapshot;
    snapshot.reserve(backends.size());
    for (const auto &backend : backends) {
        BackendSnapshot row;
        row.id = backend->id;
        row.host = backend->address.host;
        row.port = backend->address.port;
        row.alive = backend->alive;
        row.retiring = backend->retiring;
        row.inFlight = backend->inFlight;
        row.framesSent = backend->framesSent;
        row.ringPoints = ring.nodePoints(backend->id);
        snapshot.push_back(std::move(row));
    }
    for (const auto &[session, route] : routes) {
        const std::uint64_t owner =
            route.migrating ? route.pendingOwner : route.owner;
        for (auto &row : snapshot)
            if (row.id == owner)
                ++row.sessionsOwned;
    }
    std::lock_guard<std::mutex> lock(topoMu);
    topoSnapshot = std::move(snapshot);
}

// Shutdown -------------------------------------------------------

void
Router::drain()
{
    if (!started.load() || draining.load())
        return;
    draining.store(true);
    wakeRouter();
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(cfg.drainTimeoutMs);
    const auto tick = std::chrono::milliseconds(cfg.tickMs);
    // Quiet must hold for a few consecutive observations: a frame
    // can be read off a client socket after an instantaneous
    // "everything answered" snapshot.
    int quietPasses = 0;
    while (Clock::now() < deadline && quietPasses < 3) {
        if (quiescent.load(std::memory_order_relaxed))
            ++quietPasses;
        else
            quietPasses = 0;
        std::this_thread::sleep_for(tick);
    }
}

void
Router::stop()
{
    if (!started.load())
        return;
    drain();
    stopping.store(true);
    wakeRouter();
    if (routerThread.joinable())
        routerThread.join();
    if (adminThread.joinable())
        adminThread.join();
    conns.clear();
    for (auto &backend : backends) {
        backend->client->close();
        backend->alive = false;
    }
    listener.reset();
    adminListener.reset();
    wakeup.reset();
    started.store(false);
}

// Introspection --------------------------------------------------

RouterStats
Router::stats() const
{
    RouterStats out;
    out.accepted = nAccepted.load(std::memory_order_relaxed);
    out.closed = nClosed.load(std::memory_order_relaxed);
    out.framesIn = nFramesIn.load(std::memory_order_relaxed);
    out.framesRouted = nFramesRouted.load(std::memory_order_relaxed);
    out.framesReplayed =
        nFramesReplayed.load(std::memory_order_relaxed);
    out.migrationFrames =
        nMigrationFrames.load(std::memory_order_relaxed);
    out.migrationBytes =
        nMigrationBytes.load(std::memory_order_relaxed);
    out.responsesOut = nResponsesOut.load(std::memory_order_relaxed);
    out.responsesSynthesized =
        nResponsesSynthesized.load(std::memory_order_relaxed);
    out.responsesDropped =
        nResponsesDropped.load(std::memory_order_relaxed);
    out.framesResynced = nResynced.load(std::memory_order_relaxed);
    out.resyncBytesSkipped =
        nResyncBytes.load(std::memory_order_relaxed);
    out.rehashes = nRehashes.load(std::memory_order_relaxed);
    out.weightUpdates =
        nWeightUpdates.load(std::memory_order_relaxed);
    out.sessionsMigrated =
        nSessionsMigrated.load(std::memory_order_relaxed);
    out.backendReconnects =
        nBackendReconnects.load(std::memory_order_relaxed);
    out.failovers = nFailovers.load(std::memory_order_relaxed);
    out.activeConnections = static_cast<std::size_t>(
        nActive.load(std::memory_order_relaxed));
    out.backendsLive = static_cast<std::size_t>(
        nBackendsLive.load(std::memory_order_relaxed));
    out.inFlightTotal = static_cast<std::size_t>(
        nInFlight.load(std::memory_order_relaxed));
    out.sessionsTracked = static_cast<std::size_t>(
        nSessionsTracked.load(std::memory_order_relaxed));
    out.parkedFrames = static_cast<std::size_t>(
        nParked.load(std::memory_order_relaxed));
    return out;
}

std::vector<BackendSnapshot>
Router::topology() const
{
    std::lock_guard<std::mutex> lock(topoMu);
    return topoSnapshot;
}

std::string
Router::statsJson() const
{
    // Flat JSON only - scalar numbers and flat numeric arrays - so
    // engine_top can scan it with string searches instead of a JSON
    // parser (the same contract as the server's /stats).
    const RouterStats rs = stats();
    std::ostringstream os;
    os << '{';
    os << "\"cluster_accepted\":" << rs.accepted
       << ",\"cluster_active\":" << rs.activeConnections
       << ",\"cluster_frames_in\":" << rs.framesIn
       << ",\"cluster_frames_routed\":" << rs.framesRouted
       << ",\"cluster_frames_replayed\":" << rs.framesReplayed
       << ",\"cluster_migration_frames\":" << rs.migrationFrames
       << ",\"cluster_migration_bytes\":" << rs.migrationBytes
       << ",\"cluster_responses_out\":" << rs.responsesOut
       << ",\"cluster_responses_synthesized\":"
       << rs.responsesSynthesized
       << ",\"cluster_responses_dropped\":" << rs.responsesDropped
       << ",\"cluster_rehash_events\":" << rs.rehashes
       << ",\"cluster_sessions_migrated\":" << rs.sessionsMigrated
       << ",\"cluster_backend_reconnects\":" << rs.backendReconnects
       << ",\"cluster_failovers\":" << rs.failovers
       << ",\"cluster_backends_live\":" << rs.backendsLive
       << ",\"cluster_inflight\":" << rs.inFlightTotal
       << ",\"cluster_sessions_tracked\":" << rs.sessionsTracked
       << ",\"cluster_parked_frames\":" << rs.parkedFrames
       << ",\"cluster_frames_resynced\":" << rs.framesResynced
       << ",\"cluster_resync_bytes_skipped\":"
       << rs.resyncBytesSkipped;
    std::vector<BackendSnapshot> topo;
    {
        std::lock_guard<std::mutex> lock(topoMu);
        topo = topoSnapshot;
    }
    const auto arr = [&os, &topo](const char *key, auto &&field) {
        os << ",\"" << key << "\":[";
        for (std::size_t i = 0; i < topo.size(); ++i) {
            if (i != 0)
                os << ',';
            os << field(topo[i]);
        }
        os << ']';
    };
    arr("backend_ids", [](const BackendSnapshot &row) {
        return row.id;
    });
    arr("backend_alive", [](const BackendSnapshot &row) {
        return static_cast<std::uint64_t>(row.alive ? 1 : 0);
    });
    arr("backend_inflight", [](const BackendSnapshot &row) {
        return static_cast<std::uint64_t>(row.inFlight);
    });
    arr("backend_sessions", [](const BackendSnapshot &row) {
        return static_cast<std::uint64_t>(row.sessionsOwned);
    });
    arr("backend_frames_sent", [](const BackendSnapshot &row) {
        return row.framesSent;
    });
    os << '}';
    return os.str();
}

std::string
Router::topologyJson() const
{
    std::vector<BackendSnapshot> topo;
    {
        std::lock_guard<std::mutex> lock(topoMu);
        topo = topoSnapshot;
    }
    std::ostringstream os;
    os << "{\"backends\":[";
    for (std::size_t i = 0; i < topo.size(); ++i) {
        const BackendSnapshot &row = topo[i];
        if (i != 0)
            os << ',';
        os << "{\"id\":" << row.id << ",\"host\":\"" << row.host
           << "\",\"port\":" << row.port
           << ",\"alive\":" << (row.alive ? "true" : "false")
           << ",\"retiring\":" << (row.retiring ? "true" : "false")
           << ",\"inflight\":" << row.inFlight
           << ",\"sessions\":" << row.sessionsOwned
           << ",\"frames_sent\":" << row.framesSent << '}';
    }
    os << "]}";
    return os.str();
}

std::string
Router::adminResponse(const std::string &path, int &status) const
{
    if (path == "/healthz") {
        if (draining.load(std::memory_order_relaxed)) {
            status = 503;
            return "draining\n";
        }
        status = 200;
        return "ok\n";
    }
    if (path == "/metrics") {
        status = 200;
        std::ostringstream os;
        if (telemetry::MetricRegistry *registry =
                telemetry::attachedRegistry())
            telemetry::writePrometheus(os, registry->snapshot());
        else
            os << "# telemetry registry not attached\n";
        return os.str();
    }
    if (path == "/topology") {
        status = 200;
        return topologyJson();
    }
    if (path == "/stats") {
        status = 200;
        return statsJson();
    }
    status = 404;
    return "not found\n";
}

void
Router::serveAdminRequest(net::Fd &conn)
{
    using Clock = std::chrono::steady_clock;
    // Bounded request read; one request at a time is the whole
    // concurrency model (same discipline as the server's admin
    // plane).
    std::string request;
    char buf[1024];
    const auto readDeadline =
        Clock::now() + std::chrono::milliseconds(250);
    while (request.find('\n') == std::string::npos &&
           request.size() < 4096 && Clock::now() < readDeadline) {
        pollfd pfd{conn.get(), POLLIN, 0};
        if (::poll(&pfd, 1, 50) <= 0)
            continue;
        const ssize_t got = ::read(conn.get(), buf, sizeof(buf));
        if (got > 0) {
            request.append(buf, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            break;
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            continue;
        return;
    }

    int status = 400;
    std::string body = "bad request\n";
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
        const std::size_t end = request.find_first_of(" \r\n", 4);
        if (end != std::string::npos && end > 4) {
            path = request.substr(4, end - 4);
            body = adminResponse(path, status);
        }
    }

    const char *reason = status == 200  ? "OK"
                         : status == 404 ? "Not Found"
                         : status == 503 ? "Service Unavailable"
                                         : "Bad Request";
    const char *contentType =
        path == "/stats" || path == "/topology"
            ? "application/json"
        : path == "/metrics"
            ? "text/plain; version=0.0.4; charset=utf-8"
            : "text/plain; charset=utf-8";
    std::ostringstream os;
    os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
       << "Content-Type: " << contentType << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    const std::string response = os.str();

    std::size_t off = 0;
    const auto writeDeadline =
        Clock::now() + std::chrono::milliseconds(500);
    while (off < response.size() && Clock::now() < writeDeadline) {
        const ssize_t wrote = ::send(
            conn.get(), response.data() + off, response.size() - off,
            MSG_NOSIGNAL);
        if (wrote > 0) {
            off += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{conn.get(), POLLOUT, 0};
            ::poll(&pfd, 1, 50);
            continue;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        break;
    }
}

void
Router::adminLoop()
{
    // Keeps serving during drain() - /healthz flipping to 503 is the
    // point - and exits on stop().
    while (!stopping.load()) {
        pollfd pfd{adminListener.get(), POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(cfg.tickMs));
        if (ready <= 0)
            continue;
        net::Fd conn(::accept4(adminListener.get(), nullptr, nullptr,
                          SOCK_NONBLOCK));
        if (!conn.valid())
            continue;
        serveAdminRequest(conn);
    }
}

} // namespace hotpath::cluster
