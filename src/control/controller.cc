#include "control/controller.hh"

#include <algorithm>
#include <ostream>
#include <string>

#include "engine/engine.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::control
{

Controller::Controller(engine::Engine &eng, ControllerConfig config)
    : eng(eng), cfg(std::move(config)), classifier(cfg.classifier)
{
    HOTPATH_ASSERT(!cfg.tauRungs.empty(),
                   "controller needs at least one tau rung");
    HOTPATH_ASSERT(
        std::is_sorted(cfg.tauRungs.begin(), cfg.tauRungs.end()),
        "tau rungs must ascend");
    if (cfg.queueCapacityFrames == 0)
        cfg.queueCapacityFrames = 1;

    tmEpochs = telemetry::counter("control.epochs");
    tmDecisions = telemetry::counter("control.decisions");
    tmRetunes = telemetry::counter("control.retunes");
    tmShedEngaged = telemetry::counter("control.shed.engaged");
    tmShedReleased = telemetry::counter("control.shed.released");
    for (std::size_t i = 0; i < kSessionClassCount; ++i)
        tmClass[i] = telemetry::counter(
            std::string("control.class.") +
            sessionClassName(static_cast<SessionClass>(i)));
    tmPressure = telemetry::gauge("control.queue.pressure");
    tmObserved = telemetry::gauge("control.sessions.observed");
    tmShedActive = telemetry::gauge("control.shed.active");
}

std::size_t
Controller::rungOf(std::uint64_t tau) const
{
    for (std::size_t i = 0; i < cfg.tauRungs.size(); ++i)
        if (cfg.tauRungs[i] >= tau)
            return i;
    return cfg.tauRungs.size() - 1;
}

std::uint32_t
Controller::measurePressure() const
{
    const engine::EngineStats stats = eng.stats();
    std::size_t max_depth = 0;
    for (const std::size_t depth : stats.queueDepth)
        max_depth = std::max(max_depth, depth);
    const std::uint64_t permille =
        static_cast<std::uint64_t>(max_depth) * 1000 /
        cfg.queueCapacityFrames;
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        permille, 1000));
}

void
Controller::step()
{
    stepWithLoad(measurePressure());
}

void
Controller::stepWithLoad(std::uint32_t pressure_permille)
{
    std::lock_guard<std::mutex> guard(mu);
    ++epochCount;
    if (tmEpochs)
        tmEpochs->add(1);

    // 1. Snapshot every resident session. The forEach order depends
    // on hashing, so sort by id before classifying - the decision
    // log must not depend on shard layout.
    scratchSamples.clear();
    eng.sessions().forEach([this](const engine::Session &session) {
        const engine::SessionStats &stats = session.stats();
        SessionSample sample;
        sample.session = session.id();
        sample.events = stats.eventsProcessed;
        sample.cached = stats.cachedEvents;
        sample.predictions = stats.predictions;
        sample.counters = session.countersAllocated();
        sample.predictionDelay = session.predictionDelay();
        scratchSamples.push_back(sample);
    });
    std::sort(scratchSamples.begin(), scratchSamples.end(),
              [](const SessionSample &a, const SessionSample &b) {
                  return a.session < b.session;
              });
    observedCount = scratchSamples.size();
    if (tmObserved)
        tmObserved->set(static_cast<std::int64_t>(observedCount));
    rungOccupancy.assign(cfg.tauRungs.size(), 0);
    for (const SessionSample &sample : scratchSamples)
        ++rungOccupancy[rungOf(sample.predictionDelay)];

    // 2+3. Classify each session's closed epoch and move one ladder
    // rung when the verdict calls for it.
    for (const SessionSample &sample : scratchSamples) {
        const SessionClass cls = classifier.observe(sample);
        ++classTallies[static_cast<std::size_t>(cls)];
        if (telemetry::Counter *tm =
                tmClass[static_cast<std::size_t>(cls)])
            tm->add(1);

        const std::size_t rung = rungOf(sample.predictionDelay);
        std::size_t target = rung;
        switch (cls) {
        case SessionClass::Noisy:
            // Junk promotions: raise τ so only genuinely hot paths
            // clear the bar.
            if (rung + 1 < cfg.tauRungs.size())
                target = rung + 1;
            break;
        case SessionClass::PhaseShifting:
        case SessionClass::HeadChurn:
            // The working set moved: lower τ so the new hot paths
            // are promoted before the next move.
            if (rung > 0)
                target = rung - 1;
            break;
        case SessionClass::Idle:
        case SessionClass::Stable:
            break;
        }
        const std::uint64_t tau_after = cfg.tauRungs[target];
        if (tau_after == sample.predictionDelay)
            continue;
        if (!eng.retuneSession(sample.session, tau_after))
            continue; // evicted between snapshot and retune

        --rungOccupancy[rung];
        ++rungOccupancy[target];
        ++decisionCount;
        if (tmDecisions)
            tmDecisions->add(1);
        if (tmRetunes)
            tmRetunes->add(1);
        if (log.size() >= cfg.decisionLogCap)
            log.erase(log.begin());
        log.push_back(ControlDecision{epochCount, sample.session,
                                      cls, sample.predictionDelay,
                                      tau_after});
        // Settling time: drop the session's history so the next
        // epoch re-seeds under the new τ and the one after is the
        // first to judge it.
        classifier.forget(sample.session);
    }

    // 4. Queue-pressure response with hysteresis.
    lastPressure = pressure_permille;
    if (tmPressure)
        tmPressure->set(static_cast<std::int64_t>(pressure_permille));
    if (!shedActive && pressure_permille >= cfg.shedOnPermille) {
        shedActive = true;
        ++shedEngagedCount;
        eng.setForcedShedding(true);
        if (tmShedEngaged)
            tmShedEngaged->add(1);
    } else if (shedActive &&
               pressure_permille < cfg.shedOffPermille) {
        shedActive = false;
        ++shedReleasedCount;
        eng.setForcedShedding(false);
        if (tmShedReleased)
            tmShedReleased->add(1);
    }
    if (tmShedActive)
        tmShedActive->set(shedActive ? 1 : 0);
}

std::uint64_t
Controller::epoch() const
{
    std::lock_guard<std::mutex> guard(mu);
    return epochCount;
}

std::vector<ControlDecision>
Controller::decisions() const
{
    std::lock_guard<std::mutex> guard(mu);
    return log;
}

ControlStats
Controller::stats() const
{
    std::lock_guard<std::mutex> guard(mu);
    ControlStats out;
    out.epochs = epochCount;
    out.decisions = decisionCount;
    out.sessionsObserved = observedCount;
    for (std::size_t i = 0; i < kSessionClassCount; ++i)
        out.classCounts[i] = classTallies[i];
    out.shedEngaged = shedEngagedCount;
    out.shedReleased = shedReleasedCount;
    out.shedActive = shedActive;
    out.lastPressurePermille = lastPressure;
    return out;
}

std::uint32_t
Controller::loadHintPermille() const
{
    std::lock_guard<std::mutex> guard(mu);
    return shedActive ? 500u : 1000u;
}

void
Controller::appendStats(std::ostream &os) const
{
    std::lock_guard<std::mutex> guard(mu);
    os << ",\"control_epoch\":" << epochCount
       << ",\"control_decisions\":" << decisionCount
       << ",\"control_sessions_observed\":" << observedCount
       << ",\"control_shed_engaged\":" << shedEngagedCount
       << ",\"control_shed_released\":" << shedReleasedCount
       << ",\"control_shed_active\":" << (shedActive ? 1 : 0)
       << ",\"control_queue_pressure_permille\":" << lastPressure
       << ",\"control_load_hint_permille\":"
       << (shedActive ? 500 : 1000);
    for (std::size_t i = 0; i < kSessionClassCount; ++i)
        os << ",\"control_class_"
           << sessionClassName(static_cast<SessionClass>(i))
           << "\":" << classTallies[i];

    // The τ ladder and its occupancy (sessions per rung as of the
    // last epoch's snapshot) as flat arrays, so engine_top can show
    // where the fleet of sessions currently sits.
    os << ",\"control_tau_rungs\":[";
    for (std::size_t i = 0; i < cfg.tauRungs.size(); ++i)
        os << (i ? "," : "") << cfg.tauRungs[i];
    os << "],\"control_tau_sessions\":[";
    for (std::size_t i = 0; i < cfg.tauRungs.size(); ++i)
        os << (i ? "," : "")
           << (i < rungOccupancy.size() ? rungOccupancy[i] : 0);
    os << "]";

    // The most recent retune, flattened (class as the SessionClass
    // index; engine_top maps it back to a name).
    if (!log.empty()) {
        const ControlDecision &last = log.back();
        os << ",\"control_last_epoch\":" << last.epoch
           << ",\"control_last_session\":" << last.session
           << ",\"control_last_class\":"
           << static_cast<unsigned>(last.cls)
           << ",\"control_last_tau_before\":" << last.tauBefore
           << ",\"control_last_tau_after\":" << last.tauAfter;
    }
}

} // namespace hotpath::control
