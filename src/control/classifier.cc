#include "control/classifier.hh"

#include <algorithm>

namespace hotpath::control
{

namespace
{

/** 1000 * num / den with integer arithmetic; 0 when den is 0. */
std::uint32_t
permilleOf(std::uint64_t num, std::uint64_t den)
{
    if (den == 0)
        return 0;
    return static_cast<std::uint32_t>((num * 1000) / den);
}

} // namespace

const char *
sessionClassName(SessionClass cls)
{
    switch (cls) {
    case SessionClass::Idle:
        return "idle";
    case SessionClass::Stable:
        return "stable";
    case SessionClass::Noisy:
        return "noisy";
    case SessionClass::PhaseShifting:
        return "phase";
    case SessionClass::HeadChurn:
        return "churn";
    }
    return "unknown";
}

SessionClassifier::SessionClassifier(ClassifierConfig config)
    : cfg(config)
{
    if (cfg.spreadWindowEpochs == 0)
        cfg.spreadWindowEpochs = 1;
}

SessionClass
SessionClassifier::observe(const SessionSample &sample,
                           SessionSignals *signals_out)
{
    auto [it, fresh] = states.try_emplace(sample.session);
    State &state = it->second;
    if (fresh) {
        // First sight of this session: no previous epoch to delta
        // against, so just seed the baseline.
        state.prev = sample;
        if (signals_out)
            *signals_out = SessionSignals{};
        return SessionClass::Idle;
    }

    SessionSignals sig;
    sig.events = sample.events - state.prev.events;
    const std::uint64_t d_cached = sample.cached - state.prev.cached;
    const std::uint64_t d_predictions =
        sample.predictions - state.prev.predictions;
    // Counter count is a level: eviction can shrink it, and a shrink
    // is not churn, so clamp the delta at zero.
    const std::uint64_t d_counters =
        sample.counters > state.prev.counters
            ? sample.counters - state.prev.counters
            : 0;
    state.prev = sample;

    sig.coveragePermille = permilleOf(d_cached, sig.events);
    sig.velocityPerKiloEvent = permilleOf(d_predictions, sig.events);
    sig.churnPerKiloEvent = permilleOf(d_counters, sig.events);

    if (sig.events < cfg.minEventsPerEpoch) {
        // Too quiet to judge; do not pollute the coverage window
        // with a noisy small-sample ratio either.
        if (signals_out)
            *signals_out = sig;
        return SessionClass::Idle;
    }

    if (state.window.size() < cfg.spreadWindowEpochs) {
        state.window.push_back(sig.coveragePermille);
    } else {
        state.window[state.windowNext] = sig.coveragePermille;
        state.windowNext = (state.windowNext + 1) % state.window.size();
    }
    const auto [min_it, max_it] =
        std::minmax_element(state.window.begin(), state.window.end());
    sig.spreadPermille = *max_it - *min_it;

    if (signals_out)
        *signals_out = sig;

    if (sig.churnPerKiloEvent >= cfg.churnPerKiloEvent)
        return SessionClass::HeadChurn;
    if (sig.velocityPerKiloEvent >= cfg.noisyVelocityPerKiloEvent)
        return SessionClass::Noisy;
    if (sig.coveragePermille < cfg.lowCoveragePermille ||
        sig.spreadPermille >= cfg.phaseSpreadPermille)
        return SessionClass::PhaseShifting;
    return SessionClass::Stable;
}

void
SessionClassifier::forget(std::uint64_t session)
{
    states.erase(session);
}

} // namespace hotpath::control
