/**
 * @file
 * Streaming per-session workload classification for the adaptive
 * control plane.
 *
 * The classifier consumes one SessionSample per session per control
 * epoch - the cumulative counters the engine already maintains
 * (events, cached events, predictions, live head counters) - and
 * reduces each epoch's deltas to a handful of integer signals:
 *
 *  - coverage:  1000 * dCached / dEvents (permille of events served
 *    from the fragment cache - the quantity the controller's hit-rate
 *    gates are written against);
 *  - velocity:  1000 * dPredictions / dEvents (predictions per
 *    kilo-event; a session churning junk inserts predicts orders of
 *    magnitude more often than a converged one);
 *  - churn:     1000 * counter growth / dEvents (new head counters
 *    per kilo-event; a migrating working set allocates heads
 *    continuously, a stable one stops);
 *  - spread:    max - min coverage over a sliding window of epochs
 *    (a phase-thrashing session oscillates even when its mean looks
 *    healthy).
 *
 * All signals are integer arithmetic on integer counters, so two
 * replays of the same observation sequence classify identically on
 * any platform - the property the controller's determinism contract
 * (docs/EXPERIMENTS.md X13) inherits.
 *
 * Classification is a fixed-priority rule chain, not a learned
 * model, on purpose: the paper's thesis is that a small amount of
 * cheap profiling beats elaborate machinery, and the control plane
 * follows suit. Priority: Idle (too few events to judge), HeadChurn
 * (counter growth), Noisy (high prediction velocity),
 * PhaseShifting (collapsed or oscillating coverage), else Stable.
 */

#ifndef HOTPATH_CONTROL_CLASSIFIER_HH
#define HOTPATH_CONTROL_CLASSIFIER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

/** The adaptive control plane: session classification and the
 *  epoch-driven controller that retunes the serving engine. */
namespace hotpath::control
{

/** What a session's last epoch looked like. */
enum class SessionClass : std::uint8_t
{
    /** Too few events this epoch to classify; hold everything. */
    Idle,
    /** Converged: high coverage, quiet predictor. */
    Stable,
    /** Predicting junk: high prediction velocity with low coverage
     *  (tail-heavy traffic churning the fragment cache). */
    Noisy,
    /** Coverage collapsed or oscillating without counter churn: the
     *  dominant paths keep changing under a stable head set. */
    PhaseShifting,
    /** The head working set itself is migrating: new head counters
     *  allocated every epoch. */
    HeadChurn,
};

/** Number of SessionClass values (telemetry/report array size). */
constexpr std::size_t kSessionClassCount = 5;

/** Short stable name of a class ("idle", "stable", "noisy",
 *  "phase", "churn") - used in reports, decision logs and
 *  control.class.* instrument names. */
const char *sessionClassName(SessionClass cls);

/** Classification thresholds (all integer, permille / per-kilo-event
 *  units). Defaults are tuned against the adversarial workloads in
 *  src/progen/adversarial.hh; see docs/OPERATIONS.md "Adaptive
 *  control" before changing them. */
struct ClassifierConfig
{
    /** Epochs with fewer events than this classify as Idle. */
    std::uint64_t minEventsPerEpoch = 256;

    /** HeadChurn when new head counters per kilo-event reach this. */
    std::uint32_t churnPerKiloEvent = 6;

    /** Noisy when predictions per kilo-event reach this. A converged
     *  session promotes almost nothing (its hot paths are cached and
     *  stop feeding the predictor), so sustained promotion velocity
     *  is junk promotion regardless of the coverage it leaves. */
    std::uint32_t noisyVelocityPerKiloEvent = 12;

    /** PhaseShifting when coverage falls below this permille. Set
     *  well below a healthy-but-bursty session's worst epoch: only a
     *  genuine working-set move collapses coverage this far. */
    std::uint32_t lowCoveragePermille = 750;

    /** Sliding window (in epochs) for the coverage spread signal. */
    std::size_t spreadWindowEpochs = 4;

    /** PhaseShifting when the windowed coverage spread (max - min)
     *  reaches this permille, even if the mean coverage is high. */
    std::uint32_t phaseSpreadPermille = 250;
};

/** One session's cumulative counters as observed at an epoch
 *  boundary (Engine::withSessionStats provides every field). */
struct SessionSample
{
    /** Session identity. */
    std::uint64_t session = 0;
    /** Lifetime events processed. */
    std::uint64_t events = 0;
    /** Lifetime events served from the fragment cache. */
    std::uint64_t cached = 0;
    /** Lifetime predictions. */
    std::uint64_t predictions = 0;
    /** Live head counters (a level, not a cumulative count). */
    std::uint64_t counters = 0;
    /** The session's current prediction delay (τ). */
    std::uint64_t predictionDelay = 0;
};

/** The derived per-epoch signals (returned for logs and tests). */
struct SessionSignals
{
    /** Events this epoch. */
    std::uint64_t events = 0;
    /** Cache coverage this epoch, permille. */
    std::uint32_t coveragePermille = 0;
    /** Predictions per kilo-event this epoch. */
    std::uint32_t velocityPerKiloEvent = 0;
    /** New head counters per kilo-event this epoch. */
    std::uint32_t churnPerKiloEvent = 0;
    /** Windowed coverage spread (max - min), permille. */
    std::uint32_t spreadPermille = 0;
};

/**
 * Per-session streaming classifier; see the file comment. Not
 * thread-safe - the controller serializes access.
 */
class SessionClassifier
{
  public:
    explicit SessionClassifier(ClassifierConfig config = {});

    /**
     * Feed one epoch-boundary observation for `sample.session` and
     * classify the epoch it closes. The first observation of a
     * session only seeds its baseline and returns Idle (there is no
     * delta to judge yet). `signals_out`, when non-null, receives
     * the derived signals the verdict was based on.
     */
    SessionClass observe(const SessionSample &sample,
                         SessionSignals *signals_out = nullptr);

    /** Drop a session's history (evicted session, or a controller
     *  retune that wants the next epoch to re-seed cleanly). */
    void forget(std::uint64_t session);

    /** Sessions currently tracked. */
    std::size_t tracked() const { return states.size(); }

    /** The thresholds in effect. */
    const ClassifierConfig &config() const { return cfg; }

  private:
    struct State
    {
        SessionSample prev;
        /** Coverage window (ring buffer of recent epochs). */
        std::vector<std::uint32_t> window;
        std::size_t windowNext = 0;
    };

    ClassifierConfig cfg;
    /** Ordered map so iteration (and forget-then-reseed behaviour)
     *  is deterministic across runs. */
    std::map<std::uint64_t, State> states;
};

} // namespace hotpath::control

#endif // HOTPATH_CONTROL_CLASSIFIER_HH
