/**
 * @file
 * The epoch-driven adaptive controller: self-tuning τ, overload
 * policy and placement hints under live traffic.
 *
 * The controller closes the loop the rest of the system leaves open:
 * the engine's prediction delay (τ), its overload response and the
 * cluster router's backend weights are all static configuration, but
 * the traffic they serve is not. Each call to step() is one *control
 * epoch*:
 *
 *   1. snapshot every resident session's counters (one forEach pass,
 *      sorted by session id);
 *   2. classify each session's epoch with the SessionClassifier;
 *   3. move misbehaving sessions one rung along the τ ladder
 *      (Engine::retuneSession) - Noisy traffic steps UP to a more
 *      conservative τ (stop promoting junk), PhaseShifting and
 *      HeadChurn traffic steps DOWN to a more reactive τ (re-learn
 *      the new hot paths quickly), Stable and Idle sessions hold;
 *   4. respond to queue pressure with hysteresis: engage forced
 *      load shedding (Engine::setForcedShedding) above the high
 *      watermark, release below the low one;
 *   5. refresh the exported load hint (loadHintPermille) that a
 *      cluster router can feed to Router::setBackendWeights.
 *
 * Determinism contract: the controller is a pure function of its
 * configuration, the observed engine counters and its own epoch
 * counter. It reads no clock and draws no randomness, so a serial
 * replay of the same traffic with step() called at the same frame
 * boundaries reproduces the identical decision log and - because τ
 * retunes land between frames - the identical predictions,
 * bit-for-bit, at any worker count (tests/control_test.cc pins this;
 * bench/ext_adaptive_tau.cpp exercises it under the adversarial
 * workloads of src/progen/adversarial.hh).
 *
 * After a retune the controller deliberately forgets the session's
 * classifier history: the next epoch re-seeds the baseline under the
 * new τ and the epoch after that is the first to judge it - a
 * one-epoch settling time that keeps the ladder from oscillating on
 * its own transient.
 */

#ifndef HOTPATH_CONTROL_CONTROLLER_HH
#define HOTPATH_CONTROL_CONTROLLER_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "control/classifier.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

namespace engine
{
class Engine;
}

namespace control
{

/** Controller tuning. */
struct ControllerConfig
{
    /** Classification thresholds. */
    ClassifierConfig classifier;

    /**
     * The τ ladder, ascending. Retunes move sessions one rung at a
     * time; a session whose τ is between rungs snaps to the nearest
     * rung on its first move. The defaults bracket the paper's
     * operating range: 8 (reactive), 64 (the "less is more" sweet
     * spot), 1000 (conservative).
     */
    std::vector<std::uint64_t> tauRungs = {8, 64, 1000};

    /** Engage forced shedding when max shard queue occupancy
     *  reaches this permille of capacity. */
    std::uint32_t shedOnPermille = 700;

    /** Release forced shedding when it falls back below this
     *  permille (the gap is the hysteresis band). */
    std::uint32_t shedOffPermille = 300;

    /** The engine's per-shard queue capacity in frames (used to turn
     *  queue depths into occupancy permille; keep in sync with
     *  EngineConfig::queueCapacityFrames). */
    std::size_t queueCapacityFrames = 256;

    /** Retune decisions kept in the in-memory log (oldest dropped
     *  first); the determinism test replays the whole log. */
    std::size_t decisionLogCap = 4096;
};

/** One τ retune the controller committed. */
struct ControlDecision
{
    /** Epoch (step() call count, 1-based) that made the decision. */
    std::uint64_t epoch = 0;
    /** Session retuned. */
    std::uint64_t session = 0;
    /** The classification that triggered the move. */
    SessionClass cls = SessionClass::Stable;
    /** τ before the move. */
    std::uint64_t tauBefore = 0;
    /** τ after the move. */
    std::uint64_t tauAfter = 0;
};

/** Controller accounting snapshot. */
struct ControlStats
{
    /** Control epochs run (step() calls). */
    std::uint64_t epochs = 0;
    /** Retune decisions committed. */
    std::uint64_t decisions = 0;
    /** Sessions observed last epoch. */
    std::uint64_t sessionsObserved = 0;
    /** Classification tallies, indexed by SessionClass. */
    std::uint64_t classCounts[kSessionClassCount] = {};
    /** Times forced shedding was engaged. */
    std::uint64_t shedEngaged = 0;
    /** Times forced shedding was released. */
    std::uint64_t shedReleased = 0;
    /** True while forced shedding is active. */
    bool shedActive = false;
    /** Queue pressure observed last epoch (permille of capacity). */
    std::uint32_t lastPressurePermille = 0;
};

/**
 * The adaptive controller; see the file comment. Thread-safe: step()
 * and the read accessors serialize on an internal mutex, so an admin
 * thread can read stats while a pump thread drives epochs.
 */
class Controller
{
  public:
    /** Attach to `eng`; the engine must outlive the controller. */
    Controller(engine::Engine &eng, ControllerConfig config = {});

    /**
     * Run one control epoch against the engine's current queue
     * depths (reads Engine::stats() for the pressure signal). For
     * deterministic replay and tests, prefer stepWithLoad() with an
     * explicit pressure value.
     */
    void step();

    /**
     * Run one control epoch with the queue-pressure signal supplied
     * by the caller (`pressure_permille` = max shard occupancy, in
     * permille of capacity). This is the deterministic entry point:
     * everything else the epoch reads comes from the session
     * counters, which serial replay reproduces exactly.
     */
    void stepWithLoad(std::uint32_t pressure_permille);

    /** Epochs run so far. */
    std::uint64_t epoch() const;

    /** The committed retune log (oldest first, capped). */
    std::vector<ControlDecision> decisions() const;

    /** Accounting snapshot. */
    ControlStats stats() const;

    /**
     * The load hint a cluster router should weight this backend at:
     * 1000 (nominal) normally, 500 while forced shedding is active -
     * an overloaded backend advertises half its ring share so the
     * consistent-hash router drains new sessions away from it
     * (Router::setBackendWeights).
     */
    std::uint32_t loadHintPermille() const;

    /**
     * Append the controller's state as flat `,"control_*":N` JSON
     * fragments - the hook body for net::Server::setStatsAugmenter,
     * which splices it into the admin /stats document.
     */
    void appendStats(std::ostream &os) const;

    /** The configuration in effect. */
    const ControllerConfig &config() const { return cfg; }

  private:
    /** Index of the rung nearest to `tau` (first rung >= tau, else
     *  the top rung). */
    std::size_t rungOf(std::uint64_t tau) const;

    /** Max shard queue occupancy right now, permille of capacity
     *  (reads Engine::stats()). */
    std::uint32_t measurePressure() const;

    engine::Engine &eng;
    ControllerConfig cfg;

    mutable std::mutex mu;
    SessionClassifier classifier;
    std::uint64_t epochCount = 0;
    std::uint64_t decisionCount = 0;
    std::uint64_t observedCount = 0;
    std::uint64_t classTallies[kSessionClassCount] = {};
    std::uint64_t shedEngagedCount = 0;
    std::uint64_t shedReleasedCount = 0;
    bool shedActive = false;
    std::uint32_t lastPressure = 0;
    std::vector<ControlDecision> log;
    /** Sessions per τ rung as of the last epoch (after its moves). */
    std::vector<std::uint64_t> rungOccupancy;

    /** Reused per epoch (cleared, not reallocated). */
    std::vector<SessionSample> scratchSamples;

    // Telemetry handles; nullptr when telemetry is not attached.
    // Registered eagerly in the constructor so every control.*
    // instrument appears in reports even at zero.
    telemetry::Counter *tmEpochs = nullptr;
    telemetry::Counter *tmDecisions = nullptr;
    telemetry::Counter *tmRetunes = nullptr;
    telemetry::Counter *tmShedEngaged = nullptr;
    telemetry::Counter *tmShedReleased = nullptr;
    telemetry::Counter *tmClass[kSessionClassCount] = {};
    telemetry::Gauge *tmPressure = nullptr;
    telemetry::Gauge *tmObserved = nullptr;
    telemetry::Gauge *tmShedActive = nullptr;
};

} // namespace control
} // namespace hotpath

#endif // HOTPATH_CONTROL_CONTROLLER_HH
