/**
 * @file
 * Client library for the TCP serving layer.
 *
 * Two usage styles over one connection: synchronous call() (send one
 * event frame, wait for its prediction reply) and pipelined
 * sendEvents() + poll()/awaitResponses() (keep many frames in flight
 * and collect replies as they arrive - the loadgen's open-loop mode).
 *
 * Responses are CRC-verified by wire::decodeFrame; a corrupt region
 * in the reply stream is skipped with wire::findFrameBoundary, the
 * same resync discipline the server applies to requests, so one
 * damaged reply never desynchronizes the connection.
 *
 * connect() retries with exponential backoff (base * 2^attempt,
 * capped), which lets a client race a server that is still binding -
 * the pattern the loopback tests and the --connect demo rely on.
 */

#ifndef HOTPATH_NET_CLIENT_HH
#define HOTPATH_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/wire_format.hh"
#include "net/socket.hh"

namespace hotpath::net
{

/** Client connection parameters. */
struct ClientConfig
{
    /** Server IPv4 address (dotted quad). */
    std::string host = "127.0.0.1";

    /** Server TCP port. */
    std::uint16_t port = 0;

    /** Connection attempts before connect() gives up. */
    std::uint32_t connectAttempts = 5;

    /** Backoff after the first failed attempt, in milliseconds;
     *  doubles per retry (base * 2^attempt). */
    std::uint64_t retryBaseMs = 10;

    /** Cap on the backoff exponent, bounding the longest sleep at
     *  retryBaseMs * 2^retryMaxExponent. */
    std::uint32_t retryMaxExponent = 6;

    /**
     * Seed for the deterministic retry jitter. Each backoff sleeps
     * between half and all of the exponential delay, with the
     * fraction drawn from a SplitMix64 hash of (seed, attempt) - so
     * a fleet of clients seeded differently desynchronizes its
     * reconnect storms, yet any given (seed, attempt) pair always
     * sleeps the same amount and tests stay reproducible.
     */
    std::uint64_t retryJitterSeed = 0;

    /** Longest a blocking wait (call(), awaitResponses()) spends
     *  waiting for replies, in milliseconds. */
    std::uint64_t responseTimeoutMs = 5000;
};

/** One prediction reply, matched to its request by
 *  (session, sequence). */
struct PredictionReply
{
    /** Session the predictions belong to. */
    std::uint64_t session = 0;

    /** Sequence of the event frame that produced them. */
    std::uint64_t sequence = 0;

    /** The predictions (may be empty: the frame was processed but
     *  predicted nothing, or was dropped under overload). */
    std::vector<wire::PredictionRecord> predictions;

    /** True when the reply is a SessionState snapshot (the answer to
     *  a migration export request) rather than predictions. */
    bool isState = false;

    /** The decoded snapshot; meaningful only when isState is true. */
    wire::SessionState state;
};

/** Client-side connection counters. */
struct ClientStats
{
    /** Bytes written to the socket. */
    std::uint64_t bytesOut = 0;
    /** Bytes read from the socket. */
    std::uint64_t bytesIn = 0;
    /** Event frames sent. */
    std::uint64_t framesSent = 0;
    /** Prediction replies received (CRC-verified). */
    std::uint64_t responsesReceived = 0;
    /** Corrupt reply regions resynced past. */
    std::uint64_t resyncs = 0;
    /** Bytes skipped while resyncing. */
    std::uint64_t resyncBytesSkipped = 0;
    /** Failed connection attempts that were retried. */
    std::uint64_t connectRetries = 0;
};

/** One client connection; see the file comment. Not thread-safe:
 *  one Client per thread. */
class Client
{
  public:
    /** Configure a client; no connection is made until connect(). */
    explicit Client(ClientConfig config);

    /** Closes the connection. */
    ~Client() = default;

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect with exponential-backoff retries; returns false when
     *  every attempt failed. */
    bool connect();

    /** True while the connection is usable. */
    bool connected() const { return fd.valid(); }

    /** Close the connection (idempotent). */
    void close() { fd.reset(); }

    /** Raw socket descriptor (-1 when closed), for callers that
     *  multiplex many clients under one ::poll. */
    int socketFd() const { return fd.get(); }

    /**
     * Encode and send one path-event frame (pipelined: does not wait
     * for the reply). Blocks only on socket backpressure. Returns
     * false when the connection broke.
     */
    bool sendEvents(std::uint64_t session, std::uint64_t sequence,
                    const PathEvent *events,
                    std::size_t count);

    /** Send pre-encoded frame bytes (loadgen's fast path). */
    bool sendFrame(const std::uint8_t *data, std::size_t size);

    /**
     * Read whatever replies have arrived, waiting at most
     * `timeout_ms` for the first byte, and append them to `replies`.
     * Returns the number appended; 0 on timeout, -1 when the
     * connection broke.
     */
    int poll(std::vector<PredictionReply> &replies,
             std::uint64_t timeout_ms);

    /**
     * Wait until `count` more replies have been appended to
     * `replies` (bounded by ClientConfig::responseTimeoutMs
     * overall). Returns false on timeout or a broken connection.
     */
    bool awaitResponses(std::size_t count,
                        std::vector<PredictionReply> &replies);

    /**
     * Synchronous round trip: send one event frame and wait for the
     * reply matching (session, sequence). Pipelined replies that
     * arrive meanwhile are buffered and delivered by a later
     * poll()/awaitResponses(), so call() composes with pipelined
     * traffic. Returns false on timeout or a broken connection.
     */
    bool call(std::uint64_t session, std::uint64_t sequence,
              const PathEvent *events, std::size_t count,
              PredictionReply &reply);

    /** Connection counters so far. */
    const ClientStats &stats() const { return counters; }

  private:
    /** Decode every complete reply frame in `in`; resync past
     *  corrupt regions. Appends to `replies`, returns the number
     *  appended. */
    int decodeReplies(std::vector<PredictionReply> &replies);

    /** poll() minus the stash: decode buffered bytes, then read the
     *  socket (call()'s receive path, which must not re-consume the
     *  replies it stashed itself). Same returns as poll(). */
    int pollSocket(std::vector<PredictionReply> &replies,
                   std::uint64_t timeout_ms);

    ClientConfig cfg;
    Fd fd;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> encodeScratch;
    /** Pipelined replies a call() read past while matching its own;
     *  served (in arrival order) by the next poll(). */
    std::vector<PredictionReply> stash;
    ClientStats counters;
};

} // namespace hotpath::net

#endif // HOTPATH_NET_CLIENT_HH
