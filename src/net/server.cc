/**
 * @file
 * net::Server implementation; see server.hh for the design.
 */

#include "net/server.hh"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>

#include "engine/wire_format.hh"
#include "support/logging.hh"
#include "telemetry/exposition.hh"
#include "telemetry/percentiles.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::net
{

namespace
{

/** epoll data value reserved for the wakeup eventfd. */
constexpr std::uint64_t kWakeupId = 0;

/** Bits of the routing tag that carry the connection id; the top 16
 *  carry the reactor index. Tag 0 never names a connection (ids start
 *  at 1), so frames submitted by non-network producers are simply not
 *  answered over a socket. */
constexpr std::uint64_t kConnTagMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t
makeTag(std::size_t reactor_index, std::uint64_t conn_id)
{
    return (static_cast<std::uint64_t>(reactor_index) << 48) |
           (conn_id & kConnTagMask);
}

volatile std::sig_atomic_t gDrainRequested = 0;

void
onDrainSignal(int)
{
    gDrainRequested = 1;
}

} // namespace

void
Server::installSignalHandlers()
{
    std::signal(SIGTERM, onDrainSignal);
    std::signal(SIGINT, onDrainSignal);
}

bool
Server::signalDrainRequested()
{
    return gDrainRequested != 0;
}

Server::Server(engine::Engine &engine, ServerConfig config)
    : eng(engine), cfg(std::move(config)),
      spans(telemetry::SpanConfig{cfg.spanSampleEvery, cfg.spanTrace})
{
    if (cfg.reactorThreads == 0)
        cfg.reactorThreads = 1;
    if (cfg.tickMs == 0)
        cfg.tickMs = 1;
    if (cfg.faults.enabled())
        injector = std::make_unique<fault::FaultInjector>(cfg.faults);

    tmAccepted = telemetry::counter("net.connections.accepted");
    tmClosed = telemetry::counter("net.connections.closed");
    tmIdleClosed = telemetry::counter("net.connections.idle.closed");
    tmShed = telemetry::counter("net.connections.shed");
    tmResets = telemetry::counter("net.connections.reset");
    tmAcceptFailures = telemetry::counter("net.accept.failures");
    tmBytesIn = telemetry::counter("net.bytes.in");
    tmBytesOut = telemetry::counter("net.bytes.out");
    tmFramesIn = telemetry::counter("net.frames.in");
    tmResponsesOut = telemetry::counter("net.responses.out");
    tmResponsesDropped = telemetry::counter("net.responses.dropped");
    tmResynced = telemetry::counter("net.frames.resynced");
    tmResyncBytes = telemetry::counter("net.resync.bytes.skipped");
    tmReadPauses = telemetry::counter("net.read.pauses");
    tmActive = telemetry::gauge("net.connections.active");
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    HOTPATH_ASSERT(!started.load(), "server already started");
    HOTPATH_ASSERT(!eng.serial() || cfg.reactorThreads == 1,
                   "a serial-mode engine requires exactly one "
                   "reactor thread");

    listener = listenTcp(cfg.bindAddress, cfg.port, &boundPort);
    if (!listener.valid()) {
        warn(detail::concat("net: bind ", cfg.bindAddress, ":",
                            cfg.port, " failed: ",
                            std::strerror(errno)));
        return false;
    }
    if (cfg.adminPort >= 0) {
        adminListener = listenTcp(
            cfg.bindAddress,
            static_cast<std::uint16_t>(cfg.adminPort),
            &boundAdminPort);
        if (!adminListener.valid()) {
            warn(detail::concat("net: admin bind ", cfg.bindAddress,
                                ":", cfg.adminPort, " failed: ",
                                std::strerror(errno)));
            listener.reset();
            return false;
        }
    }

    reactors.clear();
    for (std::size_t i = 0; i < cfg.reactorThreads; ++i) {
        auto reactor = std::make_unique<Reactor>();
        reactor->index = i;
        reactor->epoll = Fd(::epoll_create1(0));
        reactor->wakeup = Fd(::eventfd(0, EFD_NONBLOCK));
        if (!reactor->epoll.valid() || !reactor->wakeup.valid()) {
            warn("net: epoll/eventfd creation failed");
            reactors.clear();
            listener.reset();
            return false;
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeupId;
        ::epoll_ctl(reactor->epoll.get(), EPOLL_CTL_ADD,
                    reactor->wakeup.get(), &ev);
        if (cfg.shedConnections) {
            reactor->shedPolicy = std::make_unique<DegradationPolicy>(
                cfg.degradation);
        }
        reactors.push_back(std::move(reactor));
    }

    // Route every completed frame back to the connection that sent
    // it. The callback runs on an engine worker; it only encodes the
    // reply and posts it to the owning reactor's inbox. For a
    // span-sampled frame the encode is timed (the engine already
    // timed queue-wait/decode/predict; see FrameOutcome::spanSampled).
    eng.setFrameCallback([this](const engine::FrameOutcome &o) {
        const std::uint64_t conn = o.tag & kConnTagMask;
        const std::size_t reactor = static_cast<std::size_t>(
            o.tag >> 48);
        if (conn == 0 || reactor >= reactors.size())
            return;
        std::vector<std::uint8_t> reply;
        if (o.stateReply != nullptr) {
            // Session-state export: the engine already encoded the
            // snapshot reply; forward its bytes verbatim.
            reply = *o.stateReply;
        } else if (o.spanSampled) {
            const std::uint64_t start = telemetry::monotonicNanos();
            wire::appendPredictionFrame(reply, o.session, o.sequence,
                                        o.predictions,
                                        o.predictionCount);
            spans.recordStage(telemetry::Stage::Encode,
                              telemetry::monotonicNanos() - start);
        } else {
            wire::appendPredictionFrame(reply, o.session, o.sequence,
                                        o.predictions,
                                        o.predictionCount);
        }
        postReply(reactor, conn, std::move(reply), o.spanSampled);
    });

    // The server samples at the socket-read boundary; the engine
    // records the stages it owns against this recorder.
    if (spans.enabled())
        eng.setSpanRecorder(&spans);

    stopping.store(false);
    draining.store(false);
    started.store(true);
    for (auto &reactor : reactors) {
        Reactor *r = reactor.get();
        r->thread = std::thread([this, r] { reactorLoop(r->index); });
    }
    acceptor = std::thread([this] { acceptLoop(); });
    if (adminListener.valid())
        adminThread = std::thread([this] { adminLoop(); });
    return true;
}

void
Server::acceptPending()
{
    while (true) {
        Fd conn(::accept4(listener.get(), nullptr, nullptr,
                          SOCK_NONBLOCK));
        if (!conn.valid()) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            nAcceptFailures.fetch_add(1, std::memory_order_relaxed);
            if (tmAcceptFailures)
                tmAcceptFailures->add(1);
            return;
        }
        if (injector && injector->armed(fault::Site::AcceptFail) &&
            injector->shouldInject(fault::Site::AcceptFail)) {
            nAcceptFailures.fetch_add(1, std::memory_order_relaxed);
            if (tmAcceptFailures)
                tmAcceptFailures->add(1);
            continue; // Fd closes the socket: connection refused.
        }
        setNoDelay(conn.get());

        const std::uint64_t id =
            nextConnId.fetch_add(1, std::memory_order_relaxed);
        Reactor &reactor = *reactors[id % reactors.size()];
        {
            std::lock_guard<std::mutex> lock(reactor.inboxMu);
            reactor.pendingConns.push_back(std::move(conn));
            reactor.pendingConnIds.push_back(id);
            reactor.flushed.store(false, std::memory_order_relaxed);
        }
        nAccepted.fetch_add(1, std::memory_order_relaxed);
        if (tmAccepted)
            tmAccepted->add(1);
        wakeReactor(reactor);
    }
}

void
Server::acceptLoop()
{
    while (!stopping.load() && !draining.load()) {
        pollfd pfd{listener.get(), POLLIN, 0};
        const int ready = ::poll(&pfd, 1,
                                 static_cast<int>(cfg.tickMs));
        if (ready > 0)
            acceptPending();
    }
    // On drain, sweep the backlog one last time: a client that
    // finished its TCP handshake before drain() began is owed
    // service even if this thread had not accepted it yet.
    if (draining.load() && !stopping.load())
        acceptPending();
}

void
Server::wakeReactor(Reactor &reactor)
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t written =
        ::write(reactor.wakeup.get(), &one, sizeof(one));
}

void
Server::postReply(std::size_t reactor_index, std::uint64_t conn_id,
                  std::vector<std::uint8_t> bytes, bool sampled)
{
    Reactor &reactor = *reactors[reactor_index];
    {
        std::lock_guard<std::mutex> lock(reactor.inboxMu);
        reactor.pendingReplies.push_back(
            {conn_id, std::move(bytes), sampled});
        reactor.flushed.store(false, std::memory_order_relaxed);
    }
    wakeReactor(reactor);
}

void
Server::reactorLoop(std::size_t index)
{
    Reactor &reactor = *reactors[index];
    std::array<epoll_event, 64> events;
    auto lastTick = std::chrono::steady_clock::now();
    const auto tickLen = std::chrono::milliseconds(cfg.tickMs);

    while (!stopping.load()) {
        const int n = ::epoll_wait(reactor.epoll.get(),
                                   events.data(),
                                   static_cast<int>(events.size()),
                                   static_cast<int>(cfg.tickMs));
        if (stopping.load())
            break;
        drainInbox(reactor);
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[i].data.u64;
            if (id == kWakeupId) {
                std::uint64_t drainCounter = 0;
                while (::read(reactor.wakeup.get(), &drainCounter,
                              sizeof(drainCounter)) > 0) {
                }
                continue;
            }
            const auto it = reactor.conns.find(id);
            if (it == reactor.conns.end())
                continue; // closed earlier this sweep
            Connection &conn = it->second;
            if (events[i].events & EPOLLOUT) {
                conn.writable = true;
                flushOutput(reactor, conn);
            }
            if (events[i].events &
                (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
                handleReadable(reactor, conn);
            }
        }
        drainInbox(reactor);

        const auto now = std::chrono::steady_clock::now();
        if (now - lastTick >= tickLen) {
            lastTick = now;
            maintenance(reactor, index);
        }
    }
}

void
Server::drainInbox(Reactor &reactor)
{
    std::vector<Fd> conns;
    std::vector<std::uint64_t> ids;
    std::deque<Reactor::Reply> replies;
    {
        std::lock_guard<std::mutex> lock(reactor.inboxMu);
        conns.swap(reactor.pendingConns);
        ids.swap(reactor.pendingConnIds);
        replies.swap(reactor.pendingReplies);
    }

    for (std::size_t i = 0; i < conns.size(); ++i) {
        Connection conn;
        conn.id = ids[i];
        conn.fd = std::move(conns[i]);
        conn.lastActivityTick = reactor.tick;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
        ev.data.u64 = conn.id;
        if (::epoll_ctl(reactor.epoll.get(), EPOLL_CTL_ADD,
                        conn.fd.get(), &ev) != 0) {
            nClosed.fetch_add(1, std::memory_order_relaxed);
            if (tmClosed)
                tmClosed->add(1);
            continue;
        }
        const std::uint64_t id = conn.id;
        reactor.conns.emplace(id, std::move(conn));
        nActive.fetch_add(1, std::memory_order_relaxed);
        if (tmActive)
            tmActive->add(1);
    }

    for (auto &reply : replies) {
        const auto it = reactor.conns.find(reply.conn);
        if (it == reactor.conns.end()) {
            // The connection died before its reply; account for the
            // orphaned response so conservation still balances.
            nResponsesDropped.fetch_add(1, std::memory_order_relaxed);
            if (tmResponsesDropped)
                tmResponsesDropped->add(1);
            // A sampled reply that will never flush still owes its
            // write-flush record (zero: nothing was written).
            if (reply.sampled)
                spans.recordStage(telemetry::Stage::WriteFlush, 0);
            continue;
        }
        Connection &conn = it->second;
        if (conn.inFlight > 0)
            --conn.inFlight;
        const std::size_t backlog = conn.out.size() - conn.outOff;
        if (backlog + reply.bytes.size() > cfg.maxOutBufferBytes) {
            nResponsesDropped.fetch_add(1, std::memory_order_relaxed);
            if (tmResponsesDropped)
                tmResponsesDropped->add(1);
            if (reply.sampled)
                spans.recordStage(telemetry::Stage::WriteFlush, 0);
            continue;
        }
        conn.out.insert(conn.out.end(), reply.bytes.begin(),
                        reply.bytes.end());
        conn.outEnqueuedTotal += reply.bytes.size();
        if (reply.sampled)
            conn.spanWrites.emplace_back(
                conn.outEnqueuedTotal, telemetry::monotonicNanos());
        nResponsesOut.fetch_add(1, std::memory_order_relaxed);
        if (tmResponsesOut)
            tmResponsesOut->add(1);
        flushOutput(reactor, conn);
        if (connDone(conn))
            closeConnection(reactor, conn.id);
    }
}

bool
Server::connDone(const Connection &conn) const
{
    // Leftover reassembly bytes are deliberately not considered:
    // once the peer half-closed, an incomplete tail frame can never
    // complete, and processInput has already consumed every frame
    // that did.
    return conn.readClosed && !conn.paused && conn.inFlight == 0 &&
           conn.outOff == conn.out.size();
}

void
Server::handleReadable(Reactor &reactor, Connection &conn)
{
    if (injector && injector->armed(fault::Site::ConnReset) &&
        injector->shouldInject(fault::Site::ConnReset)) {
        nResets.fetch_add(1, std::memory_order_relaxed);
        if (tmResets)
            tmResets->add(1);
        closeConnection(reactor, conn.id);
        return;
    }

    // Start of the Read stage for frames extracted below: the moment
    // the socket came back readable.
    if (spans.enabled())
        conn.readStartNs = telemetry::monotonicNanos();

    while (!conn.paused && !conn.readClosed) {
        const std::size_t old = conn.in.size();
        conn.in.resize(old + cfg.readChunkBytes);
        const ssize_t got =
            ::read(conn.fd.get(), conn.in.data() + old,
                   cfg.readChunkBytes);
        if (got > 0) {
            conn.in.resize(old + static_cast<std::size_t>(got));
            nBytesIn.fetch_add(static_cast<std::uint64_t>(got),
                               std::memory_order_relaxed);
            if (tmBytesIn)
                tmBytesIn->add(static_cast<std::uint64_t>(got));
            conn.lastActivityTick = reactor.tick;
            reactor.sawReads = true;
            if (!processInput(reactor, conn)) {
                closeConnection(reactor, conn.id);
                return;
            }
            // Keep reading to EAGAIN (or 0): with edge-triggered
            // epoll, a FIN already queued behind these bytes will
            // never raise another edge, so stopping at a short read
            // would miss the peer's half-close.
            continue;
        }
        conn.in.resize(old);
        if (got == 0) {
            conn.readClosed = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        // ECONNRESET and friends: the peer is gone.
        closeConnection(reactor, conn.id);
        return;
    }
    if (connDone(conn))
        closeConnection(reactor, conn.id);
}

bool
Server::processInput(Reactor &reactor, Connection &conn)
{
    // Fast pre-check on the reassembly buffer: if it holds no
    // complete frame yet (the common short-read case), keep
    // accumulating without sealing a shared buffer.
    {
        wire::FrameHeader header;
        std::size_t frameEnd = 0;
        const wire::DecodeStatus status = wire::peekFrameHeader(
            conn.in.data(), conn.in.size(), 0, header, frameEnd);
        if (status == wire::DecodeStatus::Truncated)
            return conn.in.size() <= cfg.maxInBufferBytes;
    }

    // Seal the reassembly buffer into a shared immutable ingest
    // buffer and submit every complete frame as a zero-copy slice of
    // it (Engine::trySubmitShared refcounts the buffer; only the
    // incomplete tail is copied into the next reassembly buffer).
    const auto buffer =
        std::make_shared<const std::vector<std::uint8_t>>(
            std::move(conn.in));
    conn.in = {};
    const std::uint8_t *data = buffer->data();
    const std::size_t size = buffer->size();
    std::size_t off = 0;

    while (!conn.paused && off < size) {
        wire::FrameHeader header;
        std::size_t frameEnd = 0;
        const wire::DecodeStatus status =
            wire::peekFrameHeader(data, size, off, header, frameEnd);
        if (status == wire::DecodeStatus::Ok) {
            const std::size_t frameOff = off;
            const std::size_t frameLen = frameEnd - off;
            off = frameEnd;
            // Sampling decision at the ingest boundary: a sampled
            // frame is timestamped here (end of Read, start of
            // QueueWait) and carries span_ns through the engine.
            std::uint64_t span_ns = 0;
            if (spans.sampleFrame()) {
                span_ns = telemetry::monotonicNanos();
                spans.recordStage(telemetry::Stage::Read,
                                  span_ns - conn.readStartNs);
            }
            const engine::SubmitStatus submitted =
                eng.trySubmitShared(buffer, frameOff, frameLen,
                                    makeTag(reactor.index, conn.id),
                                    span_ns);
            if (submitted == engine::SubmitStatus::Backpressure) {
                // Park the slice and stop reading this socket: the
                // kernel buffer fills and TCP pushes back.
                conn.parkedBuf = buffer;
                conn.parkedOff = frameOff;
                conn.parkedLen = frameLen;
                conn.parkedSpanNs = span_ns;
                conn.paused = true;
                nReadPauses.fetch_add(1, std::memory_order_relaxed);
                if (tmReadPauses)
                    tmReadPauses->add(1);
                break;
            }
            if (submitted == engine::SubmitStatus::Accepted) {
                ++conn.inFlight;
                nFramesIn.fetch_add(1, std::memory_order_relaxed);
                if (tmFramesIn)
                    tmFramesIn->add(1);
            }
            // Rejected frames were counted by the engine (rejected
            // at the door); no reply will come, nothing in flight.
            continue;
        }
        if (status == wire::DecodeStatus::Truncated)
            break; // tail frame still arriving
        // Corrupt region: resync at the next trustworthy boundary.
        bool complete = false;
        const std::size_t next =
            wire::findFrameBoundary(data, size, off + 1, &complete);
        nResynced.fetch_add(1, std::memory_order_relaxed);
        if (tmResynced)
            tmResynced->add(1);
        nResyncBytes.fetch_add(next - off, std::memory_order_relaxed);
        if (tmResyncBytes)
            tmResyncBytes->add(next - off);
        off = next;
        if (!complete)
            break;
    }

    // Unconsumed suffix (incomplete tail frame, or everything past a
    // parked slice) re-seeds the reassembly buffer - the only bytes
    // this path ever copies.
    if (off < size)
        conn.in.assign(data + off, data + size);
    // A peer that buffers this much without completing a frame is
    // speaking a different protocol; cut it loose.
    return conn.in.size() <= cfg.maxInBufferBytes;
}

void
Server::flushOutput(Reactor &reactor, Connection &conn)
{
    (void)reactor;
    while (conn.writable && conn.outOff < conn.out.size()) {
        std::size_t want = conn.out.size() - conn.outOff;
        bool split = false;
        if (want > 1 && injector &&
            injector->armed(fault::Site::SockPartialWrite)) {
            std::uint64_t aux = 0;
            if (injector->shouldInject(fault::Site::SockPartialWrite,
                                       &aux)) {
                want = 1 + static_cast<std::size_t>(
                               aux % (want - 1));
                split = true;
            }
        }
        const ssize_t wrote =
            ::send(conn.fd.get(), conn.out.data() + conn.outOff,
                   want, MSG_NOSIGNAL);
        if (wrote > 0) {
            conn.outOff += static_cast<std::size_t>(wrote);
            conn.outFlushedTotal +=
                static_cast<std::uint64_t>(wrote);
            // Sampled replies fully behind the flushed watermark
            // have completed their write-flush stage.
            while (!conn.spanWrites.empty() &&
                   conn.spanWrites.front().first <=
                       conn.outFlushedTotal) {
                spans.recordStage(
                    telemetry::Stage::WriteFlush,
                    telemetry::monotonicNanos() -
                        conn.spanWrites.front().second);
                conn.spanWrites.pop_front();
            }
            nBytesOut.fetch_add(static_cast<std::uint64_t>(wrote),
                                std::memory_order_relaxed);
            if (tmBytesOut)
                tmBytesOut->add(static_cast<std::uint64_t>(wrote));
            if (split)
                break; // deliver the rest on a later tick
            continue;
        }
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            conn.writable = false;
            break;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        // Write error: the peer reset. Drop every buffer so the
        // connDone close path can run once in-flight replies drain.
        settlePendingSpans(conn);
        conn.out.clear();
        conn.outOff = 0;
        conn.outEnqueuedTotal = conn.outFlushedTotal;
        conn.in.clear();
        conn.parkedBuf.reset();
        conn.parkedOff = 0;
        conn.parkedLen = 0;
        conn.parkedSpanNs = 0;
        conn.paused = false;
        conn.readClosed = true;
        break;
    }
    if (conn.outOff == conn.out.size()) {
        conn.out.clear();
        conn.outOff = 0;
    } else if (conn.outOff > (std::size_t{64} << 10)) {
        conn.out.erase(conn.out.begin(),
                       conn.out.begin() +
                           static_cast<std::ptrdiff_t>(conn.outOff));
        conn.outOff = 0;
    }
}

void
Server::maintenance(Reactor &reactor, std::size_t index)
{
    ++reactor.tick;

    // Resume paused connections first. handleReadable can close a
    // connection, so this runs over a snapshot of ids, never inside
    // a live map iteration.
    std::vector<std::uint64_t> pausedIds;
    for (const auto &[id, conn] : reactor.conns) {
        if (conn.paused)
            pausedIds.push_back(id);
    }
    for (const std::uint64_t id : pausedIds) {
        const auto it = reactor.conns.find(id);
        if (it == reactor.conns.end())
            continue;
        Connection &conn = it->second;
        // The parked slice keeps its original sampling decision and
        // timestamp: the park time IS queueing delay.
        const engine::SubmitStatus submitted = eng.trySubmitShared(
            conn.parkedBuf, conn.parkedOff, conn.parkedLen,
            makeTag(index, id), conn.parkedSpanNs);
        if (submitted == engine::SubmitStatus::Backpressure)
            continue;
        if (submitted == engine::SubmitStatus::Accepted) {
            ++conn.inFlight;
            nFramesIn.fetch_add(1, std::memory_order_relaxed);
            if (tmFramesIn)
                tmFramesIn->add(1);
        }
        conn.parkedBuf.reset();
        conn.parkedOff = 0;
        conn.parkedLen = 0;
        conn.parkedSpanNs = 0;
        conn.paused = false;
        // Resume: drain what we already buffered, then the socket
        // (the edge may not re-fire for bytes that arrived while we
        // were not reading).
        if (spans.enabled())
            conn.readStartNs = telemetry::monotonicNanos();
        if (!processInput(reactor, conn)) {
            closeConnection(reactor, id);
            continue;
        }
        if (!conn.paused)
            handleReadable(reactor, conn);
    }

    bool anyPaused = false;
    bool anyPartialInput = false;
    std::vector<std::uint64_t> toClose;
    std::vector<std::uint64_t> idleClose;

    for (auto &[id, conn] : reactor.conns) {
        if (conn.paused)
            anyPaused = true;
        if (conn.writable && conn.outOff < conn.out.size())
            flushOutput(reactor, conn); // partial-write retries
        if (!conn.in.empty())
            anyPartialInput = true;
        if (connDone(conn)) {
            toClose.push_back(id);
        } else if (cfg.idleTimeoutTicks != 0 && conn.inFlight == 0 &&
                   conn.outOff == conn.out.size() &&
                   reactor.tick - conn.lastActivityTick >
                       cfg.idleTimeoutTicks) {
            idleClose.push_back(id);
        }
    }
    for (const std::uint64_t id : toClose)
        closeConnection(reactor, id);
    const bool sweptIdle = !idleClose.empty();
    for (const std::uint64_t id : idleClose) {
        if (reactor.conns.find(id) == reactor.conns.end())
            continue;
        nIdleClosed.fetch_add(1, std::memory_order_relaxed);
        if (tmIdleClosed)
            tmIdleClosed->add(1);
        closeConnection(reactor, id);
    }
    // When the idle sweep retires connections, retire the engine
    // sessions that went idle with them (reactor 0 only, so the
    // sweep runs once per tick, not once per reactor).
    if (sweptIdle && index == 0 && cfg.sessionIdleAge != 0)
        eng.evictIdleSessions(cfg.sessionIdleAge);

    // Overload shedding: sustained pauses are the pressure signal;
    // degraded mode sheds whole paused connections oldest-first
    // rather than letting every client stall.
    if (reactor.shedPolicy != nullptr) {
        const DegradationMode mode =
            reactor.shedPolicy->onEvent(anyPaused);
        if (mode == DegradationMode::Degraded && anyPaused) {
            std::uint64_t victim = 0;
            for (const auto &[id, conn] : reactor.conns) {
                if (conn.paused && (victim == 0 || id < victim))
                    victim = id;
            }
            if (victim != 0) {
                nShed.fetch_add(1, std::memory_order_relaxed);
                if (tmShed)
                    tmShed->add(1);
                closeConnection(reactor, victim);
            }
        }
    }

    const bool quiet = !reactor.sawReads && !anyPaused &&
                       !anyPartialInput;
    reactor.sawReads = false;
    if (quiet) {
        reactor.quietTicks.fetch_add(1, std::memory_order_relaxed);
    } else {
        reactor.quietTicks.store(0, std::memory_order_relaxed);
    }

    bool flushed = true;
    for (const auto &[id, conn] : reactor.conns) {
        if (conn.outOff != conn.out.size()) {
            flushed = false;
            break;
        }
    }
    if (flushed) {
        std::lock_guard<std::mutex> lock(reactor.inboxMu);
        flushed = reactor.pendingReplies.empty();
        reactor.flushed.store(flushed, std::memory_order_relaxed);
    } else {
        reactor.flushed.store(false, std::memory_order_relaxed);
    }
}

void
Server::settlePendingSpans(Connection &conn)
{
    // Sampled replies this connection will never flush: record the
    // time they did spend buffered so every sampled frame completes
    // its write-flush stage exactly once.
    if (conn.spanWrites.empty())
        return;
    const std::uint64_t now = telemetry::monotonicNanos();
    for (const auto &[target, start] : conn.spanWrites)
        spans.recordStage(telemetry::Stage::WriteFlush, now - start);
    conn.spanWrites.clear();
}

void
Server::closeConnection(Reactor &reactor, std::uint64_t conn_id)
{
    const auto it = reactor.conns.find(conn_id);
    if (it == reactor.conns.end())
        return;
    settlePendingSpans(it->second);
    // Replies still owed to this connection will find it gone and be
    // counted as dropped when they arrive (drainInbox).
    reactor.conns.erase(it); // Fd close drops the epoll entry
    nClosed.fetch_add(1, std::memory_order_relaxed);
    if (tmClosed)
        tmClosed->add(1);
    nActive.fetch_sub(1, std::memory_order_relaxed);
    if (tmActive)
        tmActive->add(-1);
}

std::string
Server::statsJson() const
{
    // Flat JSON only - scalar numbers and flat numeric arrays - so
    // engine_top can scan it with string searches instead of a JSON
    // parser (the document is RunReport-shaped, not RunReport-deep).
    const NetStats net = stats();
    const engine::EngineStats es = eng.stats();
    std::ostringstream os;
    os << '{';
    os << "\"net_accepted\":" << net.accepted
       << ",\"net_closed\":" << net.closed
       << ",\"net_active\":" << net.activeConnections
       << ",\"net_frames_in\":" << net.framesIn
       << ",\"net_responses_out\":" << net.responsesOut
       << ",\"net_responses_dropped\":" << net.responsesDropped
       << ",\"net_bytes_in\":" << net.bytesIn
       << ",\"net_bytes_out\":" << net.bytesOut
       << ",\"net_read_pauses\":" << net.readPauses;
    os << ",\"engine_frames_submitted\":" << es.framesSubmitted
       << ",\"engine_frames_decoded\":" << es.framesDecoded
       << ",\"engine_frames_rejected\":" << es.framesRejected
       << ",\"engine_events\":" << es.eventsProcessed
       << ",\"engine_predictions\":" << es.predictions
       << ",\"engine_sessions_live\":" << es.sessionsLive
       << ",\"engine_backpressure_waits\":" << es.backpressureWaits;
    const auto arr = [&os](const char *key, const auto &values) {
        os << ",\"" << key << "\":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i != 0)
                os << ',';
            os << static_cast<std::uint64_t>(values[i]);
        }
        os << ']';
    };
    arr("engine_queue_depth", es.queueDepth);
    arr("engine_queue_backpressure_waits",
        es.queueBackpressureWaits);
    arr("engine_worker_busy_ns", es.workerBusyNs);
    arr("engine_worker_idle_ns", es.workerIdleNs);
    os << ",\"span_sample_every\":" << spans.sampleEvery()
       << ",\"span_frames_seen\":" << spans.framesSeen()
       << ",\"span_frames_sampled\":" << spans.sampledFrames();
    for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
        const auto stage = static_cast<telemetry::Stage>(s);
        const telemetry::HistogramSnapshot snap =
            spans.stageSnapshot(stage);
        const char *name = telemetry::stageName(stage);
        os << ",\"stage_" << name << "_count\":" << snap.count
           << ",\"stage_" << name << "_sum_ns\":" << snap.sum
           << ",\"stage_" << name << "_p50_ns\":"
           << telemetry::percentileFromHistogram(snap, 0.50)
           << ",\"stage_" << name << "_p99_ns\":"
           << telemetry::percentileFromHistogram(snap, 0.99);
    }
    if (statsAugmenter)
        statsAugmenter(os);
    os << '}';
    return os.str();
}

std::string
Server::adminResponse(const std::string &path, int &status) const
{
    if (path == "/healthz") {
        if (draining.load(std::memory_order_relaxed)) {
            status = 503;
            return "draining\n";
        }
        status = 200;
        return "ok\n";
    }
    if (path == "/metrics") {
        status = 200;
        std::ostringstream os;
        if (telemetry::MetricRegistry *registry =
                telemetry::attachedRegistry())
            telemetry::writePrometheus(os, registry->snapshot());
        else
            os << "# telemetry registry not attached\n";
        return os.str();
    }
    if (path == "/stats") {
        status = 200;
        return statsJson();
    }
    status = 404;
    return "not found\n";
}

void
Server::serveAdminRequest(Fd &conn)
{
    using Clock = std::chrono::steady_clock;
    // Bounded request read: admin clients are local tools, but a
    // slow, oversized or malformed request must not wedge the admin
    // thread (one request at a time is the whole concurrency model).
    std::string request;
    char buf[1024];
    const auto readDeadline =
        Clock::now() + std::chrono::milliseconds(250);
    while (request.find('\n') == std::string::npos &&
           request.size() < 4096 && Clock::now() < readDeadline) {
        pollfd pfd{conn.get(), POLLIN, 0};
        if (::poll(&pfd, 1, 50) <= 0)
            continue;
        const ssize_t got = ::read(conn.get(), buf, sizeof(buf));
        if (got > 0) {
            request.append(buf, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            break;
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            continue;
        return;
    }

    int status = 400;
    std::string body = "bad request\n";
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
        const std::size_t end = request.find_first_of(" \r\n", 4);
        if (end != std::string::npos && end > 4) {
            path = request.substr(4, end - 4);
            body = adminResponse(path, status);
        }
    }

    const char *reason = status == 200  ? "OK"
                         : status == 404 ? "Not Found"
                         : status == 503 ? "Service Unavailable"
                                         : "Bad Request";
    const char *contentType =
        path == "/stats" ? "application/json"
        : path == "/metrics"
            ? "text/plain; version=0.0.4; charset=utf-8"
            : "text/plain; charset=utf-8";
    std::ostringstream os;
    os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
       << "Content-Type: " << contentType << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    const std::string response = os.str();

    std::size_t off = 0;
    const auto writeDeadline =
        Clock::now() + std::chrono::milliseconds(500);
    while (off < response.size() && Clock::now() < writeDeadline) {
        const ssize_t wrote = ::send(
            conn.get(), response.data() + off, response.size() - off,
            MSG_NOSIGNAL);
        if (wrote > 0) {
            off += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{conn.get(), POLLOUT, 0};
            ::poll(&pfd, 1, 50);
            continue;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        break;
    }
}

void
Server::adminLoop()
{
    // One request per connection, one connection at a time: the
    // admin plane serves a curl or engine_top poll every few hundred
    // milliseconds, not traffic. It keeps serving during drain() -
    // that is when /healthz flipping to 503 matters most - and exits
    // on stop().
    while (!stopping.load()) {
        pollfd pfd{adminListener.get(), POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(cfg.tickMs));
        if (ready <= 0)
            continue;
        Fd conn(::accept4(adminListener.get(), nullptr, nullptr,
                          SOCK_NONBLOCK));
        if (!conn.valid())
            continue;
        serveAdminRequest(conn);
    }
}

void
Server::drain()
{
    if (!started.load() || draining.load())
        return;
    draining.store(true);
    if (acceptor.joinable())
        acceptor.join();
    listener.reset(); // new connections are refused from here on

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(cfg.drainTimeoutMs);
    const auto tickLen = std::chrono::milliseconds(cfg.tickMs);

    // Phase 1: wait for the read side to go quiet - no reads, no
    // parked frames, no partial input - for three consecutive ticks
    // on every reactor. Quiet is re-earned from zero so bytes
    // already in flight on the loopback get read before the engine
    // drains.
    for (auto &reactor : reactors)
        reactor->quietTicks.store(0, std::memory_order_relaxed);
    while (Clock::now() < deadline) {
        bool quiet = true;
        for (const auto &reactor : reactors) {
            if (reactor->quietTicks.load(std::memory_order_relaxed) <
                3) {
                quiet = false;
                break;
            }
        }
        if (quiet)
            break;
        std::this_thread::sleep_for(tickLen);
    }

    // Phase 2: every accepted frame is in the engine; wait for the
    // workers to finish so every reply has been posted back.
    eng.drain();

    // Phase 3: flush the replies to the sockets (bounded).
    while (Clock::now() < deadline) {
        bool flushed = true;
        for (const auto &reactor : reactors) {
            if (!reactor->flushed.load(std::memory_order_relaxed)) {
                flushed = false;
                break;
            }
        }
        if (flushed)
            break;
        for (auto &reactor : reactors)
            wakeReactor(*reactor);
        std::this_thread::sleep_for(tickLen);
    }
}

void
Server::stop()
{
    if (!started.load())
        return;
    drain();
    stopping.store(true);
    for (auto &reactor : reactors)
        wakeReactor(*reactor);
    if (acceptor.joinable())
        acceptor.join();
    if (adminThread.joinable())
        adminThread.join();
    adminListener.reset();
    for (auto &reactor : reactors) {
        if (reactor->thread.joinable())
            reactor->thread.join();
    }
    // Reactors could still trySubmit after drain()'s quiet window;
    // now that they are joined no new submissions are possible, so
    // one more engine drain guarantees no worker is inside the
    // frame callback while it is cleared (setFrameCallback is not
    // safe against in-flight traffic).
    eng.drain();
    eng.setFrameCallback(nullptr);
    if (spans.enabled())
        eng.setSpanRecorder(nullptr);
    std::uint64_t open = 0;
    for (auto &reactor : reactors) {
        open += reactor->conns.size();
        for (auto &[id, conn] : reactor->conns)
            settlePendingSpans(conn);
        reactor->conns.clear();
    }
    if (open > 0) {
        nClosed.fetch_add(open, std::memory_order_relaxed);
        if (tmClosed)
            tmClosed->add(open);
        nActive.fetch_sub(open, std::memory_order_relaxed);
        if (tmActive)
            tmActive->add(-static_cast<std::int64_t>(open));
    }
    started.store(false);
}

NetStats
Server::stats() const
{
    NetStats stats;
    stats.accepted = nAccepted.load(std::memory_order_relaxed);
    stats.closed = nClosed.load(std::memory_order_relaxed);
    stats.idleClosed = nIdleClosed.load(std::memory_order_relaxed);
    stats.shed = nShed.load(std::memory_order_relaxed);
    stats.resets = nResets.load(std::memory_order_relaxed);
    stats.acceptFailures =
        nAcceptFailures.load(std::memory_order_relaxed);
    stats.bytesIn = nBytesIn.load(std::memory_order_relaxed);
    stats.bytesOut = nBytesOut.load(std::memory_order_relaxed);
    stats.framesIn = nFramesIn.load(std::memory_order_relaxed);
    stats.responsesOut =
        nResponsesOut.load(std::memory_order_relaxed);
    stats.responsesDropped =
        nResponsesDropped.load(std::memory_order_relaxed);
    stats.framesResynced = nResynced.load(std::memory_order_relaxed);
    stats.resyncBytesSkipped =
        nResyncBytes.load(std::memory_order_relaxed);
    stats.readPauses = nReadPauses.load(std::memory_order_relaxed);
    stats.activeConnections = static_cast<std::size_t>(
        nActive.load(std::memory_order_relaxed));
    return stats;
}

} // namespace hotpath::net
