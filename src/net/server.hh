/**
 * @file
 * The non-blocking TCP server that exposes engine::Engine over the
 * hotpath_wire frame format.
 *
 * Threading model: one acceptor thread plus N reactor threads. Each
 * accepted connection is assigned to one reactor for its whole life,
 * and a reactor's connections are touched only by its own thread, so
 * connection state needs no locks. Reactors run edge-triggered epoll
 * with an eventfd wakeup for cross-thread handoff (new connections
 * from the acceptor, prediction replies from engine workers).
 *
 * Ingest path: bytes are read into a per-connection reassembly
 * buffer; once at least one complete frame is present, the buffer is
 * sealed into a shared immutable ingest buffer and every complete
 * frame is handed to Engine::trySubmitShared as a zero-copy
 * [offset, length) slice of it, with the connection id as the
 * routing tag (only an incomplete tail frame is ever copied, into
 * the next reassembly buffer). A region that fails the header parse
 * is resynced at the next CRC-valid frame boundary
 * (wire::findFrameBoundary), so line noise costs exactly the bytes
 * it damaged.
 *
 * Backpressure chain: when a frame's shard queue is saturated,
 * trySubmit returns Backpressure and the reactor *stops reading that
 * socket* (the frame is parked, the kernel receive buffer fills, TCP
 * flow control pushes back to the client). Parked connections are
 * retried every maintenance tick. When connection shedding is
 * enabled, sustained pauses feed a DegradationPolicy (the Dynamo
 * flush-on-spike heuristic) and degraded mode sheds whole paused
 * connections oldest-first instead of stalling the reactor.
 *
 * Response path: the engine's completion callback encodes each
 * decoded frame's predictions as a FrameKind::Predictions frame and
 * posts it to the owning reactor, which appends it to the
 * connection's write buffer and flushes opportunistically (partial
 * writes and EPOLLOUT handled).
 *
 * Shutdown: drain() stops accepting, waits for the read side to go
 * quiet, drains the engine and flushes every reply before stop()
 * tears the threads down - the SIGTERM path for a serving binary
 * (see installSignalHandlers()).
 */

#ifndef HOTPATH_NET_SERVER_HH
#define HOTPATH_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dynamo/flush.hh"
#include "engine/engine.hh"
#include "net/socket.hh"
#include "support/fault_injector.hh"
#include "telemetry/span.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

namespace net
{

/** Server parameters. */
struct ServerConfig
{
    /** IPv4 address to bind (dotted quad). */
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 binds an ephemeral port (read it back with
     *  Server::port()). */
    std::uint16_t port = 0;

    /** Reactor (event-loop) threads. With a serial-mode engine this
     *  must be 1: serial submits process inline on the caller. */
    std::size_t reactorThreads = 2;

    /** Bytes per read(2) call on a readable socket. */
    std::size_t readChunkBytes = 64 * 1024;

    /**
     * Cap on a connection's reassembly buffer. A peer that streams
     * this much without completing a frame is speaking garbage (or
     * hostile lengths) and is disconnected.
     */
    std::size_t maxInBufferBytes = std::size_t{1} << 20;

    /** Cap on a connection's unsent reply backlog; replies beyond it
     *  are dropped (counted) rather than buffering without bound. */
    std::size_t maxOutBufferBytes = std::size_t{1} << 20;

    /** Reactor maintenance tick in milliseconds (paused-connection
     *  retry, idle sweep, flush retry). */
    std::uint64_t tickMs = 10;

    /**
     * Close a connection after this many maintenance ticks without
     * inbound traffic (0 = never). Connections with replies still
     * owed - in flight in the engine or posted but not yet written
     * to the socket - are exempt until they are answered and
     * flushed.
     */
    std::uint64_t idleTimeoutTicks = 0;

    /**
     * When an idle sweep closes connections, also retire engine
     * sessions idle for more than this many table activity ticks
     * (Engine::evictIdleSessions); 0 = leave sessions resident.
     */
    std::uint64_t sessionIdleAge = 0;

    /** Enable overload connection shedding: sustained backpressure
     *  pauses flip a per-reactor DegradationPolicy into degraded
     *  mode, which sheds paused connections oldest-first. */
    bool shedConnections = false;

    /** Spike detector tuning for connection shedding. */
    DegradationPolicyConfig degradation;

    /** Deterministic fault plan for the socket-level sites
     *  (SockPartialWrite, ConnReset, AcceptFail). */
    fault::FaultPlan faults;

    /** Longest drain() will wait for reply flushing, in
     *  milliseconds. */
    std::uint64_t drainTimeoutMs = 5000;

    /**
     * Admin (introspection) HTTP listener port: -1 disables it, 0
     * binds an ephemeral port (read it back with
     * Server::adminPort()). The listener binds `bindAddress` on a
     * thread of its own and serves plain HTTP/1.0 GETs: /metrics
     * (Prometheus text), /healthz (drain state) and /stats (flat
     * JSON counters consumed by examples/engine_top).
     */
    int adminPort = -1;

    /** Sample every Nth inbound frame for pipeline stage spans at
     *  the socket-read boundary (telemetry/span.hh); 0 = off. */
    std::uint64_t spanSampleEvery = 0;

    /** Emit sampled stages as StageSpan trace records too. */
    bool spanTrace = false;
};

/** Aggregate serving counters (mirrored in net.* telemetry). */
struct NetStats
{
    /** Connections accepted. */
    std::uint64_t accepted = 0;
    /** Connections closed for any reason. */
    std::uint64_t closed = 0;
    /** Connections closed by the idle sweep. */
    std::uint64_t idleClosed = 0;
    /** Connections shed by overload degradation. */
    std::uint64_t shed = 0;
    /** Connections dropped by an injected reset. */
    std::uint64_t resets = 0;
    /** Accepts refused (injected or real accept failure). */
    std::uint64_t acceptFailures = 0;
    /** Bytes read off sockets. */
    std::uint64_t bytesIn = 0;
    /** Bytes written to sockets. */
    std::uint64_t bytesOut = 0;
    /** Complete frames handed to the engine. */
    std::uint64_t framesIn = 0;
    /** Prediction replies written. */
    std::uint64_t responsesOut = 0;
    /** Replies dropped (overflow or the connection died first). */
    std::uint64_t responsesDropped = 0;
    /** Corrupt regions resynced past in the ingest stream. */
    std::uint64_t framesResynced = 0;
    /** Bytes skipped while resyncing. */
    std::uint64_t resyncBytesSkipped = 0;
    /** Times a connection was paused for shard-queue backpressure. */
    std::uint64_t readPauses = 0;
    /** Connections currently open. */
    std::size_t activeConnections = 0;
};

/** The epoll serving front end; see the file comment. */
class Server
{
  public:
    /**
     * Bind the server to `engine`. The engine must outlive the
     * server, must not be in serial mode unless reactorThreads == 1,
     * and must not yet carry traffic: start() installs the engine's
     * completion callback.
     */
    Server(engine::Engine &engine, ServerConfig config);

    /** Stops and joins everything still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the acceptor and reactor threads.
     *  Returns false (with a log line) when the bind fails. */
    bool start();

    /** The bound TCP port (valid after start()). */
    std::uint16_t port() const { return boundPort; }

    /** The bound admin port (valid after start() when
     *  ServerConfig::adminPort >= 0; otherwise 0). */
    std::uint16_t adminPort() const { return boundAdminPort; }

    /** The server's stage-span recorder (disabled unless
     *  ServerConfig::spanSampleEvery != 0). */
    const telemetry::SpanRecorder &spanRecorder() const
    {
        return spans;
    }

    /**
     * Graceful drain: close the listener, wait for inbound traffic
     * to go quiet, drain the engine so every accepted frame is
     * answered, and flush the replies (bounded by
     * ServerConfig::drainTimeoutMs). Connections stay open - clients
     * read their last replies - until stop().
     */
    void drain();

    /** drain(), then stop and join all threads and close every
     *  connection (idempotent). */
    void stop();

    /** Aggregate serving counters. */
    NetStats stats() const;

    /**
     * Install a hook that appends extra fields to the /stats JSON
     * document. The hook runs on the admin thread with the document
     * stream positioned inside the top-level object, and must emit
     * zero or more `,"key":value` fragments (flat scalars only, per
     * the /stats contract). Install before start(); the server never
     * synchronises installation against a running admin thread. Used
     * by the control plane to surface control_* fields without a
     * net -> control dependency.
     */
    void setStatsAugmenter(std::function<void(std::ostream &)> hook)
    {
        statsAugmenter = std::move(hook);
    }

    /** The socket-fault injector, or nullptr when none is armed. */
    const fault::FaultInjector *
    faultInjector() const
    {
        return injector.get();
    }

    /**
     * Install SIGTERM/SIGINT handlers that set a process-wide drain
     * flag (async-signal-safe; the handler only stores a flag). A
     * serving binary polls signalDrainRequested() and calls drain()
     * + stop() itself - signal context never touches the server.
     */
    static void installSignalHandlers();

    /** True once SIGTERM/SIGINT was received after
     *  installSignalHandlers(). */
    static bool signalDrainRequested();

  private:
    /** One live connection; owned and touched only by its reactor. */
    struct Connection
    {
        Fd fd;
        std::uint64_t id = 0;
        /** Frame reassembly buffer (unparsed prefix of the stream). */
        std::vector<std::uint8_t> in;
        /** Unsent reply bytes; `outOff` marks the flushed prefix. */
        std::vector<std::uint8_t> out;
        std::size_t outOff = 0;
        /**
         * Frame parked by trySubmitShared Backpressure, as a slice
         * of the shared ingest buffer processInput sealed (zero-copy
         * even while parked; the refcount keeps the buffer alive).
         * parkedBuf == nullptr means nothing is parked.
         */
        std::shared_ptr<const std::vector<std::uint8_t>> parkedBuf;
        std::size_t parkedOff = 0;
        std::size_t parkedLen = 0;
        bool paused = false;
        /** Writability per last write attempt (edge-triggered). */
        bool writable = true;
        /** Peer half-closed its write side (read returned 0). */
        bool readClosed = false;
        /** Frames submitted whose replies have not yet been posted
         *  back to this reactor. */
        std::uint64_t inFlight = 0;
        std::uint64_t lastActivityTick = 0;
        /** Stage spans: when this socket last became readable
         *  (start of the Read stage for frames extracted from the
         *  bytes that follow). Only maintained while sampling. */
        std::uint64_t readStartNs = 0;
        /** Enqueue timestamp of a span-sampled parked frame (0 =
         *  parked frame is unsampled or nothing parked). */
        std::uint64_t parkedSpanNs = 0;
        /** Lifetime bytes appended to / flushed from `out` (the
         *  write-flush stage tracks logical byte watermarks, not
         *  buffer offsets, because `out` compacts). */
        std::uint64_t outEnqueuedTotal = 0;
        std::uint64_t outFlushedTotal = 0;
        /** Sampled replies awaiting flush: (outEnqueuedTotal
         *  watermark of the reply's last byte, enqueue time). */
        std::deque<std::pair<std::uint64_t, std::uint64_t>>
            spanWrites;
    };

    /** One reactor thread's state. */
    struct Reactor
    {
        Fd epoll;
        Fd wakeup; // eventfd; epoll data tag kWakeupId
        std::thread thread;
        std::size_t index = 0;
        std::unordered_map<std::uint64_t, Connection> conns;
        std::unique_ptr<DegradationPolicy> shedPolicy;
        std::uint64_t tick = 0;
        /** Reads seen since the last maintenance pass
         *  (reactor-thread-only; feeds quiet detection). */
        bool sawReads = false;

        std::mutex inboxMu;
        std::vector<Fd> pendingConns;
        std::vector<std::uint64_t> pendingConnIds;
        struct Reply
        {
            std::uint64_t conn = 0;
            std::vector<std::uint8_t> bytes;
            /** Reply to a span-sampled frame: its write-flush stage
             *  must be recorded exactly once. */
            bool sampled = false;
        };
        std::deque<Reply> pendingReplies;

        /** Consecutive maintenance ticks with no reads, no parked
         *  frames and no partial input (read by drain()). */
        std::atomic<std::uint64_t> quietTicks{0};
        /** True when the inbox and every write buffer are empty. */
        std::atomic<bool> flushed{true};
    };

    void acceptLoop();
    /** Accept until the backlog is empty (EAGAIN). */
    void acceptPending();
    void reactorLoop(std::size_t index);
    /** True when a half-closed connection has nothing left to do
     *  (no parked frame, no reply owed, no unflushed bytes). */
    bool connDone(const Connection &conn) const;
    void handleReadable(Reactor &reactor, Connection &conn);
    /** Parse and submit every complete frame in conn.in; returns
     *  false when the connection must be closed. */
    bool processInput(Reactor &reactor, Connection &conn);
    void flushOutput(Reactor &reactor, Connection &conn);
    void maintenance(Reactor &reactor, std::size_t index);
    void drainInbox(Reactor &reactor);
    void closeConnection(Reactor &reactor, std::uint64_t conn_id);
    void postReply(std::size_t reactor_index, std::uint64_t conn_id,
                   std::vector<std::uint8_t> bytes, bool sampled);
    void wakeReactor(Reactor &reactor);
    /** Record the write-flush stage for sampled replies that `conn`
     *  will never flush (close/teardown), keeping the per-stage
     *  sample counts conserved. */
    void settlePendingSpans(Connection &conn);
    /** Admin listener thread: accept + serve one HTTP GET at a
     *  time. */
    void adminLoop();
    /** Serve one admin connection (read request, write response,
     *  close). */
    void serveAdminRequest(Fd &conn);
    /** Response body + status for an admin request path. */
    std::string adminResponse(const std::string &path,
                              int &status) const;
    /** The /stats document: flat JSON (scalars and flat numeric
     *  arrays only, so engine_top can scan it without a JSON
     *  parser). */
    std::string statsJson() const;

    engine::Engine &eng;
    ServerConfig cfg;
    /** Stage-span recorder; sampling at the socket-read boundary. */
    telemetry::SpanRecorder spans;
    std::unique_ptr<fault::FaultInjector> injector;
    /** Extra /stats fields (see setStatsAugmenter). */
    std::function<void(std::ostream &)> statsAugmenter;
    Fd listener;
    std::uint16_t boundPort = 0;
    Fd adminListener;
    std::uint16_t boundAdminPort = 0;
    std::thread adminThread;
    std::thread acceptor;
    std::vector<std::unique_ptr<Reactor>> reactors;
    std::atomic<bool> stopping{false};
    std::atomic<bool> draining{false};
    std::atomic<bool> started{false};
    std::atomic<std::uint64_t> nextConnId{1};

    // Aggregates (relaxed atomics, read by stats()).
    std::atomic<std::uint64_t> nAccepted{0};
    std::atomic<std::uint64_t> nClosed{0};
    std::atomic<std::uint64_t> nIdleClosed{0};
    std::atomic<std::uint64_t> nShed{0};
    std::atomic<std::uint64_t> nResets{0};
    std::atomic<std::uint64_t> nAcceptFailures{0};
    std::atomic<std::uint64_t> nBytesIn{0};
    std::atomic<std::uint64_t> nBytesOut{0};
    std::atomic<std::uint64_t> nFramesIn{0};
    std::atomic<std::uint64_t> nResponsesOut{0};
    std::atomic<std::uint64_t> nResponsesDropped{0};
    std::atomic<std::uint64_t> nResynced{0};
    std::atomic<std::uint64_t> nResyncBytes{0};
    std::atomic<std::uint64_t> nReadPauses{0};
    std::atomic<std::uint64_t> nActive{0};

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmAccepted = nullptr;
    telemetry::Counter *tmClosed = nullptr;
    telemetry::Counter *tmIdleClosed = nullptr;
    telemetry::Counter *tmShed = nullptr;
    telemetry::Counter *tmResets = nullptr;
    telemetry::Counter *tmAcceptFailures = nullptr;
    telemetry::Counter *tmBytesIn = nullptr;
    telemetry::Counter *tmBytesOut = nullptr;
    telemetry::Counter *tmFramesIn = nullptr;
    telemetry::Counter *tmResponsesOut = nullptr;
    telemetry::Counter *tmResponsesDropped = nullptr;
    telemetry::Counter *tmResynced = nullptr;
    telemetry::Counter *tmResyncBytes = nullptr;
    telemetry::Counter *tmReadPauses = nullptr;
    telemetry::Gauge *tmActive = nullptr;
};

} // namespace net
} // namespace hotpath

#endif // HOTPATH_NET_SERVER_HH
