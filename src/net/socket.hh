/**
 * @file
 * Thin RAII and helper layer over POSIX TCP sockets.
 *
 * Everything the serving layer needs from the OS lives here: an
 * owning file descriptor, non-blocking mode, Nagle control, and
 * listen/connect constructors. Keeping the raw syscalls in one file
 * keeps server.cc and client.cc about frames and backpressure, not
 * about errno.
 */

#ifndef HOTPATH_NET_SOCKET_HH
#define HOTPATH_NET_SOCKET_HH

#include <cstdint>
#include <string>

namespace hotpath
{

/** The TCP serving layer: server, client library, socket helpers. */
namespace net
{

/** Move-only owning file descriptor (closes on destruction). */
class Fd
{
  public:
    /** An empty (invalid) descriptor. */
    Fd() = default;

    /** Take ownership of `fd` (-1 = none). */
    explicit Fd(int fd) : fd_(fd) {}

    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    /** Move ownership from `other`, leaving it empty. */
    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

    /** Move assignment; closes any currently owned descriptor. */
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    /** The raw descriptor (-1 when empty). */
    int get() const { return fd_; }

    /** True when a descriptor is owned. */
    bool valid() const { return fd_ >= 0; }

    /** Close the owned descriptor (if any) and become empty. */
    void reset();

    /** Release ownership without closing; returns the descriptor. */
    int release();

  private:
    int fd_ = -1;
};

/** Put `fd` into non-blocking mode; returns false on failure. */
bool setNonBlocking(int fd);

/** Disable Nagle's algorithm (TCP_NODELAY); returns false on
 *  failure. Frames are latency-sensitive and self-contained, so
 *  coalescing them only adds tail latency. */
bool setNoDelay(int fd);

/**
 * Create a non-blocking IPv4 TCP listener bound to `host:port`
 * (port 0 = ephemeral). On success `bound_port` (if non-null)
 * receives the actual port. Returns an empty Fd on failure.
 */
Fd listenTcp(const std::string &host, std::uint16_t port,
             std::uint16_t *bound_port, int backlog = 128);

/**
 * Connect to `host:port` (one attempt, blocking connect) and return
 * the socket in non-blocking mode with TCP_NODELAY set. Returns an
 * empty Fd on failure. Retry policy belongs to the caller
 * (net::Client implements exponential backoff on top).
 */
Fd connectTcp(const std::string &host, std::uint16_t port);

} // namespace net
} // namespace hotpath

#endif // HOTPATH_NET_SOCKET_HH
