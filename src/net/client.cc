/**
 * @file
 * net::Client implementation; see client.hh for the design.
 */

#include "net/client.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

namespace hotpath::net
{

namespace
{

/** Wait for `events` on `fd`, at most `timeout_ms`. Returns false on
 *  timeout or poll error. */
bool
waitFor(int fd, short events, std::uint64_t timeout_ms)
{
    pollfd pfd{fd, events, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    return ready > 0;
}

/** SplitMix64 finalizer: the retry-jitter hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

Client::Client(ClientConfig config) : cfg(std::move(config)) {}

bool
Client::connect()
{
    for (std::uint32_t attempt = 0; attempt < cfg.connectAttempts;
         ++attempt) {
        if (attempt > 0) {
            ++counters.connectRetries;
            const std::uint32_t exponent =
                attempt - 1 < cfg.retryMaxExponent
                    ? attempt - 1
                    : cfg.retryMaxExponent;
            // Equal jitter: sleep in [delay/2, delay]. Keeping at
            // least half the exponential delay preserves the worst
            // case total (a client never outlasts a slow-binding
            // server by less than before), while the hashed fraction
            // spreads a fleet's reconnect attempts apart.
            const std::uint64_t delay = cfg.retryBaseMs << exponent;
            const std::uint64_t half = delay / 2;
            const std::uint64_t jitter =
                half == 0 ? 0
                          : mix64(cfg.retryJitterSeed ^ attempt) %
                                (half + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay - half + jitter));
        }
        fd = connectTcp(cfg.host, cfg.port);
        if (fd.valid())
            return true;
    }
    return false;
}

bool
Client::sendFrame(const std::uint8_t *data, std::size_t size)
{
    if (!fd.valid())
        return false;
    std::size_t off = 0;
    while (off < size) {
        const ssize_t wrote = ::send(fd.get(), data + off,
                                     size - off, MSG_NOSIGNAL);
        if (wrote > 0) {
            off += static_cast<std::size_t>(wrote);
            counters.bytesOut += static_cast<std::uint64_t>(wrote);
            continue;
        }
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!waitFor(fd.get(), POLLOUT, cfg.responseTimeoutMs)) {
                close();
                return false;
            }
            continue;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        close();
        return false;
    }
    ++counters.framesSent;
    return true;
}

bool
Client::sendEvents(std::uint64_t session, std::uint64_t sequence,
                   const PathEvent *events, std::size_t count)
{
    encodeScratch.clear();
    wire::appendEventFrame(encodeScratch, session, sequence, events,
                           count);
    return sendFrame(encodeScratch.data(), encodeScratch.size());
}

int
Client::decodeReplies(std::vector<PredictionReply> &replies)
{
    int appended = 0;
    std::size_t off = 0;
    wire::DecodedFrame frame;
    while (off < in.size()) {
        const wire::DecodeStatus status =
            wire::decodeFrame(in.data(), in.size(), off, frame);
        if (status == wire::DecodeStatus::Ok) {
            if (frame.header.kind == wire::FrameKind::Predictions) {
                PredictionReply reply;
                reply.session = frame.header.session;
                reply.sequence = frame.header.sequence;
                reply.predictions = std::move(frame.predictions);
                frame.predictions.clear();
                replies.push_back(std::move(reply));
                ++counters.responsesReceived;
                ++appended;
            } else if (frame.header.kind ==
                       wire::FrameKind::SessionState) {
                // Migration traffic: the answer to an export
                // request. Surfaced with isState set so the router
                // can tell snapshots from prediction replies.
                PredictionReply reply;
                reply.session = frame.header.session;
                reply.sequence = frame.header.sequence;
                reply.isState = true;
                reply.state = std::move(frame.state);
                frame.state = wire::SessionState{};
                replies.push_back(std::move(reply));
                ++counters.responsesReceived;
                ++appended;
            }
            // Other frame kinds from a server would be a protocol
            // surprise; skip them quietly.
            continue;
        }
        if (status == wire::DecodeStatus::Truncated)
            break; // reply still arriving
        // Corrupt reply: resync at the next trustworthy boundary,
        // exactly as the server treats requests.
        bool complete = false;
        const std::size_t next = wire::findFrameBoundary(
            in.data(), in.size(), off + 1, &complete);
        ++counters.resyncs;
        counters.resyncBytesSkipped += next - off;
        off = next;
        if (!complete)
            break;
    }
    if (off > 0)
        in.erase(in.begin(),
                 in.begin() + static_cast<std::ptrdiff_t>(off));
    return appended;
}

int
Client::poll(std::vector<PredictionReply> &replies,
             std::uint64_t timeout_ms)
{
    // Replies a call() absorbed while waiting for its own match are
    // delivered first, in arrival order.
    if (!stash.empty()) {
        const int held = static_cast<int>(stash.size());
        for (auto &reply : stash)
            replies.push_back(std::move(reply));
        stash.clear();
        return held;
    }
    return pollSocket(replies, timeout_ms);
}

int
Client::pollSocket(std::vector<PredictionReply> &replies,
                   std::uint64_t timeout_ms)
{
    if (!fd.valid())
        return -1;

    // Serve from already-buffered bytes before touching the socket.
    int appended = decodeReplies(replies);
    if (appended > 0)
        return appended;

    if (!waitFor(fd.get(), POLLIN, timeout_ms))
        return 0;

    std::uint8_t chunk[64 * 1024];
    while (true) {
        const ssize_t got = ::read(fd.get(), chunk, sizeof(chunk));
        if (got > 0) {
            in.insert(in.end(), chunk,
                      chunk + static_cast<std::size_t>(got));
            counters.bytesIn += static_cast<std::uint64_t>(got);
            if (static_cast<std::size_t>(got) < sizeof(chunk))
                break;
            continue;
        }
        if (got == 0) {
            close(); // server went away; decode what we have
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        close();
        return -1;
    }
    appended = decodeReplies(replies);
    if (appended == 0 && !fd.valid())
        return -1;
    return appended;
}

bool
Client::awaitResponses(std::size_t count,
                       std::vector<PredictionReply> &replies)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(cfg.responseTimeoutMs);
    std::size_t received = 0;
    while (received < count) {
        const auto now = Clock::now();
        if (now >= deadline)
            return false;
        const auto leftMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count();
        const int got = poll(
            replies, static_cast<std::uint64_t>(leftMs));
        if (got < 0)
            return false;
        received += static_cast<std::size_t>(got);
    }
    return true;
}

bool
Client::call(std::uint64_t session, std::uint64_t sequence,
             const PathEvent *events, std::size_t count,
             PredictionReply &reply)
{
    if (!sendEvents(session, sequence, events, count))
        return false;

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(cfg.responseTimeoutMs);
    std::vector<PredictionReply> batch;
    while (Clock::now() < deadline) {
        const auto leftMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        batch.clear();
        // Read the socket directly: serving the stash here would
        // hand back the replies this loop just stashed and spin
        // without ever reaching ours.
        const int got = pollSocket(
            batch,
            static_cast<std::uint64_t>(leftMs > 0 ? leftMs : 0));
        if (got < 0)
            return false;
        bool matched = false;
        for (auto &candidate : batch) {
            if (!matched && candidate.session == session &&
                candidate.sequence == sequence) {
                reply = std::move(candidate);
                matched = true;
                continue;
            }
            // A pipelined reply that arrived alongside ours belongs
            // to a later poll()/awaitResponses(); keep it.
            stash.push_back(std::move(candidate));
        }
        if (matched)
            return true;
    }
    return false;
}

} // namespace hotpath::net
