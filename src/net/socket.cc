#include "net/socket.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace hotpath::net
{

void
Fd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

int
Fd::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
setNoDelay(int fd)
{
    const int one = 1;
    return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                        sizeof(one)) == 0;
}

namespace
{

bool
fillAddr(const std::string &host, std::uint16_t port,
         sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

} // namespace

Fd
listenTcp(const std::string &host, std::uint16_t port,
          std::uint16_t *bound_port, int backlog)
{
    sockaddr_in addr;
    if (!fillAddr(host, port, addr))
        return Fd();

    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
    if (!fd.valid())
        return Fd();
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return Fd();
    if (::listen(fd.get(), backlog) != 0)
        return Fd();

    if (bound_port != nullptr) {
        sockaddr_in actual;
        socklen_t len = sizeof(actual);
        if (::getsockname(fd.get(),
                          reinterpret_cast<sockaddr *>(&actual),
                          &len) != 0)
            return Fd();
        *bound_port = ntohs(actual.sin_port);
    }
    return fd;
}

Fd
connectTcp(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr;
    if (!fillAddr(host, port, addr))
        return Fd();

    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return Fd();
    if (::connect(fd.get(),
                  reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return Fd();
    if (!setNonBlocking(fd.get()))
        return Fd();
    setNoDelay(fd.get());
    return fd;
}

} // namespace hotpath::net
