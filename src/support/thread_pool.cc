#include "support/thread_pool.hh"

#include <atomic>
#include <chrono>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

std::atomic<ThreadPoolSink> gPoolSink{nullptr};

void
emitPoolEvent(ThreadPoolEvent event, std::uint64_t value)
{
    if (ThreadPoolSink sink =
            gPoolSink.load(std::memory_order_acquire)) {
        sink(event, value);
    }
}

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ThreadPoolSink
setThreadPoolSink(ThreadPoolSink sink)
{
    return gPoolSink.exchange(sink, std::memory_order_acq_rel);
}

ThreadPool::ThreadPool(ThreadPoolConfig config)
    : queueCapacity(config.queueCapacity < 1 ? 1
                                             : config.queueCapacity)
{
    workers.reserve(config.threads);
    for (std::size_t i = 0; i < config.threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::runTask(Task &task)
{
    const std::uint64_t start = nowNanos();
    task();
    emitPoolEvent(ThreadPoolEvent::TaskDone, nowNanos() - start);
}

void
ThreadPool::submit(Task task)
{
    HOTPATH_ASSERT(task != nullptr);

    if (workers.empty()) {
        // Inline mode: the serial reference path. Count the task so
        // stats() reads the same either way.
        runTask(task);
        std::lock_guard<std::mutex> lock(mu);
        ++counts.tasksExecuted;
        return;
    }

    std::size_t depth = 0;
    {
        std::unique_lock<std::mutex> lock(mu);
        if (queue.size() >= queueCapacity) {
            ++counts.submitWaits;
            emitPoolEvent(ThreadPoolEvent::SubmitWait, 1);
            spaceAvailable.wait(lock, [this] {
                return queue.size() < queueCapacity;
            });
        }
        queue.push_back(std::move(task));
        ++inFlight;
        depth = queue.size();
        if (depth > counts.queueHighWater)
            counts.queueHighWater = depth;
    }
    emitPoolEvent(ThreadPoolEvent::QueueDepth, depth);
    workAvailable.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock, [this] { return inFlight == 0; });
}

ThreadPoolStats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counts;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mu);
            workAvailable.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        spaceAvailable.notify_one();

        runTask(task);

        bool drained = false;
        {
            std::lock_guard<std::mutex> lock(mu);
            ++counts.tasksExecuted;
            drained = --inFlight == 0;
        }
        if (drained)
            idle.notify_all();
    }
}

std::size_t
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace hotpath
