/**
 * @file
 * Small online statistics helpers used by the metrics and dynamo
 * layers: running mean/variance (Welford), min/max tracking, and a
 * fixed-bucket histogram with quantile queries.
 */

#ifndef HOTPATH_SUPPORT_STATS_HH
#define HOTPATH_SUPPORT_STATS_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace hotpath
{

/** Welford online mean/variance with min/max. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::uint64_t count() const { return n; }

    /** Mean of the samples (0 if empty). */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (0 if empty). */
    double min() const { return n ? lo : 0.0; }
    /** Largest sample seen (0 if empty). */
    double max() const { return n ? hi : 0.0; }
    /** Sum of all samples. */
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/**
 * Histogram over [lo, hi) with uniform buckets; samples outside the
 * range land in saturating under/overflow buckets.
 */
class Histogram
{
  public:
    /** Build with `buckets` uniform buckets spanning [lo, hi). */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add one sample. */
    void add(double x);

    /** Total samples added (including out-of-range). */
    std::uint64_t count() const { return total; }
    /** Samples in bucket i. */
    std::uint64_t bucketCount(std::size_t i) const { return counts[i]; }
    /** Number of in-range buckets. */
    std::size_t buckets() const { return counts.size(); }
    /** Samples below the range. */
    std::uint64_t underflow() const { return below; }
    /** Samples at or above the range. */
    std::uint64_t overflow() const { return above; }

    /**
     * Approximate quantile (0 <= q <= 1) by linear interpolation
     * within the containing bucket. Returns lo/hi bound when the
     * quantile falls in the under/overflow buckets.
     */
    double quantile(double q) const;

  private:
    double lowBound;
    double highBound;
    double bucketWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0;
    std::uint64_t above = 0;
    std::uint64_t total = 0;
};

} // namespace hotpath

#endif // HOTPATH_SUPPORT_STATS_HH
