#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace hotpath
{

namespace
{
bool informEnabled = true;
} // namespace

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const std::string &message)
{
    if (informEnabled)
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace hotpath
