#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hotpath
{

namespace
{

std::atomic<bool> informFlag{true};
std::atomic<LogSink> activeSink{nullptr};

/** Route one message through the installed (or default) sink. */
void
emitLog(LogLevel level, const std::string &message)
{
    const LogSink sink = activeSink.load(std::memory_order_acquire);
    (sink ? sink : &defaultLogSink)(level, message);
}

} // namespace

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
defaultLogSink(LogLevel level, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n",
                 level == LogLevel::Warn ? "warn" : "info",
                 message.c_str());
}

LogSink
setLogSink(LogSink sink)
{
    return activeSink.exchange(sink, std::memory_order_acq_rel);
}

void
warn(const std::string &message)
{
    emitLog(LogLevel::Warn, message);
}

void
inform(const std::string &message)
{
    if (informFlag.load(std::memory_order_relaxed))
        emitLog(LogLevel::Inform, message);
}

void
setInformEnabled(bool enabled)
{
    informFlag.store(enabled, std::memory_order_relaxed);
}

bool
informEnabled()
{
    return informFlag.load(std::memory_order_relaxed);
}

} // namespace hotpath
