/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * Production systems meet corrupt inputs, lost and reordered
 * messages, stuck threads and allocation failures; a system that is
 * only ever exercised on clean traffic has untested recovery paths.
 * The injector lets tests and benches schedule those faults
 * *deterministically*: every injection decision is a pure function of
 * (seed, site, opportunity index), so two runs with the same plan and
 * the same submission order inject the identical fault schedule - the
 * property tests/fault_injection_test.cc asserts and the
 * ext_fault_resilience bench relies on for reproducible tables.
 *
 * Cost model: a site that is not armed is one predictable branch per
 * opportunity. Components hold a FaultInjector pointer that is null
 * in production (mirroring the telemetry pattern), and when the
 * HOTPATH_FAULT_INJECTION CMake option is OFF, shouldInject() compiles
 * to `return false` so the whole apparatus folds away.
 */

#ifndef HOTPATH_SUPPORT_FAULT_INJECTOR_HH
#define HOTPATH_SUPPORT_FAULT_INJECTOR_HH

#include <array>
#include <atomic>
#include <cstdint>

/** Namespace-level documentation lives with the basal headers. */
namespace hotpath
{

/** Deterministic fault injection (see fault_injector.hh). */
namespace fault
{

/** True when fault injection is compiled in (the default); the
 *  HOTPATH_FAULT_INJECTION=OFF build folds every site to a no-op. */
#ifdef HOTPATH_NO_FAULT_INJECTION
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/** Where a fault can be injected. */
enum class Site : std::size_t
{
    /** Flip one bit of an encoded wire frame. */
    WireBitFlip = 0,
    /** Truncate an encoded wire frame. */
    WireTruncate,
    /** Silently discard a submitted frame (lost datagram). */
    FrameDrop,
    /** Defer a submitted frame, delivering it out of order later. */
    FrameDelay,
    /** Park a worker thread until the watchdog releases it. */
    WorkerStall,
    /** Fail a resource allocation (session creation). */
    AllocFail,
    /** Split a socket write so only a prefix is delivered at once. */
    SockPartialWrite,
    /** Reset (abruptly close) an established connection. */
    ConnReset,
    /** Fail an accept(2) on the listening socket. */
    AcceptFail,
};

/** Number of distinct injection sites. */
constexpr std::size_t kSiteCount = 9;

/** Stable lower-case site name for tables and metrics. */
const char *siteName(Site site);

/** When one site fires. Probability and schedule compose: the site
 *  fires when either rule says so. */
struct SitePlan
{
    /** Per-opportunity injection probability in [0, 1]. */
    double probability = 0.0;

    /** Fire on every Nth opportunity (1-based; 0 = off). */
    std::uint64_t everyN = 0;

    /** True when this site can ever fire. */
    bool
    armed() const
    {
        return probability > 0.0 || everyN != 0;
    }
};

/** A full injection schedule: one plan per site plus the seed that
 *  makes the probabilistic draws reproducible. */
struct FaultPlan
{
    /** Seed for the per-opportunity hash draws. */
    std::uint64_t seed = 0;

    /** Per-site plans, indexed by Site. */
    std::array<SitePlan, kSiteCount> sites{};

    /** Mutable access to one site's plan. */
    SitePlan &
    site(Site s)
    {
        return sites[static_cast<std::size_t>(s)];
    }

    /** Read access to one site's plan. */
    const SitePlan &
    site(Site s) const
    {
        return sites[static_cast<std::size_t>(s)];
    }

    /** True when any site is armed. */
    bool enabled() const;
};

/** One site's lifetime accounting. */
struct SiteCounters
{
    /** Times the site was consulted. */
    std::uint64_t opportunities = 0;

    /** Times it fired. */
    std::uint64_t injected = 0;
};

/**
 * The seeded injector; see the file comment for the determinism
 * contract. Thread-safe: opportunity counters are atomics, so
 * concurrent sites interleave safely - though the *schedule* is only
 * reproducible when a site's opportunities arrive in a deterministic
 * order (single-producer submission, as the resilience bench runs).
 */
class FaultInjector
{
  public:
    /** Build an injector executing `plan`. */
    explicit FaultInjector(FaultPlan plan);

    /** The plan this injector executes. */
    const FaultPlan &plan() const { return cfg; }

    /** True when `site` can ever fire (cheap pre-check so call
     *  sites skip the atomic on unarmed sites). */
    bool
    armed(Site site) const
    {
        return kCompiledIn && cfg.site(site).armed();
    }

    /**
     * Consult the site: advances its opportunity counter and returns
     * true when this opportunity injects. When it fires and `aux` is
     * non-null, *aux receives a deterministic 64-bit value derived
     * from the same (seed, site, opportunity) - use it to pick a
     * corruption position so the damage is reproducible too.
     */
    bool shouldInject(Site site, std::uint64_t *aux = nullptr);

    /** One site's accounting so far. */
    SiteCounters counters(Site site) const;

    /** Total injections across all sites. */
    std::uint64_t totalInjected() const;

  private:
    struct SiteState
    {
        std::atomic<std::uint64_t> opportunities{0};
        std::atomic<std::uint64_t> injected{0};
    };

    FaultPlan cfg;
    std::array<SiteState, kSiteCount> state;
};

} // namespace fault
} // namespace hotpath

#endif // HOTPATH_SUPPORT_FAULT_INJECTOR_HH
