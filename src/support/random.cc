#include "support/random.hh"

#include <cmath>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 seeder(seed);
    for (auto &word : s)
        word = seeder.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    HOTPATH_ASSERT(bound > 0);
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    HOTPATH_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

AliasSampler::AliasSampler(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    HOTPATH_ASSERT(n > 0, "alias sampler needs at least one weight");

    double total = 0.0;
    for (double w : weights) {
        HOTPATH_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    HOTPATH_ASSERT(total > 0.0, "all weights are zero");

    normalized.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        normalized[i] = weights[i] / total;

    probability.assign(n, 0.0);
    alias.assign(n, 0);

    // Classic two-worklist construction over scaled probabilities.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = normalized[i] * static_cast<double>(n);
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s_idx = small.back();
        small.pop_back();
        const std::uint32_t l_idx = large.back();
        large.pop_back();

        probability[s_idx] = scaled[s_idx];
        alias[s_idx] = l_idx;
        scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
        if (scaled[l_idx] < 1.0)
            small.push_back(l_idx);
        else
            large.push_back(l_idx);
    }
    for (std::uint32_t idx : large)
        probability[idx] = 1.0;
    for (std::uint32_t idx : small)
        probability[idx] = 1.0; // numerical residue

    for (std::size_t i = 0; i < n; ++i) {
        if (probability[i] >= 1.0)
            alias[i] = static_cast<std::uint32_t>(i);
    }
}

std::size_t
AliasSampler::sample(Rng &rng) const
{
    const std::size_t slot = rng.nextBounded(probability.size());
    return rng.nextDouble() < probability[slot] ? slot : alias[slot];
}

std::vector<double>
zipfWeights(std::size_t n, double s)
{
    HOTPATH_ASSERT(n > 0);
    std::vector<double> w(n);
    for (std::size_t k = 1; k <= n; ++k)
        w[k - 1] = 1.0 / std::pow(static_cast<double>(k), s);
    return w;
}

} // namespace hotpath
