/**
 * @file
 * Text and CSV table rendering for the benchmark harnesses.
 *
 * Every bench binary prints the rows of the paper table or figure it
 * regenerates; TextTable keeps the formatting uniform (right-aligned
 * numerics, padded headers) and can also emit CSV so the series can be
 * replotted.
 */

#ifndef HOTPATH_SUPPORT_TABLE_HH
#define HOTPATH_SUPPORT_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hotpath
{

/** A simple column-aligned table of strings. */
class TextTable
{
  public:
    /** Set the header row; resets column count. */
    void setHeader(std::vector<std::string> names);

    /** Start a new row. */
    void beginRow();

    /** Append a cell to the current row. */
    void addCell(std::string value);
    /** Append a fixed-precision numeric cell. */
    void addCell(double value, int precision = 2);
    /** Append an integer cell with thousands separators. */
    void addCell(std::uint64_t value);
    /** Append a signed integer cell with thousands separators. */
    void addCell(std::int64_t value);

    /** Convenience: percentage cell, e.g. 97.53 -> "97.53%". */
    void addPercentCell(double value, int precision = 2);

    /** Render the padded text table. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    /** Data rows added so far (header excluded). */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision = 2);

/** Format value as a percentage string with fixed precision. */
std::string formatPercent(double value, int precision = 2);

/** Insert thousands separators, e.g. 36738 -> "36,738". */
std::string formatWithCommas(std::uint64_t value);

} // namespace hotpath

#endif // HOTPATH_SUPPORT_TABLE_HH
