#include "support/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace hotpath
{

void
TextTable::setHeader(std::vector<std::string> names)
{
    header = std::move(names);
}

void
TextTable::beginRow()
{
    rows.emplace_back();
}

void
TextTable::addCell(std::string value)
{
    HOTPATH_ASSERT(!rows.empty(), "beginRow() before addCell()");
    rows.back().push_back(std::move(value));
}

void
TextTable::addCell(double value, int precision)
{
    addCell(formatDouble(value, precision));
}

void
TextTable::addCell(std::uint64_t value)
{
    addCell(formatWithCommas(value));
}

void
TextTable::addCell(std::int64_t value)
{
    if (value < 0) {
        addCell("-" +
                formatWithCommas(static_cast<std::uint64_t>(-value)));
    } else {
        addCell(formatWithCommas(static_cast<std::uint64_t>(value)));
    }
}

void
TextTable::addPercentCell(double value, int precision)
{
    addCell(formatPercent(value, precision));
}

void
TextTable::print(std::ostream &os) const
{
    const std::size_t columns = header.size();
    std::vector<std::size_t> width(columns, 0);
    for (std::size_t c = 0; c < columns; ++c)
        width[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size() && c < columns; ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < columns; ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "| " : " | ");
            os << std::setw(static_cast<int>(width[c]))
               << (c == 0 ? std::left : std::right) << cell
               << std::right;
        }
        os << " |\n";
    };

    print_row(header);
    os << "|";
    for (std::size_t c = 0; c < columns; ++c) {
        os << std::string(width[c] + 2, '-');
        os << "|";
    }
    os << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    print_row(header);
    for (const auto &row : rows)
        print_row(row);
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatPercent(double value, int precision)
{
    return formatDouble(value, precision) + "%";
}

std::string
formatWithCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i + 3 - lead) % 3 == 0)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

} // namespace hotpath
