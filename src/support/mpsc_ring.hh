/**
 * @file
 * Bounded lock-free multi-producer / single-consumer ring.
 *
 * The engine's shard-queue handoff primitive: producers reserve slots
 * with one CAS on the enqueue cursor, the consumer pops with plain
 * loads/stores on the dequeue cursor, and per-slot sequence stamps
 * (Vyukov's bounded-queue scheme) carry the release/acquire handoff -
 * so the common enqueue path is one CAS plus one release store, with
 * no mutex and no syscall. Capacity is fixed at construction and
 * rounded up to a power of two.
 *
 * Contract:
 *  - any number of producers may call tryPush() concurrently;
 *  - exactly ONE thread at a time may call tryPop()/popBatch() (the
 *    dequeue cursor is not CAS-protected - the engine's one worker
 *    per shard provides this for free);
 *  - tryPush moves from its argument only on success, so a caller
 *    can retry or fall back to blocking with the value intact;
 *  - size() is approximate under concurrency (two independent
 *    cursor loads) and only exact when the ring is quiescent.
 *
 * Blocking (producer backpressure, consumer parking) deliberately
 * lives outside: the engine layers a futex-light waiter protocol on
 * top so the uncontended path never touches a lock.
 */

#ifndef HOTPATH_SUPPORT_MPSC_RING_HH
#define HOTPATH_SUPPORT_MPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace hotpath::support
{

/** Bounded lock-free MPSC ring; see the file comment. */
template <typename T>
class MpscRing
{
  public:
    /** Build a ring holding at least `capacity` items (rounded up to
     *  a power of two; minimum 1). */
    explicit MpscRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        mask = cap - 1;
        cells = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells[i].sequence.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /** Slots the ring can hold. */
    std::size_t capacity() const { return mask + 1; }

    /**
     * Enqueue by move. Returns false - leaving `v` untouched - when
     * the ring is full. Safe from any number of threads.
     */
    bool
    tryPush(T &v)
    {
        std::size_t pos = enqueuePos.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells[pos & mask];
            const std::size_t seq =
                cell.sequence.load(std::memory_order_acquire);
            const std::intptr_t dif =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                // The slot is free at this position: claim it.
                if (enqueuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = std::move(v);
                    cell.sequence.store(pos + 1,
                                        std::memory_order_release);
                    return true;
                }
                // Lost the race; `pos` was reloaded by the CAS.
            } else if (dif < 0) {
                return false; // full: consumer has not freed the slot
            } else {
                pos = enqueuePos.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Dequeue into `out`. Returns false when the ring is empty.
     * Single consumer only.
     */
    bool
    tryPop(T &out)
    {
        const std::size_t pos =
            dequeuePos.load(std::memory_order_relaxed);
        Cell &cell = cells[pos & mask];
        const std::size_t seq =
            cell.sequence.load(std::memory_order_acquire);
        if (static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos + 1) <
            0)
            return false; // the producer has not published this slot
        out = std::move(cell.value);
        // Re-stamp the slot for the enqueue lap `capacity` ahead.
        cell.sequence.store(pos + mask + 1,
                            std::memory_order_release);
        dequeuePos.store(pos + 1, std::memory_order_relaxed);
        return true;
    }

    /**
     * Pop up to `max` items, appending to `out`. Returns how many
     * were popped. Single consumer only.
     */
    std::size_t
    popBatch(std::vector<T> &out, std::size_t max)
    {
        std::size_t popped = 0;
        while (popped < max) {
            out.emplace_back();
            if (!tryPop(out.back())) {
                out.pop_back();
                break;
            }
            ++popped;
        }
        return popped;
    }

    /** True when the next consumer slot holds no published item.
     *  Exact for the consumer; a producer racing in may make it stale
     *  one item's worth. */
    bool
    empty() const
    {
        const std::size_t pos =
            dequeuePos.load(std::memory_order_relaxed);
        const std::size_t seq =
            cells[pos & mask].sequence.load(std::memory_order_acquire);
        return static_cast<std::intptr_t>(seq) -
                   static_cast<std::intptr_t>(pos + 1) <
               0;
    }

    /** Approximate occupancy (exact only when quiescent). */
    std::size_t
    size() const
    {
        const std::size_t tail =
            enqueuePos.load(std::memory_order_relaxed);
        const std::size_t head =
            dequeuePos.load(std::memory_order_relaxed);
        return tail >= head ? tail - head : 0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::unique_ptr<Cell[]> cells;
    std::size_t mask = 0;
    /** Producer and consumer cursors on separate cache lines so
     *  producers' CAS traffic does not invalidate the consumer's. */
    alignas(64) std::atomic<std::size_t> enqueuePos{0};
    alignas(64) std::atomic<std::size_t> dequeuePos{0};
};

} // namespace hotpath::support

#endif // HOTPATH_SUPPORT_MPSC_RING_HH
