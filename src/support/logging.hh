/**
 * @file
 * Error reporting and assertion helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors such
 * as invalid configuration, and warn()/inform() are non-fatal status
 * messages.
 */

#ifndef HOTPATH_SUPPORT_LOGGING_HH
#define HOTPATH_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

/** NET hot-path prediction, reproduced: every component of the
 *  library - support utilities, simulation, profiling, prediction,
 *  the Dynamo model and the streaming engine - lives here. */
namespace hotpath
{

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] void panic(const std::string &message);

/** Exit with an error code; use for invalid user input or config. */
[[noreturn]] void fatal(const std::string &message);

/** Severity of a routed log message. */
enum class LogLevel
{
    /** Unexpected but non-fatal condition (warn()). */
    Warn,
    /** Status/progress message (inform()). */
    Inform,
};

/**
 * Every warn()/inform() call funnels through a single sink function,
 * so an observer (the telemetry layer captures logs as trace records)
 * can see the stream without patching call sites. Sinks must be
 * callable from multiple threads.
 */
using LogSink = void (*)(LogLevel level, const std::string &message);

/** The built-in sink: "warn:"/"info:" prefixed lines on stderr. */
void defaultLogSink(LogLevel level, const std::string &message);

/**
 * Replace the log sink process-wide; nullptr restores the default.
 * Returns the previously installed sink (nullptr if it was the
 * default). Safe to call concurrently with logging.
 */
LogSink setLogSink(LogSink sink);

/** Print a non-fatal warning (routed through the log sink). */
void warn(const std::string &message);

/** Print an informational message (routed through the log sink). */
void inform(const std::string &message);

/**
 * Enable or disable inform() output (benches silence it). Reads and
 * writes are atomic, so concurrent callers see a clean toggle.
 */
void setInformEnabled(bool enabled);

/** Current state of the inform() toggle. */
bool informEnabled();

/** Implementation details of the logging macros; not public API. */
namespace detail
{

/** Stream-concatenate the arguments into one string
 *  (HOTPATH_ASSERT's message builder). */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    ((os << args), ...);
    return os.str();
}

} // namespace detail

} // namespace hotpath

/**
 * Assert an internal invariant; active in all build types since the
 * library is a measurement tool and silent corruption would invalidate
 * experiments.
 */
#define HOTPATH_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::hotpath::panic(::hotpath::detail::concat(                    \
                "assertion failed: ", #cond, " at ", __FILE__, ":",        \
                __LINE__, " ", ##__VA_ARGS__));                            \
        }                                                                  \
    } while (0)

#endif // HOTPATH_SUPPORT_LOGGING_HH
