#include "support/fault_injector.hh"

namespace hotpath
{
namespace fault
{

const char *
siteName(Site site)
{
    switch (site) {
    case Site::WireBitFlip:
        return "bitflip";
    case Site::WireTruncate:
        return "truncate";
    case Site::FrameDrop:
        return "drop";
    case Site::FrameDelay:
        return "delay";
    case Site::WorkerStall:
        return "stall";
    case Site::AllocFail:
        return "allocfail";
    case Site::SockPartialWrite:
        return "partialwrite";
    case Site::ConnReset:
        return "connreset";
    case Site::AcceptFail:
        return "acceptfail";
    }
    return "unknown";
}

bool
FaultPlan::enabled() const
{
    for (const SitePlan &plan : sites) {
        if (plan.armed())
            return true;
    }
    return false;
}

FaultInjector::FaultInjector(FaultPlan plan) : cfg(plan) {}

namespace
{

// Distinct per-site key streams so arming one site never perturbs
// another site's draw sequence. Any odd constants work; these are
// splitmix-style increments.
constexpr std::uint64_t kSiteKey[kSiteCount] = {
    0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull, 0x94d049bb133111ebull,
    0xd6e8feb86659fd93ull, 0xa0761d6478bd642full, 0xe7037ed1a0b428dbull,
    0x8ebc6af09c88c6e3ull, 0x589965cc75374cc3ull, 0x1d8e4e27c47d124full,
};

// SplitMix64 finalizer: a strong 64-bit bijective mixer.
std::uint64_t
mixBits(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
draw(std::uint64_t seed, Site site, std::uint64_t opportunity)
{
    const std::uint64_t key = kSiteKey[static_cast<std::size_t>(site)];
    return mixBits(seed ^ key ^ (opportunity * 0x2545f4914f6cdd1dull));
}

} // namespace

bool
FaultInjector::shouldInject(Site site, std::uint64_t *aux)
{
    if (!kCompiledIn)
        return false;
    const SitePlan &plan = cfg.site(site);
    if (!plan.armed())
        return false;

    SiteState &st = state[static_cast<std::size_t>(site)];
    const std::uint64_t n =
        st.opportunities.fetch_add(1, std::memory_order_relaxed);

    bool fire = false;
    if (plan.everyN != 0 && (n + 1) % plan.everyN == 0)
        fire = true;
    if (!fire && plan.probability > 0.0) {
        const std::uint64_t h = draw(cfg.seed, site, n);
        // Top 53 bits -> uniform double in [0, 1).
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        fire = u < plan.probability;
    }
    if (!fire)
        return false;

    st.injected.fetch_add(1, std::memory_order_relaxed);
    if (aux != nullptr)
        *aux = draw(cfg.seed ^ 0x5851f42d4c957f2dull, site, n);
    return true;
}

SiteCounters
FaultInjector::counters(Site site) const
{
    const SiteState &st = state[static_cast<std::size_t>(site)];
    SiteCounters out;
    out.opportunities = st.opportunities.load(std::memory_order_relaxed);
    out.injected = st.injected.load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t total = 0;
    for (const SiteState &st : state)
        total += st.injected.load(std::memory_order_relaxed);
    return total;
}

} // namespace fault
} // namespace hotpath
