#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace hotpath
{

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lowBound(lo), highBound(hi),
      bucketWidth((hi - lo) / static_cast<double>(buckets)),
      counts(buckets, 0)
{
    HOTPATH_ASSERT(hi > lo && buckets > 0);
}

void
Histogram::add(double x)
{
    ++total;
    if (x < lowBound) {
        ++below;
        return;
    }
    if (x >= highBound) {
        ++above;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lowBound) / bucketWidth);
    idx = std::min(idx, counts.size() - 1);
    ++counts[idx];
}

double
Histogram::quantile(double q) const
{
    HOTPATH_ASSERT(q >= 0.0 && q <= 1.0);
    if (total == 0)
        return lowBound;

    const double target = q * static_cast<double>(total);
    double cumulative = static_cast<double>(below);
    if (target <= cumulative)
        return lowBound;

    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double next = cumulative + static_cast<double>(counts[i]);
        if (target <= next && counts[i] > 0) {
            const double frac =
                (target - cumulative) / static_cast<double>(counts[i]);
            return lowBound +
                   (static_cast<double>(i) + frac) * bucketWidth;
        }
        cumulative = next;
    }
    return highBound;
}

} // namespace hotpath
