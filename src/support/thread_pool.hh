/**
 * @file
 * Bounded fixed-size thread pool for experiment fan-out.
 *
 * The sweep matrices behind the paper's figures are embarrassingly
 * parallel - every (predictor family x delay x benchmark) point is an
 * independent replay over a read-only event stream - so the pool is
 * deliberately simple: N workers draining one bounded FIFO queue, no
 * work stealing, no task priorities. Determinism comes from the
 * callers, who index results by task id instead of completion order;
 * the pool only promises that every submitted task runs exactly once.
 *
 * A pool constructed with zero threads degenerates to inline
 * execution on the calling thread, which is the bit-identical serial
 * reference the equivalence tests compare against.
 */

#ifndef HOTPATH_SUPPORT_THREAD_POOL_HH
#define HOTPATH_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hotpath
{

/** Pool activity visible to an observer (telemetry). */
enum class ThreadPoolEvent
{
    /** A task finished; value = execution nanoseconds. */
    TaskDone,
    /** Queue depth sampled at submit; value = depth in tasks. */
    QueueDepth,
    /** submit() blocked on a full queue; value unused. */
    SubmitWait,
};

/**
 * Pool events funnel through one process-wide sink function so an
 * observer can watch every pool without patching call sites - the
 * same inversion support/logging uses for warn()/inform(): support
 * cannot depend on telemetry, so the telemetry layer installs a
 * bridge here while a registry is attached. Sinks must be callable
 * from multiple threads.
 */
using ThreadPoolSink = void (*)(ThreadPoolEvent event,
                                std::uint64_t value);

/**
 * Replace the pool sink process-wide (nullptr = none). Returns the
 * previously installed sink. Safe to call concurrently with pools.
 */
ThreadPoolSink setThreadPoolSink(ThreadPoolSink sink);

/** Point-in-time accounting of one pool. */
struct ThreadPoolStats
{
    /** Tasks that have finished executing. */
    std::uint64_t tasksExecuted = 0;
    /** Times submit() blocked on a full queue. */
    std::uint64_t submitWaits = 0;
    /** Deepest queue observed at submit time. */
    std::size_t queueHighWater = 0;
};

/** Pool parameters. */
struct ThreadPoolConfig
{
    /** Worker threads; 0 = run every task inline in submit(). */
    std::size_t threads = 1;

    /** Queue bound in tasks; submit() blocks when full. */
    std::size_t queueCapacity = 1024;
};

/** Fixed-size bounded worker pool; see file comment. */
class ThreadPool
{
  public:
    /** Unit of work: a nullary callable that must not throw. */
    using Task = std::function<void()>;

    /** Build a pool; spawns config.threads workers immediately. */
    explicit ThreadPool(ThreadPoolConfig config);

    /** Convenience: `threads` workers, default queue bound. */
    explicit ThreadPool(std::size_t threads)
        : ThreadPool(ThreadPoolConfig{threads, 1024})
    {
    }

    /** Waits for queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one task (runs it inline when the pool has no
     * workers). Blocks while the queue is full. Tasks must not
     * throw; a task that does aborts via std::terminate, matching
     * the library's panic-on-bug convention.
     */
    void submit(Task task);

    /** Block until every task submitted so far has finished. */
    void wait();

    /** Worker count (0 = inline mode). */
    std::size_t threadCount() const { return workers.size(); }

    /** Accounting snapshot (takes the pool lock briefly). */
    ThreadPoolStats stats() const;

    /**
     * Run fn(0) .. fn(n-1), fanning across the workers, and wait for
     * all of them. With zero workers this is a plain serial loop.
     * `fn` must be safe to invoke concurrently for distinct indices.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        if (workers.empty()) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        for (std::size_t i = 0; i < n; ++i)
            submit([&fn, i] { fn(i); });
        wait();
    }

    /**
     * The default worker count for `--jobs`: the hardware
     * concurrency, or 1 when the runtime cannot report it.
     */
    static std::size_t defaultThreads();

  private:
    void workerLoop();
    void runTask(Task &task);

    mutable std::mutex mu;
    std::condition_variable workAvailable;
    std::condition_variable spaceAvailable;
    std::condition_variable idle;
    std::deque<Task> queue;
    std::size_t queueCapacity;
    std::size_t inFlight = 0; // queued + currently executing
    bool stopping = false;
    ThreadPoolStats counts;
    std::vector<std::thread> workers;
};

} // namespace hotpath

#endif // HOTPATH_SUPPORT_THREAD_POOL_HH
