/**
 * @file
 * Deterministic pseudo-random number generation and samplers.
 *
 * All experiments in this library must be exactly reproducible from a
 * seed, so we ship our own generators (SplitMix64 for seeding,
 * Xoshiro256** as the workhorse) instead of relying on
 * implementation-defined std::default_random_engine behaviour.
 *
 * The samplers cover the needs of the workload layer: uniform ranges,
 * Bernoulli branch outcomes, Zipf-like popularity skews, and a Walker
 * alias table for O(1) draws from large discrete distributions (the
 * calibrated SPEC workloads sample from up to ~62k path frequencies).
 */

#ifndef HOTPATH_SUPPORT_RANDOM_HH
#define HOTPATH_SUPPORT_RANDOM_HH

#include <cstdint>
#include <vector>

namespace hotpath
{

/** SplitMix64: used to expand a single u64 seed into generator state. */
class SplitMix64
{
  public:
    /** Seed the sequence; equal seeds give equal sequences. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** by Blackman and Vigna: fast, high-quality, 256-bit
 * state, deterministic across platforms.
 */
class Rng
{
  public:
    /** Output type (UniformRandomBitGenerator requirement). */
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 state expansion; equal seeds give equal
     *  streams on every platform. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    std::uint64_t operator()() { return next(); }

    /** Smallest value next() can return. */
    static constexpr std::uint64_t min() { return 0; }
    /** Largest value next() can return. */
    static constexpr std::uint64_t max() { return ~0ull; }

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /** Fork an independent stream (seeded from this one). */
    Rng fork();

  private:
    std::uint64_t s[4];
};

/**
 * Walker alias method for O(1) sampling from a fixed discrete
 * distribution. Construction is O(n).
 */
class AliasSampler
{
  public:
    /**
     * Build from non-negative weights; at least one weight must be
     * positive. Weights need not be normalized.
     */
    explicit AliasSampler(const std::vector<double> &weights);

    /** Draw one index distributed according to the weights. */
    std::size_t sample(Rng &rng) const;

    /** Number of outcomes. */
    std::size_t size() const { return probability.size(); }

    /** Normalized probability of outcome i (for tests). */
    double probabilityOf(std::size_t i) const { return normalized[i]; }

  private:
    std::vector<double> probability; // acceptance threshold per slot
    std::vector<std::uint32_t> alias;
    std::vector<double> normalized;
};

/**
 * Zipf(s) weights over ranks 1..n: weight(k) = 1 / k^s. Used to build
 * skewed popularity distributions; normalize as needed.
 */
std::vector<double> zipfWeights(std::size_t n, double s);

} // namespace hotpath

#endif // HOTPATH_SUPPORT_RANDOM_HH
