/**
 * @file
 * A non-owning, trivially copyable reference to a callable.
 *
 * `FunctionRef<R(Args...)>` is the hot-path replacement for
 * `const std::function<R(Args...)>&` parameters: it never allocates
 * (a `std::function` constructed from a lambda whose captures exceed
 * the small-buffer optimization heap-allocates on every call site),
 * it is two words (object pointer + invoker), and it converts
 * implicitly from any callable - lambdas, function pointers, and
 * `std::function` itself - so call sites do not change.
 *
 * Because it does not own the callable, a FunctionRef must not
 * outlive the callable it was constructed from. Use it only for
 * parameters that are invoked before the call returns (the session
 * table's visitor callbacks); anything *stored* for later (the
 * engine's frame callback, the allocation-failure hook) must keep
 * using `std::function`.
 */

#ifndef HOTPATH_SUPPORT_FUNCTION_REF_HH
#define HOTPATH_SUPPORT_FUNCTION_REF_HH

#include <memory>
#include <type_traits>
#include <utility>

namespace hotpath::support
{

template <typename Signature>
class FunctionRef;

/** Non-owning callable reference; see the file comment. */
template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    /** Bind to any callable invocable as R(Args...). The referenced
     *  callable must outlive this FunctionRef. */
    template <
        typename F,
        typename = std::enable_if_t<
            !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                            FunctionRef> &&
            std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&f) noexcept
        : obj(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          invoke([](void *o, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(o))(
                  std::forward<Args>(args)...);
          })
    {
    }

    /** Invoke the referenced callable. */
    R
    operator()(Args... args) const
    {
        return invoke(obj, std::forward<Args>(args)...);
    }

  private:
    void *obj;
    R (*invoke)(void *, Args...);
};

} // namespace hotpath::support

#endif // HOTPATH_SUPPORT_FUNCTION_REF_HH
