/**
 * @file
 * Lightweight trace optimization (the "optimize and emit" step of
 * Dynamo's fragment formation, Section 6).
 *
 * Works on a straight-line IrSequence with Guard side exits - the
 * concatenated IR of a NET trace. Four classic passes:
 *
 *  - constant propagation and folding (immediates flow through
 *    arithmetic; constant-true guards are removed, which is exactly
 *    Dynamo's branch elimination on the recorded direction);
 *  - copy propagation (Mov chains collapse);
 *  - redundant load elimination with store-to-load forwarding
 *    (conservative aliasing: any store with a different address key
 *    kills all available loads);
 *  - dead code elimination (backward liveness; side exits are
 *    assumed to reconstruct register state via exit stubs, so a
 *    Guard keeps only its condition register alive - all registers
 *    are live out of the trace's end).
 *
 * The optimizer preserves straight-line semantics regardless of
 * guard outcomes: for any initial state, register contents at the
 * end and the final memory image are unchanged, and retained guards
 * see the same values. Verified by differential execution in the
 * tests.
 */

#ifndef HOTPATH_OPT_TRACE_OPTIMIZER_HH
#define HOTPATH_OPT_TRACE_OPTIMIZER_HH

#include "opt/ir.hh"

namespace hotpath
{

/** What each pass accomplished on one trace. */
struct OptStats
{
    std::size_t inputInstructions = 0;
    std::size_t outputInstructions = 0;
    std::size_t constantsFolded = 0;
    std::size_t copiesPropagated = 0;
    std::size_t subexpressionsEliminated = 0;
    std::size_t loadsEliminated = 0;
    std::size_t guardsRemoved = 0;
    std::size_t deadRemoved = 0;

    /** Optimized size relative to the input (1.0 = no gain). */
    double
    ratio() const
    {
        return inputInstructions == 0
            ? 1.0
            : static_cast<double>(outputInstructions) /
                  static_cast<double>(inputInstructions);
    }
};

/** Trace optimizer configuration. */
struct TraceOptimizerConfig
{
    bool constantFolding = true;
    bool copyPropagation = true;
    /** Common-subexpression elimination by local value numbering. */
    bool cse = true;
    bool loadElimination = true;
    bool deadCodeElimination = true;
    /** Pass pipeline repetitions (folding exposes more dead code). */
    int iterations = 2;
};

/** Optimizes straight-line traces. */
class TraceOptimizer
{
  public:
    explicit TraceOptimizer(TraceOptimizerConfig config = {})
        : cfg(config)
    {}

    /** Optimize `trace` in place; returns the pass statistics. */
    OptStats optimize(IrSequence &trace) const;

  private:
    std::size_t foldConstants(IrSequence &trace,
                              std::size_t &guards_removed) const;
    std::size_t propagateCopies(IrSequence &trace) const;
    std::size_t eliminateSubexpressions(IrSequence &trace) const;
    std::size_t eliminateLoads(IrSequence &trace) const;
    std::size_t eliminateDeadCode(IrSequence &trace) const;

    TraceOptimizerConfig cfg;
};

} // namespace hotpath

#endif // HOTPATH_OPT_TRACE_OPTIMIZER_HH
