#include "opt/trace_optimizer.hh"

#include <array>
#include <limits>
#include <optional>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

bool
fitsImm(std::int64_t value)
{
    return value >= std::numeric_limits<std::int32_t>::min() &&
           value <= std::numeric_limits<std::int32_t>::max();
}

} // namespace

std::size_t
TraceOptimizer::foldConstants(IrSequence &trace,
                              std::size_t &guards_removed) const
{
    std::array<std::optional<std::int64_t>, kIrRegs> known;
    IrSequence out;
    out.reserve(trace.size());
    std::size_t folded = 0;

    auto value_of = [&](std::uint8_t reg) { return known[reg]; };
    auto fold_to = [&](IrInstr &instr, std::int64_t value) {
        known[instr.dst] = value;
        if (fitsImm(value)) {
            instr.op = IrOp::LoadImm;
            instr.imm = static_cast<std::int32_t>(value);
            instr.src1 = 0;
            instr.src2 = 0;
            ++folded;
        }
    };

    for (IrInstr instr : trace) {
        const auto a = value_of(instr.src1);
        const auto b = value_of(instr.src2);
        switch (instr.op) {
          case IrOp::LoadImm:
            known[instr.dst] = instr.imm;
            break;
          case IrOp::Mov:
            if (a)
                fold_to(instr, *a);
            else
                known[instr.dst].reset();
            break;
          case IrOp::AddImm:
            if (a)
                fold_to(instr, *a + instr.imm);
            else
                known[instr.dst].reset();
            break;
          case IrOp::Add:
            if (a && b)
                fold_to(instr, *a + *b);
            else
                known[instr.dst].reset();
            break;
          case IrOp::Sub:
            if (a && b)
                fold_to(instr, *a - *b);
            else
                known[instr.dst].reset();
            break;
          case IrOp::Mul:
            if (a && b)
                fold_to(instr, *a * *b);
            else
                known[instr.dst].reset();
            break;
          case IrOp::AndOp:
            if (a && b)
                fold_to(instr, *a & *b);
            else
                known[instr.dst].reset();
            break;
          case IrOp::CmpLt:
            if (a && b)
                fold_to(instr, *a < *b ? 1 : 0);
            else
                known[instr.dst].reset();
            break;
          case IrOp::Load:
            known[instr.dst].reset();
            break;
          case IrOp::Store:
            break;
          case IrOp::Guard:
            if (a && *a == instr.imm) {
                // The recorded direction is provably taken: the
                // guard can never fire. This is Dynamo's branch
                // elimination along the trace.
                ++guards_removed;
                continue;
            }
            break;
        }
        out.push_back(instr);
    }
    trace = std::move(out);
    return folded;
}

std::size_t
TraceOptimizer::propagateCopies(IrSequence &trace) const
{
    std::array<std::uint8_t, kIrRegs> alias;
    for (std::size_t i = 0; i < kIrRegs; ++i)
        alias[i] = static_cast<std::uint8_t>(i);
    std::size_t rewritten = 0;

    auto rewrite = [&](std::uint8_t &reg) {
        if (alias[reg] != reg) {
            reg = alias[reg];
            ++rewritten;
        }
    };
    auto on_write = [&](std::uint8_t dst) {
        for (std::size_t i = 0; i < kIrRegs; ++i) {
            if (alias[i] == dst &&
                i != static_cast<std::size_t>(dst)) {
                alias[i] = static_cast<std::uint8_t>(i);
            }
        }
        alias[dst] = dst;
    };

    for (IrInstr &instr : trace) {
        // Rewrite reads through the alias map.
        const IrReads reads = readsOf(instr);
        if (reads.count >= 1)
            rewrite(instr.src1);
        if (reads.count >= 2)
            rewrite(instr.src2);

        if (!writesRegister(instr.op))
            continue;
        on_write(instr.dst);
        if (instr.op == IrOp::Mov && instr.dst != instr.src1)
            alias[instr.dst] = instr.src1;
    }
    return rewritten;
}

std::size_t
TraceOptimizer::eliminateSubexpressions(IrSequence &trace) const
{
    // Local value numbering over the straight line. Every register
    // carries a value number; arithmetic results are keyed by
    // (op, operand value numbers, imm) with commutative operand
    // normalization. A recomputation whose key is available in a
    // register that still holds that value number becomes a Mov.
    struct Key
    {
        IrOp op;
        std::uint32_t vn1;
        std::uint32_t vn2;
        std::int32_t imm;

        bool operator==(const Key &other) const = default;
    };
    struct Entry
    {
        Key key;
        std::uint32_t vn;
        std::uint8_t holding;
    };

    std::array<std::uint32_t, kIrRegs> reg_vn;
    for (std::size_t i = 0; i < kIrRegs; ++i)
        reg_vn[i] = static_cast<std::uint32_t>(i);
    std::uint32_t next_vn = kIrRegs;
    std::vector<Entry> table;
    std::size_t eliminated = 0;

    auto holds = [&](const Entry &entry) {
        return reg_vn[entry.holding] == entry.vn;
    };

    for (IrInstr &instr : trace) {
        const bool commutative = instr.op == IrOp::Add ||
                                 instr.op == IrOp::Mul ||
                                 instr.op == IrOp::AndOp;
        switch (instr.op) {
          case IrOp::Mov:
            reg_vn[instr.dst] = reg_vn[instr.src1];
            break;
          case IrOp::Add:
          case IrOp::Sub:
          case IrOp::Mul:
          case IrOp::AndOp:
          case IrOp::CmpLt:
          case IrOp::AddImm: {
            Key key;
            key.op = instr.op;
            key.vn1 = reg_vn[instr.src1];
            key.vn2 = instr.op == IrOp::AddImm
                ? 0
                : reg_vn[instr.src2];
            key.imm = instr.op == IrOp::AddImm ? instr.imm : 0;
            if (commutative && key.vn2 < key.vn1)
                std::swap(key.vn1, key.vn2);

            const Entry *hit = nullptr;
            for (const Entry &entry : table) {
                if (entry.key == key && holds(entry)) {
                    hit = &entry;
                    break;
                }
            }
            if (hit && hit->holding != instr.dst) {
                reg_vn[instr.dst] = hit->vn;
                instr.op = IrOp::Mov;
                instr.src1 = hit->holding;
                instr.src2 = 0;
                instr.imm = 0;
                ++eliminated;
            } else if (hit) {
                // Recomputed into the register that already holds
                // it: a Mov-to-self, which DCE drops.
                reg_vn[instr.dst] = hit->vn;
                instr.op = IrOp::Mov;
                instr.src1 = instr.dst;
                instr.src2 = 0;
                instr.imm = 0;
                ++eliminated;
            } else {
                const std::uint32_t vn = next_vn++;
                reg_vn[instr.dst] = vn;
                table.push_back({key, vn, instr.dst});
            }
            break;
          }
          case IrOp::LoadImm: {
            // Same constant, same value number: exposes downstream
            // equalities without rewriting anything here.
            Key key;
            key.op = IrOp::LoadImm;
            key.vn1 = 0;
            key.vn2 = 0;
            key.imm = instr.imm;
            const Entry *hit = nullptr;
            for (const Entry &entry : table) {
                if (entry.key == key) {
                    hit = &entry;
                    break;
                }
            }
            if (hit) {
                reg_vn[instr.dst] = hit->vn;
            } else {
                const std::uint32_t vn = next_vn++;
                reg_vn[instr.dst] = vn;
                table.push_back({key, vn, instr.dst});
            }
            break;
          }
          case IrOp::Load:
            // Memory values get fresh numbers (the dedicated load
            // pass handles memory redundancy).
            reg_vn[instr.dst] = next_vn++;
            break;
          case IrOp::Store:
          case IrOp::Guard:
            break;
        }
    }
    return eliminated;
}

std::size_t
TraceOptimizer::eliminateLoads(IrSequence &trace) const
{
    struct Available
    {
        std::uint8_t base;
        std::int32_t imm;
        std::uint8_t holding;
    };
    std::vector<Available> table;
    std::size_t eliminated = 0;

    auto invalidate_reg = [&](std::uint8_t reg) {
        std::erase_if(table, [&](const Available &entry) {
            return entry.base == reg || entry.holding == reg;
        });
    };
    auto find = [&](std::uint8_t base,
                    std::int32_t imm) -> const Available * {
        for (const Available &entry : table) {
            if (entry.base == base && entry.imm == imm)
                return &entry;
        }
        return nullptr;
    };

    for (IrInstr &instr : trace) {
        switch (instr.op) {
          case IrOp::Load: {
            const Available *hit = find(instr.src1, instr.imm);
            if (hit && hit->holding != instr.dst) {
                // The value is already in a register: forward it.
                instr.op = IrOp::Mov;
                instr.src1 = hit->holding;
                instr.imm = 0;
                ++eliminated;
                invalidate_reg(instr.dst);
            } else if (hit) {
                // Reloading into the same register: pure no-op, but
                // keep it as a Mov-to-self for DCE to drop.
                instr.op = IrOp::Mov;
                instr.src1 = instr.dst;
                instr.imm = 0;
                ++eliminated;
                // The dst still holds the value: table unchanged.
            } else {
                const std::uint8_t base = instr.src1;
                const std::int32_t imm = instr.imm;
                invalidate_reg(instr.dst);
                if (base != instr.dst)
                    table.push_back({base, imm, instr.dst});
            }
            break;
          }
          case IrOp::Store: {
            // Conservative aliasing: a store kills everything, then
            // provides its own value for forwarding.
            table.clear();
            table.push_back({instr.src1, instr.imm, instr.src2});
            break;
          }
          case IrOp::Guard:
            break;
          default:
            if (writesRegister(instr.op))
                invalidate_reg(instr.dst);
            break;
        }
    }
    return eliminated;
}

std::size_t
TraceOptimizer::eliminateDeadCode(IrSequence &trace) const
{
    // All registers are live out of the trace end; guards keep only
    // their condition alive (exit stubs reconstruct the rest).
    std::array<bool, kIrRegs> live;
    live.fill(true);

    std::vector<bool> keep(trace.size(), true);
    std::size_t removed = 0;

    for (std::size_t i = trace.size(); i-- > 0;) {
        const IrInstr &instr = trace[i];
        if (hasSideEffect(instr.op)) {
            const IrReads reads = readsOf(instr);
            for (std::size_t r = 0; r < reads.count; ++r)
                live[reads.regs[r]] = true;
            continue;
        }
        // Mov-to-self is dead no matter what.
        const bool self_move =
            instr.op == IrOp::Mov && instr.dst == instr.src1;
        if (!live[instr.dst] || self_move) {
            keep[i] = false;
            ++removed;
            continue;
        }
        live[instr.dst] = false;
        const IrReads reads = readsOf(instr);
        for (std::size_t r = 0; r < reads.count; ++r)
            live[reads.regs[r]] = true;
    }

    if (removed > 0) {
        IrSequence out;
        out.reserve(trace.size() - removed);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (keep[i])
                out.push_back(trace[i]);
        }
        trace = std::move(out);
    }
    return removed;
}

OptStats
TraceOptimizer::optimize(IrSequence &trace) const
{
    OptStats stats;
    stats.inputInstructions = trace.size();

    for (int iter = 0; iter < cfg.iterations; ++iter) {
        if (cfg.constantFolding) {
            stats.constantsFolded +=
                foldConstants(trace, stats.guardsRemoved);
        }
        if (cfg.copyPropagation)
            stats.copiesPropagated += propagateCopies(trace);
        if (cfg.cse) {
            stats.subexpressionsEliminated +=
                eliminateSubexpressions(trace);
        }
        if (cfg.loadElimination)
            stats.loadsEliminated += eliminateLoads(trace);
        if (cfg.deadCodeElimination)
            stats.deadRemoved += eliminateDeadCode(trace);
    }

    stats.outputInstructions = trace.size();
    return stats;
}

} // namespace hotpath
