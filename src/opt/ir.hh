/**
 * @file
 * A small straight-line register IR for fragment optimization.
 *
 * Dynamo's speedup comes from laying out hot paths contiguously and
 * running lightweight optimizations over them. To measure that
 * effect instead of assuming it, every basic block carries a
 * deterministic sequence of IR instructions (see ir_gen.hh); a NET
 * trace concatenates its blocks' IR into one straight line with
 * guards at the original branch points, and the trace optimizer
 * (trace_optimizer.hh) shrinks it.
 *
 * The IR is deliberately minimal: 16 integer registers, flat byte-
 * addressed memory, no control flow except Guard (a side exit that
 * leaves the trace when its condition fails, i.e. when execution
 * diverges from the recorded path).
 */

#ifndef HOTPATH_OPT_IR_HH
#define HOTPATH_OPT_IR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hotpath
{

/** Number of architectural registers in the IR. */
constexpr std::size_t kIrRegs = 16;

/** IR operations. */
enum class IrOp : std::uint8_t
{
    LoadImm, // r[dst] = imm
    Mov,     // r[dst] = r[src1]
    Add,     // r[dst] = r[src1] + r[src2]
    Sub,     // r[dst] = r[src1] - r[src2]
    Mul,     // r[dst] = r[src1] * r[src2]
    AndOp,   // r[dst] = r[src1] & r[src2]
    AddImm,  // r[dst] = r[src1] + imm
    CmpLt,   // r[dst] = r[src1] < r[src2] ? 1 : 0
    Load,    // r[dst] = mem[r[src1] + imm]
    Store,   // mem[r[src1] + imm] = r[src2]
    Guard,   // side exit if r[src1] != imm (trace stays if equal)
};

/** One IR instruction. */
struct IrInstr
{
    IrOp op = IrOp::LoadImm;
    std::uint8_t dst = 0;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
    std::int32_t imm = 0;

    bool operator==(const IrInstr &other) const = default;
};

/** True if the instruction writes `dst`. */
constexpr bool
writesRegister(IrOp op)
{
    return op != IrOp::Store && op != IrOp::Guard;
}

/** True if the instruction has side effects beyond its dst. */
constexpr bool
hasSideEffect(IrOp op)
{
    return op == IrOp::Store || op == IrOp::Guard;
}

/** Registers read by an instruction (0, 1 or 2 of them). */
struct IrReads
{
    std::uint8_t regs[2];
    std::size_t count;
};

IrReads readsOf(const IrInstr &instr);

/** Render one instruction for diagnostics. */
std::string toString(const IrInstr &instr);

/** A straight-line IR sequence (one block body or a whole trace). */
using IrSequence = std::vector<IrInstr>;

/**
 * Reference interpreter for differential testing: executes a
 * sequence over explicit register and memory state. Guards compare
 * and record whether they would have exited; execution continues
 * either way so that original and optimized traces can be compared
 * on the same inputs.
 */
class IrMachine
{
  public:
    IrMachine();

    /** Set an initial register value. */
    void setRegister(std::size_t reg, std::int64_t value);

    std::int64_t reg(std::size_t index) const { return regs[index]; }

    /** Sparse memory cell (0 if never written). */
    std::int64_t memory(std::int64_t address) const;

    /** Execute the whole sequence. */
    void run(const IrSequence &sequence);

    /** Outcomes of the guards, in execution order. */
    const std::vector<bool> &guardsPassed() const { return guards; }

    /** Every (address, value) the run stored, final values. */
    std::vector<std::pair<std::int64_t, std::int64_t>>
    storesSnapshot() const;

  private:
    std::vector<std::int64_t> regs;
    std::vector<std::pair<std::int64_t, std::int64_t>> mem; // sparse
    std::vector<bool> guards;
};

} // namespace hotpath

#endif // HOTPATH_OPT_IR_HH
