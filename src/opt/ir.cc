#include "opt/ir.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace hotpath
{

IrReads
readsOf(const IrInstr &instr)
{
    switch (instr.op) {
      case IrOp::LoadImm:
        return {{0, 0}, 0};
      case IrOp::Mov:
      case IrOp::AddImm:
      case IrOp::Load:
      case IrOp::Guard:
        return {{instr.src1, 0}, 1};
      case IrOp::Add:
      case IrOp::Sub:
      case IrOp::Mul:
      case IrOp::AndOp:
      case IrOp::CmpLt:
      case IrOp::Store:
        return {{instr.src1, instr.src2}, 2};
    }
    return {{0, 0}, 0};
}

std::string
toString(const IrInstr &instr)
{
    std::ostringstream os;
    const auto d = static_cast<int>(instr.dst);
    const auto a = static_cast<int>(instr.src1);
    const auto b = static_cast<int>(instr.src2);
    switch (instr.op) {
      case IrOp::LoadImm:
        os << "r" << d << " = " << instr.imm;
        break;
      case IrOp::Mov:
        os << "r" << d << " = r" << a;
        break;
      case IrOp::Add:
        os << "r" << d << " = r" << a << " + r" << b;
        break;
      case IrOp::Sub:
        os << "r" << d << " = r" << a << " - r" << b;
        break;
      case IrOp::Mul:
        os << "r" << d << " = r" << a << " * r" << b;
        break;
      case IrOp::AndOp:
        os << "r" << d << " = r" << a << " & r" << b;
        break;
      case IrOp::AddImm:
        os << "r" << d << " = r" << a << " + " << instr.imm;
        break;
      case IrOp::CmpLt:
        os << "r" << d << " = r" << a << " < r" << b;
        break;
      case IrOp::Load:
        os << "r" << d << " = mem[r" << a << " + " << instr.imm
           << "]";
        break;
      case IrOp::Store:
        os << "mem[r" << a << " + " << instr.imm << "] = r" << b;
        break;
      case IrOp::Guard:
        os << "guard r" << a << " == " << instr.imm;
        break;
    }
    return os.str();
}

IrMachine::IrMachine() : regs(kIrRegs, 0) {}

void
IrMachine::setRegister(std::size_t reg, std::int64_t value)
{
    HOTPATH_ASSERT(reg < kIrRegs, "bad register");
    regs[reg] = value;
}

std::int64_t
IrMachine::memory(std::int64_t address) const
{
    for (auto it = mem.rbegin(); it != mem.rend(); ++it) {
        if (it->first == address)
            return it->second;
    }
    return 0;
}

void
IrMachine::run(const IrSequence &sequence)
{
    for (const IrInstr &instr : sequence) {
        const std::int64_t a = regs[instr.src1];
        const std::int64_t b = regs[instr.src2];
        switch (instr.op) {
          case IrOp::LoadImm:
            regs[instr.dst] = instr.imm;
            break;
          case IrOp::Mov:
            regs[instr.dst] = a;
            break;
          case IrOp::Add:
            regs[instr.dst] = a + b;
            break;
          case IrOp::Sub:
            regs[instr.dst] = a - b;
            break;
          case IrOp::Mul:
            regs[instr.dst] = a * b;
            break;
          case IrOp::AndOp:
            regs[instr.dst] = a & b;
            break;
          case IrOp::AddImm:
            regs[instr.dst] = a + instr.imm;
            break;
          case IrOp::CmpLt:
            regs[instr.dst] = a < b ? 1 : 0;
            break;
          case IrOp::Load:
            regs[instr.dst] = memory(a + instr.imm);
            break;
          case IrOp::Store:
            mem.emplace_back(a + instr.imm, b);
            break;
          case IrOp::Guard:
            guards.push_back(a == instr.imm);
            break;
        }
    }
}

std::vector<std::pair<std::int64_t, std::int64_t>>
IrMachine::storesSnapshot() const
{
    // Final value per address, sorted by address.
    std::vector<std::pair<std::int64_t, std::int64_t>> snapshot;
    for (const auto &[address, value] : mem) {
        bool found = false;
        for (auto &entry : snapshot) {
            if (entry.first == address) {
                entry.second = value;
                found = true;
                break;
            }
        }
        if (!found)
            snapshot.emplace_back(address, value);
    }
    std::sort(snapshot.begin(), snapshot.end());
    return snapshot;
}

} // namespace hotpath
