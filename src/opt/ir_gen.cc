#include "opt/ir_gen.hh"

#include "support/logging.hh"
#include "support/random.hh"

namespace hotpath
{

BlockIrAssigner::BlockIrAssigner(const Program &program,
                                 IrGenConfig config)
    : prog(program), cfg(config), cache(program.numBlocks()),
      generated(program.numBlocks(), false)
{
    HOTPATH_ASSERT(program.finalized(), "program not finalized");
}

const IrSequence &
BlockIrAssigner::blockIr(BlockId block) const
{
    HOTPATH_ASSERT(block < cache.size(), "bad block id");
    if (!generated[block]) {
        cache[block] = generate(block);
        generated[block] = true;
    }
    return cache[block];
}

IrSequence
BlockIrAssigner::traceIr(const std::vector<BlockId> &blocks) const
{
    IrSequence trace;
    for (BlockId block : blocks) {
        const IrSequence &body = blockIr(block);
        trace.insert(trace.end(), body.begin(), body.end());
    }
    return trace;
}

IrSequence
BlockIrAssigner::generate(BlockId block) const
{
    const BasicBlock &info = prog.block(block);
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + block);

    // Low registers are favoured (realistic pressure); r0..r3 double
    // as memory base registers.
    auto pick_reg = [&]() -> std::uint8_t {
        const auto raw = static_cast<std::uint8_t>(
            rng.nextBounded(kIrRegs));
        return rng.nextBool(0.55)
            ? static_cast<std::uint8_t>(raw % 6)
            : raw;
    };
    auto pick_base = [&]() -> std::uint8_t {
        return static_cast<std::uint8_t>(rng.nextBounded(4));
    };
    auto pick_offset = [&]() -> std::int32_t {
        return static_cast<std::int32_t>(rng.nextBounded(8)) * 8;
    };

    IrSequence body;
    body.reserve(info.instrCount);

    const bool needs_guard = info.kind == BranchKind::Conditional ||
                             info.kind == BranchKind::Indirect;
    const std::uint32_t body_count =
        needs_guard ? info.instrCount - 1 : info.instrCount;

    for (std::uint32_t i = 0; i < body_count; ++i) {
        IrInstr instr;
        const double kind = rng.nextDouble();
        if (kind < cfg.loadFraction) {
            instr.op = IrOp::Load;
            instr.dst = pick_reg();
            instr.src1 = pick_base();
            instr.imm = pick_offset();
        } else if (kind < cfg.loadFraction + cfg.storeFraction) {
            instr.op = IrOp::Store;
            instr.src1 = pick_base();
            instr.src2 = pick_reg();
            instr.imm = pick_offset();
        } else if (kind < cfg.loadFraction + cfg.storeFraction +
                              cfg.immFraction) {
            instr.op = IrOp::LoadImm;
            instr.dst = pick_reg();
            instr.imm =
                static_cast<std::int32_t>(rng.nextBounded(64));
        } else if (kind < cfg.loadFraction + cfg.storeFraction +
                              cfg.immFraction + cfg.movFraction) {
            instr.op = rng.nextBool(0.5) ? IrOp::Mov : IrOp::AddImm;
            instr.dst = pick_reg();
            instr.src1 = pick_reg();
            instr.imm = instr.op == IrOp::AddImm
                ? static_cast<std::int32_t>(rng.nextBounded(16))
                : 0;
        } else {
            constexpr IrOp arith[] = {IrOp::Add, IrOp::Sub,
                                      IrOp::Mul, IrOp::AndOp,
                                      IrOp::CmpLt};
            instr.op = arith[rng.nextBounded(5)];
            instr.dst = pick_reg();
            instr.src1 = pick_reg();
            instr.src2 = pick_reg();
        }
        body.push_back(instr);
    }

    if (needs_guard) {
        // The block's branch becomes a side exit: the trace assumes
        // the recorded direction, modelled as r[x] == imm.
        IrInstr guard;
        guard.op = IrOp::Guard;
        guard.src1 = pick_reg();
        guard.imm = static_cast<std::int32_t>(rng.nextBounded(2));
        body.push_back(guard);
    }

    HOTPATH_ASSERT(body.size() == info.instrCount,
                   "IR body size mismatch");
    return body;
}

} // namespace hotpath
