/**
 * @file
 * Deterministic per-block IR assignment.
 *
 * Every basic block of a Program gets a fixed IR body with exactly
 * block.instrCount instructions, derived from (seed, block id) - the
 * same block always carries the same code, so a trace's IR is simply
 * the concatenation of its blocks' bodies. Blocks ending in a
 * conditional or indirect terminator end with a Guard (the trace's
 * side exit at that branch point).
 *
 * The generated mix is biased toward the redundancy real code
 * exhibits (low registers favoured, a few base registers for memory,
 * small immediate offsets), so the trace optimizer has realistic
 * opportunities without being handed free wins.
 */

#ifndef HOTPATH_OPT_IR_GEN_HH
#define HOTPATH_OPT_IR_GEN_HH

#include <vector>

#include "cfg/program.hh"
#include "opt/ir.hh"

namespace hotpath
{

/** IR generation parameters. */
struct IrGenConfig
{
    std::uint64_t seed = 1;

    /** Fraction of body instructions that are memory loads. */
    double loadFraction = 0.18;
    /** Fraction that are memory stores. */
    double storeFraction = 0.10;
    /** Fraction that are immediates. */
    double immFraction = 0.14;
    /** Fraction that are register copies. */
    double movFraction = 0.12;
    // The remainder is three-address arithmetic.
};

/** Assigns and caches an IR body per block of one Program. */
class BlockIrAssigner
{
  public:
    explicit BlockIrAssigner(const Program &program,
                             IrGenConfig config = {});

    /** The block's IR body (generated on first use). */
    const IrSequence &blockIr(BlockId block) const;

    /** Concatenated IR of a trace (block bodies in order). */
    IrSequence traceIr(const std::vector<BlockId> &blocks) const;

    const Program &program() const { return prog; }

  private:
    IrSequence generate(BlockId block) const;

    const Program &prog;
    IrGenConfig cfg;
    mutable std::vector<IrSequence> cache;
    mutable std::vector<bool> generated;
};

} // namespace hotpath

#endif // HOTPATH_OPT_IR_GEN_HH
