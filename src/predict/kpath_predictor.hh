/**
 * @file
 * k-iteration path profile based prediction.
 *
 * The multi-iteration refinement of path profiling (D'Elia and
 * Demetrescu's k-iteration Ball-Larus scheme): instead of counting
 * single acyclic paths, the profiler tracks the concatenation of the
 * last k paths executed under the same head - paths that span k
 * consecutive loop iterations. A path is predicted hot only when its
 * current k-iteration context reaches the prediction delay, so the
 * scheme demands *stable cyclic behaviour*, not just a hot single
 * iteration.
 *
 * Cost shape: bit tracing still pays one history shift per branch,
 * and every completed path pays one table update - but the table is
 * keyed by k-path, whose key space multiplies with every extra
 * iteration tracked. The predictor therefore sits at the expensive
 * end of the MOC spectrum: strictly more context than single-path
 * profiling, strictly more counter space, and (the paper's "less is
 * more" punchline) only marginal prediction-quality differences for
 * hot-path selection. k = 1 degenerates to plain path profiling.
 */

#ifndef HOTPATH_PREDICT_KPATH_PREDICTOR_HH
#define HOTPATH_PREDICT_KPATH_PREDICTOR_HH

#include <unordered_map>
#include <vector>

#include "predict/predictor.hh"
#include "profile/counter_table.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
} // namespace telemetry

/** Predicts a path when its k-iteration context reaches the delay. */
class KPathPredictor : public HotPathPredictor
{
  public:
    /**
     * `delay` = profiled executions of one k-path before prediction;
     * `k` = consecutive same-head iterations concatenated into one
     * profiled entity (>= 1; 1 = plain path profiling).
     */
    KPathPredictor(std::uint64_t delay, std::uint32_t k);

    /** Slide the head's window and count the resulting k-path;
     *  predicts the current path when its context reaches the delay. */
    bool observe(const PathEvent &event) override;

    /** Live k-path counters: the counter space. */
    std::size_t countersAllocated() const override;

    /** Profiling operations paid so far. */
    const ProfilingCost &cost() const override { return opCost; }

    /** Drop all counters and head windows (phase flush). */
    void reset() override;

    /** Scheme name for reports ("kpath<k>"). */
    std::string name() const override;

    /** The configured prediction delay. */
    std::uint64_t delay() const { return predictionDelay; }

    /** Iterations concatenated into one profiled entity (k). */
    std::uint32_t iterations() const { return windowLength; }

  private:
    /** Sliding window of the most recent paths under one head. */
    struct HeadWindow
    {
        std::vector<PathIndex> paths; // newest last
    };

    /** Mix the window contents into a nonzero 64-bit table key. */
    std::uint64_t windowKey(const HeadWindow &window) const;

    std::uint64_t predictionDelay;
    std::uint32_t windowLength;
    std::unordered_map<HeadIndex, HeadWindow> windows;
    CounterTable counters;
    ProfilingCost opCost;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmObservations = nullptr;
    telemetry::Counter *tmPredictions = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_PREDICT_KPATH_PREDICTOR_HH
