/**
 * @file
 * Path profile based prediction (paper Section 4).
 *
 * The straightforward adaptation of an offline path profiling scheme:
 * profile every path execution with bit tracing (one history shift
 * per branch, one path-table update per completed path) and predict a
 * path as hot once its own execution count reaches the prediction
 * delay. Its counter space is one counter per distinct dynamic path,
 * which can be exponential in the program size.
 */

#ifndef HOTPATH_PREDICT_PATH_PROFILE_PREDICTOR_HH
#define HOTPATH_PREDICT_PATH_PROFILE_PREDICTOR_HH

#include "predict/predictor.hh"
#include "profile/counter_table.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
} // namespace telemetry

/** Predicts a path when its execution count reaches the delay. */
class PathProfilePredictor : public HotPathPredictor
{
  public:
    /** `delay` = number of profiled executions before prediction. */
    explicit PathProfilePredictor(std::uint64_t delay);

    /** Count one path execution; predicts the path when its own
     *  count reaches the delay. */
    bool observe(const PathEvent &event) override;

    /** Live path counters: the counter space. */
    std::size_t countersAllocated() const override;

    /** Profiling operations paid so far. */
    const ProfilingCost &cost() const override { return opCost; }

    /** Drop all counters (phase flush). */
    void reset() override;

    /** Scheme name for reports. */
    std::string name() const override { return "path-profile"; }

    /** The configured prediction delay. */
    std::uint64_t delay() const { return predictionDelay; }

  private:
    static std::uint64_t
    keyOf(PathIndex path)
    {
        return static_cast<std::uint64_t>(path) + 1;
    }

    std::uint64_t predictionDelay;
    CounterTable counters;
    ProfilingCost opCost;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmObservations = nullptr;
    telemetry::Counter *tmPredictions = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_PREDICT_PATH_PROFILE_PREDICTOR_HH
