#include "predict/branch_bias_predictor.hh"

#include "support/logging.hh"

namespace hotpath
{

namespace
{

std::uint64_t
headKey(BlockId head)
{
    return static_cast<std::uint64_t>(head) + 1;
}

} // namespace

BranchBiasTraceBuilder::BranchBiasTraceBuilder(const Program &program,
                                               NetTraceSink &sink,
                                               BranchBiasConfig config)
    : prog(program), sink(sink), cfg(config)
{
    HOTPATH_ASSERT(program.finalized(), "program not finalized");
    HOTPATH_ASSERT(cfg.hotThreshold >= 1);
}

void
BranchBiasTraceBuilder::onTransfer(const TransferEvent &event)
{
    // Boa profiles every branch: one counter update per executed
    // branch instruction (fallthroughs are not branches).
    if (event.kind != BranchKind::Fallthrough) {
        edges.onTransfer(event);
        ++opCost.counterUpdates;
    }

    if (!event.backward)
        return;

    const BlockId head = event.to;
    if (ownedHeads.count(head))
        return;

    ++opCost.counterUpdates;
    if (headCounters.increment(headKey(head)) < cfg.hotThreshold)
        return;

    // Hot group entry found: construct the path statically from the
    // collected branch frequencies.
    sink.onTrace(construct(head));
    ++constructed;
    ownedHeads.insert(head);
}

NetTrace
BranchBiasTraceBuilder::construct(BlockId head) const
{
    NetTrace trace;
    trace.head = head;
    trace.signature.reset(prog.block(head).addr);
    std::vector<BlockId> continuations; // simulated call stack
    bool saw_call = false;

    BlockId cur = head;
    for (;;) {
        const BasicBlock &block = prog.block(cur);
        trace.blocks.push_back(cur);
        trace.instructions += block.instrCount;
        if (trace.blocks.size() >= cfg.maxBlocks) {
            trace.endReason = PathEndReason::LengthCap;
            return trace;
        }

        // Pick the likeliest dynamic successor from edge counts.
        BlockId next = kInvalidBlock;
        switch (block.kind) {
          case BranchKind::Fallthrough:
            next = block.successors[0];
            break;
          case BranchKind::Jump:
            next = block.successors[0];
            ++trace.branches;
            break;
          case BranchKind::Conditional: {
            const std::uint64_t taken_count =
                edges.countOf(cur, block.successors[0]);
            const std::uint64_t fall_count =
                edges.countOf(cur, block.successors[1]);
            const bool taken = taken_count >= fall_count;
            next = taken ? block.successors[0] : block.successors[1];
            trace.signature.pushOutcome(taken);
            ++trace.branches;
            break;
          }
          case BranchKind::Indirect: {
            std::uint64_t best = 0;
            next = block.successors[0];
            for (BlockId succ : block.successors) {
                const std::uint64_t count = edges.countOf(cur, succ);
                if (count > best) {
                    best = count;
                    next = succ;
                }
            }
            trace.signature.pushIndirectTarget(prog.block(next).addr);
            ++trace.branches;
            break;
          }
          case BranchKind::Call:
            continuations.push_back(block.successors[0]);
            saw_call = true;
            next = prog.procedure(block.callee).entry;
            ++trace.branches;
            break;
          case BranchKind::Return: {
            ++trace.branches;
            if (continuations.empty()) {
                // The dynamic return target is unknown to a static
                // walk that did not see the call: stop here.
                trace.endReason = PathEndReason::StreamEnd;
                return trace;
            }
            next = continuations.back();
            continuations.pop_back();
            trace.signature.pushIndirectTarget(prog.block(next).addr);
            if (isBackwardTransfer(block.branchSite(),
                                   prog.block(next).addr)) {
                trace.endReason = PathEndReason::BackwardBranch;
                return trace;
            }
            if (continuations.empty() && saw_call) {
                trace.endReason = PathEndReason::MatchingReturn;
                return trace;
            }
            cur = next;
            continue;
          }
        }

        if (isBackwardTransfer(block.branchSite(),
                               prog.block(next).addr)) {
            // The constructed path closes the loop here.
            trace.endReason = PathEndReason::BackwardBranch;
            return trace;
        }
        cur = next;
    }
}

} // namespace hotpath
