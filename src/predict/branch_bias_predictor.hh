/**
 * @file
 * Boa-style branch-bias path construction (paper Section 7).
 *
 * The Boa binary translator forms hot paths by profiling every
 * branch and, once a hot group entry is found, statically following
 * the most likely successor of each branch. The paper's critique,
 * which experiment X4 measures: per-branch frequencies ignore branch
 * correlation, so the constructed path can be one that never executes
 * as a whole - and the scheme pays a profiling operation on *every*
 * branch, where NET touches only path heads.
 *
 * BranchBiasTraceBuilder mirrors NetTraceBuilder's interface: head
 * counters arm on backward-branch targets, but instead of collecting
 * the next executing tail it walks the CFG from the hot head,
 * choosing at every branch the successor with the highest observed
 * edge count.
 */

#ifndef HOTPATH_PREDICT_BRANCH_BIAS_PREDICTOR_HH
#define HOTPATH_PREDICT_BRANCH_BIAS_PREDICTOR_HH

#include <unordered_set>

#include "cfg/program.hh"
#include "predict/net_trace_builder.hh"
#include "profile/edge_profile.hh"

namespace hotpath
{

/** Configuration for the branch-bias builder. */
struct BranchBiasConfig
{
    /** Head executions before the head is considered hot. */
    std::uint64_t hotThreshold = 50;
    /** Safety cap on constructed trace length in blocks. */
    std::uint32_t maxBlocks = 256;
};

/** Constructs hot paths from per-branch frequencies (Boa-style). */
class BranchBiasTraceBuilder : public ExecutionListener
{
  public:
    /** Build against `program` and `sink`; both must outlive the
     *  builder. */
    BranchBiasTraceBuilder(const Program &program, NetTraceSink &sink,
                           BranchBiasConfig config = {});

    /** Profile every branch edge and count backward-branch heads. */
    void onTransfer(const TransferEvent &event) override;

    /** Heads with live counters plus edge counters: counter space. */
    std::size_t
    countersAllocated() const
    {
        return headCounters.size() + edges.countersAllocated();
    }

    /** Profiling operations paid so far (per-branch updates). */
    const ProfilingCost &cost() const { return opCost; }

    /** Traces constructed so far. */
    std::uint64_t tracesConstructed() const { return constructed; }

  private:
    /** Walk the CFG from `head` along the likeliest successors. */
    NetTrace construct(BlockId head) const;

    const Program &prog;
    NetTraceSink &sink;
    BranchBiasConfig cfg;
    EdgeProfiler edges;
    CounterTable headCounters;
    std::unordered_set<BlockId> ownedHeads;
    std::uint64_t constructed = 0;
    ProfilingCost opCost;
};

} // namespace hotpath

#endif // HOTPATH_PREDICT_BRANCH_BIAS_PREDICTOR_HH
