/**
 * @file
 * CFG-level NET trace selection with incremental instrumentation
 * (paper Sections 4.1 and 4.2).
 *
 * This is the engine a dynamic optimizer embeds: it watches the raw
 * execution event stream, maintains counters only at path heads
 * (blocks entered via a backward taken branch), and when a head
 * crosses the hot threshold it collects the next executing tail by
 * incremental instrumentation - conceptually placing a breakpoint at
 * the end of each non-branching sequence, handling it, and placing
 * the next one until the tail ends. The completed trace is handed to
 * a sink (in Dynamo: the fragment cache).
 *
 * Once a head owns a trace it is retired from counting, modelling
 * execution entering the cached fragment instead of the interpreter.
 */

#ifndef HOTPATH_PREDICT_NET_TRACE_BUILDER_HH
#define HOTPATH_PREDICT_NET_TRACE_BUILDER_HH

#include <unordered_set>
#include <vector>

#include "paths/splitter.hh"
#include "profile/cost_model.hh"
#include "profile/counter_table.hh"
#include "sim/event.hh"

namespace hotpath
{

/** A collected NET trace (a speculative hot path). */
struct NetTrace
{
    /** Block that went hot and started the collection. */
    BlockId head = kInvalidBlock;
    /** The collected tail, head first, in execution order. */
    std::vector<BlockId> blocks;
    /** Branch-outcome signature of the collected tail. */
    PathSignature signature;
    /** Conditional branches taken while collecting. */
    std::uint32_t branches = 0;
    /** Instructions across the collected blocks. */
    std::uint32_t instructions = 0;
    /** Why collection stopped. */
    PathEndReason endReason = PathEndReason::BackwardBranch;
};

/** Receives completed traces. */
class NetTraceSink
{
  public:
    /** Sinks are owned elsewhere; destruction is uneventful. */
    virtual ~NetTraceSink() = default;

    /** Called once per completed trace, at collection end. */
    virtual void onTrace(const NetTrace &trace) = 0;
};

/** Breakpoint-level accounting for incremental instrumentation. */
struct CollectionCost
{
    /** Breakpoints placed (one per non-branching sequence). */
    std::uint64_t breakpointsPlaced = 0;
    /** Breakpoints hit and removed. */
    std::uint64_t breakpointsHit = 0;
    /** Traces completed. */
    std::uint64_t tracesCollected = 0;
};

/** NetTraceBuilder configuration. */
struct NetTraceBuilderConfig
{
    /** Head executions before the head is considered hot. */
    std::uint64_t hotThreshold = 50;
    /** Safety cap on trace length in blocks. */
    std::uint32_t maxBlocks = 256;
    /** Allow a head to collect another trace after its first. */
    bool reArm = false;
};

/** Online NET trace selection over the execution event stream. */
class NetTraceBuilder : public ExecutionListener
{
  public:
    /** Build against `sink`; the sink must outlive the builder. */
    NetTraceBuilder(NetTraceSink &sink,
                    NetTraceBuilderConfig config = {});

    /** Record one executed block into an active collection. */
    void onBlock(const BasicBlock &block) override;

    /** Watch transfers for backward taken branches (head counting)
     *  and for trace-ending conditions. */
    void onTransfer(const TransferEvent &event) override;

    /**
     * Count a head arrival that did not come from a backward branch.
     * Dynamo counts exits from the code cache the same way it counts
     * backward-branch targets - exit stubs make guard-exit blocks
     * potential heads of secondary traces. Call just before the
     * block executes (the armed collection, if any, starts with it).
     */
    void noteArrival(BlockId head);

    /** True while a tail is being collected. */
    bool collecting() const { return isCollecting; }

    /** Heads with live counters: the counter space. */
    std::size_t countersAllocated() const { return counters.size(); }

    /** Profiling operations paid so far (counter increments). */
    const ProfilingCost &cost() const { return opCost; }

    /** Incremental-instrumentation (breakpoint) accounting. */
    const CollectionCost &collectionCost() const { return collectCost; }

  private:
    void beginCollection(BlockId head);
    void endCollection(PathEndReason reason);

    NetTraceSink &sink;
    NetTraceBuilderConfig cfg;

    CounterTable counters;
    std::unordered_set<BlockId> ownedHeads; // heads that have a trace

    bool isCollecting = false;
    bool armNext = false;
    BlockId armHead = kInvalidBlock;
    NetTrace current;
    std::uint32_t callDepth = 0;
    bool sawCall = false;

    ProfilingCost opCost;
    CollectionCost collectCost;
};

} // namespace hotpath

#endif // HOTPATH_PREDICT_NET_TRACE_BUILDER_HH
