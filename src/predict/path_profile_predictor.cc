#include "predict/path_profile_predictor.hh"

#include "support/logging.hh"

namespace hotpath
{

PathProfilePredictor::PathProfilePredictor(std::uint64_t delay)
    : predictionDelay(delay)
{
    HOTPATH_ASSERT(delay >= 1, "prediction delay must be >= 1");
}

bool
PathProfilePredictor::observe(const PathEvent &event)
{
    // Bit tracing cost: one shift per branch while the path executes,
    // one table update (lookup + increment) when it completes.
    opCost.historyShifts += event.branches;
    opCost.tableUpdates += 1;

    const std::uint64_t count = counters.increment(keyOf(event.path));
    return count >= predictionDelay;
}

std::size_t
PathProfilePredictor::countersAllocated() const
{
    return counters.size();
}

void
PathProfilePredictor::reset()
{
    counters = CounterTable();
    opCost = ProfilingCost();
}

} // namespace hotpath
