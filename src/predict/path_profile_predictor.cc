#include "predict/path_profile_predictor.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

PathProfilePredictor::PathProfilePredictor(std::uint64_t delay)
    : predictionDelay(delay)
{
    HOTPATH_ASSERT(delay >= 1, "prediction delay must be >= 1");
    tmObservations =
        telemetry::counter("predict.path_profile.observations");
    tmPredictions =
        telemetry::counter("predict.path_profile.predictions");
}

bool
PathProfilePredictor::observe(const PathEvent &event)
{
    // Bit tracing cost: one shift per branch while the path executes,
    // one table update (lookup + increment) when it completes.
    opCost.historyShifts += event.branches;
    opCost.tableUpdates += 1;
    if (tmObservations)
        tmObservations->add(1);

    const std::uint64_t count = counters.increment(keyOf(event.path));
    if (count < predictionDelay)
        return false;
    if (tmPredictions)
        tmPredictions->add(1);
    telemetry::emit(telemetry::TraceEventKind::Prediction,
                    "predict.path_profile",
                    {{"head", event.head}, {"path", event.path}});
    return true;
}

std::size_t
PathProfilePredictor::countersAllocated() const
{
    return counters.size();
}

void
PathProfilePredictor::reset()
{
    counters = CounterTable();
    opCost = ProfilingCost();
}

} // namespace hotpath
