#include "predict/kpath_predictor.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

KPathPredictor::KPathPredictor(std::uint64_t delay, std::uint32_t k)
    : predictionDelay(delay), windowLength(k)
{
    HOTPATH_ASSERT(delay >= 1, "prediction delay must be >= 1");
    HOTPATH_ASSERT(k >= 1, "k-path window must hold >= 1 iteration");
    tmObservations = telemetry::counter("predict.kpath.observations");
    tmPredictions = telemetry::counter("predict.kpath.predictions");
}

std::string
KPathPredictor::name() const
{
    return "kpath" + std::to_string(windowLength);
}

std::uint64_t
KPathPredictor::windowKey(const HeadWindow &window) const
{
    // splitmix64-style mixing over the window contents; the key only
    // has to be deterministic and well spread, and never zero (the
    // counter table reserves key 0).
    std::uint64_t hash = 0x9e3779b97f4a7c15ull + window.paths.size();
    for (const PathIndex path : window.paths) {
        std::uint64_t x = hash ^ (static_cast<std::uint64_t>(path) +
                                  0xbf58476d1ce4e5b9ull);
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        hash = x;
    }
    return hash == 0 ? 1 : hash;
}

bool
KPathPredictor::observe(const PathEvent &event)
{
    // Bit tracing across iterations: one shift per branch while the
    // path executes, one k-path table update when it completes.
    opCost.historyShifts += event.branches;
    opCost.tableUpdates += 1;
    if (tmObservations)
        tmObservations->add(1);

    HeadWindow &window = windows[event.head];
    window.paths.push_back(event.path);
    if (window.paths.size() > windowLength)
        window.paths.erase(window.paths.begin());

    const std::uint64_t count = counters.increment(windowKey(window));
    if (count < predictionDelay)
        return false;
    if (tmPredictions)
        tmPredictions->add(1);
    telemetry::emit(telemetry::TraceEventKind::Prediction,
                    "predict.kpath",
                    {{"head", event.head},
                     {"path", event.path},
                     {"k", windowLength}});
    return true;
}

std::size_t
KPathPredictor::countersAllocated() const
{
    return counters.size();
}

void
KPathPredictor::reset()
{
    windows.clear();
    counters = CounterTable();
    opCost = ProfilingCost();
}

} // namespace hotpath
