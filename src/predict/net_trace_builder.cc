#include "predict/net_trace_builder.hh"

#include "support/logging.hh"

namespace hotpath
{

namespace
{

std::uint64_t
headKey(BlockId head)
{
    return static_cast<std::uint64_t>(head) + 1;
}

} // namespace

NetTraceBuilder::NetTraceBuilder(NetTraceSink &sink,
                                 NetTraceBuilderConfig config)
    : sink(sink), cfg(config)
{
    HOTPATH_ASSERT(cfg.hotThreshold >= 1);
    HOTPATH_ASSERT(cfg.maxBlocks >= 1);
}

void
NetTraceBuilder::beginCollection(BlockId head)
{
    isCollecting = true;
    current.head = head;
    current.blocks.clear();
    current.branches = 0;
    current.instructions = 0;
    callDepth = 0;
    sawCall = false;
}

void
NetTraceBuilder::endCollection(PathEndReason reason)
{
    current.endReason = reason;
    sink.onTrace(current);
    ++collectCost.tracesCollected;
    isCollecting = false;

    ownedHeads.insert(current.head);
    if (cfg.reArm) {
        // Restart counting the remaining flow through this head.
        counters.erase(headKey(current.head));
        counters.increment(headKey(current.head), 0);
        ownedHeads.erase(current.head);
    }
}

void
NetTraceBuilder::onBlock(const BasicBlock &block)
{
    if (armNext) {
        HOTPATH_ASSERT(block.id == armHead,
                       "collection armed for a different block");
        beginCollection(block.id);
        current.signature.reset(block.addr);
        armNext = false;
    }

    if (!isCollecting)
        return;

    // Incremental instrumentation: one breakpoint at the end of this
    // non-branching sequence; executing the block raises it and the
    // profiler removes it and prepares the next step.
    ++collectCost.breakpointsPlaced;
    ++collectCost.breakpointsHit;

    current.blocks.push_back(block.id);
    current.instructions += block.instrCount;

    if (current.blocks.size() >= cfg.maxBlocks)
        endCollection(PathEndReason::LengthCap);
}

void
NetTraceBuilder::onTransfer(const TransferEvent &event)
{
    if (isCollecting) {
        switch (event.kind) {
          case BranchKind::Conditional:
            current.signature.pushOutcome(event.taken);
            ++current.branches;
            break;
          case BranchKind::Indirect:
          case BranchKind::Return:
            current.signature.pushIndirectTarget(event.target);
            ++current.branches;
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            ++current.branches;
            break;
          case BranchKind::Fallthrough:
            break;
        }

        if (event.backward) {
            endCollection(PathEndReason::BackwardBranch);
        } else if (event.kind == BranchKind::Call) {
            ++callDepth;
            sawCall = true;
        } else if (event.kind == BranchKind::Return && callDepth > 0) {
            --callDepth;
            if (callDepth == 0 && sawCall)
                endCollection(PathEndReason::MatchingReturn);
        }
        if (isCollecting)
            return;
        // The trace just ended on this transfer. If it ended on a
        // backward branch, fall through: the target is a head arrival
        // like any other.
    }

    if (!event.backward)
        return;

    // A backward taken branch landed on a potential path head.
    noteArrival(event.to);
}

void
NetTraceBuilder::noteArrival(BlockId head)
{
    if (isCollecting)
        return;
    if (ownedHeads.count(head))
        return; // execution enters the cached fragment, no profiling

    ++opCost.counterUpdates;
    const std::uint64_t count = counters.increment(headKey(head));
    if (count >= cfg.hotThreshold) {
        // Hot head: collect the next executing tail, starting with
        // the block about to execute.
        armNext = true;
        armHead = head;
    }
}

} // namespace hotpath
