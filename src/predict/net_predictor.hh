/**
 * @file
 * NET (Next Executing Tail) hot path prediction (paper Section 4.1).
 *
 * Profiling is restricted to potential path heads: targets of
 * backward taken branches. One counter per head is incremented each
 * time the head executes (via a path that is not yet in the cache).
 * When a head's counter reaches the prediction delay, the head is hot
 * and the next executing tail - the path executing right now - is
 * speculatively predicted as the hot path.
 *
 * After a prediction the head's counter restarts at zero. Executions
 * of already-predicted paths run from the code cache and never reach
 * the profiler, so the counter accumulates only still-uncaptured flow
 * through the head; every further `delay` such executions spawn one
 * more tail prediction. This mirrors Dynamo, where fragment exits
 * continue to be counted and a loop with several dominant paths
 * acquires one fragment per dominant path over time. Construct with
 * `reArm = false` for the strict one-tail-per-head variant.
 *
 * Counter decay (`decayShift` > 0) replaces both the hard restart and
 * the hard retirement: after a prediction the head's counter decays
 * exponentially (count >> decayShift) instead of dropping to zero or
 * retiring the head forever. A head that stays hot therefore re-arms
 * after only `delay - (delay >> decayShift)` further executions, and
 * a head the single-tail variant would have retired keeps earning new
 * tails at the decayed cadence - re-hot heads re-arm cheaply while
 * cold heads still pay the full delay. decayShift = 0 preserves the
 * paper-exact behaviour bit for bit.
 */

#ifndef HOTPATH_PREDICT_NET_PREDICTOR_HH
#define HOTPATH_PREDICT_NET_PREDICTOR_HH

#include <unordered_set>
#include <vector>

#include "predict/predictor.hh"
#include "profile/counter_table.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
} // namespace telemetry

/** NET predictor over the PathEvent stream. */
class NetPredictor : public HotPathPredictor
{
  public:
    /**
     * @param delay Head executions profiled before each prediction.
     * @param re_arm Restart the head counter after a prediction so
     *        more tails can be captured from the same head.
     * @param decay_shift Exponential counter decay after a
     *        prediction: the counter restarts at count >> decay_shift
     *        instead of zero (re-arm) or retiring (single-tail).
     *        0 = off (exact paper behaviour).
     */
    explicit NetPredictor(std::uint64_t delay, bool re_arm = true,
                          std::uint32_t decay_shift = 0);

    /** Count a head execution; predicts the current tail when the
     *  head's counter reaches the delay. */
    bool observe(const PathEvent &event) override;

    /** Live head counters: the counter space. */
    std::size_t countersAllocated() const override;

    /** Profiling operations paid so far. */
    const ProfilingCost &cost() const override { return opCost; }

    /** Drop all counters and retirements (phase flush). */
    void reset() override;

    /** Scheme name for reports. */
    std::string
    name() const override
    {
        return reArm ? "net" : "net-single-tail";
    }

    /** The configured prediction delay. */
    std::uint64_t delay() const { return predictionDelay; }

    /**
     * Retune the prediction delay online (the adaptive control
     * plane's knob). Live head counters keep their accumulated
     * counts - a head already past the new, smaller delay predicts on
     * its next observed execution.
     */
    void setDelay(std::uint64_t delay);

    /** The configured decay shift (0 = decay off). */
    std::uint32_t decay() const { return decayShift; }

    // Migration support (Session::exportState / importState) -------

    /** Visit every live head counter as (raw key, count); the raw
     *  key is the head index biased by one (see keyOf). */
    template <typename Fn>
    void
    forEachCounter(Fn &&fn) const
    {
        counters.forEach(fn);
    }

    /** Reinstall one raw counter entry on a fresh predictor. */
    void
    restoreCounter(std::uint64_t key, std::uint64_t count)
    {
        counters.increment(key, count);
    }

    /** Heads retired by the single-tail variant. */
    const std::unordered_set<HeadIndex> &
    retiredHeads() const
    {
        return retired;
    }

    /** Reinstall one retired head on a fresh predictor. */
    void restoreRetired(HeadIndex head) { retired.insert(head); }

  private:
    static std::uint64_t
    keyOf(HeadIndex head)
    {
        return static_cast<std::uint64_t>(head) + 1;
    }

    std::uint64_t predictionDelay;
    bool reArm;
    std::uint32_t decayShift;
    CounterTable counters;
    std::unordered_set<HeadIndex> retired;
    ProfilingCost opCost;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmObservations = nullptr;
    telemetry::Counter *tmPredictions = nullptr;
};

/**
 * The scheme's earlier incarnation (paper footnote 1): Most Recently
 * Executed Tail. Identical head counting, but when a head goes hot
 * it predicts the tail that executed on the PREVIOUS arrival at that
 * head rather than the one executing now. The distinction matters
 * under bursty execution: NET's pick is correlated with the current
 * burst, MRET's with the previous one - the dominance ablation
 * quantifies the difference.
 */
class MretPredictor : public HotPathPredictor
{
  public:
    /**
     * @param delay Head executions profiled before each prediction.
     * @param re_arm Restart the head counter after a prediction so
     *        more tails can be captured from the same head.
     */
    explicit MretPredictor(std::uint64_t delay, bool re_arm = true);

    /** Count a head execution; predicts the tail remembered from the
     *  previous arrival when the head goes hot. */
    bool observe(const PathEvent &event) override;

    /** Live head counters: the counter space. */
    std::size_t countersAllocated() const override;

    /** Profiling operations paid so far. */
    const ProfilingCost &cost() const override { return opCost; }

    /** Drop all counters and remembered tails (phase flush). */
    void reset() override;

    /** Scheme name for reports. */
    std::string name() const override { return "mret"; }

    /** The configured prediction delay. */
    std::uint64_t delay() const { return predictionDelay; }

  private:
    static std::uint64_t
    keyOf(HeadIndex head)
    {
        return static_cast<std::uint64_t>(head) + 1;
    }

    std::uint64_t predictionDelay;
    bool reArm;
    CounterTable counters;
    std::unordered_set<HeadIndex> retired;
    std::vector<PathIndex> lastTail;
    /** Deferred prediction: the remembered tail, awaiting its next
     *  execution (the evaluator predicts the *current* event). */
    std::vector<bool> pendingPrediction;
    ProfilingCost opCost;
};

} // namespace hotpath

#endif // HOTPATH_PREDICT_NET_PREDICTOR_HH
