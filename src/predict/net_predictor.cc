#include "predict/net_predictor.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

NetPredictor::NetPredictor(std::uint64_t delay, bool re_arm,
                           std::uint32_t decay_shift)
    : predictionDelay(delay), reArm(re_arm), decayShift(decay_shift)
{
    HOTPATH_ASSERT(delay >= 1, "prediction delay must be >= 1");
    tmObservations = telemetry::counter("predict.net.observations");
    tmPredictions = telemetry::counter("predict.net.predictions");
}

void
NetPredictor::setDelay(std::uint64_t delay)
{
    HOTPATH_ASSERT(delay >= 1, "prediction delay must be >= 1");
    predictionDelay = delay;
}

bool
NetPredictor::observe(const PathEvent &event)
{
    if (!reArm && retired.count(event.head))
        return false;

    // NET's entire profiling cost: one counter update at the head.
    opCost.counterUpdates += 1;
    if (tmObservations)
        tmObservations->add(1);

    const std::uint64_t count = counters.increment(keyOf(event.head));
    if (count < predictionDelay)
        return false;

    // Head is hot: speculatively select the next executing tail, the
    // path executing right now.
    if (decayShift > 0) {
        // Exponential decay instead of a hard restart or retirement:
        // the counter keeps count >> decayShift of its heat, so a
        // head that stays hot re-arms after fewer executions.
        const std::uint64_t warm = count >> decayShift;
        counters.erase(keyOf(event.head));
        counters.increment(keyOf(event.head), warm);
    } else if (reArm) {
        // Restart counting the still-uncaptured flow at this head.
        counters.erase(keyOf(event.head));
        counters.increment(keyOf(event.head), 0);
    } else {
        retired.insert(event.head);
    }
    if (tmPredictions)
        tmPredictions->add(1);
    telemetry::emit(telemetry::TraceEventKind::Prediction,
                    "predict.net",
                    {{"head", event.head}, {"path", event.path}});
    return true;
}

std::size_t
NetPredictor::countersAllocated() const
{
    return counters.size();
}

void
NetPredictor::reset()
{
    counters = CounterTable();
    retired.clear();
    opCost = ProfilingCost();
}

// MretPredictor ------------------------------------------------------

MretPredictor::MretPredictor(std::uint64_t delay, bool re_arm)
    : predictionDelay(delay), reArm(re_arm)
{
    HOTPATH_ASSERT(delay >= 1, "prediction delay must be >= 1");
}

bool
MretPredictor::observe(const PathEvent &event)
{
    // A tail selected at an earlier trip becomes effective the next
    // time it executes (that execution is its collection run).
    if (event.path < pendingPrediction.size() &&
        pendingPrediction[event.path]) {
        pendingPrediction[event.path] = false;
        return true;
    }

    if (!reArm && retired.count(event.head))
        return false;

    ++opCost.counterUpdates;
    const std::uint64_t count = counters.increment(keyOf(event.head));

    if (event.head >= lastTail.size())
        lastTail.resize(event.head + 1, kInvalidPath);

    bool predict = false;
    if (count >= predictionDelay) {
        if (reArm) {
            counters.erase(keyOf(event.head));
            counters.increment(keyOf(event.head), 0);
        } else {
            retired.insert(event.head);
        }
        const PathIndex remembered = lastTail[event.head];
        if (remembered == kInvalidPath || remembered == event.path) {
            // No history yet (delay 1) or the most recent tail is
            // the one executing now: predict it directly.
            predict = true;
        } else {
            if (remembered >= pendingPrediction.size())
                pendingPrediction.resize(remembered + 1, false);
            pendingPrediction[remembered] = true;
        }
    }
    lastTail[event.head] = event.path;
    return predict;
}

std::size_t
MretPredictor::countersAllocated() const
{
    return counters.size();
}

void
MretPredictor::reset()
{
    counters = CounterTable();
    retired.clear();
    lastTail.clear();
    pendingPrediction.clear();
    opCost = ProfilingCost();
}

} // namespace hotpath
