/**
 * @file
 * The online hot-path predictor interface (paper Section 4).
 *
 * A predictor observes executions of paths that are not yet predicted
 * (predicted paths run from the code cache and bypass profiling) and
 * decides, per execution, whether to predict the currently executing
 * path as hot. Both the paper's schemes fit this shape:
 *
 *  - path profile based prediction counts every path and predicts a
 *    path when its own count reaches the delay;
 *  - NET counts only path heads and, when a head counter reaches the
 *    delay, speculatively predicts the next executing tail, i.e. the
 *    path executing right now.
 */

#ifndef HOTPATH_PREDICT_PREDICTOR_HH
#define HOTPATH_PREDICT_PREDICTOR_HH

#include <string>

#include "paths/path_event.hh"
#include "profile/cost_model.hh"

namespace hotpath
{

/** Online hot-path predictor. */
class HotPathPredictor
{
  public:
    /** Predictors are owned by their system; destruction is plain. */
    virtual ~HotPathPredictor() = default;

    /**
     * Observe one execution of a not-yet-predicted path. Returns true
     * to predict this path as hot, effective with this execution (the
     * triggering execution itself is still profiled flow: it is the
     * collection run).
     */
    virtual bool observe(const PathEvent &event) = 0;

    /** Counters currently allocated: the scheme's counter space. */
    virtual std::size_t countersAllocated() const = 0;

    /** Runtime profiling work performed so far. */
    virtual const ProfilingCost &cost() const = 0;

    /** Forget all state (used by cache flushes and sweeps). */
    virtual void reset() = 0;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;
};

} // namespace hotpath

#endif // HOTPATH_PREDICT_PREDICTOR_HH
