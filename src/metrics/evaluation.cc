#include "metrics/evaluation.hh"

#include "support/logging.hh"

namespace hotpath
{

EvalResult
evaluatePredictor(const std::vector<PathEvent> &stream,
                  HotPathPredictor &predictor, double hot_fraction)
{
    OracleProfile oracle;
    for (std::uint64_t t = 0; t < stream.size(); ++t)
        oracle.onPathEvent(stream[t], t);
    return evaluatePredictor(stream, oracle, predictor, hot_fraction);
}

EvalResult
evaluatePredictor(const std::vector<PathEvent> &stream,
                  const OracleProfile &oracle,
                  HotPathPredictor &predictor, double hot_fraction)
{
    const std::vector<bool> hot = oracle.hotSet(hot_fraction);
    const std::size_t universe = oracle.frequencies().size();

    // Per-path running execution count and the count at which the
    // path was predicted (0 = not predicted).
    std::vector<std::uint64_t> executions(universe, 0);
    std::vector<std::uint64_t> profiledAt(universe, 0);
    std::vector<bool> predicted(universe, false);

    for (const PathEvent &event : stream) {
        HOTPATH_ASSERT(event.path < universe,
                       "stream contains a path unknown to the oracle");
        ++executions[event.path];
        if (predicted[event.path])
            continue; // runs from the code cache
        if (predictor.observe(event)) {
            predicted[event.path] = true;
            profiledAt[event.path] = executions[event.path];
        }
    }

    EvalResult result;
    result.totalFlow = oracle.totalFlow();
    const HotSetStats hot_stats = oracle.hotStats(hot_fraction);
    result.hotFlow = hot_stats.hotFlow;
    result.hotPaths = hot_stats.hotPaths;

    std::uint64_t captured = 0;
    for (std::size_t p = 0; p < universe; ++p) {
        if (!predicted[p])
            continue;
        ++result.predictedPaths;
        const std::uint64_t kept =
            oracle.frequency(static_cast<PathIndex>(p)) - profiledAt[p];
        captured += kept;
        if (hot[p]) {
            ++result.predictedHotPaths;
            result.hits += kept;
            result.missedOpportunity += profiledAt[p];
        } else {
            ++result.predictedColdPaths;
            result.noise += kept;
        }
    }
    result.profiledFlow = result.totalFlow - captured;
    result.countersAllocated = predictor.countersAllocated();
    result.cost = predictor.cost();
    return result;
}

} // namespace hotpath
