/**
 * @file
 * Parallel delay-sweep runner.
 *
 * The figure sweeps replay the same event stream once per (predictor
 * family x delay x benchmark) point, and every point is independent:
 * it gets a fresh predictor from its factory and only reads the
 * shared stream and oracle. This module fans those points across a
 * bounded ThreadPool and merges the results back in schedule order,
 * so the output vectors are bit-identical to the serial delaySweep()
 * regardless of worker count or scheduling - the only thing that
 * changes with --jobs is the wall clock.
 */

#ifndef HOTPATH_METRICS_PARALLEL_SWEEP_HH
#define HOTPATH_METRICS_PARALLEL_SWEEP_HH

#include "metrics/sweep.hh"
#include "support/thread_pool.hh"

namespace hotpath
{

/**
 * One delay ladder over one stream: the unit the runner schedules.
 * The stream and oracle are borrowed and must outlive the run; every
 * scheduled point builds its own predictor, so jobs never share
 * mutable state.
 */
struct SweepJob
{
    const std::vector<PathEvent> *stream = nullptr;
    const OracleProfile *oracle = nullptr;
    PredictorFactory factory;
    std::vector<std::uint64_t> delays;
    double hotFraction = 0.001;
};

/**
 * Evaluate every job's ladder, fanning all (job x delay) points
 * across `pool`. Result `i` holds job `i`'s points in delay-schedule
 * order, exactly as delaySweep() would have produced them.
 */
std::vector<std::vector<SweepPoint>>
runSweepJobs(const std::vector<SweepJob> &jobs, ThreadPool &pool);

/**
 * Parallel drop-in for delaySweep(): one ladder over one stream,
 * points fanned across `pool`.
 */
std::vector<SweepPoint>
delaySweepParallel(const std::vector<PathEvent> &stream,
                   const OracleProfile &oracle,
                   const PredictorFactory &factory,
                   const std::vector<std::uint64_t> &delays,
                   ThreadPool &pool, double hot_fraction = 0.001);

} // namespace hotpath

#endif // HOTPATH_METRICS_PARALLEL_SWEEP_HH
