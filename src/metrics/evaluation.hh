/**
 * @file
 * The paper's abstract prediction-quality metrics (Section 3).
 *
 * Given a path-event stream and a predictor, the evaluator splits the
 * total flow into profiled flow (executions before each path's
 * prediction, plus all executions of never-predicted paths) and
 * predicted flow (executions after prediction). Predicted flow of hot
 * paths is the hits; predicted flow of cold paths is the noise:
 *
 *   HitRate   = Hits  / freq(HotPath_h) * 100
 *   NoiseRate = Noise / freq(HotPath_h) * 100
 *   MOC       = hot-path executions lost to the prediction delay
 *
 * All quantities here are measured event-exactly from the stream (the
 * paper's formulas, e.g. Hits = freq(P^Hot) - |P^Hot| * tau, are the
 * special case where every predicted path was profiled exactly tau
 * times, which holds for path profile based prediction).
 */

#ifndef HOTPATH_METRICS_EVALUATION_HH
#define HOTPATH_METRICS_EVALUATION_HH

#include <vector>

#include "metrics/oracle.hh"
#include "predict/predictor.hh"

namespace hotpath
{

/** Result of evaluating one predictor at one delay over one stream. */
struct EvalResult
{
    // Workload facts.
    std::uint64_t totalFlow = 0;
    std::uint64_t hotFlow = 0;
    std::size_t hotPaths = 0;

    // Prediction set composition.
    std::size_t predictedPaths = 0;
    std::size_t predictedHotPaths = 0;
    std::size_t predictedColdPaths = 0;

    // Flow split (measured).
    std::uint64_t hits = 0;           // captured hot flow
    std::uint64_t noise = 0;          // captured cold flow
    std::uint64_t missedOpportunity = 0; // hot flow lost to the delay
    std::uint64_t profiledFlow = 0;   // everything not captured

    // Scheme overheads.
    std::size_t countersAllocated = 0;
    ProfilingCost cost;

    double
    hitRatePercent() const
    {
        return hotFlow == 0 ? 0.0
                            : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(hotFlow);
    }

    double
    noiseRatePercent() const
    {
        return hotFlow == 0 ? 0.0
                            : 100.0 * static_cast<double>(noise) /
                                  static_cast<double>(hotFlow);
    }

    double
    profiledFlowPercent() const
    {
        return totalFlow == 0
            ? 0.0
            : 100.0 * static_cast<double>(profiledFlow) /
                  static_cast<double>(totalFlow);
    }

    double
    predictedFlowPercent() const
    {
        return 100.0 - profiledFlowPercent();
    }

    /**
     * The paper's closed-form Hits(P) = freq(P ^ Hot) - |P ^ Hot| *
     * tau, reconstructed from the measured quantities (freq of the
     * predicted hot paths = hits + missed opportunity). Equals the
     * measured `hits` exactly whenever every predicted path was
     * profiled exactly tau times - which holds for path profile
     * based prediction by construction; for NET the measured value
     * is the honest one and this is the tau-uniform approximation.
     */
    std::uint64_t
    paperFormulaHits(std::uint64_t tau) const
    {
        const std::uint64_t freq_hot = hits + missedOpportunity;
        const std::uint64_t penalty = predictedHotPaths * tau;
        return freq_hot > penalty ? freq_hot - penalty : 0;
    }

    /**
     * Share of the prediction set that is cold, in paths. The flow
     * NoiseRate above is the paper's Section 3 formula; this count
     * reading is the only one whose magnitudes are consistent with
     * the paper's Figure 3 (Table 1's cold-flow budgets cap the flow
     * reading far below the figure's 50-100% band - see
     * EXPERIMENTS.md). Both are reported by the Figure 3 bench.
     */
    double
    coldPredictionSharePercent() const
    {
        return predictedPaths == 0
            ? 0.0
            : 100.0 * static_cast<double>(predictedColdPaths) /
                  static_cast<double>(predictedPaths);
    }
};

/**
 * Run `predictor` over `stream` and measure the Section 3 metrics
 * against HotPath_h with h = `hot_fraction` of the total flow.
 *
 * Executions of already-predicted paths bypass the predictor (they
 * run from the code cache); the triggering execution of a prediction
 * counts as profiled flow (it is the collection run).
 */
EvalResult evaluatePredictor(const std::vector<PathEvent> &stream,
                             HotPathPredictor &predictor,
                             double hot_fraction = 0.001);

/**
 * Same, but against a precomputed oracle (when the oracle of the
 * stream is already available, e.g. inside a sweep).
 */
EvalResult evaluatePredictor(const std::vector<PathEvent> &stream,
                             const OracleProfile &oracle,
                             HotPathPredictor &predictor,
                             double hot_fraction = 0.001);

} // namespace hotpath

#endif // HOTPATH_METRICS_EVALUATION_HH
