#include "metrics/parallel_sweep.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

std::vector<std::vector<SweepPoint>>
runSweepJobs(const std::vector<SweepJob> &jobs, ThreadPool &pool)
{
    // Flatten the matrix into (job, delay) coordinates up front so
    // the fan-out below is one task per point and the merge is a
    // plain indexed write - schedule order survives any completion
    // order.
    struct PointRef
    {
        std::size_t job = 0;
        std::size_t slot = 0;
    };
    std::vector<PointRef> points;
    std::vector<std::vector<SweepPoint>> results(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const SweepJob &job = jobs[j];
        HOTPATH_ASSERT(job.stream != nullptr && job.oracle != nullptr,
                       "sweep job without a stream/oracle");
        HOTPATH_ASSERT(job.factory != nullptr,
                       "sweep job without a predictor factory");
        results[j].resize(job.delays.size());
        for (std::size_t d = 0; d < job.delays.size(); ++d)
            points.push_back({j, d});
    }

    telemetry::Counter *tm_points =
        telemetry::counter("metrics.parallel_sweep.points");

    pool.parallelFor(points.size(), [&](std::size_t i) {
        const PointRef ref = points[i];
        const SweepJob &job = jobs[ref.job];
        const std::uint64_t delay = job.delays[ref.slot];
        std::unique_ptr<HotPathPredictor> predictor =
            job.factory(delay);
        HOTPATH_ASSERT(predictor != nullptr);
        SweepPoint &point = results[ref.job][ref.slot];
        point.delay = delay;
        point.result = evaluatePredictor(*job.stream, *job.oracle,
                                         *predictor, job.hotFraction);
        if (tm_points)
            tm_points->add();
    });
    return results;
}

std::vector<SweepPoint>
delaySweepParallel(const std::vector<PathEvent> &stream,
                   const OracleProfile &oracle,
                   const PredictorFactory &factory,
                   const std::vector<std::uint64_t> &delays,
                   ThreadPool &pool, double hot_fraction)
{
    std::vector<SweepJob> jobs(1);
    jobs[0].stream = &stream;
    jobs[0].oracle = &oracle;
    jobs[0].factory = factory;
    jobs[0].delays = delays;
    jobs[0].hotFraction = hot_fraction;
    return std::move(runSweepJobs(jobs, pool)[0]);
}

} // namespace hotpath
