/**
 * @file
 * Prediction-delay sweeps (the machinery behind Figures 2 and 3).
 *
 * A sweep evaluates one predictor family across a ladder of delays
 * over the same stream, yielding (profiled flow %, hit rate %, noise
 * rate %) triples; the figure benches print these as the paper's
 * curves, and summary helpers interpolate the rates at a given
 * profiled-flow budget (the paper quotes hit and noise at 10%
 * profiled flow).
 */

#ifndef HOTPATH_METRICS_SWEEP_HH
#define HOTPATH_METRICS_SWEEP_HH

#include <functional>
#include <memory>

#include "metrics/evaluation.hh"

namespace hotpath
{

/** One sweep sample. */
struct SweepPoint
{
    std::uint64_t delay = 0;
    EvalResult result;
};

/** Builds a fresh predictor for a given delay. */
using PredictorFactory =
    std::function<std::unique_ptr<HotPathPredictor>(std::uint64_t)>;

/**
 * The paper's delay ladder: 1-2-5 decades from 10 up to `max_delay`
 * inclusive (the paper sweeps 10 .. 1,000,000).
 */
std::vector<std::uint64_t> defaultDelaySchedule(std::uint64_t max_delay);

/** Evaluate `factory(delay)` over `stream` for every delay. */
std::vector<SweepPoint>
delaySweep(const std::vector<PathEvent> &stream,
           const OracleProfile &oracle, const PredictorFactory &factory,
           const std::vector<std::uint64_t> &delays,
           double hot_fraction = 0.001);

/**
 * Linear interpolation of the hit rate at `profiled_percent` profiled
 * flow over the sweep points (clamped to the sampled range).
 */
double hitRateAtProfiledFlow(const std::vector<SweepPoint> &points,
                             double profiled_percent);

/** Same for the noise rate. */
double noiseRateAtProfiledFlow(const std::vector<SweepPoint> &points,
                               double profiled_percent);

/** Generic variant: interpolate any EvalResult rate accessor. */
double rateAtProfiledFlow(const std::vector<SweepPoint> &points,
                          double profiled_percent,
                          double (EvalResult::*rate)() const);

} // namespace hotpath

#endif // HOTPATH_METRICS_SWEEP_HH
