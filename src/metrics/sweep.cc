#include "metrics/sweep.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hotpath
{

std::vector<std::uint64_t>
defaultDelaySchedule(std::uint64_t max_delay)
{
    std::vector<std::uint64_t> delays;
    for (std::uint64_t decade = 10; decade <= max_delay; decade *= 10) {
        for (std::uint64_t step : {1ull, 2ull, 5ull}) {
            const std::uint64_t delay = decade * step;
            if (delay <= max_delay)
                delays.push_back(delay);
        }
    }
    if (delays.empty() || delays.back() != max_delay)
        delays.push_back(max_delay);
    return delays;
}

std::vector<SweepPoint>
delaySweep(const std::vector<PathEvent> &stream,
           const OracleProfile &oracle, const PredictorFactory &factory,
           const std::vector<std::uint64_t> &delays, double hot_fraction)
{
    std::vector<SweepPoint> points;
    points.reserve(delays.size());
    for (std::uint64_t delay : delays) {
        std::unique_ptr<HotPathPredictor> predictor = factory(delay);
        HOTPATH_ASSERT(predictor != nullptr);
        SweepPoint point;
        point.delay = delay;
        point.result =
            evaluatePredictor(stream, oracle, *predictor, hot_fraction);
        points.push_back(std::move(point));
    }
    return points;
}

namespace
{

double
interpolate(const std::vector<SweepPoint> &points,
            double profiled_percent,
            double (EvalResult::*rate)() const)
{
    HOTPATH_ASSERT(!points.empty(), "empty sweep");

    // Order samples by profiled flow (ascending).
    std::vector<std::pair<double, double>> samples;
    samples.reserve(points.size());
    for (const SweepPoint &point : points) {
        samples.emplace_back(point.result.profiledFlowPercent(),
                             (point.result.*rate)());
    }
    std::sort(samples.begin(), samples.end());

    if (profiled_percent <= samples.front().first)
        return samples.front().second;
    if (profiled_percent >= samples.back().first)
        return samples.back().second;
    for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
        const auto &[x0, y0] = samples[i];
        const auto &[x1, y1] = samples[i + 1];
        if (profiled_percent >= x0 && profiled_percent <= x1) {
            if (x1 == x0)
                return y0;
            const double t = (profiled_percent - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    return samples.back().second;
}

} // namespace

double
rateAtProfiledFlow(const std::vector<SweepPoint> &points,
                   double profiled_percent,
                   double (EvalResult::*rate)() const)
{
    return interpolate(points, profiled_percent, rate);
}

double
hitRateAtProfiledFlow(const std::vector<SweepPoint> &points,
                      double profiled_percent)
{
    return interpolate(points, profiled_percent,
                       &EvalResult::hitRatePercent);
}

double
noiseRateAtProfiledFlow(const std::vector<SweepPoint> &points,
                        double profiled_percent)
{
    return interpolate(points, profiled_percent,
                       &EvalResult::noiseRatePercent);
}

} // namespace hotpath
