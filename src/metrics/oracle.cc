#include "metrics/oracle.hh"

#include <cmath>

#include "support/logging.hh"

namespace hotpath
{

void
OracleProfile::onPathEvent(const PathEvent &event, std::uint64_t time)
{
    (void)time;
    if (event.path >= freq.size())
        freq.resize(event.path + 1, 0);
    if (freq[event.path] == 0)
        ++observedPaths;
    ++freq[event.path];
    ++flow;
}

std::vector<bool>
OracleProfile::hotSet(double hot_fraction) const
{
    HOTPATH_ASSERT(hot_fraction >= 0.0 && hot_fraction < 1.0,
                   "hot fraction out of range");
    const double threshold =
        hot_fraction * static_cast<double>(flow);
    std::vector<bool> hot(freq.size(), false);
    for (std::size_t p = 0; p < freq.size(); ++p)
        hot[p] = static_cast<double>(freq[p]) > threshold;
    return hot;
}

HotSetStats
OracleProfile::hotStats(double hot_fraction) const
{
    const std::vector<bool> hot = hotSet(hot_fraction);
    HotSetStats stats;
    stats.totalFlow = flow;
    for (std::size_t p = 0; p < freq.size(); ++p) {
        if (hot[p]) {
            ++stats.hotPaths;
            stats.hotFlow += freq[p];
        }
    }
    return stats;
}

} // namespace hotpath
