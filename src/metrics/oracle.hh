/**
 * @file
 * Offline oracle path profile and HotPath sets (paper Section 3).
 *
 * The oracle accumulates the exact execution frequency of every path
 * over a whole stream - the information an offline profiler would
 * have. HotPath_h is the set of paths whose frequency exceeds the hot
 * threshold h, here expressed as a fraction of the total flow (the
 * paper uses h = 0.1%).
 */

#ifndef HOTPATH_METRICS_ORACLE_HH
#define HOTPATH_METRICS_ORACLE_HH

#include <vector>

#include "paths/path_event.hh"

namespace hotpath
{

/** Summary of a HotPath_h set. */
struct HotSetStats
{
    /** Number of hot paths. */
    std::size_t hotPaths = 0;
    /** Flow captured by the hot paths. */
    std::uint64_t hotFlow = 0;
    /** Total flow in the profile. */
    std::uint64_t totalFlow = 0;

    /** Percentage of total flow captured by the hot set. */
    double
    hotFlowPercent() const
    {
        return totalFlow == 0
            ? 0.0
            : 100.0 * static_cast<double>(hotFlow) /
                  static_cast<double>(totalFlow);
    }
};

/** Exact per-path frequency profile over a full stream. */
class OracleProfile : public PathEventSink
{
  public:
    void onPathEvent(const PathEvent &event, std::uint64_t time) override;

    /** Frequency of path p (0 if never seen). */
    std::uint64_t
    frequency(PathIndex path) const
    {
        return path < freq.size() ? freq[path] : 0;
    }

    /** Total flow = number of path executions observed. */
    std::uint64_t totalFlow() const { return flow; }

    /** Number of distinct paths observed. */
    std::size_t numPaths() const { return observedPaths; }

    /**
     * Membership vector for HotPath_h with h = `hot_fraction` of the
     * total flow: hot[p] is true iff freq(p) > h.
     */
    std::vector<bool> hotSet(double hot_fraction) const;

    /** Summary statistics of HotPath_h. */
    HotSetStats hotStats(double hot_fraction) const;

    /** The raw frequency vector (indexed by PathIndex). */
    const std::vector<std::uint64_t> &frequencies() const { return freq; }

  private:
    std::vector<std::uint64_t> freq;
    std::uint64_t flow = 0;
    std::size_t observedPaths = 0;
};

} // namespace hotpath

#endif // HOTPATH_METRICS_ORACLE_HH
