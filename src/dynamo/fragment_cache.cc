#include "dynamo/fragment_cache.hh"

#include "support/logging.hh"

namespace hotpath
{

FragmentCache::FragmentCache(std::uint64_t capacity_instructions,
                             EvictionPolicy policy)
    : capacity(capacity_instructions), evictionPolicy(policy)
{
}

void
FragmentCache::evictFor(std::uint32_t needed)
{
    while (!fragments.empty() &&
           occupancy + needed > capacity) {
        auto victim = fragments.begin();
        for (auto it = fragments.begin(); it != fragments.end();
             ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        occupancy -= victim->second.instructions;
        fragments.erase(victim);
        ++evictionCount;
    }
}

bool
FragmentCache::insert(PathIndex path, std::uint32_t instructions)
{
    bool flushed = false;
    if (capacity != 0 && occupancy + instructions > capacity) {
        switch (evictionPolicy) {
          case EvictionPolicy::FlushAll:
            flushAll();
            flushed = true;
            break;
          case EvictionPolicy::EvictLru:
            evictFor(instructions);
            break;
        }
    }
    Fragment fragment;
    fragment.path = path;
    fragment.instructions = instructions;
    fragment.lastUse = ++clock;
    const bool inserted = fragments.emplace(path, fragment).second;
    HOTPATH_ASSERT(inserted, "fragment already cached for this path");
    occupancy += instructions;
    ++formed;
    return flushed;
}

Fragment *
FragmentCache::find(PathIndex path)
{
    const auto it = fragments.find(path);
    if (it == fragments.end())
        return nullptr;
    it->second.lastUse = ++clock;
    return &it->second;
}

void
FragmentCache::flushAll()
{
    fragments.clear();
    occupancy = 0;
    ++flushCount;
}

} // namespace hotpath
