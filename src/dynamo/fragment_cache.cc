#include "dynamo/fragment_cache.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

FragmentCache::FragmentCache(std::uint64_t capacity_instructions,
                             EvictionPolicy policy)
    : capacity(capacity_instructions), evictionPolicy(policy)
{
    tmHits = telemetry::counter("dynamo.cache.hits");
    tmMisses = telemetry::counter("dynamo.cache.misses");
    tmInserts = telemetry::counter("dynamo.cache.inserts");
    tmFlushes = telemetry::counter("dynamo.cache.flushes");
    tmEvictions = telemetry::counter("dynamo.cache.evictions");
    tmFragmentSize =
        telemetry::histogram("dynamo.fragment.instructions");
}

void
FragmentCache::evictFor(std::uint32_t needed)
{
    while (!fragments.empty() &&
           occupancy + needed > capacity) {
        auto victim = fragments.begin();
        for (auto it = fragments.begin(); it != fragments.end();
             ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        telemetry::emit(
            telemetry::TraceEventKind::FragmentEvict, "dynamo",
            {{"path", victim->second.path},
             {"instructions", victim->second.instructions},
             {"executions", victim->second.executions}});
        occupancy -= victim->second.instructions;
        fragments.erase(victim);
        ++evictionCount;
        if (tmEvictions)
            tmEvictions->add(1);
    }
}

bool
FragmentCache::insert(PathIndex path, std::uint32_t instructions)
{
    bool flushed = false;
    if (capacity != 0 && occupancy + instructions > capacity) {
        switch (evictionPolicy) {
          case EvictionPolicy::FlushAll:
            flushAll();
            flushed = true;
            break;
          case EvictionPolicy::EvictLru:
            evictFor(instructions);
            break;
        }
    }
    Fragment fragment;
    fragment.path = path;
    fragment.instructions = instructions;
    fragment.lastUse = ++clock;
    const bool inserted = fragments.emplace(path, fragment).second;
    HOTPATH_ASSERT(inserted, "fragment already cached for this path");
    occupancy += instructions;
    ++formed;
    if (tmInserts)
        tmInserts->add(1);
    if (tmFragmentSize)
        tmFragmentSize->record(instructions);
    telemetry::emit(telemetry::TraceEventKind::FragmentInsert,
                    "dynamo",
                    {{"path", path},
                     {"instructions", instructions},
                     {"occupancy", occupancy}});
    return flushed;
}

Fragment *
FragmentCache::find(PathIndex path)
{
    const auto it = fragments.find(path);
    if (it == fragments.end()) {
        if (tmMisses)
            tmMisses->add(1);
        return nullptr;
    }
    if (tmHits)
        tmHits->add(1);
    it->second.lastUse = ++clock;
    return &it->second;
}

void
FragmentCache::restore(PathIndex path, std::uint32_t instructions,
                       std::uint64_t executions,
                       std::uint64_t lastUse)
{
    Fragment fragment;
    fragment.path = path;
    fragment.instructions = instructions;
    fragment.executions = executions;
    fragment.lastUse = lastUse;
    const bool inserted = fragments.emplace(path, fragment).second;
    HOTPATH_ASSERT(inserted, "fragment already cached for this path");
    occupancy += instructions;
}

void
FragmentCache::flushAll()
{
    telemetry::emit(telemetry::TraceEventKind::CacheFlush, "dynamo",
                    {{"fragments", fragments.size()},
                     {"occupancy", occupancy}});
    fragments.clear();
    occupancy = 0;
    ++flushCount;
    if (tmFlushes)
        tmFlushes->add(1);
}

} // namespace hotpath
