/**
 * @file
 * Phase-change detection by prediction-rate monitoring (paper
 * Section 6.1).
 *
 * Dynamo watches the rate of new-path predictions; a sudden, sharp
 * increase is a good indication that a new phase is being entered, so
 * the cache is flushed to shed the phase-induced noise (fragments
 * that were hot in the previous phase but have turned cold).
 *
 * The monitor buckets time into fixed event windows, maintains an
 * exponential moving average of predictions per window, and signals a
 * spike when the current window exceeds both an absolute floor and a
 * multiple of the average.
 */

#ifndef HOTPATH_DYNAMO_FLUSH_HH
#define HOTPATH_DYNAMO_FLUSH_HH

#include <cstdint>

namespace hotpath
{

/** Tunables for the prediction-rate spike detector. */
struct FlushHeuristicConfig
{
    /** Window length in path events. */
    std::uint64_t windowEvents = 4096;
    /** Spike = rate above `spikeFactor` times the moving average. */
    double spikeFactor = 4.0;
    /** ... and at least this many predictions in the window. */
    std::uint64_t spikeFloor = 8;
    /** EMA smoothing factor for the per-window prediction count. */
    double smoothing = 0.25;
    /** Windows to ignore after startup (cold-start predictions). */
    std::uint64_t warmupWindows = 4;
};

/** Sliding-window prediction-rate spike detector. */
class PredictionRateMonitor
{
  public:
    /** Build a monitor; asserts on degenerate configuration. */
    explicit PredictionRateMonitor(FlushHeuristicConfig config = {});

    /** Record one path event; returns true if a spike fired. */
    bool onEvent(bool was_prediction);

    /**
     * Restart after a flush: clears the current window and enters a
     * cooldown of warmupWindows windows during which neither spikes
     * fire nor the average is updated - the cache refill after a
     * flush is itself a prediction burst and must not re-trigger or
     * pollute the baseline.
     */
    void settle();

    /** Moving average of predictions per window. */
    double movingAverage() const { return average; }

    /** Completed windows observed. */
    std::uint64_t windowsSeen() const { return windows; }

  private:
    FlushHeuristicConfig cfg;
    std::uint64_t eventsInWindow = 0;
    std::uint64_t predictionsInWindow = 0;
    std::uint64_t windows = 0;
    std::uint64_t cooldownLeft;
    double average = 0.0;
};

/** Whether a degradation policy is currently shedding load. */
enum class DegradationMode
{
    /** Full service. */
    Normal,
    /** Overloaded: shed work until pressure subsides. */
    Degraded,
};

/**
 * Tunables for DegradationPolicy. Reuses FlushHeuristicConfig for
 * the windowing: "pressure per window spikes above a moving
 * average" is judged exactly like "predictions per window" in the
 * flush heuristic - the same phase-shift detector, pointed at
 * overload instead of at new-path rate.
 */
struct DegradationPolicyConfig
{
    /** Window length, spike threshold, EMA smoothing and warmup -
     *  interpreted over *pressure* signals instead of predictions. */
    FlushHeuristicConfig spike{};

    /** Pressure-free windows required before leaving degraded mode. */
    std::uint64_t degradedWindows = 4;
};

/**
 * Dynamo's flush-on-spike heuristic generalized into an overload
 * detector (paper Section 6.1; see PredictionRateMonitor). Feed it
 * one signal per unit of work (`pressure` = this unit met overload,
 * e.g. a full queue); it buckets signals into windows, tracks a
 * moving average of pressure per window, and switches to Degraded
 * when a window spikes above the average. Degraded mode persists
 * while pressure continues and decays back to Normal after
 * `degradedWindows` quiet windows, followed by a warmup cooldown so
 * the recovery burst cannot immediately re-trigger - the exact
 * settle() discipline the cache flush uses.
 *
 * The engine consults one policy per shard to decide when a
 * saturated queue may shed its oldest frame; src/dynamo keeps the
 * prediction-rate monitor for cache flushes. Both share this file so
 * the two degradation paths stay one heuristic.
 */
class DegradationPolicy
{
  public:
    /** Build a policy; asserts on degenerate configuration. */
    explicit DegradationPolicy(DegradationPolicyConfig config = {});

    /**
     * Record one unit of work; `pressure` marks it as having met
     * overload. Returns the mode in effect for the *next* unit.
     */
    DegradationMode onEvent(bool pressure);

    /** Current mode. */
    DegradationMode mode() const { return state; }

    /** Times the policy switched Normal -> Degraded. */
    std::uint64_t degradedEntries() const { return entries; }

    /** Completed windows observed. */
    std::uint64_t windowsSeen() const { return windows; }

    /** Moving average of pressure signals per window. */
    double movingAverage() const { return average; }

  private:
    DegradationPolicyConfig cfg;
    std::uint64_t eventsInWindow = 0;
    std::uint64_t pressureInWindow = 0;
    std::uint64_t windows = 0;
    std::uint64_t cooldownLeft;
    std::uint64_t degradedLeft = 0;
    std::uint64_t entries = 0;
    double average = 0.0;
    DegradationMode state = DegradationMode::Normal;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_FLUSH_HH
