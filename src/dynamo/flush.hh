/**
 * @file
 * Phase-change detection by prediction-rate monitoring (paper
 * Section 6.1).
 *
 * Dynamo watches the rate of new-path predictions; a sudden, sharp
 * increase is a good indication that a new phase is being entered, so
 * the cache is flushed to shed the phase-induced noise (fragments
 * that were hot in the previous phase but have turned cold).
 *
 * The monitor buckets time into fixed event windows, maintains an
 * exponential moving average of predictions per window, and signals a
 * spike when the current window exceeds both an absolute floor and a
 * multiple of the average.
 */

#ifndef HOTPATH_DYNAMO_FLUSH_HH
#define HOTPATH_DYNAMO_FLUSH_HH

#include <cstdint>

namespace hotpath
{

/** Tunables for the prediction-rate spike detector. */
struct FlushHeuristicConfig
{
    /** Window length in path events. */
    std::uint64_t windowEvents = 4096;
    /** Spike = rate above `spikeFactor` times the moving average. */
    double spikeFactor = 4.0;
    /** ... and at least this many predictions in the window. */
    std::uint64_t spikeFloor = 8;
    /** EMA smoothing factor for the per-window prediction count. */
    double smoothing = 0.25;
    /** Windows to ignore after startup (cold-start predictions). */
    std::uint64_t warmupWindows = 4;
};

/** Sliding-window prediction-rate spike detector. */
class PredictionRateMonitor
{
  public:
    explicit PredictionRateMonitor(FlushHeuristicConfig config = {});

    /** Record one path event; returns true if a spike fired. */
    bool onEvent(bool was_prediction);

    /**
     * Restart after a flush: clears the current window and enters a
     * cooldown of warmupWindows windows during which neither spikes
     * fire nor the average is updated - the cache refill after a
     * flush is itself a prediction burst and must not re-trigger or
     * pollute the baseline.
     */
    void settle();

    double movingAverage() const { return average; }
    std::uint64_t windowsSeen() const { return windows; }

  private:
    FlushHeuristicConfig cfg;
    std::uint64_t eventsInWindow = 0;
    std::uint64_t predictionsInWindow = 0;
    std::uint64_t windows = 0;
    std::uint64_t cooldownLeft;
    double average = 0.0;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_FLUSH_HH
