/**
 * @file
 * The managed code cache: a size-bounded arena of linked fragments.
 *
 * Where dynamo/fragment_cache.hh models cache *capacity* (and stays
 * the wire-stable per-session cache of the serving tier), this class
 * is the executing cache of the Dynamo loop: it owns the stitched
 * fragments the Machine dispatches through (sim/dispatch.hh), the
 * exit-stub link graph between them, and the capacity-management
 * policies the paper's Section 6 discussion motivates measuring.
 *
 * Linking model (Dynamo's): every fragment exit is initially a stub -
 * a short trampoline that returns control to the runtime. When the
 * exit's target head acquires its own fragment, the stub is patched
 * into a direct branch-to-fragment ("linked"): subsequent transfers
 * bypass the runtime entirely. Two moments patch stubs:
 *
 *  - insert-time: creating a fragment for head H immediately links
 *    every resident stub that targets H (Dynamo links both directions
 *    at fragment creation using its exit-stub lists);
 *  - exit-time: the first exit to an already-resident target pays the
 *    one runtime round trip that performs the patch (recordExit
 *    returns ExitKind::PatchedNow).
 *
 * Unlink-on-evict invariant: evicting fragment F reverts every
 * inbound linked stub to stub state (the neighbours fall back to the
 * runtime round trip) and detaches F's own outbound links from its
 * targets' inbound lists. verifyLinkInvariants() checks the whole
 * graph and is exercised by tests/dynamo_cache_test.cc.
 *
 * Capacity policies (CachePolicy):
 *
 *  - FlushAll:     Dynamo's production choice - exceeding capacity
 *                  empties the whole cache (unlinking is free because
 *                  everything goes);
 *  - EvictLru:     least-recently-executed fragment granularity, each
 *                  victim paying individual link repair;
 *  - EvictFifo:    formation-order fragment granularity (no touch
 *                  bookkeeping on the hot path);
 *  - Generational: fragments are grouped into insertion generations
 *                  and the oldest resident generation is dropped
 *                  wholesale - the middle ground between piecemeal
 *                  eviction and total flushes.
 */

#ifndef HOTPATH_DYNAMO_CODE_CACHE_HH
#define HOTPATH_DYNAMO_CODE_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/dispatch.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
class Histogram;
} // namespace telemetry

/** Capacity-management policy of the managed code cache. */
enum class CachePolicy : std::uint8_t
{
    /** Wholesale flush on capacity pressure (Dynamo's policy). */
    FlushAll,
    /** Evict least-recently-executed fragments one by one. */
    EvictLru,
    /** Evict oldest-formed fragments one by one. */
    EvictFifo,
    /** Drop the oldest insertion generation wholesale. */
    Generational,
};

/** Number of distinct cache policies (sweep loops). */
constexpr std::size_t kCachePolicyCount = 4;

/** Stable lower-case policy name for tables and JSON. */
const char *cachePolicyName(CachePolicy policy);

/** Why a fragment left the cache (eviction telemetry buckets). */
enum class EvictReason : std::uint8_t
{
    /** Piecemeal capacity eviction (EvictLru / EvictFifo). */
    Capacity,
    /** Generation drop (Generational policy). */
    Generation,
    /** Wholesale flush (capacity under FlushAll, or flushAll()). */
    Flush,
};

/** Number of distinct eviction reasons. */
constexpr std::size_t kEvictReasonCount = 3;

/** Stable lower-case reason name for tables and metrics. */
const char *evictReasonName(EvictReason reason);

/** Code-cache geometry and policy. */
struct CodeCacheConfig
{
    /** Arena capacity in bytes; 0 = unlimited. */
    std::uint64_t capacityBytes = 0;

    /** What to do when an insert exceeds the capacity. */
    CachePolicy policy = CachePolicy::FlushAll;

    /** Emitted code bytes per trace instruction. */
    std::uint32_t bytesPerInstr = 4;

    /** Bytes of one exit-stub trampoline. */
    std::uint32_t stubBytes = 16;

    /** Inserts per generation (Generational policy granularity). */
    std::uint32_t generationInserts = 64;
};

/** One fragment exit: a stub until its target fragment is resident. */
struct ExitStub
{
    /** Head key the exit transfers to. */
    std::uint32_t target = 0;

    /** True once the stub is patched branch-to-fragment. */
    bool linked = false;
};

/** One resident fragment plus its link bookkeeping. */
struct CodeFragment
{
    /** Head key (BlockId at CFG granularity, PathIndex at path
     *  granularity). */
    std::uint32_t key = 0;

    /** Trace instructions the fragment was formed from. */
    std::uint32_t instructions = 0;

    /** Arena bytes occupied (code plus live stub trampolines). */
    std::uint64_t sizeBytes = 0;

    /** Executions entered at this fragment's head. */
    std::uint64_t executions = 0;

    /** Last-use stamp from the cache's monotonic clock. */
    std::uint64_t lastUse = 0;

    /** Formation order (FIFO eviction key). */
    std::uint64_t sequence = 0;

    /** Insertion generation (Generational eviction key). */
    std::uint64_t generation = 0;

    /** Optimized instructions per original instruction (<= 1 once
     *  the trace optimizer ran; 1.0 for layout-only fragments). */
    double ratio = 1.0;

    /** The stitched block sequence (empty at path granularity). */
    StitchedFragment stitched;

    /** Outbound exits, in creation order. */
    std::vector<ExitStub> stubs;

    /** Keys of fragments holding a linked stub targeting this one. */
    std::vector<std::uint32_t> inbound;
};

/** What one insert did to the cache. */
struct InsertStats
{
    /** A wholesale capacity flush preceded the insert (FlushAll). */
    bool flushed = false;

    /** Fragments evicted to make room (piecemeal policies). */
    std::uint32_t evicted = 0;

    /** Resident stubs patched to the new fragment at insert time. */
    std::uint32_t linksMade = 0;
};

/** How one recorded fragment exit dispatched. */
enum class ExitKind : std::uint8_t
{
    /** The stub was already patched: direct branch, no runtime. */
    Linked,
    /** Target was resident but the stub was fresh: this exit paid
     *  the runtime round trip that patched it. */
    PatchedNow,
    /** Target not resident: runtime round trip through the stub. */
    Unlinked,
};

/**
 * The managed code cache. Single-threaded, like the Machine that
 * dispatches through it; the serving tier wraps per-session caches in
 * its own striped locks.
 */
class CodeCache
{
  public:
    /** Build an empty cache with the given geometry. */
    explicit CodeCache(CodeCacheConfig config = {});

    /**
     * Insert a fragment for `key` (asserts no fragment is resident
     * for it). Applies the capacity policy first, then links every
     * resident stub targeting `key`. The stitched sequence may be
     * empty for path-granularity use.
     */
    InsertStats insert(std::uint32_t key, std::uint32_t instructions,
                       double ratio = 1.0,
                       StitchedFragment stitched = {});

    /**
     * Fragment lookup for execution: refreshes the LRU stamp, bumps
     * the execution count and the hit/miss telemetry. nullptr when
     * not resident.
     */
    CodeFragment *find(std::uint32_t key);

    /** Bookkeeping-silent lookup (no touch, no telemetry). */
    const CodeFragment *peek(std::uint32_t key) const;

    /** True when a fragment for `key` is resident. */
    bool contains(std::uint32_t key) const;

    /**
     * Record a fragment exit from `from` to `to` and return how it
     * dispatched. Creates the stub on first exit to `to`; patches it
     * immediately when `to` is resident. `from` must be resident.
     */
    ExitKind recordExit(std::uint32_t from, std::uint32_t to);

    /**
     * Evict one fragment, repairing the link graph (see file
     * comment). Returns false when `key` was not resident.
     */
    bool evict(std::uint32_t key, EvictReason reason);

    /** Drop every fragment (phase-change or capacity flush). */
    void flushAll();

    /** Resident fragment count. */
    std::size_t size() const { return fragments.size(); }

    /** Arena bytes currently occupied. */
    std::uint64_t residentBytes() const { return occupancy; }

    /** Configured capacity in bytes (0 = unlimited). */
    std::uint64_t capacityBytes() const { return cfg.capacityBytes; }

    /** Configured capacity policy. */
    CachePolicy policy() const { return cfg.policy; }

    /** Fragments formed over the lifetime (across flushes). */
    std::uint64_t fragmentsFormed() const { return formed; }

    /** Wholesale flushes performed. */
    std::uint64_t flushes() const { return flushCount; }

    /** Piecemeal + generation evictions over the lifetime. */
    std::uint64_t evictions() const;

    /** Evictions bucketed by reason. */
    std::uint64_t
    evictionsBy(EvictReason reason) const
    {
        return evicted[static_cast<std::size_t>(reason)];
    }

    /** Stubs patched branch-to-fragment over the lifetime. */
    std::uint64_t linksMade() const { return linkMade; }

    /** Linked stubs reverted by evictions/flushes. */
    std::uint64_t linksBroken() const { return linkBroken; }

    /** Currently linked stubs across all resident fragments. */
    std::uint64_t liveLinks() const { return linkMade - linkBroken; }

    /** Generation now receiving inserts (Generational policy). */
    std::uint64_t currentGeneration() const { return generation; }

    /** Visit every resident fragment (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &entry : fragments)
            fn(entry.second);
    }

    /**
     * Whole-graph link audit for tests: every linked stub's target
     * is resident and lists the owner as inbound; every inbound
     * entry has a matching linked stub; no stub targets its owner's
     * pending list twice. Returns true when consistent; on failure
     * fills `error` (when non-null) with the first violation.
     */
    bool verifyLinkInvariants(std::string *error = nullptr) const;

  private:
    void applyCapacityPolicy(std::uint64_t incoming_bytes,
                             InsertStats &stats);
    void evictVictims(std::uint64_t incoming_bytes, bool fifo,
                      InsertStats &stats);
    void evictOldestGeneration(InsertStats &stats);
    /** Link the stub at `stub_index` of `from` to resident `to`. */
    void patchStub(CodeFragment &from, std::size_t stub_index,
                   CodeFragment &to);
    void publishGauges();

    CodeCacheConfig cfg;
    std::unordered_map<std::uint32_t, CodeFragment> fragments;
    /** target key -> owners of unlinked stubs awaiting that target. */
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
        pendingStubs;

    std::uint64_t occupancy = 0;
    std::uint64_t formed = 0;
    std::uint64_t flushCount = 0;
    std::uint64_t evicted[kEvictReasonCount] = {0, 0, 0};
    std::uint64_t linkMade = 0;
    std::uint64_t linkBroken = 0;
    std::uint64_t clock = 0;
    std::uint64_t sequence = 0;
    std::uint64_t generation = 0;
    std::uint32_t insertsThisGeneration = 0;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmHits = nullptr;
    telemetry::Counter *tmMisses = nullptr;
    telemetry::Counter *tmInserts = nullptr;
    telemetry::Counter *tmFlushes = nullptr;
    telemetry::Counter *tmLinksMade = nullptr;
    telemetry::Counter *tmLinksBroken = nullptr;
    telemetry::Counter *tmEvictions[kEvictReasonCount] = {nullptr,
                                                          nullptr,
                                                          nullptr};
    telemetry::Counter *tmDispatchLinked = nullptr;
    telemetry::Counter *tmDispatchUnlinked = nullptr;
    telemetry::Gauge *tmResidentBytes = nullptr;
    telemetry::Gauge *tmResidentFragments = nullptr;
    telemetry::Histogram *tmFragmentBytes = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_CODE_CACHE_HH
