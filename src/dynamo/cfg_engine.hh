/**
 * @file
 * CFG-level Dynamo engine: the full system loop over real control
 * flow rather than path events.
 *
 * Attached to a Machine as a listener, the engine watches the block
 * stream exactly as Dynamo's interpreter would and accounts each
 * block to one of three regimes:
 *
 *  - fragment execution: the block matches the next block of the
 *    fragment being followed; it runs as optimized code (the
 *    fragment's measured instruction ratio times native speed).
 *    Diverging from the fragment is a guard exit (runtime round
 *    trip); completing it is a linked dispatch.
 *  - interpretation: no fragment covers the block; it runs at
 *    interpreter speed, and the embedded NET trace builder sees the
 *    events (cached execution is invisible to the profiler).
 *  - formation: when NET predicts a tail, the trace's IR (from the
 *    per-block assigner) is optimized by the TraceOptimizer and the
 *    fragment is stored with its measured ratio - the assumed
 *    cachedPerInstr constant of the PathEvent-level model is
 *    replaced by a measurement here.
 */

#ifndef HOTPATH_DYNAMO_CFG_ENGINE_HH
#define HOTPATH_DYNAMO_CFG_ENGINE_HH

#include <memory>
#include <unordered_map>

#include "dynamo/cost_config.hh"
#include "opt/ir_gen.hh"
#include "opt/trace_optimizer.hh"
#include "predict/net_trace_builder.hh"

namespace hotpath
{

/** Configuration of the CFG-level engine. */
struct CfgEngineConfig
{
    /** NET selection parameters. */
    std::uint64_t hotThreshold = 50;
    std::uint32_t maxTraceBlocks = 64;

    /** Cycle cost calibration (shared with the PathEvent model). */
    DynamoCostConfig costs;

    /** Run the trace optimizer over formed fragments. When false,
     *  fragments execute at native speed (layout only: the dispatch
     *  saving is the whole gain). */
    bool optimizeFragments = true;
    TraceOptimizerConfig optimizer;
    IrGenConfig irGen;
};

/** Accounting of one CFG-level run. */
struct CfgEngineReport
{
    std::uint64_t blocksSeen = 0;
    std::uint64_t instructionsSeen = 0;
    std::uint64_t interpretedBlocks = 0;
    std::uint64_t fragmentBlocks = 0;
    std::uint64_t fragmentsFormed = 0;
    std::uint64_t fragmentCompletions = 0;
    std::uint64_t guardExits = 0;
    double meanOptimizationRatio = 1.0;

    double nativeCycles = 0;
    double interpretCycles = 0;
    double profilingCycles = 0;
    double formationCycles = 0;
    double fragmentCycles = 0;
    double dispatchCycles = 0;

    double
    dynamoCycles() const
    {
        return interpretCycles + profilingCycles + formationCycles +
               fragmentCycles + dispatchCycles;
    }

    double
    speedupPercent() const
    {
        return dynamoCycles() <= 0.0
            ? 0.0
            : (nativeCycles / dynamoCycles() - 1.0) * 100.0;
    }
};

/** The engine; attach to a Machine with addListener. */
class CfgDynamoEngine : public ExecutionListener
{
  public:
    CfgDynamoEngine(const Program &program, CfgEngineConfig config);
    ~CfgDynamoEngine() override;

    void onBlock(const BasicBlock &block) override;
    void onTransfer(const TransferEvent &event) override;

    CfgEngineReport report() const;

    /** Fragments currently cached, keyed by head block. */
    std::size_t fragmentCount() const { return fragments.size(); }

  private:
    struct CachedFragment
    {
        std::vector<BlockId> blocks;
        /** Optimized instructions per original instruction. */
        double ratio = 1.0;
    };

    /** Sink receiving the NET builder's traces. */
    class Sink;

    void onTraceFormed(const NetTrace &trace);
    void syncProfilingCost();

    const Program &prog;
    CfgEngineConfig cfg;
    BlockIrAssigner irAssigner;
    TraceOptimizer optimizer;
    std::unique_ptr<Sink> sink;
    std::unique_ptr<NetTraceBuilder> builder;

    std::unordered_map<BlockId, CachedFragment> fragments;
    const CachedFragment *following = nullptr;
    std::size_t followPosition = 0;
    bool exitPending = false;
    BlockId lastHead = kInvalidBlock;
    std::uint64_t lastBuilderOps = 0;

    CfgEngineReport stats;
    double ratioSum = 0;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_CFG_ENGINE_HH
