/**
 * @file
 * CFG-level Dynamo engine: the full system loop over real control
 * flow, executing through a managed code cache.
 *
 * Installed on a Machine as its DispatchHook, the engine owns the
 * interpret-vs-fragment decision for every block, exactly as Dynamo's
 * dispatcher does:
 *
 *  - fragment execution: when the dispatch block heads a resident
 *    fragment, the Machine executes the stitched block sequence from
 *    the code cache; blocks run as optimized code (the fragment's
 *    measured instruction ratio times native speed). Diverging from
 *    the stitched tail is a guard exit; running off the end is a
 *    completion. Either way control funnels through the fragment's
 *    exit stub, which is linked branch-to-fragment once its target
 *    head owns a fragment (CodeCache::recordExit).
 *  - interpretation: no fragment covers the block; it runs at
 *    interpreter speed and the embedded NET trace builder sees the
 *    events (cached execution is invisible to the profiler).
 *  - formation: when NET predicts a tail, the trace's IR (from the
 *    per-block assigner) is optimized by the TraceOptimizer and the
 *    stitched fragment enters the CodeCache with its measured ratio.
 *    Inserting may flush or evict under the configured CachePolicy;
 *    the eviction/flush cycle cost is accounted separately. An armed
 *    fault::Site::AllocFail plan abandons formations at the insert
 *    point (the work is charged, the fragment is dropped), modelling
 *    a cache arena that refuses the allocation.
 *
 * The byte-identity contract of sim/dispatch.hh applies: listeners
 * observe the same event stream with or without the engine installed,
 * for every CachePolicy and fault plan.
 */

#ifndef HOTPATH_DYNAMO_CFG_ENGINE_HH
#define HOTPATH_DYNAMO_CFG_ENGINE_HH

#include <memory>

#include "dynamo/code_cache.hh"
#include "dynamo/cost_config.hh"
#include "opt/ir_gen.hh"
#include "opt/trace_optimizer.hh"
#include "predict/net_trace_builder.hh"
#include "support/fault_injector.hh"

namespace hotpath
{

class Machine;

/** Configuration of the CFG-level engine. */
struct CfgEngineConfig
{
    /** NET hot threshold: executions before a head starts a trace. */
    std::uint64_t hotThreshold = 50;
    /** Maximum blocks recorded into one trace. */
    std::uint32_t maxTraceBlocks = 64;

    /** Cycle cost calibration (shared with the PathEvent model). */
    DynamoCostConfig costs;

    /** Code-cache geometry and eviction policy. */
    CodeCacheConfig cache;

    /** Fault schedule; Site::AllocFail abandons fragment insertion. */
    fault::FaultPlan faults;

    /** Run the trace optimizer over formed fragments. When false,
     *  fragments execute at native speed (layout only: the dispatch
     *  saving is the whole gain). */
    bool optimizeFragments = true;
    /** Pass pipeline configuration for the trace optimizer. */
    TraceOptimizerConfig optimizer;
    /** Per-block IR synthesis configuration. */
    IrGenConfig irGen;
};

/** Accounting of one CFG-level run. */
struct CfgEngineReport
{
    /** Blocks dispatched (interpreted plus fragment). */
    std::uint64_t blocksSeen = 0;
    /** Instructions across all dispatched blocks. */
    std::uint64_t instructionsSeen = 0;
    /** Blocks executed in the interpreter (profiled). */
    std::uint64_t interpretedBlocks = 0;
    /** Blocks executed from a cached fragment. */
    std::uint64_t fragmentBlocks = 0;
    /** Fragments formed over the run (across evictions). */
    std::uint64_t fragmentsFormed = 0;
    /** Fragment executions that ran the full stitched tail. */
    std::uint64_t fragmentCompletions = 0;
    /** Fragment executions that diverged mid-tail. */
    std::uint64_t guardExits = 0;
    /** Mean optimized/native instruction ratio across formations. */
    double meanOptimizationRatio = 1.0;

    /** Exits dispatched through a linked stub (no runtime). */
    std::uint64_t linkedExits = 0;
    /** Exits that paid the runtime round trip (stub unlinked, or the
     *  exit that patched it). */
    std::uint64_t unlinkedExits = 0;
    /** Stubs patched branch-to-fragment over the run. */
    std::uint64_t linksMade = 0;
    /** Linked stubs reverted by evictions and flushes. */
    std::uint64_t linksBroken = 0;
    /** Fragments evicted piecemeal or by generation drop. */
    std::uint64_t fragmentsEvicted = 0;
    /** Wholesale cache flushes (capacity, FlushAll policy). */
    std::uint64_t cacheFlushes = 0;
    /** Formations abandoned by an injected allocation failure. */
    std::uint64_t formationsAbandoned = 0;
    /** Fragments resident when the report was taken. */
    std::uint64_t residentFragments = 0;
    /** Arena bytes occupied when the report was taken. */
    std::uint64_t residentBytes = 0;

    /** Cycles the program would take running purely natively. */
    double nativeCycles = 0;
    /** Cycles spent emulating blocks in the interpreter. */
    double interpretCycles = 0;
    /** Cycles spent on NET trace-builder instrumentation. */
    double profilingCycles = 0;
    /** Cycles spent optimizing and installing fragments. */
    double formationCycles = 0;
    /** Cycles spent executing optimized fragment blocks. */
    double fragmentCycles = 0;
    /** Cycles spent dispatching fragment entries and exits. */
    double dispatchCycles = 0;
    /** Eviction and flush overhead (link repair, arena reclaim). */
    double cacheManagementCycles = 0;

    /** Total cycles the modelled Dynamo system spends. */
    double
    dynamoCycles() const
    {
        return interpretCycles + profilingCycles + formationCycles +
               fragmentCycles + dispatchCycles + cacheManagementCycles;
    }

    /** Speedup over native execution, in percent. */
    double
    speedupPercent() const
    {
        return dynamoCycles() <= 0.0
            ? 0.0
            : (nativeCycles / dynamoCycles() - 1.0) * 100.0;
    }
};

/** The engine; install on a Machine with attach(). */
class CfgDynamoEngine : public DispatchHook
{
  public:
    /** Build an engine for `program`; the program must outlive it. */
    CfgDynamoEngine(const Program &program, CfgEngineConfig config);

    /** Tears down the trace builder and its sink. */
    ~CfgDynamoEngine() override;

    /** Install this engine as `machine`'s dispatch hook. */
    void attach(Machine &machine);

    /** Dispatch decision: the resident fragment headed by `head`,
     *  or nullptr to interpret. Settles any pending exit first. */
    const StitchedFragment *enter(BlockId head) override;

    /** Charge one block executed from a fragment body. */
    void onFragmentBlock(const ExecutionRecord &record,
                         const StitchedFragment &fragment,
                         std::size_t position) override;

    /** Record a guard exit or completion; the stub's link state is
     *  resolved at the next enter(). */
    void onFragmentExit(const StitchedFragment &fragment,
                        std::size_t exit_position, BlockId target,
                        bool completed) override;

    /** Charge one interpreted block and feed the NET builder. */
    void onInterpretedBlock(const ExecutionRecord &record) override;

    /** Accounting snapshot (cache occupancy sampled now). */
    CfgEngineReport report() const;

    /** Fragments currently resident in the code cache. */
    std::size_t fragmentCount() const { return cache.size(); }

    /** The managed code cache (link-graph inspection in tests). */
    const CodeCache &codeCache() const { return cache; }

  private:
    /** Sink receiving the NET builder's traces. */
    class Sink;

    void onTraceFormed(const NetTrace &trace);
    void chargeInsert(const InsertStats &insert);
    void syncProfilingCost();

    const Program &prog;
    CfgEngineConfig cfg;
    BlockIrAssigner irAssigner;
    TraceOptimizer optimizer;
    fault::FaultInjector faults;
    CodeCache cache;
    std::unique_ptr<Sink> sink;
    std::unique_ptr<NetTraceBuilder> builder;

    /** Ratio of the fragment being followed (set by enter()). */
    double activeRatio = 1.0;
    /** A fragment exit awaits its dispatch decision. */
    bool exitPending = false;
    /** Head key of the fragment that exit came from. */
    BlockId exitFrom = kInvalidBlock;
    std::uint64_t lastBuilderOps = 0;

    CfgEngineReport stats;
    double ratioSum = 0;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_CFG_ENGINE_HH
