#include "dynamo/cfg_engine.hh"

#include "support/logging.hh"

namespace hotpath
{

/** Receives traces from the embedded NET builder. */
class CfgDynamoEngine::Sink : public NetTraceSink
{
  public:
    explicit Sink(CfgDynamoEngine &owner) : owner(owner) {}

    void
    onTrace(const NetTrace &trace) override
    {
        owner.onTraceFormed(trace);
    }

  private:
    CfgDynamoEngine &owner;
};

CfgDynamoEngine::CfgDynamoEngine(const Program &program,
                                 CfgEngineConfig config)
    : prog(program), cfg(config), irAssigner(program, config.irGen),
      optimizer(config.optimizer), sink(std::make_unique<Sink>(*this))
{
    NetTraceBuilderConfig net_config;
    net_config.hotThreshold = cfg.hotThreshold;
    net_config.maxBlocks = cfg.maxTraceBlocks;
    net_config.reArm = false; // one fragment per head
    builder = std::make_unique<NetTraceBuilder>(*sink, net_config);
}

CfgDynamoEngine::~CfgDynamoEngine() = default;

void
CfgDynamoEngine::onTraceFormed(const NetTrace &trace)
{
    IrSequence ir = irAssigner.traceIr(trace.blocks);
    const auto original = static_cast<double>(ir.size());
    double ratio = 1.0;
    if (cfg.optimizeFragments && !ir.empty()) {
        const OptStats opt_stats = optimizer.optimize(ir);
        ratio = opt_stats.ratio();
    }

    stats.formationCycles += original * cfg.costs.formationPerInstr;
    ++stats.fragmentsFormed;
    ratioSum += ratio;

    CachedFragment fragment;
    fragment.blocks = trace.blocks;
    fragment.ratio = ratio;
    const bool inserted =
        fragments.emplace(trace.head, std::move(fragment)).second;
    HOTPATH_ASSERT(inserted, "duplicate fragment for a head");
}

void
CfgDynamoEngine::onBlock(const BasicBlock &block)
{
    ++stats.blocksSeen;
    stats.instructionsSeen += block.instrCount;
    stats.nativeCycles += block.instrCount * cfg.costs.nativePerInstr;

    if (following != nullptr) {
        if (block.id == following->blocks[followPosition]) {
            // The live flow still matches the fragment: optimized
            // execution (fewer instructions at native speed).
            ++stats.fragmentBlocks;
            stats.fragmentCycles += block.instrCount *
                                    following->ratio *
                                    cfg.costs.nativePerInstr;
            ++followPosition;
            if (followPosition == following->blocks.size()) {
                // The fragment's end transfers to whatever comes
                // next; the dispatch is charged once we know whether
                // the target is cached (linked) or not (exit stub).
                ++stats.fragmentCompletions;
                following = nullptr;
                exitPending = true;
            }
            return;
        }
        // Guard exit: control diverged from the recorded tail. Exit
        // stubs count the arrival so hot exits spawn secondary
        // traces, and once the exit target has its own fragment the
        // stub is patched to jump there directly (fragment linking).
        ++stats.guardExits;
        following = nullptr;
        exitPending = true;
        // Fall through: this block is handled below.
    }

    // Enter a fragment if one starts here (never while the builder
    // is mid-collection: the interpreter stays in charge then).
    if (!builder->collecting()) {
        const auto it = fragments.find(block.id);
        if (it != fragments.end()) {
            if (exitPending) {
                // Fragment-to-fragment transfer. Re-entering the
                // fragment just completed is free: its closing
                // branch jumps straight back to its own top.
                if (block.id != lastHead) {
                    stats.dispatchCycles +=
                        cfg.costs.linkedDispatchCost;
                }
                exitPending = false;
            }
            lastHead = block.id;
            following = &it->second;
            HOTPATH_ASSERT(following->blocks[0] == block.id);
            ++stats.fragmentBlocks;
            stats.fragmentCycles += block.instrCount *
                                    following->ratio *
                                    cfg.costs.nativePerInstr;
            followPosition = 1;
            if (followPosition == following->blocks.size()) {
                ++stats.fragmentCompletions;
                following = nullptr;
                exitPending = true;
            }
            return;
        }
    }

    // Cache exit landing on uncached code: the full runtime round
    // trip, and the stub counts it as a head arrival (possibly
    // arming a collection that starts right here).
    if (exitPending) {
        exitPending = false;
        stats.dispatchCycles += cfg.costs.unlinkedDispatchCost;
        builder->noteArrival(block.id);
        syncProfilingCost();
    }

    // Interpretation; the profiler sees the block.
    ++stats.interpretedBlocks;
    stats.interpretCycles +=
        block.instrCount * cfg.costs.interpretPerInstr;
    builder->onBlock(block);
    syncProfilingCost();
}

void
CfgDynamoEngine::onTransfer(const TransferEvent &event)
{
    if (following != nullptr)
        return; // cached execution is invisible to the profiler

    builder->onTransfer(event);
    syncProfilingCost();
}

void
CfgDynamoEngine::syncProfilingCost()
{
    const std::uint64_t ops = builder->cost().counterUpdates;
    stats.profilingCycles += static_cast<double>(ops - lastBuilderOps) *
                             cfg.costs.counterOpCost;
    lastBuilderOps = ops;
}

CfgEngineReport
CfgDynamoEngine::report() const
{
    CfgEngineReport out = stats;
    out.meanOptimizationRatio =
        stats.fragmentsFormed == 0
            ? 1.0
            : ratioSum / static_cast<double>(stats.fragmentsFormed);
    return out;
}

} // namespace hotpath
