#include "dynamo/cfg_engine.hh"

#include "sim/machine.hh"
#include "support/logging.hh"

namespace hotpath
{

/** Receives traces from the embedded NET builder. */
class CfgDynamoEngine::Sink : public NetTraceSink
{
  public:
    explicit Sink(CfgDynamoEngine &owner) : owner(owner) {}

    void
    onTrace(const NetTrace &trace) override
    {
        owner.onTraceFormed(trace);
    }

  private:
    CfgDynamoEngine &owner;
};

CfgDynamoEngine::CfgDynamoEngine(const Program &program,
                                 CfgEngineConfig config)
    : prog(program), cfg(config), irAssigner(program, config.irGen),
      optimizer(config.optimizer), faults(config.faults),
      cache(config.cache), sink(std::make_unique<Sink>(*this))
{
    NetTraceBuilderConfig net_config;
    net_config.hotThreshold = cfg.hotThreshold;
    net_config.maxBlocks = cfg.maxTraceBlocks;
    net_config.reArm = false; // one fragment per head
    builder = std::make_unique<NetTraceBuilder>(*sink, net_config);
}

CfgDynamoEngine::~CfgDynamoEngine() = default;

void
CfgDynamoEngine::attach(Machine &machine)
{
    machine.setDispatchHook(this);
}

void
CfgDynamoEngine::onTraceFormed(const NetTrace &trace)
{
    IrSequence ir = irAssigner.traceIr(trace.blocks);
    const auto original = static_cast<double>(ir.size());
    double ratio = 1.0;
    if (cfg.optimizeFragments && !ir.empty()) {
        const OptStats opt_stats = optimizer.optimize(ir);
        ratio = opt_stats.ratio();
    }

    // Formation work happens whether or not the insert succeeds.
    stats.formationCycles += original * cfg.costs.formationPerInstr;

    if (faults.armed(fault::Site::AllocFail) &&
        faults.shouldInject(fault::Site::AllocFail)) {
        // The cache arena refused the allocation: the trace is
        // dropped and its head interprets on. NET retired the head,
        // so the next chance at this path is a secondary trace
        // spawned from some fragment's exit stub.
        ++stats.formationsAbandoned;
        return;
    }

    ++stats.fragmentsFormed;
    ratioSum += ratio;

    StitchedFragment stitched;
    stitched.head = trace.head;
    stitched.blocks.reserve(trace.blocks.size());
    for (const BlockId id : trace.blocks)
        stitched.blocks.push_back(&prog.block(id));

    chargeInsert(cache.insert(trace.head, trace.instructions, ratio,
                              std::move(stitched)));
}

void
CfgDynamoEngine::chargeInsert(const InsertStats &insert)
{
    if (insert.flushed) {
        ++stats.cacheFlushes;
        stats.cacheManagementCycles += cfg.costs.flushCost;
    }
    stats.fragmentsEvicted += insert.evicted;
    stats.cacheManagementCycles +=
        static_cast<double>(insert.evicted) * cfg.costs.evictionCost;
}

const StitchedFragment *
CfgDynamoEngine::enter(BlockId head)
{
    if (exitPending) {
        // The dispatch decision of the preceding fragment exit: the
        // exit stub either branches straight to the target fragment
        // (linked) or returns control to the runtime. A fragment
        // looping back to its own top costs nothing once linked.
        exitPending = false;
        switch (cache.recordExit(exitFrom, head)) {
          case ExitKind::Linked:
            ++stats.linkedExits;
            if (head != exitFrom)
                stats.dispatchCycles += cfg.costs.linkedDispatchCost;
            break;
          case ExitKind::PatchedNow:
            // The round trip that patched the stub; linked from now.
            ++stats.unlinkedExits;
            stats.dispatchCycles += cfg.costs.unlinkedDispatchCost;
            break;
          case ExitKind::Unlinked:
            // Runtime round trip; the stub counts the arrival so hot
            // exits spawn secondary traces (possibly arming a
            // collection that starts right here).
            ++stats.unlinkedExits;
            stats.dispatchCycles += cfg.costs.unlinkedDispatchCost;
            builder->noteArrival(head);
            syncProfilingCost();
            break;
        }
    }

    // The interpreter stays in charge while the builder is
    // mid-collection: the tail must be observed, not executed from
    // the cache.
    if (builder->collecting())
        return nullptr;

    CodeFragment *fragment = cache.find(head);
    if (fragment == nullptr)
        return nullptr;
    activeRatio = fragment->ratio;
    return &fragment->stitched;
}

void
CfgDynamoEngine::onFragmentBlock(const ExecutionRecord &record,
                                 const StitchedFragment &fragment,
                                 std::size_t position)
{
    (void)fragment;
    (void)position;
    const BasicBlock &block = *record.block;
    ++stats.blocksSeen;
    stats.instructionsSeen += block.instrCount;
    stats.nativeCycles += block.instrCount * cfg.costs.nativePerInstr;

    // Optimized execution: fewer instructions at native speed.
    ++stats.fragmentBlocks;
    stats.fragmentCycles +=
        block.instrCount * activeRatio * cfg.costs.nativePerInstr;
}

void
CfgDynamoEngine::onFragmentExit(const StitchedFragment &fragment,
                                std::size_t exit_position,
                                BlockId target, bool completed)
{
    (void)exit_position;
    if (completed)
        ++stats.fragmentCompletions;
    else
        ++stats.guardExits;
    if (target == kInvalidBlock)
        return; // program exited inside the fragment
    exitPending = true;
    exitFrom = fragment.head;
}

void
CfgDynamoEngine::onInterpretedBlock(const ExecutionRecord &record)
{
    const BasicBlock &block = *record.block;
    ++stats.blocksSeen;
    stats.instructionsSeen += block.instrCount;
    stats.nativeCycles += block.instrCount * cfg.costs.nativePerInstr;

    // Interpretation; the profiler sees the block and its transfer.
    ++stats.interpretedBlocks;
    stats.interpretCycles +=
        block.instrCount * cfg.costs.interpretPerInstr;
    builder->onBlock(block);
    if (record.hasTransfer)
        builder->onTransfer(record.transfer);
    syncProfilingCost();
}

void
CfgDynamoEngine::syncProfilingCost()
{
    const std::uint64_t ops = builder->cost().counterUpdates;
    stats.profilingCycles += static_cast<double>(ops - lastBuilderOps) *
                             cfg.costs.counterOpCost;
    lastBuilderOps = ops;
}

CfgEngineReport
CfgDynamoEngine::report() const
{
    CfgEngineReport out = stats;
    out.meanOptimizationRatio =
        stats.fragmentsFormed == 0
            ? 1.0
            : ratioSum / static_cast<double>(stats.fragmentsFormed);
    out.linksMade = cache.linksMade();
    out.linksBroken = cache.linksBroken();
    out.residentFragments = cache.size();
    out.residentBytes = cache.residentBytes();
    return out;
}

} // namespace hotpath
