#include "dynamo/code_cache.hh"

#include <algorithm>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

const char *
cachePolicyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::FlushAll:
        return "flush-all";
      case CachePolicy::EvictLru:
        return "lru";
      case CachePolicy::EvictFifo:
        return "fifo";
      case CachePolicy::Generational:
        return "generational";
    }
    return "?";
}

const char *
evictReasonName(EvictReason reason)
{
    switch (reason) {
      case EvictReason::Capacity:
        return "capacity";
      case EvictReason::Generation:
        return "generation";
      case EvictReason::Flush:
        return "flush";
    }
    return "?";
}

CodeCache::CodeCache(CodeCacheConfig config) : cfg(config)
{
    HOTPATH_ASSERT(cfg.bytesPerInstr > 0, "degenerate code geometry");
    HOTPATH_ASSERT(cfg.generationInserts > 0,
                   "generation granularity must be >= 1");
    tmHits = telemetry::counter("dynamo.cache.hits");
    tmMisses = telemetry::counter("dynamo.cache.misses");
    tmInserts = telemetry::counter("dynamo.cache.inserts");
    tmFlushes = telemetry::counter("dynamo.cache.flushes");
    tmLinksMade = telemetry::counter("dynamo.cache.links.made");
    tmLinksBroken = telemetry::counter("dynamo.cache.links.broken");
    for (std::size_t r = 0; r < kEvictReasonCount; ++r) {
        tmEvictions[r] = telemetry::counter(
            std::string("dynamo.cache.evictions.") +
            evictReasonName(static_cast<EvictReason>(r)));
    }
    tmDispatchLinked =
        telemetry::counter("dynamo.cache.dispatch.linked");
    tmDispatchUnlinked =
        telemetry::counter("dynamo.cache.dispatch.unlinked");
    tmResidentBytes = telemetry::gauge("dynamo.cache.resident.bytes");
    tmResidentFragments =
        telemetry::gauge("dynamo.cache.resident.fragments");
    tmFragmentBytes =
        telemetry::histogram("dynamo.cache.fragment.bytes");
    publishGauges();
}

void
CodeCache::publishGauges()
{
    if (tmResidentBytes)
        tmResidentBytes->set(static_cast<std::int64_t>(occupancy));
    if (tmResidentFragments)
        tmResidentFragments->set(
            static_cast<std::int64_t>(fragments.size()));
}

void
CodeCache::patchStub(CodeFragment &from, std::size_t stub_index,
                     CodeFragment &to)
{
    ExitStub &stub = from.stubs[stub_index];
    HOTPATH_ASSERT(!stub.linked, "stub already patched");
    HOTPATH_ASSERT(stub.target == to.key, "stub/target mismatch");
    stub.linked = true;
    to.inbound.push_back(from.key);
    ++linkMade;
    if (tmLinksMade)
        tmLinksMade->add(1);
}

void
CodeCache::evictVictims(std::uint64_t incoming_bytes, bool fifo,
                        InsertStats &stats)
{
    while (!fragments.empty() &&
           occupancy + incoming_bytes > cfg.capacityBytes) {
        auto victim = fragments.begin();
        for (auto it = fragments.begin(); it != fragments.end();
             ++it) {
            const std::uint64_t it_age =
                fifo ? it->second.sequence : it->second.lastUse;
            const std::uint64_t victim_age = fifo
                ? victim->second.sequence
                : victim->second.lastUse;
            if (it_age < victim_age)
                victim = it;
        }
        evict(victim->first, EvictReason::Capacity);
        ++stats.evicted;
    }
}

void
CodeCache::evictOldestGeneration(InsertStats &stats)
{
    std::uint64_t oldest = ~std::uint64_t{0};
    for (const auto &entry : fragments)
        oldest = std::min(oldest, entry.second.generation);
    std::vector<std::uint32_t> victims;
    for (const auto &entry : fragments) {
        if (entry.second.generation == oldest)
            victims.push_back(entry.first);
    }
    // Deterministic eviction order regardless of hash layout.
    std::sort(victims.begin(), victims.end());
    for (const std::uint32_t key : victims) {
        evict(key, EvictReason::Generation);
        ++stats.evicted;
    }
}

void
CodeCache::applyCapacityPolicy(std::uint64_t incoming_bytes,
                               InsertStats &stats)
{
    if (cfg.capacityBytes == 0 ||
        occupancy + incoming_bytes <= cfg.capacityBytes)
        return;
    switch (cfg.policy) {
      case CachePolicy::FlushAll:
        flushAll();
        stats.flushed = true;
        break;
      case CachePolicy::EvictLru:
        evictVictims(incoming_bytes, /*fifo=*/false, stats);
        break;
      case CachePolicy::EvictFifo:
        evictVictims(incoming_bytes, /*fifo=*/true, stats);
        break;
      case CachePolicy::Generational:
        while (!fragments.empty() &&
               occupancy + incoming_bytes > cfg.capacityBytes)
            evictOldestGeneration(stats);
        break;
    }
}

InsertStats
CodeCache::insert(std::uint32_t key, std::uint32_t instructions,
                  double ratio, StitchedFragment stitched)
{
    HOTPATH_ASSERT(fragments.find(key) == fragments.end(),
                   "fragment already cached for this key");
    InsertStats stats;
    const std::uint64_t code_bytes =
        static_cast<std::uint64_t>(instructions) * cfg.bytesPerInstr;
    applyCapacityPolicy(code_bytes, stats);

    if (insertsThisGeneration >= cfg.generationInserts) {
        ++generation;
        insertsThisGeneration = 0;
    }
    ++insertsThisGeneration;

    CodeFragment fragment;
    fragment.key = key;
    fragment.instructions = instructions;
    fragment.sizeBytes = code_bytes;
    fragment.lastUse = ++clock;
    fragment.sequence = ++sequence;
    fragment.generation = generation;
    fragment.ratio = ratio;
    fragment.stitched = std::move(stitched);
    auto [it, inserted] = fragments.emplace(key, std::move(fragment));
    HOTPATH_ASSERT(inserted);
    occupancy += code_bytes;
    ++formed;
    if (tmInserts)
        tmInserts->add(1);
    if (tmFragmentBytes)
        tmFragmentBytes->record(code_bytes);

    // Creation-time linking: every resident stub waiting on this
    // head is patched branch-to-fragment right now.
    const auto pending = pendingStubs.find(key);
    if (pending != pendingStubs.end()) {
        for (const std::uint32_t owner : pending->second) {
            auto from = fragments.find(owner);
            HOTPATH_ASSERT(from != fragments.end(),
                           "pending stub with evicted owner");
            for (std::size_t s = 0; s < from->second.stubs.size();
                 ++s) {
                ExitStub &stub = from->second.stubs[s];
                if (stub.target == key && !stub.linked) {
                    patchStub(from->second, s, it->second);
                    ++stats.linksMade;
                    break;
                }
            }
        }
        pendingStubs.erase(pending);
    }

    telemetry::emit(telemetry::TraceEventKind::FragmentInsert,
                    "dynamo.cache",
                    {{"key", key},
                     {"bytes", code_bytes},
                     {"links", stats.linksMade},
                     {"occupancy", occupancy}});
    publishGauges();
    return stats;
}

CodeFragment *
CodeCache::find(std::uint32_t key)
{
    const auto it = fragments.find(key);
    if (it == fragments.end()) {
        if (tmMisses)
            tmMisses->add(1);
        return nullptr;
    }
    if (tmHits)
        tmHits->add(1);
    it->second.lastUse = ++clock;
    ++it->second.executions;
    return &it->second;
}

const CodeFragment *
CodeCache::peek(std::uint32_t key) const
{
    const auto it = fragments.find(key);
    return it == fragments.end() ? nullptr : &it->second;
}

bool
CodeCache::contains(std::uint32_t key) const
{
    return fragments.find(key) != fragments.end();
}

ExitKind
CodeCache::recordExit(std::uint32_t from, std::uint32_t to)
{
    const auto from_it = fragments.find(from);
    HOTPATH_ASSERT(from_it != fragments.end(),
                   "exit from a non-resident fragment");
    CodeFragment &source = from_it->second;

    for (const ExitStub &stub : source.stubs) {
        if (stub.target != to)
            continue;
        if (stub.linked) {
            if (tmDispatchLinked)
                tmDispatchLinked->add(1);
            return ExitKind::Linked;
        }
        // An unlinked stub implies the target is absent: insert()
        // patches waiting stubs the moment a target becomes
        // resident.
        HOTPATH_ASSERT(fragments.find(to) == fragments.end(),
                       "unlinked stub with a resident target");
        if (tmDispatchUnlinked)
            tmDispatchUnlinked->add(1);
        return ExitKind::Unlinked;
    }

    // First exit to this target: materialize the stub trampoline.
    source.stubs.push_back(ExitStub{to, false});
    source.sizeBytes += cfg.stubBytes;
    occupancy += cfg.stubBytes;
    publishGauges();
    const auto to_it = fragments.find(to);
    if (to_it != fragments.end()) {
        // Target already resident: this runtime round trip patches
        // the fresh stub; subsequent exits branch directly.
        patchStub(source, source.stubs.size() - 1, to_it->second);
        if (tmDispatchUnlinked)
            tmDispatchUnlinked->add(1);
        return ExitKind::PatchedNow;
    }
    pendingStubs[to].push_back(from);
    if (tmDispatchUnlinked)
        tmDispatchUnlinked->add(1);
    return ExitKind::Unlinked;
}

bool
CodeCache::evict(std::uint32_t key, EvictReason reason)
{
    const auto it = fragments.find(key);
    if (it == fragments.end())
        return false;
    CodeFragment &victim = it->second;

    // Outbound repair: detach this fragment's own exits.
    for (const ExitStub &stub : victim.stubs) {
        if (stub.linked) {
            ++linkBroken;
            if (tmLinksBroken)
                tmLinksBroken->add(1);
            if (stub.target == key)
                continue; // self link dies with the fragment
            auto target = fragments.find(stub.target);
            HOTPATH_ASSERT(target != fragments.end(),
                           "linked stub with absent target");
            auto &inbound = target->second.inbound;
            const auto pos =
                std::find(inbound.begin(), inbound.end(), key);
            HOTPATH_ASSERT(pos != inbound.end(),
                           "linked stub missing from target inbound");
            inbound.erase(pos);
        } else {
            auto pending = pendingStubs.find(stub.target);
            HOTPATH_ASSERT(pending != pendingStubs.end(),
                           "unlinked stub not pending");
            auto &owners = pending->second;
            const auto pos =
                std::find(owners.begin(), owners.end(), key);
            HOTPATH_ASSERT(pos != owners.end(),
                           "unlinked stub not pending for owner");
            owners.erase(pos);
            if (owners.empty())
                pendingStubs.erase(pending);
        }
    }

    // Inbound repair: every neighbour's linked stub reverts to stub
    // state and re-queues for a future fragment at this head.
    for (const std::uint32_t owner : victim.inbound) {
        if (owner == key)
            continue; // self link, handled above
        auto from = fragments.find(owner);
        HOTPATH_ASSERT(from != fragments.end(),
                       "inbound link from absent fragment");
        bool reverted = false;
        for (ExitStub &stub : from->second.stubs) {
            if (stub.target == key && stub.linked) {
                stub.linked = false;
                reverted = true;
                break;
            }
        }
        HOTPATH_ASSERT(reverted, "inbound entry without linked stub");
        ++linkBroken;
        if (tmLinksBroken)
            tmLinksBroken->add(1);
        pendingStubs[key].push_back(owner);
    }

    telemetry::emit(telemetry::TraceEventKind::FragmentEvict,
                    "dynamo.cache",
                    {{"key", key},
                     {"bytes", victim.sizeBytes},
                     {"executions", victim.executions}},
                    evictReasonName(reason));
    occupancy -= victim.sizeBytes;
    fragments.erase(it);
    ++evicted[static_cast<std::size_t>(reason)];
    if (tmEvictions[static_cast<std::size_t>(reason)])
        tmEvictions[static_cast<std::size_t>(reason)]->add(1);
    publishGauges();
    return true;
}

void
CodeCache::flushAll()
{
    telemetry::emit(telemetry::TraceEventKind::CacheFlush,
                    "dynamo.cache",
                    {{"fragments", fragments.size()},
                     {"occupancy", occupancy}});
    std::uint64_t live_links = 0;
    for (const auto &entry : fragments) {
        for (const ExitStub &stub : entry.second.stubs)
            live_links += stub.linked ? 1 : 0;
    }
    linkBroken += live_links;
    if (tmLinksBroken && live_links > 0)
        tmLinksBroken->add(live_links);
    const std::uint64_t dropped = fragments.size();
    evicted[static_cast<std::size_t>(EvictReason::Flush)] += dropped;
    if (tmEvictions[static_cast<std::size_t>(EvictReason::Flush)] &&
        dropped > 0)
        tmEvictions[static_cast<std::size_t>(EvictReason::Flush)]
            ->add(dropped);
    fragments.clear();
    pendingStubs.clear();
    occupancy = 0;
    ++flushCount;
    if (tmFlushes)
        tmFlushes->add(1);
    publishGauges();
}

std::uint64_t
CodeCache::evictions() const
{
    return evicted[static_cast<std::size_t>(EvictReason::Capacity)] +
           evicted[static_cast<std::size_t>(EvictReason::Generation)];
}

bool
CodeCache::verifyLinkInvariants(std::string *error) const
{
    const auto fail = [error](std::string message) {
        if (error)
            *error = std::move(message);
        return false;
    };

    std::uint64_t tallied_bytes = 0;
    for (const auto &[key, fragment] : fragments) {
        tallied_bytes += fragment.sizeBytes;
        for (const ExitStub &stub : fragment.stubs) {
            const auto target = fragments.find(stub.target);
            if (stub.linked) {
                if (target == fragments.end())
                    return fail("linked stub " + std::to_string(key) +
                                "->" + std::to_string(stub.target) +
                                " has non-resident target");
                const auto &inbound = target->second.inbound;
                if (std::count(inbound.begin(), inbound.end(), key) !=
                    1)
                    return fail("linked stub " + std::to_string(key) +
                                "->" + std::to_string(stub.target) +
                                " not mirrored inbound exactly once");
            } else {
                if (target != fragments.end())
                    return fail("unlinked stub " +
                                std::to_string(key) + "->" +
                                std::to_string(stub.target) +
                                " despite resident target");
                const auto pending = pendingStubs.find(stub.target);
                if (pending == pendingStubs.end() ||
                    std::count(pending->second.begin(),
                               pending->second.end(), key) != 1)
                    return fail("unlinked stub " +
                                std::to_string(key) + "->" +
                                std::to_string(stub.target) +
                                " not pending exactly once");
            }
        }
        for (const std::uint32_t owner : fragment.inbound) {
            const auto from = fragments.find(owner);
            if (from == fragments.end())
                return fail("inbound link from non-resident " +
                            std::to_string(owner));
            std::size_t linked_stubs = 0;
            for (const ExitStub &stub : from->second.stubs) {
                if (stub.target == key && stub.linked)
                    ++linked_stubs;
            }
            if (linked_stubs != 1)
                return fail("inbound entry " + std::to_string(owner) +
                            "->" + std::to_string(key) +
                            " without exactly one linked stub");
        }
    }
    if (tallied_bytes != occupancy)
        return fail("occupancy " + std::to_string(occupancy) +
                    " != tallied " + std::to_string(tallied_bytes));
    for (const auto &[target, owners] : pendingStubs) {
        if (fragments.find(target) != fragments.end())
            return fail("pending stubs for resident target " +
                        std::to_string(target));
        for (const std::uint32_t owner : owners) {
            const auto from = fragments.find(owner);
            if (from == fragments.end())
                return fail("pending stub owned by non-resident " +
                            std::to_string(owner));
            bool found = false;
            for (const ExitStub &stub : from->second.stubs)
                found |= stub.target == target && !stub.linked;
            if (!found)
                return fail("pending entry " + std::to_string(owner) +
                            "->" + std::to_string(target) +
                            " without matching unlinked stub");
        }
    }
    return true;
}

} // namespace hotpath
