/**
 * @file
 * The software fragment cache (paper Section 6).
 *
 * Holds the optimized copies of predicted hot paths. Dynamo managed
 * its cache by wholesale flushing (on capacity pressure and on phase
 * transitions) rather than piecemeal eviction - partly because
 * unlinking an evicted fragment from its neighbours is expensive.
 * The cache model supports both policies so the trade-off can be
 * measured (experiment X5):
 *
 *  - FlushAll: exceeding capacity empties the whole cache;
 *  - EvictLru: least-recently-executed fragments are evicted one by
 *    one until the new fragment fits (each eviction pays a link
 *    repair cost in the system model).
 */

#ifndef HOTPATH_DYNAMO_FRAGMENT_CACHE_HH
#define HOTPATH_DYNAMO_FRAGMENT_CACHE_HH

#include <cstdint>
#include <unordered_map>

#include "paths/path_event.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Histogram;
} // namespace telemetry

/** One cached fragment. */
struct Fragment
{
    /** The hot path this fragment was compiled from. */
    PathIndex path = kInvalidPath;
    /** Fragment body size in instructions. */
    std::uint32_t instructions = 0;
    /** Times the fragment has been dispatched. */
    std::uint64_t executions = 0;
    /** LRU touch stamp of the most recent dispatch. */
    std::uint64_t lastUse = 0;
};

/** Whole-program fragment cache. */
class FragmentCache
{
  public:
    /** Capacity management strategy. */
    enum class EvictionPolicy
    {
        /** Exceeding capacity empties the whole cache (Dynamo). */
        FlushAll,
        /** Evict least-recently-executed fragments one at a time. */
        EvictLru,
    };

    /**
     * @param capacity_instructions Cache size limit in fragment
     *        instructions; 0 = unlimited.
     * @param policy What to do when an insert exceeds the capacity.
     */
    explicit FragmentCache(
        std::uint64_t capacity_instructions = 0,
        EvictionPolicy policy = EvictionPolicy::FlushAll);

    /**
     * Insert a fragment for `path`. Returns true if the insert forced
     * a wholesale capacity flush first (FlushAll policy only).
     */
    bool insert(PathIndex path, std::uint32_t instructions);

    /** Fragment lookup; nullptr if not cached. Refreshes LRU age. */
    Fragment *find(PathIndex path);

    /** Drop every fragment (phase-change or capacity flush). */
    void flushAll();

    /** Fragments currently resident. */
    std::size_t size() const { return fragments.size(); }

    /** Total instructions across resident fragments. */
    std::uint64_t occupancyInstructions() const { return occupancy; }

    /** Configured capacity in instructions; 0 = unlimited. */
    std::uint64_t capacityInstructions() const { return capacity; }

    /** Capacity management strategy in effect. */
    EvictionPolicy policy() const { return evictionPolicy; }

    /** Fragments formed over the lifetime (across flushes). */
    std::uint64_t fragmentsFormed() const { return formed; }

    /** Wholesale flushes performed. */
    std::uint64_t flushes() const { return flushCount; }

    /** Single-fragment LRU evictions performed. */
    std::uint64_t evictions() const { return evictionCount; }

    // Migration support (Session::exportState / importState) -------

    /** Visit every cached fragment (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &entry : fragments)
            fn(entry.second);
    }

    /**
     * Reinstall a fragment byte-for-byte on a fresh cache: the exact
     * `lastUse` stamp is preserved so LRU eviction order after an
     * import matches the exporting cache. Unlike insert() this is
     * bookkeeping-silent - no capacity check, no telemetry, and not
     * counted as a formed fragment.
     */
    void restore(PathIndex path, std::uint32_t instructions,
                 std::uint64_t executions, std::uint64_t lastUse);

    /** The LRU clock (monotonic touch stamp source). */
    std::uint64_t clockValue() const { return clock; }

    /** Reset the LRU clock to an exported value (import path). */
    void setClockValue(std::uint64_t value) { clock = value; }

  private:
    /** Evict least-recently-used fragments to free `needed` room. */
    void evictFor(std::uint32_t needed);

    std::unordered_map<PathIndex, Fragment> fragments;
    std::uint64_t capacity;
    EvictionPolicy evictionPolicy;
    std::uint64_t occupancy = 0;
    std::uint64_t formed = 0;
    std::uint64_t flushCount = 0;
    std::uint64_t evictionCount = 0;
    std::uint64_t clock = 0;

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmHits = nullptr;
    telemetry::Counter *tmMisses = nullptr;
    telemetry::Counter *tmInserts = nullptr;
    telemetry::Counter *tmFlushes = nullptr;
    telemetry::Counter *tmEvictions = nullptr;
    telemetry::Histogram *tmFragmentSize = nullptr;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_FRAGMENT_CACHE_HH
