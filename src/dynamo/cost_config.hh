/**
 * @file
 * Cost model for the Dynamo system simulation (paper Section 6).
 *
 * The paper's Figure 5 is a statement about overhead economics, so
 * the model prices every activity in abstract cycles per instruction
 * or per event. The calibration below is ours (the paper ran on a
 * PA-8000 under HPUX); EXPERIMENTS.md documents it. The structural
 * asymmetry is faithful to the paper's argument:
 *
 *  - NET profiles with a single counter update per head arrival, and
 *    its fragments can be linked directly (no runtime round trip).
 *  - Path profile based prediction pays a history shift per branch
 *    plus a path-table update per path while profiling, and because
 *    the cache is indexed by path signature it must keep constructing
 *    signatures and return to the runtime between fragments, so every
 *    cached path execution pays the unlinked dispatch plus the shift
 *    train ("further profiling operations to trace the execution of
 *    branches", Section 4).
 */

#ifndef HOTPATH_DYNAMO_COST_CONFIG_HH
#define HOTPATH_DYNAMO_COST_CONFIG_HH

namespace hotpath
{

/** Abstract cycle costs for the Dynamo model. */
struct DynamoCostConfig
{
    /** Native execution, per instruction (the baseline). */
    double nativePerInstr = 1.0;

    /** Interpreted (emulated) execution, per instruction. */
    double interpretPerInstr = 10.0;

    /** Optimized fragment execution, per instruction (< native:
     *  straightened layout plus lightweight optimization). */
    double cachedPerInstr = 0.82;

    /** One head-counter update (NET, per interpreted head arrival). */
    double counterOpCost = 5.0;

    /** One history-register shift (bit tracing, per branch). */
    double shiftOpCost = 0.2;

    /** One path-table lookup/update (per completed path). */
    double tableOpCost = 5.0;

    /** Fragment-to-fragment transfer when fragments are linked. */
    double linkedDispatchCost = 2.0;

    /** Runtime round trip when fragments cannot be linked. */
    double unlinkedDispatchCost = 7.0;

    /** Forming a fragment (optimize + emit), per trace instruction. */
    double formationPerInstr = 150.0;

    /** Flushing the fragment cache (fixed cost per flush). */
    double flushCost = 50000.0;

    /** Evicting one fragment under the LRU policy: unlinking the
     *  fragment from its neighbours and patching their exits. */
    double evictionCost = 300.0;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_COST_CONFIG_HH
