#include "dynamo/flush.hh"

#include "support/logging.hh"

namespace hotpath
{

PredictionRateMonitor::PredictionRateMonitor(FlushHeuristicConfig config)
    : cfg(config), cooldownLeft(config.warmupWindows)
{
    HOTPATH_ASSERT(cfg.windowEvents >= 1);
    HOTPATH_ASSERT(cfg.smoothing > 0.0 && cfg.smoothing <= 1.0);
}

bool
PredictionRateMonitor::onEvent(bool was_prediction)
{
    ++eventsInWindow;
    if (was_prediction)
        ++predictionsInWindow;
    if (eventsInWindow < cfg.windowEvents)
        return false;

    const auto count = static_cast<double>(predictionsInWindow);
    eventsInWindow = 0;
    predictionsInWindow = 0;
    ++windows;

    if (cooldownLeft > 0) {
        // Startup or post-flush refill: neither a spike nor a
        // baseline sample.
        --cooldownLeft;
        return false;
    }

    const bool spike =
        count >= static_cast<double>(cfg.spikeFloor) &&
        count > cfg.spikeFactor * average;
    average = cfg.smoothing * count + (1.0 - cfg.smoothing) * average;
    return spike;
}

void
PredictionRateMonitor::settle()
{
    eventsInWindow = 0;
    predictionsInWindow = 0;
    cooldownLeft = cfg.warmupWindows;
}

DegradationPolicy::DegradationPolicy(DegradationPolicyConfig config)
    : cfg(config), cooldownLeft(config.spike.warmupWindows)
{
    HOTPATH_ASSERT(cfg.spike.windowEvents >= 1);
    HOTPATH_ASSERT(cfg.spike.smoothing > 0.0 &&
                   cfg.spike.smoothing <= 1.0);
    HOTPATH_ASSERT(cfg.degradedWindows >= 1);
}

DegradationMode
DegradationPolicy::onEvent(bool pressure)
{
    ++eventsInWindow;
    if (pressure)
        ++pressureInWindow;
    if (eventsInWindow < cfg.spike.windowEvents)
        return state;

    const auto count = static_cast<double>(pressureInWindow);
    eventsInWindow = 0;
    pressureInWindow = 0;
    ++windows;

    if (state == DegradationMode::Degraded) {
        // Sustained pressure re-arms the stay; quiet windows count
        // down toward recovery.
        if (count >= static_cast<double>(cfg.spike.spikeFloor)) {
            degradedLeft = cfg.degradedWindows;
        } else if (--degradedLeft == 0) {
            state = DegradationMode::Normal;
            // Post-recovery warmup: the catch-up burst must neither
            // re-trigger nor pollute the baseline (settle()).
            cooldownLeft = cfg.spike.warmupWindows;
        }
        return state;
    }

    if (cooldownLeft > 0) {
        --cooldownLeft;
        return state;
    }

    const bool spike =
        count >= static_cast<double>(cfg.spike.spikeFloor) &&
        count > cfg.spike.spikeFactor * average;
    average = cfg.spike.smoothing * count +
              (1.0 - cfg.spike.smoothing) * average;
    if (spike) {
        state = DegradationMode::Degraded;
        degradedLeft = cfg.degradedWindows;
        ++entries;
    }
    return state;
}

} // namespace hotpath
