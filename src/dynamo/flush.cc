#include "dynamo/flush.hh"

#include "support/logging.hh"

namespace hotpath
{

PredictionRateMonitor::PredictionRateMonitor(FlushHeuristicConfig config)
    : cfg(config), cooldownLeft(config.warmupWindows)
{
    HOTPATH_ASSERT(cfg.windowEvents >= 1);
    HOTPATH_ASSERT(cfg.smoothing > 0.0 && cfg.smoothing <= 1.0);
}

bool
PredictionRateMonitor::onEvent(bool was_prediction)
{
    ++eventsInWindow;
    if (was_prediction)
        ++predictionsInWindow;
    if (eventsInWindow < cfg.windowEvents)
        return false;

    const auto count = static_cast<double>(predictionsInWindow);
    eventsInWindow = 0;
    predictionsInWindow = 0;
    ++windows;

    if (cooldownLeft > 0) {
        // Startup or post-flush refill: neither a spike nor a
        // baseline sample.
        --cooldownLeft;
        return false;
    }

    const bool spike =
        count >= static_cast<double>(cfg.spikeFloor) &&
        count > cfg.spikeFactor * average;
    average = cfg.smoothing * count + (1.0 - cfg.smoothing) * average;
    return spike;
}

void
PredictionRateMonitor::settle()
{
    eventsInWindow = 0;
    predictionsInWindow = 0;
    cooldownLeft = cfg.warmupWindows;
}

} // namespace hotpath
