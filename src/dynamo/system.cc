#include "dynamo/system.hh"

#include <cmath>

#include "predict/kpath_predictor.hh"
#include "predict/net_predictor.hh"
#include "predict/path_profile_predictor.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath
{

DynamoSystem::DynamoSystem(DynamoConfig config)
    : cfg(config), fragments(config.cache), monitor(config.flush)
{
    switch (cfg.scheme) {
      case PredictionScheme::Net:
        scheme = std::make_unique<NetPredictor>(cfg.predictionDelay);
        break;
      case PredictionScheme::PathProfile:
        scheme = std::make_unique<PathProfilePredictor>(
            cfg.predictionDelay);
        break;
      case PredictionScheme::KIterationPath:
        scheme = std::make_unique<KPathPredictor>(cfg.predictionDelay,
                                                  cfg.kIterations);
        break;
    }
    stats.scheme = scheme->name();
    stats.predictionDelay = cfg.predictionDelay;

    tmEvents = telemetry::counter("dynamo.events");
    tmInterpreted = telemetry::counter("dynamo.interpreted_events");
    tmCached = telemetry::counter("dynamo.cached_events");
    tmNative = telemetry::counter("dynamo.native_events");
    tmBailouts = telemetry::counter("dynamo.bailouts");
    tmPhaseFlushes = telemetry::counter("dynamo.phase_flushes");
    tmCycles.native = telemetry::gauge("dynamo.cycles.native");
    tmCycles.interpret = telemetry::gauge("dynamo.cycles.interpret");
    tmCycles.profiling = telemetry::gauge("dynamo.cycles.profiling");
    tmCycles.formation = telemetry::gauge("dynamo.cycles.formation");
    tmCycles.cached = telemetry::gauge("dynamo.cycles.cached");
    tmCycles.dispatch = telemetry::gauge("dynamo.cycles.dispatch");
    tmCycles.flush = telemetry::gauge("dynamo.cycles.flush");
    tmCycles.postBail = telemetry::gauge("dynamo.cycles.post_bail");
}

void
DynamoSystem::runCached(const PathEvent &event)
{
    ++stats.cachedEvents;
    if (tmCached)
        tmCached->add(1);
    const DynamoCostConfig &costs = cfg.costs;
    stats.cachedCycles += event.instructions * costs.cachedPerInstr;

    if (cfg.scheme == PredictionScheme::Net) {
        // NET indexes fragments by head: consecutive cached paths
        // link through exit stubs, and only the stub's first round
        // trip (or an entry from the interpreter) pays the runtime.
        if (lastCachedPath != kInvalidPath) {
            switch (fragments.recordExit(lastCachedPath, event.path)) {
              case ExitKind::Linked:
                ++stats.linkedDispatches;
                stats.dispatchCycles += costs.linkedDispatchCost;
                break;
              case ExitKind::PatchedNow:
              case ExitKind::Unlinked:
                ++stats.unlinkedDispatches;
                stats.dispatchCycles += costs.unlinkedDispatchCost;
                break;
            }
        } else {
            // Entering the cache from interpreted flow: the runtime
            // looked the fragment up.
            ++stats.unlinkedDispatches;
            stats.dispatchCycles += costs.unlinkedDispatchCost;
        }
    } else {
        // Path-profile-family prediction indexes the cache by path
        // signature, so every cached path execution keeps shifting
        // branch outcomes and returns to the runtime to find the next
        // fragment: fragments cannot be linked.
        ++stats.unlinkedDispatches;
        stats.dispatchCycles += costs.unlinkedDispatchCost;
        stats.profilingCycles +=
            event.branches * costs.shiftOpCost + costs.tableOpCost;
    }
}

bool
DynamoSystem::runInterpreted(const PathEvent &event)
{
    ++stats.interpretedEvents;
    if (tmInterpreted)
        tmInterpreted->add(1);
    const DynamoCostConfig &costs = cfg.costs;
    stats.interpretCycles +=
        event.instructions * costs.interpretPerInstr;

    // The scheme's profiling work while interpreting.
    if (cfg.scheme == PredictionScheme::Net) {
        stats.profilingCycles += costs.counterOpCost;
    } else {
        stats.profilingCycles +=
            event.branches * costs.shiftOpCost + costs.tableOpCost;
    }

    const bool predict = scheme->observe(event);
    if (predict) {
        stats.formationCycles +=
            event.instructions * costs.formationPerInstr;
        const InsertStats insert =
            fragments.insert(event.path, event.instructions);
        if (insert.flushed) {
            stats.flushCycles += costs.flushCost;
            scheme->reset();
        }
        // Piecemeal evictions pay the link-repair cost per victim.
        stats.flushCycles +=
            static_cast<double>(insert.evicted) * costs.evictionCost;
        ++stats.fragmentsFormed;
    }
    return predict;
}

void
DynamoSystem::onPathEvent(const PathEvent &event, std::uint64_t time)
{
    (void)time;
    ++stats.events;
    if (tmEvents)
        tmEvents->add(1);
    stats.instructions += event.instructions;
    stats.nativeCycles += event.instructions * cfg.costs.nativePerInstr;

    if (stats.bailedOut) {
        // Dynamo gave up and handed control back to the native
        // binary: no further overhead, no further benefit.
        ++stats.nativeEvents;
        if (tmNative)
            tmNative->add(1);
        stats.postBailCycles +=
            event.instructions * cfg.costs.nativePerInstr;
        return;
    }

    bool predicted = false;
    const bool cached = fragments.find(event.path) != nullptr;
    if (cached) {
        runCached(event);
    } else {
        predicted = runInterpreted(event);
    }
    // The linking chain survives only across consecutive cached
    // executions; interpreted flow re-enters the cache through the
    // runtime.
    lastCachedPath = cached ? event.path : kInvalidPath;

    // Bail-out checkpoint: if the interpreter still carries a large
    // share of the flow this far in, the program has too many paths
    // and too little reuse to optimize (go, gcc in the paper).
    if (cfg.bailCheckEvents != 0 && !stats.bailedOut &&
        stats.events == cfg.bailCheckEvents) {
        const double interpreted_fraction =
            static_cast<double>(stats.interpretedEvents) /
            static_cast<double>(stats.events);
        if (interpreted_fraction > cfg.bailMaxInterpretedFraction) {
            stats.bailedOut = true;
            if (tmBailouts)
                tmBailouts->add(1);
            telemetry::emit(
                telemetry::TraceEventKind::BailOut, "dynamo",
                {{"events", stats.events},
                 {"interpreted", stats.interpretedEvents}},
                stats.scheme);
        }
    }

    // The phase monitor watches the prediction rate over wall-clock
    // (event) time, cached executions included: a sudden spike in new
    // predictions signals a phase change and flushes the cache.
    if (cfg.enableFlush && !stats.bailedOut) {
        if (monitor.onEvent(predicted)) {
            if (tmPhaseFlushes)
                tmPhaseFlushes->add(1);
            telemetry::emit(
                telemetry::TraceEventKind::PhaseChange, "dynamo",
                {{"events", stats.events},
                 {"fragments", fragments.size()}},
                stats.scheme);
            fragments.flushAll();
            scheme->reset();
            monitor.settle();
            lastCachedPath = kInvalidPath;
            stats.flushCycles += cfg.costs.flushCost;
        }
    }
}

DynamoReport
DynamoSystem::report() const
{
    DynamoReport out = stats;
    out.fragmentsFormed = fragments.fragmentsFormed();
    out.cacheFlushes = fragments.flushes();
    out.cacheEvictions = fragments.evictions();
    out.linksMade = fragments.linksMade();
    out.linksBroken = fragments.linksBroken();

    // Publish the cycle breakdown. Gauges hold the latest report()ed
    // values, rounded to whole cycles.
    const auto publish = [](telemetry::Gauge *gauge, double cycles) {
        if (gauge)
            gauge->set(std::llround(cycles));
    };
    publish(tmCycles.native, out.nativeCycles);
    publish(tmCycles.interpret, out.interpretCycles);
    publish(tmCycles.profiling, out.profilingCycles);
    publish(tmCycles.formation, out.formationCycles);
    publish(tmCycles.cached, out.cachedCycles);
    publish(tmCycles.dispatch, out.dispatchCycles);
    publish(tmCycles.flush, out.flushCycles);
    publish(tmCycles.postBail, out.postBailCycles);
    return out;
}

} // namespace hotpath
