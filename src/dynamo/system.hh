/**
 * @file
 * The Dynamo dynamic-optimization system model (paper Section 6).
 *
 * Dynamo observes the program through emulation, predicts hot paths
 * with a pluggable scheme, optimizes predicted paths into a fragment
 * cache, and thereafter executes them from the cache. The model
 * routes every path execution through exactly one of:
 *
 *  - fragment cache hit: optimized execution plus dispatch (linked
 *    for NET, runtime round trip plus signature shifts for path
 *    profile based prediction - see cost_config.hh);
 *  - interpretation: emulated execution plus the scheme's profiling
 *    work, feeding the predictor; a prediction additionally pays
 *    trace formation and inserts the fragment.
 *
 * A bail-out heuristic abandons optimization (falling back to native
 * execution) when fragments keep forming without reuse, which is how
 * Dynamo handles go and gcc in the paper. A prediction-rate spike
 * monitor triggers wholesale cache flushes on phase changes.
 */

#ifndef HOTPATH_DYNAMO_SYSTEM_HH
#define HOTPATH_DYNAMO_SYSTEM_HH

#include <memory>
#include <string>

#include "dynamo/cost_config.hh"
#include "dynamo/flush.hh"
#include "dynamo/fragment_cache.hh"
#include "predict/predictor.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

/** Which prediction scheme drives the system. */
enum class PredictionScheme
{
    Net,
    PathProfile,
};

/** System-level configuration. */
struct DynamoConfig
{
    PredictionScheme scheme = PredictionScheme::Net;

    /** Prediction delay handed to the predictor. */
    std::uint64_t predictionDelay = 50;

    /** Cycle cost calibration. */
    DynamoCostConfig costs;

    /** Fragment cache capacity in instructions (0 = unlimited). */
    std::uint64_t cacheCapacityInstr = 0;

    /** Capacity management policy (Dynamo used wholesale flushes). */
    FragmentCache::EvictionPolicy cachePolicy =
        FragmentCache::EvictionPolicy::FlushAll;

    /** Enable the phase-change flush heuristic. */
    bool enableFlush = true;
    FlushHeuristicConfig flush;

    /**
     * Bail-out checkpoint in events (0 disables): if, after this many
     * path executions, more than bailMaxInterpretedFraction of them
     * still ran in the interpreter, Dynamo concludes it cannot
     * capture the working set (excessively many paths, no dominant
     * reuse - go, gcc) and hands control back to the native binary.
     */
    std::uint64_t bailCheckEvents = 0;
    double bailMaxInterpretedFraction = 0.15;
};

/** Cycle and event accounting of one Dynamo run. */
struct DynamoReport
{
    std::string scheme;
    std::uint64_t predictionDelay = 0;

    std::uint64_t events = 0;
    std::uint64_t instructions = 0;

    std::uint64_t interpretedEvents = 0;
    std::uint64_t cachedEvents = 0;
    std::uint64_t nativeEvents = 0; // after a bail-out
    std::uint64_t fragmentsFormed = 0;
    std::uint64_t cacheFlushes = 0;
    std::uint64_t cacheEvictions = 0;
    bool bailedOut = false;

    double nativeCycles = 0;
    double interpretCycles = 0;
    double profilingCycles = 0;
    double formationCycles = 0;
    double cachedCycles = 0;
    double dispatchCycles = 0;
    double flushCycles = 0;
    double postBailCycles = 0;

    /** Total cycles Dynamo spent. */
    double
    dynamoCycles() const
    {
        return interpretCycles + profilingCycles + formationCycles +
               cachedCycles + dispatchCycles + flushCycles +
               postBailCycles;
    }

    /** Speedup over native execution, in percent (negative = slower). */
    double
    speedupPercent() const
    {
        return dynamoCycles() <= 0.0
            ? 0.0
            : (nativeCycles / dynamoCycles() - 1.0) * 100.0;
    }
};

/** The Dynamo loop: consumes a path-event stream. */
class DynamoSystem : public PathEventSink
{
  public:
    explicit DynamoSystem(DynamoConfig config);

    void onPathEvent(const PathEvent &event, std::uint64_t time) override;

    /** Accounting so far. */
    DynamoReport report() const;

    const FragmentCache &cache() const { return fragments; }
    HotPathPredictor &predictor() { return *scheme; }

  private:
    void runCached(const PathEvent &event, Fragment &fragment);
    /** Returns true if this execution triggered a prediction. */
    bool runInterpreted(const PathEvent &event);

    DynamoConfig cfg;
    std::unique_ptr<HotPathPredictor> scheme;
    FragmentCache fragments;
    PredictionRateMonitor monitor;
    DynamoReport stats;

    // Telemetry handles; nullptr when telemetry is not attached.
    // Event counters accumulate across all systems in the process;
    // the cycle gauges hold the most recently report()ed breakdown.
    telemetry::Counter *tmEvents = nullptr;
    telemetry::Counter *tmInterpreted = nullptr;
    telemetry::Counter *tmCached = nullptr;
    telemetry::Counter *tmNative = nullptr;
    telemetry::Counter *tmBailouts = nullptr;
    telemetry::Counter *tmPhaseFlushes = nullptr;
    struct CycleGauges
    {
        telemetry::Gauge *native = nullptr;
        telemetry::Gauge *interpret = nullptr;
        telemetry::Gauge *profiling = nullptr;
        telemetry::Gauge *formation = nullptr;
        telemetry::Gauge *cached = nullptr;
        telemetry::Gauge *dispatch = nullptr;
        telemetry::Gauge *flush = nullptr;
        telemetry::Gauge *postBail = nullptr;
    } tmCycles;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_SYSTEM_HH
