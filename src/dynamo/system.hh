/**
 * @file
 * The Dynamo dynamic-optimization system model (paper Section 6).
 *
 * Dynamo observes the program through emulation, predicts hot paths
 * with a pluggable scheme, optimizes predicted paths into a managed
 * code cache (dynamo/code_cache.hh), and thereafter executes them
 * from the cache. The model routes every path execution through
 * exactly one of:
 *
 *  - code cache hit: optimized execution plus dispatch. NET indexes
 *    fragments by head, so consecutive cached paths link through exit
 *    stubs (CodeCache::recordExit decides linked vs runtime round
 *    trip); path-profile-family schemes index the cache by path
 *    signature, so every cached execution keeps shifting branch
 *    outcomes and returns to the runtime to find the next fragment -
 *    fragments cannot be linked (see cost_config.hh).
 *  - interpretation: emulated execution plus the scheme's profiling
 *    work, feeding the predictor; a prediction additionally pays
 *    trace formation and inserts the fragment, which may flush or
 *    evict under the configured CachePolicy.
 *
 * A bail-out heuristic abandons optimization (falling back to native
 * execution) when fragments keep forming without reuse, which is how
 * Dynamo handles go and gcc in the paper. A prediction-rate spike
 * monitor triggers wholesale cache flushes on phase changes.
 */

#ifndef HOTPATH_DYNAMO_SYSTEM_HH
#define HOTPATH_DYNAMO_SYSTEM_HH

#include <memory>
#include <string>

#include "dynamo/code_cache.hh"
#include "dynamo/cost_config.hh"
#include "dynamo/flush.hh"
#include "predict/predictor.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
} // namespace telemetry

/** Which prediction scheme drives the system. */
enum class PredictionScheme
{
    /** Next-executing-tail prediction (predict/net_predictor.hh). */
    Net,
    /** Exhaustive Ball-Larus path profiling (predict/path_profile). */
    PathProfile,
    /** k-iteration Ball-Larus path profiling (predict/kpath). */
    KIterationPath,
};

/** System-level configuration. */
struct DynamoConfig
{
    /** Which prediction scheme drives the system. */
    PredictionScheme scheme = PredictionScheme::Net;

    /** Prediction delay handed to the predictor. */
    std::uint64_t predictionDelay = 50;

    /** Iterations per profiled entity (KIterationPath only). */
    std::uint32_t kIterations = 2;

    /** Cycle cost calibration. */
    DynamoCostConfig costs;

    /** Code-cache geometry and capacity policy (Dynamo used
     *  wholesale flushes: CachePolicy::FlushAll). */
    CodeCacheConfig cache;

    /** Enable the phase-change flush heuristic. */
    bool enableFlush = true;
    /** Spike-detector tunables for the phase-change flush. */
    FlushHeuristicConfig flush;

    /**
     * Bail-out checkpoint in events (0 disables): if, after this many
     * path executions, more than bailMaxInterpretedFraction of them
     * still ran in the interpreter, Dynamo concludes it cannot
     * capture the working set (excessively many paths, no dominant
     * reuse - go, gcc) and hands control back to the native binary.
     */
    std::uint64_t bailCheckEvents = 0;
    /** Interpreted-event fraction above which the checkpoint bails. */
    double bailMaxInterpretedFraction = 0.15;
};

/** Cycle and event accounting of one Dynamo run. */
struct DynamoReport
{
    /** Prediction scheme name (predictor's self-description). */
    std::string scheme;
    /** Prediction delay the scheme ran with. */
    std::uint64_t predictionDelay = 0;

    /** Path events consumed. */
    std::uint64_t events = 0;
    /** Instructions across all consumed events. */
    std::uint64_t instructions = 0;

    /** Events executed in the interpreter (profiled). */
    std::uint64_t interpretedEvents = 0;
    /** Events executed from the code cache. */
    std::uint64_t cachedEvents = 0;
    /** Events executed natively after a bail-out. */
    std::uint64_t nativeEvents = 0;
    /** Fragments formed over the run (across flushes). */
    std::uint64_t fragmentsFormed = 0;
    /** Wholesale cache flushes (capacity and phase-change). */
    std::uint64_t cacheFlushes = 0;
    /** Piecemeal fragment evictions under the cache policy. */
    std::uint64_t cacheEvictions = 0;
    /** Cached dispatches through a linked exit stub (NET only). */
    std::uint64_t linkedDispatches = 0;
    /** Cached dispatches paying the runtime round trip. */
    std::uint64_t unlinkedDispatches = 0;
    /** Exit stubs patched branch-to-fragment over the run. */
    std::uint64_t linksMade = 0;
    /** Linked stubs reverted by evictions and flushes. */
    std::uint64_t linksBroken = 0;
    /** The bail-out checkpoint abandoned optimization. */
    bool bailedOut = false;

    /** Cycles the program would take running purely natively. */
    double nativeCycles = 0;
    /** Cycles spent emulating events in the interpreter. */
    double interpretCycles = 0;
    /** Cycles spent on the scheme's profiling instrumentation. */
    double profilingCycles = 0;
    /** Cycles spent forming fragments from predicted paths. */
    double formationCycles = 0;
    /** Cycles spent executing optimized fragment bodies. */
    double cachedCycles = 0;
    /** Cycles spent dispatching into the cache (linked or not). */
    double dispatchCycles = 0;
    /** Cycles spent flushing, evicting and repairing links. */
    double flushCycles = 0;
    /** Cycles spent running natively after a bail-out. */
    double postBailCycles = 0;

    /** Total cycles Dynamo spent. */
    double
    dynamoCycles() const
    {
        return interpretCycles + profilingCycles + formationCycles +
               cachedCycles + dispatchCycles + flushCycles +
               postBailCycles;
    }

    /** Speedup over native execution, in percent (negative = slower). */
    double
    speedupPercent() const
    {
        return dynamoCycles() <= 0.0
            ? 0.0
            : (nativeCycles / dynamoCycles() - 1.0) * 100.0;
    }
};

/** The Dynamo loop: consumes a path-event stream. */
class DynamoSystem : public PathEventSink
{
  public:
    /** Build the system: instantiate the scheme and the cache. */
    explicit DynamoSystem(DynamoConfig config);

    /** Route one path execution through cache/interpreter/native. */
    void onPathEvent(const PathEvent &event, std::uint64_t time) override;

    /** Accounting so far. */
    DynamoReport report() const;

    /** The managed code cache (inspection). */
    const CodeCache &cache() const { return fragments; }

    /** The prediction scheme driving the system. */
    HotPathPredictor &predictor() { return *scheme; }

  private:
    void runCached(const PathEvent &event);
    /** Returns true if this execution triggered a prediction. */
    bool runInterpreted(const PathEvent &event);

    DynamoConfig cfg;
    std::unique_ptr<HotPathPredictor> scheme;
    CodeCache fragments;
    PredictionRateMonitor monitor;
    DynamoReport stats;
    /** Path of the previous event iff it ran from the cache (the
     *  exit whose stub dispatches the current cached event). */
    PathIndex lastCachedPath = kInvalidPath;

    // Telemetry handles; nullptr when telemetry is not attached.
    // Event counters accumulate across all systems in the process;
    // the cycle gauges hold the most recently report()ed breakdown.
    telemetry::Counter *tmEvents = nullptr;
    telemetry::Counter *tmInterpreted = nullptr;
    telemetry::Counter *tmCached = nullptr;
    telemetry::Counter *tmNative = nullptr;
    telemetry::Counter *tmBailouts = nullptr;
    telemetry::Counter *tmPhaseFlushes = nullptr;
    struct CycleGauges
    {
        telemetry::Gauge *native = nullptr;
        telemetry::Gauge *interpret = nullptr;
        telemetry::Gauge *profiling = nullptr;
        telemetry::Gauge *formation = nullptr;
        telemetry::Gauge *cached = nullptr;
        telemetry::Gauge *dispatch = nullptr;
        telemetry::Gauge *flush = nullptr;
        telemetry::Gauge *postBail = nullptr;
    } tmCycles;
};

} // namespace hotpath

#endif // HOTPATH_DYNAMO_SYSTEM_HH
