/**
 * @file
 * Young-Smith k-bounded general path profiling (paper Section 2,
 * [20]).
 *
 * A k-bounded general path is the sequence of the k most recently
 * executed branches; unlike Ball-Larus forward paths it may include
 * backward edges. The profiler keeps a k-deep FIFO of executed branch
 * edges and bumps the counter of the current window after every
 * branch, which is the "lazy update" formulation of the original
 * algorithm.
 */

#ifndef HOTPATH_PATHS_YOUNG_SMITH_HH
#define HOTPATH_PATHS_YOUNG_SMITH_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/event.hh"

namespace hotpath
{

/** Online k-bounded general-path profiler. */
class YoungSmithProfiler : public ExecutionListener
{
  public:
    /** An executed branch edge packed as (from << 32) | to. */
    using EdgeKey = std::uint64_t;

    /** A general path: the last k executed branch edges. */
    using Window = std::vector<EdgeKey>;

    explicit YoungSmithProfiler(std::size_t k);

    void onTransfer(const TransferEvent &event) override;

    static EdgeKey
    packEdge(BlockId from, BlockId to)
    {
        return (static_cast<std::uint64_t>(from) << 32) | to;
    }

    /** Count of one specific general path (0 if never seen). */
    std::uint64_t countOf(const Window &window) const;

    /** Distinct general paths seen: the counter space. */
    std::size_t countersAllocated() const { return counts.size(); }

    /** Counter updates performed (one per branch once warm). */
    std::uint64_t updates() const { return updateCount; }

    /** Branches pushed through the FIFO. */
    std::uint64_t branchesSeen() const { return branchCount; }

    /** The k bound. */
    std::size_t bound() const { return k; }

    /** Most frequent general paths, descending, up to `limit`. */
    std::vector<std::pair<Window, std::uint64_t>>
    top(std::size_t limit) const;

  private:
    struct WindowHash
    {
        std::size_t
        operator()(const Window &window) const
        {
            std::uint64_t h = 0xcbf29ce484222325ull;
            for (EdgeKey key : window) {
                h ^= key;
                h *= 0x100000001b3ull;
            }
            return static_cast<std::size_t>(h);
        }
    };

    std::size_t k;
    std::deque<EdgeKey> fifo;
    std::unordered_map<Window, std::uint64_t, WindowHash> counts;
    std::uint64_t updateCount = 0;
    std::uint64_t branchCount = 0;
};

} // namespace hotpath

#endif // HOTPATH_PATHS_YOUNG_SMITH_HH
