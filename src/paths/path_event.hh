/**
 * @file
 * The path-granularity event that predictors and metrics consume.
 *
 * Both workload sources produce this: the CFG pipeline (Machine ->
 * PathSplitter -> PathRegistry) and the calibrated SPEC-statistics
 * workloads. Keeping the event minimal (dense ids + size info) is what
 * lets the Figure 2/3 sweeps replay tens of millions of events per
 * second.
 */

#ifndef HOTPATH_PATHS_PATH_EVENT_HH
#define HOTPATH_PATHS_PATH_EVENT_HH

#include <cstdint>

namespace hotpath
{

/** Dense path index (assigned by PathRegistry or a workload). */
using PathIndex = std::uint32_t;

/** Dense path-head index (one per backward-branch target). */
using HeadIndex = std::uint32_t;

constexpr PathIndex kInvalidPath = ~PathIndex{0};
constexpr HeadIndex kInvalidHead = ~HeadIndex{0};

/** One complete execution of one program path. */
struct PathEvent
{
    /** Which path executed. */
    PathIndex path = kInvalidPath;
    /** The path's head (target of the backward taken branch). */
    HeadIndex head = kInvalidHead;
    /** Number of basic blocks on the path. */
    std::uint32_t blocks = 0;
    /** Number of branch instructions on the path. */
    std::uint32_t branches = 0;
    /** Number of instructions on the path. */
    std::uint32_t instructions = 0;
};

/** Receives path executions in program order. */
class PathEventSink
{
  public:
    virtual ~PathEventSink() = default;

    /** `time` is the 0-based index of the event in the stream. */
    virtual void onPathEvent(const PathEvent &event,
                             std::uint64_t time) = 0;
};

} // namespace hotpath

#endif // HOTPATH_PATHS_PATH_EVENT_HH
