/**
 * @file
 * Bit-tracing path signatures (paper Section 2).
 *
 * A path is identified by
 *     <start_address>.<history>,<indirect_branch_target_list>
 * where the history holds one bit per branch on the path (1 = taken)
 * and indirect branch targets are appended verbatim. Signatures are
 * built on the fly while the path executes, exactly as a bit-tracing
 * profiler would shift outcomes into a history register; no static
 * preparatory analysis is needed.
 */

#ifndef HOTPATH_PATHS_SIGNATURE_HH
#define HOTPATH_PATHS_SIGNATURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/types.hh"

namespace hotpath
{

/** An incrementally constructed bit-tracing path signature. */
class PathSignature
{
  public:
    PathSignature() = default;
    explicit PathSignature(Addr start) : startAddr(start) {}

    /** Reset to an empty signature rooted at `start`. */
    void reset(Addr start);

    /** Shift one conditional-branch outcome into the history. */
    void pushOutcome(bool taken);

    /** Append an indirect branch target. */
    void pushIndirectTarget(Addr target);

    Addr start() const { return startAddr; }
    std::size_t historyLength() const { return bitCount; }

    /** Outcome bit i (0 = first branch on the path). */
    bool bit(std::size_t i) const;

    const std::vector<Addr> &
    indirectTargets() const
    {
        return indirect;
    }

    /** 64-bit hash over start, history and indirect targets. */
    std::uint64_t hash() const;

    bool operator==(const PathSignature &other) const;

    /** Render like the paper: "0x1000.0101,[0x2000]". */
    std::string toString() const;

  private:
    Addr startAddr = 0;
    std::vector<std::uint64_t> words;
    std::size_t bitCount = 0;
    std::vector<Addr> indirect;
};

/** Hash functor for unordered containers. */
struct PathSignatureHash
{
    std::size_t
    operator()(const PathSignature &sig) const
    {
        return static_cast<std::size_t>(sig.hash());
    }
};

} // namespace hotpath

#endif // HOTPATH_PATHS_SIGNATURE_HH
