#include "paths/signature.hh"

#include <sstream>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

/** 64-bit mix (SplitMix64 finalizer) for hash combining. */
std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

void
PathSignature::reset(Addr start)
{
    startAddr = start;
    words.clear();
    bitCount = 0;
    indirect.clear();
}

void
PathSignature::pushOutcome(bool taken)
{
    const std::size_t word = bitCount / 64;
    const std::size_t bit = bitCount % 64;
    if (word >= words.size())
        words.push_back(0);
    if (taken)
        words[word] |= (1ull << bit);
    ++bitCount;
}

void
PathSignature::pushIndirectTarget(Addr target)
{
    indirect.push_back(target);
}

bool
PathSignature::bit(std::size_t i) const
{
    HOTPATH_ASSERT(i < bitCount, "history bit out of range");
    return (words[i / 64] >> (i % 64)) & 1;
}

std::uint64_t
PathSignature::hash() const
{
    std::uint64_t h = mix(startAddr ^ 0x9e3779b97f4a7c15ull);
    h = mix(h ^ bitCount);
    for (std::uint64_t w : words)
        h = mix(h ^ w);
    for (Addr t : indirect)
        h = mix(h ^ t);
    return h;
}

bool
PathSignature::operator==(const PathSignature &other) const
{
    return startAddr == other.startAddr && bitCount == other.bitCount &&
           words == other.words && indirect == other.indirect;
}

std::string
PathSignature::toString() const
{
    std::ostringstream os;
    os << "0x" << std::hex << startAddr << std::dec << ".";
    for (std::size_t i = 0; i < bitCount; ++i)
        os << (bit(i) ? '1' : '0');
    if (!indirect.empty()) {
        os << ",[";
        for (std::size_t i = 0; i < indirect.size(); ++i) {
            if (i)
                os << " ";
            os << "0x" << std::hex << indirect[i] << std::dec;
        }
        os << "]";
    }
    return os.str();
}

} // namespace hotpath
