/**
 * @file
 * Online decomposition of the execution stream into interprocedural
 * forward paths (paper Section 3).
 *
 * Definition implemented here: a path starts at the target of a
 * backward taken branch and extends up to the next backward taken
 * branch. It may extend across forward calls and returns, but if it
 * includes a (forward) procedure call it terminates at the
 * corresponding return, if not earlier. A backward call or return is
 * treated like any backward taken branch (it terminates the path, and
 * its target starts the next one). This captures loop iterations,
 * including recursive loops, without unfolding the recursion.
 *
 * Note on layout: with contiguous caller-before-callee procedure
 * layout (what Program::finalize produces), the return back to the
 * caller is itself a backward transfer, so a call-crossing path ends
 * at that return via the backward-branch rule and the continuation
 * becomes a path head. The explicit matching-return rule is the
 * general form; it fires when layout makes the matching return a
 * forward transfer (callee between call site and continuation), and
 * either way the paper's invariant holds: a path never extends past
 * the return matching a call it contains.
 */

#ifndef HOTPATH_PATHS_SPLITTER_HH
#define HOTPATH_PATHS_SPLITTER_HH

#include <vector>

#include "paths/signature.hh"
#include "sim/event.hh"

namespace hotpath
{

/** Why a path record ended. */
enum class PathEndReason : std::uint8_t
{
    /** A backward taken branch executed (the normal loop closure). */
    BackwardBranch,
    /** The return matching a call included in the path executed. */
    MatchingReturn,
    /** The safety cap on path length was hit (record truncated). */
    LengthCap,
    /** The event stream ended mid-path (only emitted by flush()). */
    StreamEnd,
};

/** One completed dynamic path. */
struct PathRecord
{
    /** First block (the path head). */
    BlockId head = kInvalidBlock;
    /** All blocks in execution order, head first. */
    std::vector<BlockId> blocks;
    /** Bit-tracing signature accumulated while executing. */
    PathSignature signature;
    /** Number of branch terminators executed on the path. */
    std::uint32_t branches = 0;
    /** Number of instructions executed on the path. */
    std::uint32_t instructions = 0;
    /** Why the path ended. */
    PathEndReason endReason = PathEndReason::BackwardBranch;
    /**
     * False for paths rooted at a genuine backward-branch target;
     * true for the synthetic roots full-coverage mode introduces.
     */
    bool syntheticHead = false;
};

/** Receives completed paths in program order. */
class PathSink
{
  public:
    virtual ~PathSink() = default;
    virtual void onPath(const PathRecord &record) = 0;
};

/** Splitter configuration. */
struct SplitterConfig
{
    /**
     * Paper-faithful mode starts paths only at targets of backward
     * taken branches; flow between a matching-return termination and
     * the next backward branch is unattributed. Full-coverage mode
     * instead starts the next path immediately, so every executed
     * block belongs to exactly one path (used by conservation tests).
     */
    bool fullCoverage = false;

    /** Safety cap on blocks per path (Dynamo caps traces likewise). */
    std::uint32_t maxBlocks = 256;

    /**
     * The paper's interprocedural definition lets paths extend
     * across forward calls and returns (Section 3). Setting this
     * false yields the classic intraprocedural variant: every call
     * and return terminates the current path (Ball-Larus-style
     * boundaries), which experiment X6 compares against.
     */
    bool interprocedural = true;
};

/**
 * ExecutionListener that cuts the block/transfer stream into
 * PathRecords and hands them to a PathSink.
 */
class PathSplitter : public ExecutionListener
{
  public:
    PathSplitter(PathSink &sink, SplitterConfig config = {});

    void onBlock(const BasicBlock &block) override;
    void onTransfer(const TransferEvent &event) override;

    /** Emit any partial path as StreamEnd (call once, at the end). */
    void flush();

    /** Paths emitted so far. */
    std::uint64_t pathsEmitted() const { return emitted; }

    /** Blocks executed while no path was being collected. */
    std::uint64_t unattributedBlocks() const { return orphanBlocks; }

  private:
    void beginPath(BlockId head, bool synthetic);
    void endPath(PathEndReason reason);

    PathSink &sink;
    SplitterConfig cfg;

    PathRecord current;
    bool inPath = false;
    bool pendingStart = false;
    bool pendingSynthetic = false;
    BlockId pendingHead = kInvalidBlock;
    std::uint32_t callDepth = 0;
    bool sawCall = false;
    std::uint64_t emitted = 0;
    std::uint64_t orphanBlocks = 0;
    bool firstBlock = true;
};

} // namespace hotpath

#endif // HOTPATH_PATHS_SPLITTER_HH
