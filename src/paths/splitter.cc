#include "paths/splitter.hh"

#include "support/logging.hh"

namespace hotpath
{

PathSplitter::PathSplitter(PathSink &sink, SplitterConfig config)
    : sink(sink), cfg(config)
{
    HOTPATH_ASSERT(cfg.maxBlocks >= 1);
}

void
PathSplitter::beginPath(BlockId head, bool synthetic)
{
    current.head = head;
    current.blocks.clear();
    current.branches = 0;
    current.instructions = 0;
    current.endReason = PathEndReason::BackwardBranch;
    current.syntheticHead = synthetic;
    inPath = true;
    callDepth = 0;
    sawCall = false;
}

void
PathSplitter::endPath(PathEndReason reason)
{
    current.endReason = reason;
    sink.onPath(current);
    ++emitted;
    inPath = false;
}

void
PathSplitter::onBlock(const BasicBlock &block)
{
    if (firstBlock) {
        firstBlock = false;
        if (cfg.fullCoverage) {
            pendingStart = true;
            pendingSynthetic = true;
            pendingHead = block.id;
        }
    }

    if (pendingStart) {
        HOTPATH_ASSERT(!inPath, "path start while another is open");
        HOTPATH_ASSERT(pendingHead == block.id,
                       "pending head does not match executing block");
        beginPath(block.id, pendingSynthetic);
        current.signature.reset(block.addr);
        pendingStart = false;
    }

    if (!inPath) {
        ++orphanBlocks;
        return;
    }

    current.blocks.push_back(block.id);
    current.instructions += block.instrCount;

    if (current.blocks.size() >= cfg.maxBlocks) {
        // Truncate: the path ends with this block; collection resumes
        // at the next path start trigger.
        endPath(PathEndReason::LengthCap);
        if (cfg.fullCoverage) {
            // The very next block starts a synthetic path; we do not
            // yet know its id, so flag a wildcard start.
            pendingStart = false;
            pendingHead = kInvalidBlock;
            pendingSynthetic = true;
        }
    }
}

void
PathSplitter::onTransfer(const TransferEvent &event)
{
    // Full-coverage wildcard start after truncation: adopt whatever
    // block executes next.
    if (cfg.fullCoverage && !inPath && !pendingStart) {
        pendingStart = true;
        pendingSynthetic = true;
        pendingHead = event.to;
    }

    if (inPath) {
        // The terminator that produced this transfer belongs to the
        // current path: record its outcome in the signature.
        switch (event.kind) {
          case BranchKind::Conditional:
            current.signature.pushOutcome(event.taken);
            ++current.branches;
            break;
          case BranchKind::Indirect:
            current.signature.pushIndirectTarget(event.target);
            ++current.branches;
            break;
          case BranchKind::Return:
            // Return targets are dynamic, so they disambiguate the
            // path the same way indirect targets do.
            current.signature.pushIndirectTarget(event.target);
            ++current.branches;
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            ++current.branches;
            break;
          case BranchKind::Fallthrough:
            break;
        }
    }

    if (event.backward) {
        // Backward taken branch (of any kind): terminates the current
        // path and its target starts the next one.
        if (inPath)
            endPath(PathEndReason::BackwardBranch);
        pendingStart = true;
        pendingSynthetic = false;
        pendingHead = event.to;
        return;
    }

    if (!inPath)
        return;

    if (!cfg.interprocedural &&
        (event.kind == BranchKind::Call ||
         event.kind == BranchKind::Return)) {
        // Intraprocedural variant: procedure boundaries always end
        // the path; collection resumes at the next backward target
        // (or immediately in full-coverage mode).
        endPath(PathEndReason::MatchingReturn);
        if (cfg.fullCoverage) {
            pendingStart = true;
            pendingSynthetic = true;
            pendingHead = event.to;
        }
        return;
    }

    if (event.kind == BranchKind::Call) {
        ++callDepth;
        sawCall = true;
    } else if (event.kind == BranchKind::Return) {
        if (callDepth > 0) {
            --callDepth;
            if (callDepth == 0 && sawCall) {
                // Forward return matching a call included in the
                // path: the path terminates here (paper Section 3).
                endPath(PathEndReason::MatchingReturn);
                if (cfg.fullCoverage) {
                    pendingStart = true;
                    pendingSynthetic = true;
                    pendingHead = event.to;
                }
            }
        }
        // A forward return with callDepth == 0 crosses out of the
        // procedure the path started in; the path extends across it.
    }
}

void
PathSplitter::flush()
{
    if (inPath && !current.blocks.empty())
        endPath(PathEndReason::StreamEnd);
    inPath = false;
    pendingStart = false;
}

} // namespace hotpath
