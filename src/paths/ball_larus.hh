/**
 * @file
 * Ball-Larus efficient path profiling (paper Section 2, [5]).
 *
 * For each procedure we build the acyclic forward-path DAG (back edges
 * v->w are replaced by v->EXIT and ENTRY->w), number paths with the
 * classic val() assignment so each ENTRY->EXIT path sums to a unique
 * id in [0, numPaths), then push the increments onto the chords of a
 * spanning tree (with the virtual EXIT->ENTRY edge forced into the
 * tree) so only a minimal set of edges needs instrumentation.
 *
 * BallLarusProfiler runs the scheme online against the Machine event
 * stream and accounts its profiling operations, providing the
 * reference implementation of "path profiling with minimized
 * instrumentation" that the paper contrasts NET with.
 */

#ifndef HOTPATH_PATHS_BALL_LARUS_HH
#define HOTPATH_PATHS_BALL_LARUS_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cfg/program.hh"
#include "sim/event.hh"

namespace hotpath
{

/** Path numbering for one procedure's forward DAG. */
class BallLarusNumbering
{
  public:
    /** DAG vertex: a block position, or the virtual entry/exit. */
    using Vertex = std::uint32_t;

    /** One DAG edge with its numbering and instrumentation data. */
    struct Edge
    {
        Vertex from = 0;
        Vertex to = 0;
        /** Ball-Larus val(): contribution to the full path sum. */
        std::int64_t val = 0;
        /** Chord increment (only meaningful when !inTree). */
        std::int64_t inc = 0;
        /** True if the edge is in the spanning tree (no probe). */
        bool inTree = false;
        /** True for the EXIT->ENTRY closing edge. */
        bool isVirtual = false;
    };

    BallLarusNumbering(const Program &program, ProcId proc);

    /** Total number of acyclic forward paths (saturating). */
    std::uint64_t numPaths() const { return pathsFromEntry; }

    /** Number of instrumented (chord) edges, the probe count. */
    std::size_t chordCount() const;

    /** Total number of DAG edges (excluding the virtual edge). */
    std::size_t edgeCount() const { return edges.size() - 1; }

    const std::vector<Edge> &allEdges() const { return edges; }

    Vertex entryVertex() const { return entry; }
    Vertex exitVertex() const { return exit; }

    /** DAG vertex for a block of this procedure. */
    Vertex vertexOf(BlockId block) const;

    /** Block id of a non-virtual vertex. */
    BlockId blockOf(Vertex v) const;

    /**
     * Path id of a complete forward path given as its block sequence,
     * computed with the full val() assignment (every edge).
     */
    std::int64_t pathSumFull(const std::vector<BlockId> &blocks) const;

    /**
     * Same path id computed the instrumented way: summing inc() over
     * chord edges only. Must equal pathSumFull for every path.
     */
    std::int64_t pathSumChords(const std::vector<BlockId> &blocks) const;

    /**
     * Enumerate complete forward paths as block sequences, up to
     * `limit` paths (tests on small graphs).
     */
    std::vector<std::vector<BlockId>>
    enumeratePaths(std::size_t limit) const;

    /** Edge index from vertex pair; -1 if absent (first match). */
    int edgeBetween(Vertex from, Vertex to) const;

  private:
    void buildDag(const Program &program);
    void assignValues();
    void buildSpanningTree();
    void computeIncrements();

    std::vector<std::int64_t>
    sumAlong(const std::vector<BlockId> &blocks, bool chords_only) const;

    const Program &prog;
    ProcId procId;
    std::vector<BlockId> vertexBlocks; // vertex -> block id
    std::unordered_map<BlockId, Vertex> blockVertex;
    Vertex entry = 0;
    Vertex exit = 0;
    std::vector<Edge> edges; // last edge is the virtual EXIT->ENTRY
    std::vector<std::vector<int>> outEdges; // per vertex, edge indices
    std::vector<std::uint64_t> pathsFrom;   // per vertex
    std::uint64_t pathsFromEntry = 0;
};

/** Profiling-operation counters for the online profiler. */
struct BallLarusCost
{
    /** Chord-probe executions (register increments). */
    std::uint64_t probeExecutions = 0;
    /** Path-table updates (one per completed path). */
    std::uint64_t tableUpdates = 0;
};

/**
 * Online Ball-Larus path profiler over the whole program: keeps a
 * per-frame path register, applies chord increments as edges execute
 * and counts each completed (procedure-local) forward path.
 */
class BallLarusProfiler : public ExecutionListener
{
  public:
    explicit BallLarusProfiler(const Program &program);

    void onTransfer(const TransferEvent &event) override;

    /** Numbering of one procedure. */
    const BallLarusNumbering &numbering(ProcId proc) const;

    /** Count of path `id` in `proc` (0 if never executed). */
    std::uint64_t pathCount(ProcId proc, std::int64_t id) const;

    /** Distinct (proc, path id) pairs seen: the counter space. */
    std::size_t countersAllocated() const;

    /** Total completed path executions. */
    std::uint64_t pathsCompleted() const { return completed; }

    const BallLarusCost &cost() const { return opCost; }

    /** Static probe count across all procedures. */
    std::size_t totalChordCount() const;

  private:
    void applyEdge(ProcId proc, int edge_index);
    void finishPath(ProcId proc, BallLarusNumbering::Vertex last);
    void startPath(ProcId proc, BallLarusNumbering::Vertex target);

    struct Frame
    {
        ProcId proc;
        std::int64_t reg;
    };

    const Program &prog;
    std::vector<std::unique_ptr<BallLarusNumbering>> numberings;
    std::vector<Frame> stack; // top = current frame
    std::vector<std::unordered_map<std::int64_t, std::uint64_t>> counts;
    std::uint64_t completed = 0;
    BallLarusCost opCost;
};

} // namespace hotpath

#endif // HOTPATH_PATHS_BALL_LARUS_HH
