#include "paths/young_smith.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hotpath
{

YoungSmithProfiler::YoungSmithProfiler(std::size_t k) : k(k)
{
    HOTPATH_ASSERT(k >= 1, "k-bounded paths need k >= 1");
}

void
YoungSmithProfiler::onTransfer(const TransferEvent &event)
{
    // Only real branch instructions enter the FIFO; fallthroughs are
    // not branches and do not contribute to general-path length.
    if (event.kind == BranchKind::Fallthrough)
        return;

    ++branchCount;
    fifo.push_back(packEdge(event.from, event.to));
    if (fifo.size() > k)
        fifo.pop_front();
    if (fifo.size() < k)
        return; // still warming up

    Window window(fifo.begin(), fifo.end());
    ++counts[window];
    ++updateCount;
}

std::uint64_t
YoungSmithProfiler::countOf(const Window &window) const
{
    const auto it = counts.find(window);
    return it == counts.end() ? 0 : it->second;
}

std::vector<std::pair<YoungSmithProfiler::Window, std::uint64_t>>
YoungSmithProfiler::top(std::size_t limit) const
{
    std::vector<std::pair<Window, std::uint64_t>> all(counts.begin(),
                                                      counts.end());
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (all.size() > limit)
        all.resize(limit);
    return all;
}

} // namespace hotpath
