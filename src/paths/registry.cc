#include "paths/registry.hh"

#include "support/logging.hh"

namespace hotpath
{

std::size_t
PathRegistry::SequenceHash::operator()(
    const std::vector<BlockId> &seq) const
{
    // FNV-1a over the block ids.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (BlockId id : seq) {
        h ^= id;
        h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
}

PathIndex
PathRegistry::intern(const PathRecord &record)
{
    HOTPATH_ASSERT(!record.blocks.empty(), "empty path record");
    const auto it = pathIds.find(record.blocks);
    if (it != pathIds.end())
        return it->second;

    const auto index = static_cast<PathIndex>(paths.size());
    PathInfo info;
    info.index = index;
    info.headBlock = record.head;
    info.head = internHead(record.head);
    info.blocks = record.blocks;
    info.signature = record.signature;
    info.branches = record.branches;
    info.instructions = record.instructions;
    paths.push_back(std::move(info));
    pathIds.emplace(record.blocks, index);
    return index;
}

HeadIndex
PathRegistry::internHead(BlockId head)
{
    const auto it = headIds.find(head);
    if (it != headIds.end())
        return it->second;
    const auto index = static_cast<HeadIndex>(headBlocks.size());
    headIds.emplace(head, index);
    headBlocks.push_back(head);
    return index;
}

const PathInfo &
PathRegistry::info(PathIndex index) const
{
    HOTPATH_ASSERT(index < paths.size(), "bad path index");
    return paths[index];
}

PathEvent
PathRegistry::toEvent(const PathRecord &record)
{
    const PathIndex index = intern(record);
    const PathInfo &interned = paths[index];
    PathEvent event;
    event.path = index;
    event.head = interned.head;
    event.blocks = static_cast<std::uint32_t>(record.blocks.size());
    event.branches = record.branches;
    event.instructions = record.instructions;
    return event;
}

} // namespace hotpath
