#include "paths/ball_larus.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"

namespace hotpath
{

namespace
{

/** Union-find for the spanning-tree construction. */
class DisjointSet
{
  public:
    explicit DisjointSet(std::size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0u);
    }

    std::uint32_t
    find(std::uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    bool
    unite(std::uint32_t a, std::uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent[a] = b;
        return true;
    }

  private:
    std::vector<std::uint32_t> parent;
};

} // namespace

// BallLarusNumbering -------------------------------------------------

BallLarusNumbering::BallLarusNumbering(const Program &program,
                                       ProcId proc)
    : prog(program), procId(proc)
{
    HOTPATH_ASSERT(program.finalized(), "program not finalized");
    buildDag(program);
    assignValues();
    buildSpanningTree();
    computeIncrements();
}

BallLarusNumbering::Vertex
BallLarusNumbering::vertexOf(BlockId block) const
{
    const auto it = blockVertex.find(block);
    HOTPATH_ASSERT(it != blockVertex.end(),
                   "block not in this procedure");
    return it->second;
}

BlockId
BallLarusNumbering::blockOf(Vertex v) const
{
    HOTPATH_ASSERT(v < vertexBlocks.size(), "virtual vertex");
    return vertexBlocks[v];
}

void
BallLarusNumbering::buildDag(const Program &program)
{
    const Procedure &proc = program.procedure(procId);
    vertexBlocks = proc.blocks;
    for (Vertex v = 0; v < vertexBlocks.size(); ++v)
        blockVertex.emplace(vertexBlocks[v], v);
    entry = static_cast<Vertex>(vertexBlocks.size());
    exit = entry + 1;

    outEdges.assign(vertexBlocks.size() + 2, {});

    // Dedup helpers for the back-edge surrogates.
    std::vector<bool> has_entry_edge(vertexBlocks.size() + 2, false);
    std::vector<bool> has_exit_edge(vertexBlocks.size() + 2, false);

    auto add_edge = [&](Vertex from, Vertex to) -> int {
        Edge edge;
        edge.from = from;
        edge.to = to;
        edges.push_back(edge);
        const int index = static_cast<int>(edges.size() - 1);
        outEdges[from].push_back(index);
        return index;
    };
    auto add_entry_edge = [&](Vertex to) {
        if (!has_entry_edge[to]) {
            has_entry_edge[to] = true;
            add_edge(entry, to);
        }
    };
    auto add_exit_edge = [&](Vertex from) {
        if (!has_exit_edge[from]) {
            has_exit_edge[from] = true;
            add_edge(from, exit);
        }
    };

    add_entry_edge(vertexOf(proc.entry));

    for (BlockId bid : proc.blocks) {
        const BasicBlock &block = program.block(bid);
        const Vertex from = vertexOf(bid);

        if (block.kind == BranchKind::Return) {
            add_exit_edge(from);
            continue;
        }
        if (block.kind == BranchKind::Call) {
            // The continuation edge stands in for the whole call; the
            // numbering is intraprocedural (Ball-Larus paths do not
            // descend into callees).
            const BlockId cont = block.successors[0];
            HOTPATH_ASSERT(
                !isBackwardTransfer(block.branchSite(),
                                    program.block(cont).addr),
                "call continuation must be a forward edge");
            add_edge(from, vertexOf(cont));
            continue;
        }
        for (BlockId succ : block.successors) {
            if (isBackwardTransfer(block.branchSite(),
                                   program.block(succ).addr)) {
                add_exit_edge(from);
                add_entry_edge(vertexOf(succ));
            } else {
                add_edge(from, vertexOf(succ));
            }
        }
    }

    // The virtual closing edge, always last.
    Edge closing;
    closing.from = exit;
    closing.to = entry;
    closing.isVirtual = true;
    edges.push_back(closing);
    outEdges[exit].push_back(static_cast<int>(edges.size() - 1));
}

void
BallLarusNumbering::assignValues()
{
    // Reverse-topological order: exit, blocks by descending address
    // (vertex order is address order), then entry. All non-virtual
    // edges point forward in (entry, blocks..., exit).
    pathsFrom.assign(vertexBlocks.size() + 2, 0);
    pathsFrom[exit] = 1;

    auto process = [&](Vertex v) {
        std::uint64_t total = 0;
        std::int64_t running = 0;
        for (int ei : outEdges[v]) {
            Edge &edge = edges[ei];
            if (edge.isVirtual)
                continue;
            edge.val = running;
            const std::uint64_t below = pathsFrom[edge.to];
            total += below;
            running += static_cast<std::int64_t>(below);
        }
        pathsFrom[v] = total;
    };

    for (Vertex v = static_cast<Vertex>(vertexBlocks.size()); v-- > 0;)
        process(v);
    process(entry);
    pathsFromEntry = pathsFrom[entry];
    HOTPATH_ASSERT(pathsFromEntry < (1ull << 32),
                   "procedure has too many acyclic paths for "
                   "Ball-Larus numbering");
}

void
BallLarusNumbering::buildSpanningTree()
{
    DisjointSet sets(vertexBlocks.size() + 2);

    // Force the virtual EXIT->ENTRY edge into the tree so that chord
    // sums equal full path sums without a constant offset.
    Edge &closing = edges.back();
    closing.inTree = true;
    sets.unite(closing.from, closing.to);

    for (Edge &edge : edges) {
        if (edge.isVirtual)
            continue;
        if (sets.unite(edge.from, edge.to))
            edge.inTree = true;
    }
}

void
BallLarusNumbering::computeIncrements()
{
    // Potentials over the spanning tree: phi(entry) = 0 and
    // phi(head) = phi(tail) + val for each tree edge, traversed
    // undirected. Then Inc(chord) = val + phi(from) - phi(to).
    const std::size_t n = vertexBlocks.size() + 2;
    std::vector<std::int64_t> phi(n, 0);
    std::vector<bool> visited(n, false);
    std::vector<std::vector<std::pair<Vertex, std::int64_t>>> tree(n);

    for (const Edge &edge : edges) {
        if (!edge.inTree)
            continue;
        tree[edge.from].emplace_back(edge.to, edge.val);
        tree[edge.to].emplace_back(edge.from, -edge.val);
    }

    std::vector<Vertex> worklist{entry};
    visited[entry] = true;
    while (!worklist.empty()) {
        const Vertex v = worklist.back();
        worklist.pop_back();
        for (const auto &[next, delta] : tree[v]) {
            if (visited[next])
                continue;
            visited[next] = true;
            phi[next] = phi[v] + delta;
            worklist.push_back(next);
        }
    }

    for (Edge &edge : edges) {
        if (edge.inTree || edge.isVirtual)
            continue;
        edge.inc = edge.val + phi[edge.from] - phi[edge.to];
    }
}

std::size_t
BallLarusNumbering::chordCount() const
{
    std::size_t chords = 0;
    for (const Edge &edge : edges) {
        if (!edge.inTree && !edge.isVirtual)
            ++chords;
    }
    return chords;
}

int
BallLarusNumbering::edgeBetween(Vertex from, Vertex to) const
{
    for (int ei : outEdges[from]) {
        if (edges[ei].to == to)
            return ei;
    }
    return -1;
}

std::vector<std::int64_t>
BallLarusNumbering::sumAlong(const std::vector<BlockId> &blocks,
                             bool chords_only) const
{
    HOTPATH_ASSERT(!blocks.empty(), "empty path");
    std::vector<Vertex> route;
    route.push_back(entry);
    for (BlockId bid : blocks)
        route.push_back(vertexOf(bid));
    route.push_back(exit);

    std::int64_t sum = 0;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
        const int ei = edgeBetween(route[i], route[i + 1]);
        HOTPATH_ASSERT(ei >= 0, "block sequence is not a forward path");
        const Edge &edge = edges[ei];
        if (chords_only) {
            if (!edge.inTree)
                sum += edge.inc;
        } else {
            sum += edge.val;
        }
    }
    return {sum};
}

std::int64_t
BallLarusNumbering::pathSumFull(const std::vector<BlockId> &blocks) const
{
    return sumAlong(blocks, false)[0];
}

std::int64_t
BallLarusNumbering::pathSumChords(
    const std::vector<BlockId> &blocks) const
{
    return sumAlong(blocks, true)[0];
}

std::vector<std::vector<BlockId>>
BallLarusNumbering::enumeratePaths(std::size_t limit) const
{
    std::vector<std::vector<BlockId>> result;
    std::vector<BlockId> current;

    // Plain recursive DFS; the DAG depth is bounded by the block
    // count, and enumeration is only used on test-sized procedures.
    auto dfs = [&](auto &&self, Vertex v) -> void {
        if (result.size() >= limit)
            return;
        if (v == exit) {
            result.push_back(current);
            return;
        }
        for (int ei : outEdges[v]) {
            const Edge &edge = edges[ei];
            if (edge.isVirtual)
                continue;
            const bool real = edge.to != exit;
            if (real)
                current.push_back(vertexBlocks[edge.to]);
            self(self, edge.to);
            if (real)
                current.pop_back();
        }
    };
    dfs(dfs, entry);
    return result;
}

// BallLarusProfiler --------------------------------------------------

BallLarusProfiler::BallLarusProfiler(const Program &program)
    : prog(program)
{
    numberings.reserve(program.numProcedures());
    counts.resize(program.numProcedures());
    for (ProcId p = 0; p < program.numProcedures(); ++p)
        numberings.push_back(
            std::make_unique<BallLarusNumbering>(program, p));

    const ProcId main_proc = program.entryProcedure();
    stack.push_back({main_proc, 0});
    startPath(main_proc,
              numberings[main_proc]->vertexOf(
                  program.procedure(main_proc).entry));
}

const BallLarusNumbering &
BallLarusProfiler::numbering(ProcId proc) const
{
    return *numberings[proc];
}

void
BallLarusProfiler::applyEdge(ProcId proc, int edge_index)
{
    HOTPATH_ASSERT(edge_index >= 0, "missing DAG edge at runtime");
    const auto &edge = numberings[proc]->allEdges()[edge_index];
    if (!edge.inTree) {
        stack.back().reg += edge.inc;
        ++opCost.probeExecutions;
    }
}

void
BallLarusProfiler::finishPath(ProcId proc,
                              BallLarusNumbering::Vertex last)
{
    const auto &numbering = *numberings[proc];
    applyEdge(proc, numbering.edgeBetween(last, numbering.exitVertex()));
    const std::int64_t id = stack.back().reg;
    HOTPATH_ASSERT(id >= 0 &&
                       static_cast<std::uint64_t>(id) <
                           numbering.numPaths(),
                   "path register out of range");
    ++counts[proc][id];
    ++opCost.tableUpdates;
    ++completed;
}

void
BallLarusProfiler::startPath(ProcId proc,
                             BallLarusNumbering::Vertex target)
{
    stack.back().reg = 0;
    const auto &numbering = *numberings[proc];
    applyEdge(proc,
              numbering.edgeBetween(numbering.entryVertex(), target));
}

void
BallLarusProfiler::onTransfer(const TransferEvent &event)
{
    const BasicBlock &from_block = prog.block(event.from);
    const ProcId proc = from_block.proc;
    HOTPATH_ASSERT(!stack.empty() && stack.back().proc == proc,
                   "frame stack out of sync with execution");
    auto &numbering = *numberings[proc];

    switch (from_block.kind) {
      case BranchKind::Call: {
        // Traverse the continuation edge in the caller, then enter
        // the callee with a fresh register.
        applyEdge(proc,
                  numbering.edgeBetween(
                      numbering.vertexOf(event.from),
                      numbering.vertexOf(from_block.successors[0])));
        const ProcId callee = from_block.callee;
        stack.push_back({callee, 0});
        startPath(callee,
                  numberings[callee]->vertexOf(
                      prog.procedure(callee).entry));
        return;
      }
      case BranchKind::Return: {
        finishPath(proc, numbering.vertexOf(event.from));
        stack.pop_back();
        if (stack.empty()) {
            // Program restart: open a fresh top-level frame.
            const ProcId main_proc = prog.entryProcedure();
            stack.push_back({main_proc, 0});
            startPath(main_proc,
                      numberings[main_proc]->vertexOf(
                          prog.procedure(main_proc).entry));
        }
        return;
      }
      default:
        break;
    }

    if (event.backward) {
        finishPath(proc, numbering.vertexOf(event.from));
        startPath(proc, numbering.vertexOf(event.to));
    } else {
        applyEdge(proc,
                  numbering.edgeBetween(numbering.vertexOf(event.from),
                                        numbering.vertexOf(event.to)));
    }
}

std::uint64_t
BallLarusProfiler::pathCount(ProcId proc, std::int64_t id) const
{
    const auto &table = counts[proc];
    const auto it = table.find(id);
    return it == table.end() ? 0 : it->second;
}

std::size_t
BallLarusProfiler::countersAllocated() const
{
    std::size_t total = 0;
    for (const auto &table : counts)
        total += table.size();
    return total;
}

std::size_t
BallLarusProfiler::totalChordCount() const
{
    std::size_t total = 0;
    for (const auto &numbering : numberings)
        total += numbering->chordCount();
    return total;
}

} // namespace hotpath
