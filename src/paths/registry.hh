/**
 * @file
 * Path interning: maps dynamic PathRecords to dense PathIndex /
 * HeadIndex ids and bridges the CFG pipeline to the PathEvent stream
 * the predictors and metrics consume.
 */

#ifndef HOTPATH_PATHS_REGISTRY_HH
#define HOTPATH_PATHS_REGISTRY_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "paths/path_event.hh"
#include "paths/splitter.hh"

namespace hotpath
{

/** Interned static information about one distinct path. */
struct PathInfo
{
    PathIndex index = kInvalidPath;
    HeadIndex head = kInvalidHead;
    BlockId headBlock = kInvalidBlock;
    std::vector<BlockId> blocks;
    PathSignature signature;
    std::uint32_t branches = 0;
    std::uint32_t instructions = 0;
};

/** Interns paths (by exact block sequence) and heads (by block id). */
class PathRegistry
{
  public:
    /** Intern a record; returns its dense path index. */
    PathIndex intern(const PathRecord &record);

    /** Intern a head block; returns its dense head index. */
    HeadIndex internHead(BlockId head);

    const PathInfo &info(PathIndex index) const;

    /** Head block id of a head index. */
    BlockId headBlock(HeadIndex head) const { return headBlocks[head]; }

    std::size_t numPaths() const { return paths.size(); }
    std::size_t numHeads() const { return headBlocks.size(); }

    /** Build the PathEvent for a record (interning as needed). */
    PathEvent toEvent(const PathRecord &record);

  private:
    struct SequenceHash
    {
        std::size_t operator()(const std::vector<BlockId> &seq) const;
    };

    std::unordered_map<std::vector<BlockId>, PathIndex, SequenceHash>
        pathIds;
    std::deque<PathInfo> paths;
    std::unordered_map<BlockId, HeadIndex> headIds;
    std::vector<BlockId> headBlocks;
};

/**
 * PathSink that interns records and forwards timed PathEvents to a
 * PathEventSink: the glue between Machine execution and the predictor
 * and metric layers.
 */
class PathEventAdapter : public PathSink
{
  public:
    PathEventAdapter(PathRegistry &registry, PathEventSink &sink)
        : registry(registry), sink(sink)
    {}

    void
    onPath(const PathRecord &record) override
    {
        sink.onPathEvent(registry.toEvent(record), clock++);
    }

    std::uint64_t eventsForwarded() const { return clock; }

  private:
    PathRegistry &registry;
    PathEventSink &sink;
    std::uint64_t clock = 0;
};

} // namespace hotpath

#endif // HOTPATH_PATHS_REGISTRY_HH
