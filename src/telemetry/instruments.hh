/**
 * @file
 * Telemetry instruments: Counter, Gauge and log-scale Histogram.
 *
 * Instruments are owned by a MetricRegistry and handed out by
 * reference; every mutation is a relaxed atomic so instruments can be
 * bumped from any thread without coordination. Call sites hold plain
 * pointers obtained through telemetry::counter() et al., which return
 * nullptr when no registry is attached - the disabled path is a
 * single predictable branch, keeping the hot profiling loops at their
 * uninstrumented speed.
 */

#ifndef HOTPATH_TELEMETRY_INSTRUMENTS_HH
#define HOTPATH_TELEMETRY_INSTRUMENTS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hotpath::telemetry
{

class MetricRegistry;

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1) noexcept
    {
        value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    get() const noexcept
    {
        return value.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return label; }

  private:
    friend class MetricRegistry;
    explicit Counter(std::string name) : label(std::move(name)) {}

    std::string label;
    std::atomic<std::uint64_t> value{0};
};

/** Point-in-time level (occupancy, high-water marks). */
class Gauge
{
  public:
    void
    set(std::int64_t v) noexcept
    {
        value.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta) noexcept
    {
        value.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the gauge to `v` if it is below (high-water mark). */
    void
    recordMax(std::int64_t v) noexcept
    {
        std::int64_t cur = value.load(std::memory_order_relaxed);
        while (cur < v &&
               !value.compare_exchange_weak(cur, v,
                                            std::memory_order_relaxed)) {
        }
    }

    std::int64_t
    get() const noexcept
    {
        return value.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return label; }

  private:
    friend class MetricRegistry;
    explicit Gauge(std::string name) : label(std::move(name)) {}

    std::string label;
    std::atomic<std::int64_t> value{0};
};

class Histogram;

/** Consistent copy of a histogram's state. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /** Meaningful only when count > 0. */
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, 65> buckets{};

    /** Percentile estimate over the log2 buckets (`p` in [0, 1]);
     *  delegates to telemetry::percentileFromHistogram(). */
    std::uint64_t percentile(double p) const;
};

/**
 * Power-of-two (log2) bucketed histogram over uint64 values.
 *
 * Bucket 0 holds exact zeros; bucket b (1..64) holds values in
 * [2^(b-1), 2^b - 1], so the full uint64 range is covered with 65
 * fixed buckets and record() is a handful of relaxed atomic ops.
 */
class Histogram
{
  public:
    static constexpr std::size_t kNumBuckets = 65;

    /** Bucket index for a value (0 for 0, else bit width). */
    static std::size_t bucketOf(std::uint64_t v) noexcept;

    /** Smallest value falling in bucket `b`. */
    static std::uint64_t bucketLowerBound(std::size_t b) noexcept;

    void record(std::uint64_t v) noexcept;

    std::uint64_t
    count() const noexcept
    {
        return countV.load(std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;

    const std::string &name() const { return label; }

  private:
    friend class MetricRegistry;
    explicit Histogram(std::string name) : label(std::move(name)) {}

    std::string label;
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> countV{0};
    std::atomic<std::uint64_t> sumV{0};
    std::atomic<std::uint64_t> minV{~std::uint64_t{0}};
    std::atomic<std::uint64_t> maxV{0};
};

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_INSTRUMENTS_HH
