#include "telemetry/span.hh"

#include <string>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::telemetry
{

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Read: return "read";
      case Stage::Decode: return "decode";
      case Stage::QueueWait: return "queue_wait";
      case Stage::Predict: return "predict";
      case Stage::Encode: return "encode";
      case Stage::WriteFlush: return "write_flush";
    }
    panic("stageName called with an unknown stage");
}

SpanRecorder::SpanRecorder(SpanConfig config) : cfg(config)
{
    if (cfg.sampleEvery == 0)
        return;
    // Eager registration: the net.stage.* histograms appear in
    // RunReport and /metrics from the moment spans are configured,
    // zero-valued until the first sampled frame.
    for (std::size_t s = 0; s < kStageCount; ++s)
        registryHists[s] = telemetry::histogram(
            std::string("net.stage.") +
            stageName(static_cast<Stage>(s)) + ".ns");
}

void
SpanRecorder::recordStage(Stage stage, std::uint64_t ns)
{
    const std::size_t index = static_cast<std::size_t>(stage);
    StageSlot &slot = slots[index];
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sumNs.fetch_add(ns, std::memory_order_relaxed);
    slot.buckets[Histogram::bucketOf(ns)].fetch_add(
        1, std::memory_order_relaxed);
    std::uint64_t seen = slot.minNs.load(std::memory_order_relaxed);
    while (ns < seen &&
           !slot.minNs.compare_exchange_weak(
               seen, ns, std::memory_order_relaxed)) {
    }
    seen = slot.maxNs.load(std::memory_order_relaxed);
    while (ns > seen &&
           !slot.maxNs.compare_exchange_weak(
               seen, ns, std::memory_order_relaxed)) {
    }
    if (registryHists[index])
        registryHists[index]->record(ns);
    if (cfg.emitTrace)
        emit(TraceEventKind::StageSpan, "net.span",
             {{"stage", static_cast<std::uint64_t>(stage)},
              {"duration_ns", ns}},
             stageName(stage));
}

StageTotals
SpanRecorder::totals(Stage stage) const
{
    const StageSlot &slot =
        slots[static_cast<std::size_t>(stage)];
    StageTotals totals;
    totals.count = slot.count.load(std::memory_order_relaxed);
    totals.sumNs = slot.sumNs.load(std::memory_order_relaxed);
    return totals;
}

HistogramSnapshot
SpanRecorder::stageSnapshot(Stage stage) const
{
    const StageSlot &slot =
        slots[static_cast<std::size_t>(stage)];
    HistogramSnapshot snap;
    snap.count = slot.count.load(std::memory_order_relaxed);
    snap.sum = slot.sumNs.load(std::memory_order_relaxed);
    snap.max = slot.maxNs.load(std::memory_order_relaxed);
    const std::uint64_t lo =
        slot.minNs.load(std::memory_order_relaxed);
    snap.min = snap.count == 0 ? 0 : lo;
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b)
        snap.buckets[b] =
            slot.buckets[b].load(std::memory_order_relaxed);
    return snap;
}

} // namespace hotpath::telemetry
