/**
 * @file
 * Minimal JSON emission helpers shared by the JSONL trace sink and
 * the run report writer. Emission only - the library never needs to
 * parse JSON (the tests carry their own tiny parser).
 */

#ifndef HOTPATH_TELEMETRY_JSON_HH
#define HOTPATH_TELEMETRY_JSON_HH

#include <ostream>
#include <string_view>

namespace hotpath::telemetry
{

/** Write `text` as a JSON string literal, quotes included. */
void writeJsonString(std::ostream &os, std::string_view text);

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_JSON_HH
