#include "telemetry/exposition.hh"

#include <cctype>

namespace hotpath::telemetry
{

std::string
prometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == ':';
        out.push_back(ok ? c : '_');
    }
    // A leading digit is illegal in the exposition format.
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

void
writePrometheus(std::ostream &os, const MetricsSnapshot &snapshot)
{
    for (const CounterSample &sample : snapshot.counters) {
        const std::string name = prometheusName(sample.name);
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << sample.value << '\n';
    }
    for (const GaugeSample &sample : snapshot.gauges) {
        const std::string name = prometheusName(sample.name);
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << sample.value << '\n';
    }
    for (const HistogramSample &sample : snapshot.histograms) {
        const std::string name = prometheusName(sample.name);
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < sample.hist.buckets.size();
             ++b) {
            if (sample.hist.buckets[b] == 0)
                continue;
            cumulative += sample.hist.buckets[b];
            // Upper edge of log2 bucket b: 0 for the zero bucket,
            // else 2^b - 1.
            const std::uint64_t le =
                b == 0 ? 0
                       : (b >= 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << b) - 1);
            os << name << "_bucket{le=\"" << le << "\"} "
               << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << sample.hist.count
           << '\n'
           << name << "_sum " << sample.hist.sum << '\n'
           << name << "_count " << sample.hist.count << '\n';
    }
}

} // namespace hotpath::telemetry
