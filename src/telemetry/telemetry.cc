#include "telemetry/telemetry.hh"

#include <atomic>
#include <chrono>

#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace hotpath::telemetry
{

namespace
{

std::atomic<MetricRegistry *> globalRegistry{nullptr};
std::atomic<TraceSink *> globalSink{nullptr};

/** Bridges warn()/inform() into the trace stream (and stderr). */
void
logBridge(LogLevel level, const std::string &message)
{
    defaultLogSink(level, message);
    emit(TraceEventKind::Log,
         level == LogLevel::Warn ? "log.warn" : "log.inform", {},
         message);
}

/**
 * Bridges thread-pool activity into the attached registry (support
 * cannot link telemetry, so the pool publishes through the sink
 * installed by attachRegistry). Pool events are per-task, not
 * per-profiled-event, so the registry lookup per event is cheap
 * relative to the work a task represents.
 */
void
poolBridge(ThreadPoolEvent event, std::uint64_t value)
{
    switch (event) {
      case ThreadPoolEvent::TaskDone:
        if (Counter *tasks = counter("support.thread_pool.tasks"))
            tasks->add();
        if (Histogram *nanos =
                histogram("support.thread_pool.task_nanos"))
            nanos->record(value);
        break;
      case ThreadPoolEvent::QueueDepth:
        if (Gauge *depth = gauge("support.thread_pool.queue_depth"))
            depth->recordMax(static_cast<std::int64_t>(value));
        break;
      case ThreadPoolEvent::SubmitWait:
        if (Counter *waits =
                counter("support.thread_pool.submit_waits"))
            waits->add(value);
        break;
    }
}

} // namespace

void
attachRegistry(MetricRegistry *registry)
{
    globalRegistry.store(registry, std::memory_order_release);
    setThreadPoolSink(registry ? &poolBridge : nullptr);
}

MetricRegistry *
attachedRegistry()
{
    return globalRegistry.load(std::memory_order_acquire);
}

void
attachTraceSink(TraceSink *sink)
{
    globalSink.store(sink, std::memory_order_release);
}

TraceSink *
attachedTraceSink()
{
    return globalSink.load(std::memory_order_acquire);
}

Counter *
counter(std::string_view name)
{
    MetricRegistry *registry = attachedRegistry();
    return registry ? &registry->counter(name) : nullptr;
}

Gauge *
gauge(std::string_view name)
{
    MetricRegistry *registry = attachedRegistry();
    return registry ? &registry->gauge(name) : nullptr;
}

Histogram *
histogram(std::string_view name)
{
    MetricRegistry *registry = attachedRegistry();
    return registry ? &registry->histogram(name) : nullptr;
}

std::uint64_t
monotonicNanos()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

void
emit(TraceEventKind kind, const char *component,
     std::initializer_list<TraceField> fields, std::string_view detail)
{
    TraceSink *sink = attachedTraceSink();
    if (!sink)
        return;

    TraceRecord rec;
    rec.kind = kind;
    rec.timeNs = monotonicNanos();
    rec.component = component;
    for (const TraceField &field : fields) {
        if (rec.fieldCount >= rec.fields.size())
            break;
        rec.fields[rec.fieldCount++] = field;
    }
    rec.detail.assign(detail.data(), detail.size());
    sink->record(rec);
}

TelemetrySession::TelemetrySession(const std::string &trace_path)
{
    if (!trace_path.empty())
        trace = std::make_unique<JsonlTraceSink>(trace_path);
    activate();
}

TelemetrySession::TelemetrySession(std::ostream &trace_stream)
    : trace(std::make_unique<JsonlTraceSink>(trace_stream))
{
    activate();
}

void
TelemetrySession::activate()
{
    previousRegistry = attachedRegistry();
    previousSink = attachedTraceSink();
    attachRegistry(&metrics);
    if (trace) {
        attachTraceSink(trace.get());
        previousLogSink = setLogSink(&logBridge);
    }
}

TelemetrySession::~TelemetrySession()
{
    if (trace) {
        setLogSink(previousLogSink);
        trace->flush();
    }
    attachTraceSink(previousSink);
    attachRegistry(previousRegistry);
}

} // namespace hotpath::telemetry
