/**
 * @file
 * Sampled pipeline stage spans: the serving stack profiling itself.
 *
 * A SpanRecorder applies the paper's "less is more" thesis to our own
 * pipeline: instead of timestamping every frame, it samples 1-in-N
 * frames at the ingest boundary and timestamps each pipeline stage
 * the sampled frame passes through - read, decode, queue-wait,
 * predict, encode, write-flush. Sampled durations feed internal
 * per-stage log2 bucket accumulators (always, so conservation checks
 * and /stats work without a registry), mirrored into `net.stage.*`
 * registry histograms when telemetry is attached, and optionally
 * emitted as StageSpan trace records.
 *
 * Cost model: with sampling disabled (sampleEvery == 0) the whole
 * apparatus is one branch in sampleFrame() and nothing else - no
 * clock reads, no atomics. At 1-in-N sampling each sampled stage
 * costs a handful of relaxed atomics plus the clock reads the caller
 * already made; the perf-smoke CI gate holds 1/64 sampling to <= 5%
 * engine-throughput overhead.
 *
 * Sampling is a deterministic frame counter, not a random draw: a
 * fixed frame sequence always selects the identical sampled set
 * (frames 0, N, 2N, ...), which keeps test assertions and
 * conservation checks exact.
 *
 * Thread safety: every mutation is a relaxed atomic; sampleFrame()
 * and recordStage() may be called from any thread.
 */

#ifndef HOTPATH_TELEMETRY_SPAN_HH
#define HOTPATH_TELEMETRY_SPAN_HH

#include <array>
#include <atomic>
#include <cstdint>

#include "telemetry/instruments.hh"

namespace hotpath::telemetry
{

/** Pipeline stages a sampled frame is timed through, in data-flow
 *  order. */
enum class Stage : std::uint8_t
{
    /** Socket readable to frame extracted from the reassembly
     *  buffer. */
    Read,
    /** Wire decode + CRC check on the owning worker. */
    Decode,
    /** Enqueue on the shard queue to dequeue by the worker. */
    QueueWait,
    /** Session lookup + Session::apply (the NET predictor). */
    Predict,
    /** Prediction reply encoding in the completion callback. */
    Encode,
    /** Reply appended to the connection's write buffer until the
     *  last byte hit the socket. */
    WriteFlush,
};

/** Number of Stage enumerators. */
constexpr std::size_t kStageCount = 6;

/** Stable wire name for a stage ("read", "queue_wait", ...). */
const char *stageName(Stage stage);

/** SpanRecorder parameters. */
struct SpanConfig
{
    /** Sample every Nth frame; 0 disables sampling entirely (the
     *  disabled path is a single branch). */
    std::uint64_t sampleEvery = 0;

    /** Also emit each sampled stage as a StageSpan trace record
     *  (JSONL when a trace sink is attached). */
    bool emitTrace = false;
};

/** One stage's aggregate over all sampled frames so far. */
struct StageTotals
{
    std::uint64_t count = 0;
    std::uint64_t sumNs = 0;
};

/** Deterministic 1-in-N frame sampler + per-stage accumulators; see
 *  the file comment. */
class SpanRecorder
{
  public:
    /** Build a recorder; registers the `net.stage.*` histograms
     *  eagerly when sampling is enabled and a registry is attached
     *  (attach telemetry BEFORE constructing the recorder). */
    explicit SpanRecorder(SpanConfig config);

    /** True when sampling is configured (sampleEvery != 0). */
    bool enabled() const { return cfg.sampleEvery != 0; }

    /** The configured sampling stride (0 = disabled). */
    std::uint64_t sampleEvery() const { return cfg.sampleEvery; }

    /**
     * Count one frame at the ingest boundary and decide whether it
     * is sampled. Deterministic: the k-th call returns true iff
     * k % sampleEvery == 0 (counting from 0). With sampling disabled
     * this is one branch and no atomics.
     */
    bool
    sampleFrame()
    {
        if (cfg.sampleEvery == 0)
            return false;
        const std::uint64_t n =
            frameCounter.fetch_add(1, std::memory_order_relaxed);
        if (n % cfg.sampleEvery != 0)
            return false;
        sampledFramesCount.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /** Record one sampled stage duration in nanoseconds. */
    void recordStage(Stage stage, std::uint64_t ns);

    /** Frames counted by sampleFrame() so far. */
    std::uint64_t
    framesSeen() const
    {
        return frameCounter.load(std::memory_order_relaxed);
    }

    /** Frames selected by sampleFrame() so far. */
    std::uint64_t
    sampledFrames() const
    {
        return sampledFramesCount.load(std::memory_order_relaxed);
    }

    /** One stage's count and sum (internal accumulators; available
     *  with or without a registry). */
    StageTotals totals(Stage stage) const;

    /** One stage's full log2 distribution, as a HistogramSnapshot
     *  ready for percentileFromHistogram(). */
    HistogramSnapshot stageSnapshot(Stage stage) const;

  private:
    /** Internal per-stage accumulator (log2 buckets, like
     *  telemetry::Histogram, but registry-independent). */
    struct StageSlot
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sumNs{0};
        std::atomic<std::uint64_t> minNs{~std::uint64_t{0}};
        std::atomic<std::uint64_t> maxNs{0};
        std::array<std::atomic<std::uint64_t>, Histogram::kNumBuckets>
            buckets{};
    };

    SpanConfig cfg;
    std::atomic<std::uint64_t> frameCounter{0};
    std::atomic<std::uint64_t> sampledFramesCount{0};
    std::array<StageSlot, kStageCount> slots;
    /** Registry mirrors; nullptr when telemetry was not attached at
     *  construction (or sampling is disabled). */
    std::array<Histogram *, kStageCount> registryHists{};
};

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_SPAN_HH
