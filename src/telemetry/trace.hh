/**
 * @file
 * Structured run tracing: typed event records and the sink interface.
 *
 * Components emit TraceRecords for the events the paper's analysis
 * cares about - machine run start/stop, predictions, fragment cache
 * inserts/evictions/flushes, bail-outs, phase changes - with
 * monotonic timestamps. A sink turns the stream into something
 * durable; two implementations ship:
 *
 *  - NullTraceSink: discards everything (the default when no sink is
 *    attached the emission path is a single null check);
 *  - JsonlTraceSink: one JSON object per line, machine-readable by
 *    any log tooling, safe to write from multiple threads.
 */

#ifndef HOTPATH_TELEMETRY_TRACE_HH
#define HOTPATH_TELEMETRY_TRACE_HH

#include <array>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

namespace hotpath::telemetry
{

/** What happened. One enumerator per traced event type. */
enum class TraceEventKind : std::uint8_t
{
    RunStart,       // a Machine::run() call began
    RunStop,        // ... and finished
    Prediction,     // a predictor selected a hot path
    FragmentInsert, // fragment entered the cache
    FragmentEvict,  // LRU eviction removed a fragment
    CacheFlush,     // wholesale cache flush (capacity or phase)
    BailOut,        // Dynamo handed control back to native code
    PhaseChange,    // the prediction-rate monitor fired
    Log,            // a warn()/inform() message (captured)
    StageSpan,      // a sampled pipeline-stage duration (span.hh)
};

/** Stable wire name for a kind ("fragment_insert", ...). */
const char *traceEventName(TraceEventKind kind);

/** One named numeric payload on a record. */
struct TraceField
{
    const char *key = "";
    std::uint64_t value = 0;
};

/** One traced event. */
struct TraceRecord
{
    TraceEventKind kind = TraceEventKind::Log;
    /** Monotonic nanoseconds since the process telemetry epoch. */
    std::uint64_t timeNs = 0;
    /** Emitting component ("sim", "dynamo", "predict.net", ...). */
    const char *component = "";
    /** Kind-specific numeric payloads. */
    std::array<TraceField, 4> fields{};
    std::size_t fieldCount = 0;
    /** Free-form text (log message, scheme name); may be empty. */
    std::string detail;
};

/** Receives trace records in emission order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void record(const TraceRecord &rec) = 0;

    /** Push buffered output to its destination. */
    virtual void flush() {}
};

/** Discards every record. */
class NullTraceSink final : public TraceSink
{
  public:
    void record(const TraceRecord &) override {}
};

/** Writes one JSON object per record, newline-delimited (JSONL). */
class JsonlTraceSink final : public TraceSink
{
  public:
    /** Write to a borrowed stream (kept open by the caller). */
    explicit JsonlTraceSink(std::ostream &os);

    /** Write to a file, truncating it. fatal() on open failure. */
    explicit JsonlTraceSink(const std::string &path);

    void record(const TraceRecord &rec) override;
    void flush() override;

    std::uint64_t recordsWritten() const { return written; }

  private:
    std::ofstream ownedFile;
    std::ostream *out;
    std::mutex mu;
    std::uint64_t written = 0;
};

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_TRACE_HH
