/**
 * @file
 * Process-wide telemetry attachment.
 *
 * The instrumented layers (sim, profile, predict, dynamo) do not know
 * who is watching them: at construction they ask this module for
 * instrument pointers and at interesting moments they call emit().
 * When nothing is attached - the default - counter()/gauge()/
 * histogram() return nullptr and emit() is one branch, so the hot
 * paths measured by micro_profiling_overhead stay at their
 * uninstrumented speed.
 *
 * Lifetime contract: components cache instrument pointers when they
 * are constructed, so attach a registry BEFORE building the machines,
 * predictors and Dynamo systems you want instrumented, and keep it
 * alive until they are gone. TelemetrySession is the RAII shorthand
 * for exactly that scoping.
 */

#ifndef HOTPATH_TELEMETRY_TELEMETRY_HH
#define HOTPATH_TELEMETRY_TELEMETRY_HH

#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>

#include "support/logging.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace hotpath::telemetry
{

/** Attach/detach the process-wide registry (nullptr detaches). */
void attachRegistry(MetricRegistry *registry);
MetricRegistry *attachedRegistry();

/** Attach/detach the process-wide trace sink (nullptr detaches). */
void attachTraceSink(TraceSink *sink);
TraceSink *attachedTraceSink();

/**
 * Instrument accessors against the attached registry. Return nullptr
 * when no registry is attached; call sites keep the pointer and guard
 * each use with a single null check.
 */
Counter *counter(std::string_view name);
Gauge *gauge(std::string_view name);
Histogram *histogram(std::string_view name);

/** Monotonic nanoseconds since the first telemetry call. */
std::uint64_t monotonicNanos();

/** Emit a trace record; no-op when no sink is attached. */
void emit(TraceEventKind kind, const char *component,
          std::initializer_list<TraceField> fields = {},
          std::string_view detail = {});

/**
 * RAII scope owning a registry (and optionally a JSONL trace sink)
 * attached process-wide for its lifetime. While active, warn() and
 * inform() are additionally captured as Log trace records. Previous
 * attachments are restored on destruction, so sessions may nest.
 */
class TelemetrySession
{
  public:
    /** @param trace_path JSONL trace file; empty = no trace sink. */
    explicit TelemetrySession(const std::string &trace_path = "");

    /** Trace into a borrowed stream instead of a file. */
    explicit TelemetrySession(std::ostream &trace_stream);

    ~TelemetrySession();

    TelemetrySession(const TelemetrySession &) = delete;
    TelemetrySession &operator=(const TelemetrySession &) = delete;

    MetricRegistry &registry() { return metrics; }

    /** The session's sink; nullptr if constructed without tracing. */
    JsonlTraceSink *traceSink() { return trace.get(); }

  private:
    void activate();

    MetricRegistry metrics;
    std::unique_ptr<JsonlTraceSink> trace;
    MetricRegistry *previousRegistry = nullptr;
    TraceSink *previousSink = nullptr;
    LogSink previousLogSink = nullptr;
};

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_TELEMETRY_HH
