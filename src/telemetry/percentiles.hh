/**
 * @file
 * Shared percentile math for latency reporting.
 *
 * Two families of estimate live here, used by the benches, the
 * /stats admin endpoint and HistogramSnapshot::percentile():
 *
 *  - exact nearest-rank percentiles over raw sample vectors (what
 *    net_loadgen measures per reply: log2 histogram buckets are too
 *    coarse for tail percentiles);
 *  - interpolated percentiles over a log2 HistogramSnapshot (what
 *    the sampled stage spans keep: linear interpolation inside the
 *    winning power-of-two bucket, cheap and registry-friendly).
 */

#ifndef HOTPATH_TELEMETRY_PERCENTILES_HH
#define HOTPATH_TELEMETRY_PERCENTILES_HH

#include <cstdint>
#include <vector>

#include "telemetry/instruments.hh"

namespace hotpath::telemetry
{

/**
 * Nearest-rank percentile of an ascending-sorted sample vector:
 * rank = p * (n - 1), rounded to the nearest index. Returns 0 for an
 * empty vector. `p` is a fraction in [0, 1].
 */
std::uint64_t percentileOfSorted(
    const std::vector<std::uint64_t> &sorted, double p);

/** The percentile set every latency report prints. */
struct Percentiles
{
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max = 0;
    std::size_t samples = 0;
};

/** Sort `samples` in place and extract p50/p99/p999/max. */
Percentiles percentiles(std::vector<std::uint64_t> &samples);

/**
 * Percentile estimated from a log2 HistogramSnapshot: walk the
 * cumulative counts to the bucket containing the rank, then
 * interpolate linearly between the bucket's lower and upper bounds
 * by the rank's position inside the bucket. Returns 0 when the
 * histogram is empty. `p` is a fraction in [0, 1].
 */
std::uint64_t percentileFromHistogram(const HistogramSnapshot &hist,
                                      double p);

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_PERCENTILES_HH
