#include "telemetry/registry.hh"

namespace hotpath::telemetry
{

// The find-or-create bodies are spelled out per kind because the
// instrument constructors are private to this class; a shared helper
// would need friendship of its own.

Counter &
MetricRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = counters.find(name);
    if (it != counters.end())
        return *it->second;
    std::string key(name);
    std::unique_ptr<Counter> made(new Counter(key));
    Counter &ref = *made;
    counters.emplace(std::move(key), std::move(made));
    return ref;
}

Gauge &
MetricRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = gauges.find(name);
    if (it != gauges.end())
        return *it->second;
    std::string key(name);
    std::unique_ptr<Gauge> made(new Gauge(key));
    Gauge &ref = *made;
    gauges.emplace(std::move(key), std::move(made));
    return ref;
}

Histogram &
MetricRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = histograms.find(name);
    if (it != histograms.end())
        return *it->second;
    std::string key(name);
    std::unique_ptr<Histogram> made(new Histogram(key));
    Histogram &ref = *made;
    histograms.emplace(std::move(key), std::move(made));
    return ref;
}

std::size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters.size() + gauges.size() + histograms.size();
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    MetricsSnapshot snap;
    snap.counters.reserve(counters.size());
    for (const auto &[name, counter] : counters)
        snap.counters.push_back({name, counter->get()});
    snap.gauges.reserve(gauges.size());
    for (const auto &[name, gauge] : gauges)
        snap.gauges.push_back({name, gauge->get()});
    snap.histograms.reserve(histograms.size());
    for (const auto &[name, histogram] : histograms)
        snap.histograms.push_back({name, histogram->snapshot()});
    return snap;
}

} // namespace hotpath::telemetry
