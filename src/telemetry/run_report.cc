#include "telemetry/run_report.hh"

#include <fstream>
#include <map>
#include <vector>

#include "support/logging.hh"
#include "telemetry/json.hh"

namespace hotpath::telemetry
{

namespace
{

/** The snapshot's instruments bucketed by component prefix. */
struct ComponentGroup
{
    std::vector<const CounterSample *> counters;
    std::vector<const GaugeSample *> gauges;
    std::vector<const HistogramSample *> histograms;
};

std::map<std::string, ComponentGroup>
groupByComponent(const MetricsSnapshot &metrics)
{
    std::map<std::string, ComponentGroup> groups;
    for (const CounterSample &sample : metrics.counters)
        groups[RunReport::componentOf(sample.name)].counters.push_back(
            &sample);
    for (const GaugeSample &sample : metrics.gauges)
        groups[RunReport::componentOf(sample.name)].gauges.push_back(
            &sample);
    for (const HistogramSample &sample : metrics.histograms)
        groups[RunReport::componentOf(sample.name)]
            .histograms.push_back(&sample);
    return groups;
}

void
writeHistogramJson(std::ostream &os, const HistogramSnapshot &hist)
{
    os << "{\"count\":" << hist.count << ",\"sum\":" << hist.sum
       << ",\"min\":" << hist.min << ",\"max\":" << hist.max
       << ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        if (hist.buckets[b] == 0)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << "{\"lo\":" << Histogram::bucketLowerBound(b)
           << ",\"count\":" << hist.buckets[b] << '}';
    }
    os << "]}";
}

} // namespace

RunReport
RunReport::capture(const MetricRegistry &registry, std::string title)
{
    RunReport report;
    report.title = std::move(title);
    report.metrics = registry.snapshot();
    return report;
}

std::string
RunReport::componentOf(const std::string &name)
{
    const std::size_t dot = name.find('.');
    if (dot == std::string::npos || dot == 0)
        return "global";
    return name.substr(0, dot);
}

void
RunReport::writeJson(std::ostream &os) const
{
    const auto groups = groupByComponent(metrics);

    os << "{\"report\":";
    writeJsonString(os, title);
    os << ",\"schema\":\"hotpath.telemetry.v1\",\"components\":{";

    bool first_group = true;
    for (const auto &[component, group] : groups) {
        if (!first_group)
            os << ',';
        first_group = false;
        writeJsonString(os, component);
        os << ":{\"counters\":{";
        bool first = true;
        for (const CounterSample *sample : group.counters) {
            if (!first)
                os << ',';
            first = false;
            writeJsonString(os, sample->name);
            os << ':' << sample->value;
        }
        os << "},\"gauges\":{";
        first = true;
        for (const GaugeSample *sample : group.gauges) {
            if (!first)
                os << ',';
            first = false;
            writeJsonString(os, sample->name);
            os << ':' << sample->value;
        }
        os << "},\"histograms\":{";
        first = true;
        for (const HistogramSample *sample : group.histograms) {
            if (!first)
                os << ',';
            first = false;
            writeJsonString(os, sample->name);
            os << ':';
            writeHistogramJson(os, sample->hist);
        }
        os << "}}";
    }
    os << "}}\n";
}

void
RunReport::writeCsv(std::ostream &os) const
{
    os << "name,kind,value,count,sum,min,max\n";
    for (const CounterSample &sample : metrics.counters)
        os << sample.name << ",counter," << sample.value << ",,,,\n";
    for (const GaugeSample &sample : metrics.gauges)
        os << sample.name << ",gauge," << sample.value << ",,,,\n";
    for (const HistogramSample &sample : metrics.histograms) {
        os << sample.name << ",histogram,," << sample.hist.count << ','
           << sample.hist.sum << ',' << sample.hist.min << ','
           << sample.hist.max << '\n';
    }
}

void
RunReport::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::out | std::ios::trunc);
    if (!os) {
        warn("cannot open telemetry report file: " + path);
        return;
    }
    if (path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0) {
        writeCsv(os);
    } else {
        writeJson(os);
    }
}

} // namespace hotpath::telemetry
