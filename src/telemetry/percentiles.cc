#include "telemetry/percentiles.hh"

#include <algorithm>

namespace hotpath::telemetry
{

std::uint64_t
percentileOfSorted(const std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank + 0.5)];
}

Percentiles
percentiles(std::vector<std::uint64_t> &samples)
{
    std::sort(samples.begin(), samples.end());
    Percentiles out;
    out.samples = samples.size();
    out.p50 = percentileOfSorted(samples, 0.50);
    out.p99 = percentileOfSorted(samples, 0.99);
    out.p999 = percentileOfSorted(samples, 0.999);
    out.max = samples.empty() ? 0 : samples.back();
    return out;
}

std::uint64_t
percentileFromHistogram(const HistogramSnapshot &hist, double p)
{
    if (hist.count == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Nearest-rank position among the recorded values, 1-based.
    std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(hist.count - 1) + 0.5) + 1;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        const std::uint64_t in_bucket = hist.buckets[b];
        if (in_bucket == 0)
            continue;
        if (cumulative + in_bucket < rank) {
            cumulative += in_bucket;
            continue;
        }
        // The rank lands in this bucket; interpolate between the
        // bucket bounds by its position among the bucket's values.
        const std::uint64_t lo = Histogram::bucketLowerBound(b);
        if (b == 0)
            return 0; // the zero bucket holds exact zeros
        const std::uint64_t hi =
            b >= 64 ? ~std::uint64_t{0}
                    : Histogram::bucketLowerBound(b + 1) - 1;
        const std::uint64_t into = rank - cumulative; // 1..in_bucket
        const double frac = in_bucket <= 1
            ? 0.0
            : static_cast<double>(into - 1) /
                  static_cast<double>(in_bucket - 1);
        return lo + static_cast<std::uint64_t>(
                        frac * static_cast<double>(hi - lo));
    }
    return hist.max;
}

std::uint64_t
HistogramSnapshot::percentile(double p) const
{
    return percentileFromHistogram(*this, p);
}

} // namespace hotpath::telemetry
