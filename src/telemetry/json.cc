#include "telemetry/json.hh"

#include <cstdio>

namespace hotpath::telemetry
{

void
writeJsonString(std::ostream &os, std::string_view text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace hotpath::telemetry
