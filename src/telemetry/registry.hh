/**
 * @file
 * Process-wide metric registry.
 *
 * A MetricRegistry owns named instruments and hands them out by
 * reference; instruments are never destroyed before the registry, so
 * call sites may cache raw pointers for the registry's lifetime.
 * Registration takes a mutex (it happens once per call site);
 * increments on the returned instruments are lock-free.
 *
 * Naming convention: dotted lowercase paths whose first segment is
 * the owning component ("dynamo.cache.hits", "sim.blocks"); the
 * RunReport groups instruments by that first segment. Counters,
 * gauges and histograms live in separate namespaces, but reusing one
 * name across kinds is confusing - don't.
 */

#ifndef HOTPATH_TELEMETRY_REGISTRY_HH
#define HOTPATH_TELEMETRY_REGISTRY_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/instruments.hh"

namespace hotpath::telemetry
{

/** One counter's value at snapshot time. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/** One gauge's value at snapshot time. */
struct GaugeSample
{
    std::string name;
    std::int64_t value = 0;
};

/** One histogram's state at snapshot time. */
struct HistogramSample
{
    std::string name;
    HistogramSnapshot hist;
};

/** Everything a registry knows, copied out (sorted by name). */
struct MetricsSnapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
};

/** Owns named instruments; see file comment for conventions. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create the instrument named `name`. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Instruments registered so far (all three kinds). */
    std::size_t size() const;

    /** Copy out every instrument's current value. */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
};

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_REGISTRY_HH
