/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport is a snapshot of a MetricRegistry dressed up for
 * consumption outside the process: instruments are grouped by their
 * component prefix (everything before the first '.' in the name -
 * "dynamo.cache.hits" lands under "dynamo"), and the whole thing
 * serializes to JSON or CSV. This is what `--telemetry-out` writes
 * and what downstream analysis parses instead of scraping stderr.
 */

#ifndef HOTPATH_TELEMETRY_RUN_REPORT_HH
#define HOTPATH_TELEMETRY_RUN_REPORT_HH

#include <ostream>
#include <string>

#include "telemetry/registry.hh"

namespace hotpath::telemetry
{

/** Snapshot of a run's metrics, ready to serialize. */
struct RunReport
{
    /** Identifies the run ("fig5", "telemetry_report", ...). */
    std::string title;

    MetricsSnapshot metrics;

    /** Snapshot `registry` now under the given title. */
    static RunReport capture(const MetricRegistry &registry,
                             std::string title = "run");

    /** Component prefix of an instrument name ("" -> "global"). */
    static std::string componentOf(const std::string &name);

    /**
     * Emit as a single JSON object:
     * { "report": ..., "schema": "hotpath.telemetry.v1",
     *   "components": { "<component>": { "counters": {...},
     *   "gauges": {...}, "histograms": { "<name>": { "count": ...,
     *   "sum": ..., "min": ..., "max": ...,
     *   "buckets": [{"lo": ..., "count": ...}, ...] } } } } }
     * Histogram buckets with zero population are omitted.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Emit as CSV with header
     * name,kind,value,count,sum,min,max - counters and gauges fill
     * `value`, histograms fill the aggregate columns.
     */
    void writeCsv(std::ostream &os) const;

    /** Write to `path`; ".csv" extension selects CSV, else JSON. */
    void writeFile(const std::string &path) const;
};

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_RUN_REPORT_HH
