#include "telemetry/trace.hh"

#include "support/logging.hh"
#include "telemetry/json.hh"

namespace hotpath::telemetry
{

const char *
traceEventName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::RunStart:
        return "run_start";
      case TraceEventKind::RunStop:
        return "run_stop";
      case TraceEventKind::Prediction:
        return "prediction";
      case TraceEventKind::FragmentInsert:
        return "fragment_insert";
      case TraceEventKind::FragmentEvict:
        return "fragment_evict";
      case TraceEventKind::CacheFlush:
        return "cache_flush";
      case TraceEventKind::BailOut:
        return "bail_out";
      case TraceEventKind::PhaseChange:
        return "phase_change";
      case TraceEventKind::Log:
        return "log";
      case TraceEventKind::StageSpan:
        return "stage_span";
    }
    return "unknown";
}

JsonlTraceSink::JsonlTraceSink(std::ostream &os) : out(&os) {}

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : ownedFile(path, std::ios::out | std::ios::trunc),
      out(&ownedFile)
{
    if (!ownedFile)
        fatal("cannot open trace output file: " + path);
}

void
JsonlTraceSink::record(const TraceRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostream &os = *out;
    os << "{\"event\":\"" << traceEventName(rec.kind)
       << "\",\"t_ns\":" << rec.timeNs << ",\"component\":";
    writeJsonString(os, rec.component);
    for (std::size_t i = 0; i < rec.fieldCount; ++i) {
        os << ',';
        writeJsonString(os, rec.fields[i].key);
        os << ':' << rec.fields[i].value;
    }
    if (!rec.detail.empty()) {
        os << ",\"detail\":";
        writeJsonString(os, rec.detail);
    }
    os << "}\n";
    ++written;
}

void
JsonlTraceSink::flush()
{
    std::lock_guard<std::mutex> lock(mu);
    out->flush();
}

} // namespace hotpath::telemetry
