/**
 * @file
 * Prometheus text exposition for a MetricsSnapshot.
 *
 * Renders the snapshot in the Prometheus text format (version 0.0.4)
 * served by the net::Server admin endpoint's /metrics path: dotted
 * instrument names become underscore-separated metric names,
 * counters and gauges are single samples, and log2 histograms become
 * cumulative `_bucket{le="..."}` series with `_sum` and `_count`.
 * The output is deterministic (snapshot order is sorted by name), so
 * tests can assert on it verbatim.
 */

#ifndef HOTPATH_TELEMETRY_EXPOSITION_HH
#define HOTPATH_TELEMETRY_EXPOSITION_HH

#include <ostream>
#include <string>

#include "telemetry/registry.hh"

namespace hotpath::telemetry
{

/** Prometheus-safe metric name for a dotted instrument name
 *  ("net.frames.in" -> "net_frames_in"). */
std::string prometheusName(const std::string &name);

/** Render the whole snapshot in Prometheus text format. */
void writePrometheus(std::ostream &os,
                     const MetricsSnapshot &snapshot);

} // namespace hotpath::telemetry

#endif // HOTPATH_TELEMETRY_EXPOSITION_HH
