#include "telemetry/instruments.hh"

#include <bit>

namespace hotpath::telemetry
{

std::size_t
Histogram::bucketOf(std::uint64_t v) noexcept
{
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t
Histogram::bucketLowerBound(std::size_t b) noexcept
{
    if (b == 0)
        return 0;
    return std::uint64_t{1} << (b - 1);
}

void
Histogram::record(std::uint64_t v) noexcept
{
    buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    countV.fetch_add(1, std::memory_order_relaxed);
    sumV.fetch_add(v, std::memory_order_relaxed);

    std::uint64_t cur = minV.load(std::memory_order_relaxed);
    while (v < cur &&
           !minV.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
    cur = maxV.load(std::memory_order_relaxed);
    while (v > cur &&
           !maxV.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = countV.load(std::memory_order_relaxed);
    snap.sum = sumV.load(std::memory_order_relaxed);
    snap.min =
        snap.count == 0 ? 0 : minV.load(std::memory_order_relaxed);
    snap.max = maxV.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kNumBuckets; ++b)
        snap.buckets[b] = buckets[b].load(std::memory_order_relaxed);
    return snap;
}

} // namespace hotpath::telemetry
