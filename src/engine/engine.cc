#include "engine/engine.hh"

#include <algorithm>
#include <string>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::engine
{

namespace
{

/** rejectCounts slot for a decode failure. */
std::size_t
rejectSlot(wire::DecodeStatus status)
{
    switch (status) {
      case wire::DecodeStatus::Truncated: return 0;
      case wire::DecodeStatus::BadMagic: return 1;
      case wire::DecodeStatus::BadKind: return 2;
      case wire::DecodeStatus::BadLength: return 3;
      case wire::DecodeStatus::BadCrc: return 4;
      case wire::DecodeStatus::BadPayload: return 5;
      case wire::DecodeStatus::Ok: break;
    }
    panic("rejectSlot called with DecodeStatus::Ok");
}

} // namespace

Engine::Engine(EngineConfig config)
    : cfg(std::move(config)), table(cfg.sessions)
{
    HOTPATH_ASSERT(cfg.queueCapacityFrames >= 1,
                   "queue capacity must be at least one frame");
    HOTPATH_ASSERT(cfg.maxBatchFrames >= 1,
                   "batch size must be at least one frame");

    tmFramesDecoded = telemetry::counter("engine.frames.decoded");
    tmFramesRejected = telemetry::counter("engine.frames.rejected");
    tmEvents = telemetry::counter("engine.events");
    tmPredictions = telemetry::counter("engine.predictions");
    tmBackpressure = telemetry::counter("engine.backpressure.waits");
    tmQueueHighWater = telemetry::gauge("engine.queue.highwater");
    tmQueueDepth = telemetry::gauge("engine.queue.depth");
    tmBatchSize = telemetry::histogram("engine.batch.size");

    const std::size_t shard_count = table.shardCount();
    queues.reserve(shard_count);
    tmShardFrames.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
        queues.push_back(std::make_unique<ShardQueue>());
        tmShardFrames.push_back(telemetry::counter(
            "engine.shard." + std::to_string(i) + ".frames"));
    }

    // More workers than shards would only idle: clamp.
    const std::size_t worker_count =
        std::min(cfg.workerThreads, shard_count);
    if (worker_count == 0)
        return; // serial fallback mode

    workerStates.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w)
        workerStates.push_back(std::make_unique<WorkerState>());
    for (std::size_t s = 0; s < shard_count; ++s) {
        const std::size_t owner = s % worker_count;
        queues[s]->worker = owner;
        workerStates[owner]->shards.push_back(s);
    }
    workers.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w)
        workers.emplace_back(&Engine::workerLoop, this, w);
}

Engine::~Engine()
{
    shutdown();
}

void
Engine::countReject(wire::DecodeStatus status)
{
    rejectCounts[rejectSlot(status)].fetch_add(
        1, std::memory_order_relaxed);
    if (tmFramesRejected)
        tmFramesRejected->add(1);
    // One diagnostic per engine; rejections after the first are
    // visible in stats() without flooding the log from workers.
    if (!warnedReject.exchange(true, std::memory_order_relaxed))
        warn(std::string("engine: rejected frame (") +
             wire::decodeStatusName(status) +
             "); further rejections counted silently");
}

bool
Engine::submit(std::vector<std::uint8_t> frame)
{
    framesSubmitted.fetch_add(1, std::memory_order_relaxed);

    wire::FrameHeader header;
    std::size_t frame_end = 0;
    const wire::DecodeStatus status = wire::peekFrameHeader(
        frame.data(), frame.size(), 0, header, frame_end);
    if (status != wire::DecodeStatus::Ok) {
        countReject(status);
        return false;
    }
    if (frame_end != frame.size()) {
        // submit() takes exactly one frame per call.
        countReject(wire::DecodeStatus::BadLength);
        return false;
    }

    if (workers.empty()) {
        // Serial fallback: the caller's thread is the worker.
        processFrame(frame, serialScratch);
        return true;
    }

    const std::size_t shard_index = table.shardOf(header.session);
    ShardQueue &queue = *queues[shard_index];
    pendingFrames.fetch_add(1, std::memory_order_relaxed);
    {
        std::unique_lock<std::mutex> lock(queue.mu);
        if (queue.frames.size() >= cfg.queueCapacityFrames) {
            ++queue.backpressureWaits;
            if (tmBackpressure)
                tmBackpressure->add(1);
            queue.spaceAvailable.wait(lock, [&] {
                return queue.frames.size() <
                       cfg.queueCapacityFrames;
            });
        }
        queue.frames.push_back(std::move(frame));
        queue.highWater =
            std::max(queue.highWater, queue.frames.size());
        if (tmQueueDepth)
            tmQueueDepth->set(
                static_cast<std::int64_t>(queue.frames.size()));
        if (tmQueueHighWater)
            tmQueueHighWater->recordMax(
                static_cast<std::int64_t>(queue.frames.size()));
    }

    WorkerState &worker = *workerStates[queue.worker];
    {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.wake = true;
    }
    worker.workAvailable.notify_one();
    return true;
}

bool
Engine::submitEvents(std::uint64_t session, std::uint64_t sequence,
                     const PathEvent *events, std::size_t count)
{
    std::vector<std::uint8_t> frame;
    wire::appendEventFrame(frame, session, sequence, events, count);
    return submit(std::move(frame));
}

void
Engine::processFrame(const std::vector<std::uint8_t> &frame,
                     wire::DecodedFrame &scratch)
{
    std::size_t offset = 0;
    const wire::DecodeStatus status =
        wire::decodeFrame(frame.data(), frame.size(), offset, scratch);
    if (status != wire::DecodeStatus::Ok) {
        countReject(status);
        return;
    }
    if (scratch.header.kind != wire::FrameKind::PathEvents) {
        // The serving path consumes path events; block-trace frames
        // are an offline interchange format (see wire_format.hh).
        countReject(wire::DecodeStatus::BadKind);
        return;
    }

    framesDecoded.fetch_add(1, std::memory_order_relaxed);
    eventsProcessed.fetch_add(scratch.events.size(),
                              std::memory_order_relaxed);
    if (tmFramesDecoded)
        tmFramesDecoded->add(1);
    if (tmEvents)
        tmEvents->add(scratch.events.size());

    std::uint64_t predicted = 0;
    table.withSession(scratch.header.session, [&](Session &session) {
        predicted = session.apply(scratch);
    });
    if (predicted != 0) {
        predictionsMade.fetch_add(predicted,
                                  std::memory_order_relaxed);
        if (tmPredictions)
            tmPredictions->add(predicted);
    }
}

void
Engine::noteFrameDone(std::uint64_t count)
{
    if (pendingFrames.fetch_sub(count, std::memory_order_acq_rel) ==
        count) {
        std::lock_guard<std::mutex> lock(drainMu);
        drainCv.notify_all();
    }
}

void
Engine::workerLoop(std::size_t worker_index)
{
    WorkerState &self = *workerStates[worker_index];
    wire::DecodedFrame scratch;
    std::vector<std::vector<std::uint8_t>> batch;

    while (true) {
        bool did_work = false;
        for (const std::size_t shard_index : self.shards) {
            ShardQueue &queue = *queues[shard_index];
            batch.clear();
            {
                std::lock_guard<std::mutex> lock(queue.mu);
                const std::size_t n = std::min(
                    queue.frames.size(), cfg.maxBatchFrames);
                for (std::size_t i = 0; i < n; ++i) {
                    batch.push_back(
                        std::move(queue.frames.front()));
                    queue.frames.pop_front();
                }
                if (n > 0 && tmQueueDepth)
                    tmQueueDepth->set(static_cast<std::int64_t>(
                        queue.frames.size()));
            }
            if (batch.empty())
                continue;
            did_work = true;
            queue.spaceAvailable.notify_all();

            batchesPopped.fetch_add(1, std::memory_order_relaxed);
            if (tmBatchSize)
                tmBatchSize->record(batch.size());
            if (tmShardFrames[shard_index])
                tmShardFrames[shard_index]->add(batch.size());

            for (const std::vector<std::uint8_t> &frame : batch)
                processFrame(frame, scratch);
            noteFrameDone(batch.size());
        }
        if (did_work)
            continue;

        std::unique_lock<std::mutex> lock(self.mu);
        if (stopping.load(std::memory_order_acquire)) {
            // Drain-before-stop means the queues are already empty
            // by the time stopping is observed; double-check anyway.
            bool all_empty = true;
            for (const std::size_t shard_index : self.shards) {
                ShardQueue &queue = *queues[shard_index];
                std::lock_guard<std::mutex> qlock(queue.mu);
                all_empty = all_empty && queue.frames.empty();
            }
            if (all_empty)
                return;
            continue;
        }
        self.workAvailable.wait(lock, [&] {
            return self.wake ||
                   stopping.load(std::memory_order_acquire);
        });
        self.wake = false;
    }
}

void
Engine::drain()
{
    if (workers.empty())
        return; // serial mode processes inline; nothing queued
    std::unique_lock<std::mutex> lock(drainMu);
    drainCv.wait(lock, [&] {
        return pendingFrames.load(std::memory_order_acquire) == 0;
    });
}

void
Engine::shutdown()
{
    if (workers.empty())
        return;
    drain();
    stopping.store(true, std::memory_order_release);
    for (const auto &worker : workerStates) {
        {
            std::lock_guard<std::mutex> lock(worker->mu);
            worker->wake = true;
        }
        worker->workAvailable.notify_all();
    }
    for (std::thread &thread : workers)
        thread.join();
    workers.clear();
}

EngineStats
Engine::stats() const
{
    EngineStats stats;
    stats.framesSubmitted =
        framesSubmitted.load(std::memory_order_relaxed);
    stats.framesDecoded =
        framesDecoded.load(std::memory_order_relaxed);
    stats.rejects.truncated =
        rejectCounts[0].load(std::memory_order_relaxed);
    stats.rejects.badMagic =
        rejectCounts[1].load(std::memory_order_relaxed);
    stats.rejects.badKind =
        rejectCounts[2].load(std::memory_order_relaxed);
    stats.rejects.badLength =
        rejectCounts[3].load(std::memory_order_relaxed);
    stats.rejects.badCrc =
        rejectCounts[4].load(std::memory_order_relaxed);
    stats.rejects.badPayload =
        rejectCounts[5].load(std::memory_order_relaxed);
    stats.framesRejected = stats.rejects.total();
    stats.eventsProcessed =
        eventsProcessed.load(std::memory_order_relaxed);
    stats.predictions =
        predictionsMade.load(std::memory_order_relaxed);
    stats.batches = batchesPopped.load(std::memory_order_relaxed);

    const SessionTableStats table_stats = table.stats();
    stats.sessionsCreated = table_stats.created;
    stats.sessionsEvicted = table_stats.evicted;
    stats.sessionsLive = table_stats.live;

    stats.queueHighWater.reserve(queues.size());
    for (const auto &queue : queues) {
        std::lock_guard<std::mutex> lock(queue->mu);
        stats.queueHighWater.push_back(queue->highWater);
        stats.backpressureWaits += queue->backpressureWaits;
    }
    return stats;
}

std::vector<PathIndex>
Engine::predictionsFor(std::uint64_t session_id) const
{
    std::vector<PathIndex> predictions;
    table.peekSession(session_id, [&](const Session &session) {
        predictions = session.predictions();
    });
    return predictions;
}

} // namespace hotpath::engine
