#include "engine/engine.hh"

#include <algorithm>
#include <chrono>
#include <string>

#include "support/logging.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::engine
{

namespace
{

/** rejectCounts slot for a decode failure. */
std::size_t
rejectSlot(wire::DecodeStatus status)
{
    switch (status) {
      case wire::DecodeStatus::Truncated: return 0;
      case wire::DecodeStatus::BadMagic: return 1;
      case wire::DecodeStatus::BadKind: return 2;
      case wire::DecodeStatus::BadLength: return 3;
      case wire::DecodeStatus::BadCrc: return 4;
      case wire::DecodeStatus::BadPayload: return 5;
      case wire::DecodeStatus::Ok: break;
    }
    panic("rejectSlot called with DecodeStatus::Ok");
}

/** How long a parked worker sleeps before re-checking its rings, and
 *  how long a blocked producer sleeps before re-trying a full ring.
 *  Both parks are belt-and-braces: the Dekker handshake (seq_cst
 *  fences around the sleeping/spaceWaiters flags) makes a missed
 *  notify nearly impossible, and the timeout makes even that
 *  self-heal instead of hanging drain(). */
constexpr auto kParkTimeout = std::chrono::milliseconds(2);

} // namespace

Engine::Engine(EngineConfig config)
    : cfg(std::move(config)), table(cfg.sessions)
{
    HOTPATH_ASSERT(cfg.queueCapacityFrames >= 1,
                   "queue capacity must be at least one frame");
    HOTPATH_ASSERT(cfg.maxBatchFrames >= 1,
                   "batch size must be at least one frame");
    HOTPATH_ASSERT(cfg.delayWindowFrames >= 1,
                   "delay window must be at least one frame");

    if (fault::kCompiledIn && cfg.faults.enabled())
        injector = std::make_unique<fault::FaultInjector>(cfg.faults);

    if (cfg.spanSampleEvery > 0) {
        telemetry::SpanConfig span_cfg;
        span_cfg.sampleEvery = cfg.spanSampleEvery;
        span_cfg.emitTrace = cfg.spanTrace;
        ownedSpans =
            std::make_unique<telemetry::SpanRecorder>(span_cfg);
        spans = ownedSpans.get();
    }

    tmFramesDecoded = telemetry::counter("engine.frames.decoded");
    tmFramesRejected = telemetry::counter("engine.frames.rejected");
    tmEvents = telemetry::counter("engine.events");
    tmPredictions = telemetry::counter("engine.predictions");
    tmBackpressure = telemetry::counter("engine.backpressure.waits");
    tmExported = telemetry::counter("engine.sessions.exported");
    tmImported = telemetry::counter("engine.sessions.imported");
    tmQueueHighWater = telemetry::gauge("engine.queue.highwater");
    tmQueueDepth = telemetry::gauge("engine.queue.depth");
    tmBatchSize = telemetry::histogram("engine.batch.size");

    // Resilience metrics exist only when a resilience feature is on,
    // so default runs keep their RunReports byte-stable.
    const bool resilient =
        injector != nullptr ||
        cfg.sessions.session.errorBudget > 0 ||
        cfg.overloadPolicy == OverloadPolicy::DropOldest ||
        cfg.watchdogIntervalMs > 0;
    if (resilient) {
        for (std::size_t s = 0; s < fault::kSiteCount; ++s)
            tmInjected[s] = telemetry::counter(
                std::string("engine.fault.injected.") +
                fault::siteName(static_cast<fault::Site>(s)));
        tmCorruptFrames =
            telemetry::counter("engine.fault.frames.corrupted");
        tmPoisoned =
            telemetry::counter("engine.fault.sessions.poisoned");
        tmAllocFailures =
            telemetry::counter("engine.fault.alloc.failures");
        tmOverloadSpikes =
            telemetry::counter("engine.fault.overload.spikes");
        tmWorkerStalled =
            telemetry::counter("engine.fault.worker.stalled");
        tmQuarantined =
            telemetry::counter("engine.recovered.frames.quarantined");
        tmDelayedDelivered = telemetry::counter(
            "engine.recovered.frames.delayed.delivered");
        tmRebuilt =
            telemetry::counter("engine.recovered.sessions.rebuilt");
        tmReadmitted = telemetry::counter(
            "engine.recovered.sessions.readmitted");
        tmBackoffDropped =
            telemetry::counter("engine.recovered.backoff.frames");
        tmShed = telemetry::counter("engine.recovered.shed.frames");
        tmWorkerUnstalled =
            telemetry::counter("engine.recovered.worker.unstalled");
    }

    if (injector && injector->armed(fault::Site::AllocFail)) {
        table.setAllocFailHook([this] {
            const bool fail =
                injector->shouldInject(fault::Site::AllocFail);
            if (fail) {
                if (tmInjected[static_cast<std::size_t>(
                        fault::Site::AllocFail)])
                    tmInjected[static_cast<std::size_t>(
                                   fault::Site::AllocFail)]
                        ->add(1);
                if (tmAllocFailures)
                    tmAllocFailures->add(1);
            }
            return fail;
        });
    }

    const std::size_t shard_count = table.shardCount();
    // More workers than shards would only idle: clamp.
    const std::size_t worker_count =
        std::min(cfg.workerThreads, shard_count);

    queues.reserve(shard_count);
    tmShardFrames.reserve(shard_count);
    tmShardDepth.reserve(shard_count);
    tmShardBlocked.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
        queues.push_back(std::make_unique<ShardQueue>());
        if (cfg.overloadPolicy == OverloadPolicy::DropOldest)
            queues.back()->degradation =
                std::make_unique<DegradationPolicy>(cfg.degradation);
        else if (worker_count > 0)
            // The scaling path: lock-free handoff (serial mode never
            // queues, so it skips the allocation).
            queues.back()->ring =
                std::make_unique<support::MpscRing<QueuedFrame>>(
                    cfg.queueCapacityFrames);
        const std::string prefix =
            "engine.shard." + std::to_string(i);
        tmShardFrames.push_back(
            telemetry::counter(prefix + ".frames"));
        tmShardDepth.push_back(
            telemetry::gauge(prefix + ".queue.depth"));
        tmShardBlocked.push_back(
            telemetry::counter(prefix + ".backpressure.waits"));
    }

    if (worker_count == 0)
        return; // serial fallback mode

    workerStates.reserve(worker_count);
    tmWorkerBusy.reserve(worker_count);
    tmWorkerIdle.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w) {
        workerStates.push_back(std::make_unique<WorkerState>());
        const std::string prefix =
            "engine.worker." + std::to_string(w);
        tmWorkerBusy.push_back(
            telemetry::counter(prefix + ".busy.ns"));
        tmWorkerIdle.push_back(
            telemetry::counter(prefix + ".idle.ns"));
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
        const std::size_t owner = s % worker_count;
        queues[s]->worker = owner;
        workerStates[owner]->shards.push_back(s);
    }
    workers.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w)
        workers.emplace_back(&Engine::workerLoop, this, w);

    // An armed stall without a watchdog would hang drain(): the
    // watchdog is what releases injected stalls.
    if (cfg.watchdogIntervalMs == 0 && injector &&
        injector->armed(fault::Site::WorkerStall))
        cfg.watchdogIntervalMs = 10;
    if (cfg.watchdogIntervalMs > 0)
        watchdog = std::thread(&Engine::watchdogLoop, this);
}

Engine::~Engine()
{
    shutdown();
}

void
Engine::countReject(wire::DecodeStatus status)
{
    rejectCounts[rejectSlot(status)].fetch_add(
        1, std::memory_order_relaxed);
    if (tmFramesRejected)
        tmFramesRejected->add(1);
    // A reject is a quarantine: the frame is skipped and counted,
    // never allowed to take the session or the engine down.
    if (tmQuarantined)
        tmQuarantined->add(1);
    // One diagnostic per engine; rejections after the first are
    // visible in stats() without flooding the log from workers.
    if (!warnedReject.exchange(true, std::memory_order_relaxed))
        warn(std::string("engine: rejected frame (") +
             wire::decodeStatusName(status) +
             "); further rejections counted silently");
}

bool
Engine::submit(std::vector<std::uint8_t> frame, std::uint64_t tag)
{
    const std::uint64_t submitted =
        framesSubmitted.fetch_add(1, std::memory_order_relaxed) + 1;

    if (fault::kCompiledIn && injector) {
        std::uint64_t aux = 0;
        if (injector->armed(fault::Site::FrameDrop) &&
            injector->shouldInject(fault::Site::FrameDrop)) {
            // Simulated network loss: the producer sees success.
            if (tmInjected[static_cast<std::size_t>(
                    fault::Site::FrameDrop)])
                tmInjected[static_cast<std::size_t>(
                               fault::Site::FrameDrop)]
                    ->add(1);
            return true;
        }
        bool corrupted = false;
        if (injector->armed(fault::Site::WireTruncate) &&
            injector->shouldInject(fault::Site::WireTruncate, &aux) &&
            frame.size() > 3) {
            frame.resize(3 + aux % (frame.size() - 3));
            corrupted = true;
            if (tmInjected[static_cast<std::size_t>(
                    fault::Site::WireTruncate)])
                tmInjected[static_cast<std::size_t>(
                               fault::Site::WireTruncate)]
                    ->add(1);
        }
        if (injector->armed(fault::Site::WireBitFlip) &&
            injector->shouldInject(fault::Site::WireBitFlip, &aux) &&
            !frame.empty()) {
            frame[(aux >> 3) % frame.size()] ^=
                static_cast<std::uint8_t>(1u << (aux & 7));
            corrupted = true;
            if (tmInjected[static_cast<std::size_t>(
                    fault::Site::WireBitFlip)])
                tmInjected[static_cast<std::size_t>(
                               fault::Site::WireBitFlip)]
                    ->add(1);
        }
        if (corrupted) {
            corruptFrames.fetch_add(1, std::memory_order_relaxed);
            if (tmCorruptFrames)
                tmCorruptFrames->add(1);
        }
        if (injector->armed(fault::Site::FrameDelay) &&
            injector->shouldInject(fault::Site::FrameDelay)) {
            if (tmInjected[static_cast<std::size_t>(
                    fault::Site::FrameDelay)])
                tmInjected[static_cast<std::size_t>(
                               fault::Site::FrameDelay)]
                    ->add(1);
            std::lock_guard<std::mutex> lock(delayMu);
            delayed.push_back(
                {std::move(frame), tag,
                 submitted + cfg.delayWindowFrames});
            return true;
        }
        // Redeliver held frames whose window has passed (out of
        // order relative to their original submission).
        flushDelayed(false);
    }

    // Engine-owned span sampling (EngineConfig::spanSampleEvery)
    // happens after the fault preamble, so dropped/delayed frames do
    // not consume a sample without ever recording a stage.
    std::uint64_t span_ns = 0;
    if (ownedSpans && ownedSpans->sampleFrame())
        span_ns = telemetry::monotonicNanos();

    FrameBuf buf(std::move(frame));
    return routeFrame(buf, tag, /*blocking=*/true, span_ns) ==
           SubmitStatus::Accepted;
}

bool
Engine::submitShared(
    std::shared_ptr<const std::vector<std::uint8_t>> buffer,
    std::size_t offset, std::size_t length, std::uint64_t tag)
{
    framesSubmitted.fetch_add(1, std::memory_order_relaxed);
    // No fault preamble (it would mutate the shared bytes; see the
    // header contract), but engine-owned span sampling still applies.
    std::uint64_t span_ns = 0;
    if (ownedSpans && ownedSpans->sampleFrame())
        span_ns = telemetry::monotonicNanos();

    FrameBuf buf(std::move(buffer), offset, length);
    return routeFrame(buf, tag, /*blocking=*/true, span_ns) ==
           SubmitStatus::Accepted;
}

SubmitStatus
Engine::trySubmit(std::vector<std::uint8_t> &frame, std::uint64_t tag,
                  std::uint64_t span_ns)
{
    FrameBuf buf(std::move(frame));
    const SubmitStatus status =
        routeFrame(buf, tag, /*blocking=*/false, span_ns);
    // Backpressure leaves the frame with the caller and must not
    // disturb the conservation ledger; everything else was taken.
    if (status == SubmitStatus::Backpressure)
        frame = std::move(buf.owned);
    else
        framesSubmitted.fetch_add(1, std::memory_order_relaxed);
    return status;
}

SubmitStatus
Engine::trySubmitShared(
    const std::shared_ptr<const std::vector<std::uint8_t>> &buffer,
    std::size_t offset, std::size_t length, std::uint64_t tag,
    std::uint64_t span_ns)
{
    FrameBuf buf(buffer, offset, length);
    const SubmitStatus status =
        routeFrame(buf, tag, /*blocking=*/false, span_ns);
    // Backpressure leaves the slice with the caller (who still holds
    // the shared buffer); everything else was taken and counted.
    if (status != SubmitStatus::Backpressure)
        framesSubmitted.fetch_add(1, std::memory_order_relaxed);
    return status;
}

void
Engine::setSpanRecorder(telemetry::SpanRecorder *recorder)
{
    // Clearing restores the engine-owned recorder when one exists.
    spans = recorder ? recorder : ownedSpans.get();
}

void
Engine::setFrameCallback(FrameCallback callback)
{
    frameCallback = std::move(callback);
}

std::size_t
Engine::evictIdleSessions(std::uint64_t max_age)
{
    return table.evictIdle(max_age);
}

bool
Engine::retuneSession(std::uint64_t session_id,
                      std::uint64_t prediction_delay)
{
    return table.mutateSession(
        session_id, [prediction_delay](Session &session) {
            session.retune(prediction_delay);
        });
}

void
Engine::noteQueueDepth(ShardQueue &queue, std::size_t shard_index,
                       std::size_t depth)
{
    // A ring size() read can transiently overshoot the capacity (the
    // two cursors are loaded independently); clamp so the recorded
    // high-water mark never exceeds the configured bound.
    const std::size_t clamped =
        std::min(depth, cfg.queueCapacityFrames);
    std::size_t prev = queue.highWater.load(std::memory_order_relaxed);
    while (clamped > prev &&
           !queue.highWater.compare_exchange_weak(
               prev, clamped, std::memory_order_relaxed)) {
    }
    if (tmQueueDepth)
        tmQueueDepth->set(static_cast<std::int64_t>(clamped));
    if (tmShardDepth[shard_index])
        tmShardDepth[shard_index]->set(
            static_cast<std::int64_t>(clamped));
    if (tmQueueHighWater)
        tmQueueHighWater->recordMax(
            static_cast<std::int64_t>(clamped));
}

void
Engine::wakeWorker(WorkerState &worker)
{
    // Dekker handshake, producer half: the push above is ordered
    // before this fence; the worker orders its sleeping-flag store
    // before re-checking the rings. Either we see sleeping==true and
    // notify, or the worker sees our frame - a wakeup cannot be lost.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!worker.sleeping.load(std::memory_order_relaxed))
        return; // the worker is running and will sweep the rings
    {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.wake = true;
    }
    worker.workAvailable.notify_one();
}

SubmitStatus
Engine::routeFrame(FrameBuf &frame, std::uint64_t tag, bool blocking,
                   std::uint64_t span_ns)
{
    wire::FrameHeader header;
    std::size_t frame_end = 0;
    const wire::DecodeStatus status = wire::peekFrameHeader(
        frame.data(), frame.size(), 0, header, frame_end);
    if (status != wire::DecodeStatus::Ok) {
        countReject(status);
        return SubmitStatus::Rejected;
    }
    if (frame_end != frame.size()) {
        // submit() takes exactly one frame per call.
        countReject(wire::DecodeStatus::BadLength);
        return SubmitStatus::Rejected;
    }

    const std::size_t shard_index = table.shardOf(header.session);
    if (workers.empty()) {
        // Serial fallback: the caller's thread is the worker.
        auto lock = table.lockShard(shard_index);
        processFrame(frame.data(), frame.size(), tag, serialScratch,
                     serialPredScratch, serialStateScratch, span_ns,
                     lock);
        return SubmitStatus::Accepted;
    }

    ShardQueue &queue = *queues[shard_index];
    if (queue.ring) {
        // Lock-free handoff: count the frame in flight first so
        // drain() can never observe a pushed-but-uncounted frame,
        // then one CAS to enqueue.
        pendingFrames.fetch_add(1, std::memory_order_relaxed);
        QueuedFrame qf{std::move(frame), tag, span_ns};
        if (!queue.ring->tryPush(qf)) {
            if (!blocking) {
                frame = std::move(qf.buf);
                noteFrameDone(1); // undo the in-flight count
                return SubmitStatus::Backpressure;
            }
            queue.backpressureWaits.fetch_add(
                1, std::memory_order_relaxed);
            if (tmBackpressure)
                tmBackpressure->add(1);
            if (tmShardBlocked[shard_index])
                tmShardBlocked[shard_index]->add(1);
            // Full: park until the worker frees a slot. The waiter
            // count tells the worker to bother with the notify; the
            // timeout makes a lost race self-heal (see kParkTimeout).
            std::unique_lock<std::mutex> lock(queue.spaceMu);
            queue.spaceWaiters.fetch_add(1,
                                         std::memory_order_seq_cst);
            while (!queue.ring->tryPush(qf))
                queue.spaceAvailable.wait_for(lock, kParkTimeout);
            queue.spaceWaiters.fetch_sub(1,
                                         std::memory_order_seq_cst);
        }
        noteQueueDepth(queue, shard_index, queue.ring->size());
        wakeWorker(*workerStates[queue.worker]);
        return SubmitStatus::Accepted;
    }

    // Locked deque backend (OverloadPolicy::DropOldest).
    QueuedFrame shed_frame;
    bool did_shed = false;
    {
        std::unique_lock<std::mutex> lock(queue.mu);
        bool saturated =
            queue.frames.size() >= cfg.queueCapacityFrames;
        bool shed_oldest = false;
        if (queue.degradation) {
            // Dynamo's flush-on-spike heuristic, pointed at queue
            // pressure: only *sustained* saturation flips the shard
            // into load shedding; a transient burst still blocks.
            const DegradationMode prev = queue.degradation->mode();
            const DegradationMode mode =
                queue.degradation->onEvent(saturated);
            if (prev == DegradationMode::Normal &&
                mode == DegradationMode::Degraded && tmOverloadSpikes)
                tmOverloadSpikes->add(1);
            shed_oldest =
                saturated && mode == DegradationMode::Degraded;
        }
        // Control-plane override: the adaptive controller saw
        // sustained queue pressure across epochs and pre-armed
        // shedding - skip the spike detector's warm-up.
        if (saturated && forcedShed.load(std::memory_order_relaxed))
            shed_oldest = true;
        if (shed_oldest) {
            // Degraded: admit the fresh frame by shedding the oldest
            // queued one (stale profile data is the cheapest loss).
            shed_frame = std::move(queue.frames.front());
            queue.frames.pop_front();
            did_shed = true;
            framesShed.fetch_add(1, std::memory_order_relaxed);
            if (tmShed)
                tmShed->add(1);
            noteFrameDone(1);
        } else if (saturated) {
            if (!blocking)
                return SubmitStatus::Backpressure;
            queue.backpressureWaits.fetch_add(
                1, std::memory_order_relaxed);
            if (tmBackpressure)
                tmBackpressure->add(1);
            if (tmShardBlocked[shard_index])
                tmShardBlocked[shard_index]->add(1);
            queue.spaceAvailable.wait(lock, [&] {
                return queue.frames.size() <
                       cfg.queueCapacityFrames;
            });
        }
        pendingFrames.fetch_add(1, std::memory_order_relaxed);
        queue.frames.push_back({std::move(frame), tag, span_ns});
        noteQueueDepth(queue, shard_index, queue.frames.size());
    }
    // A shed frame never reaches a worker, so its completion fires
    // here (outside the queue lock) or its submitter's in-flight
    // count would never drain.
    if (did_shed)
        completeUnapplied(shed_frame.buf.data(),
                          shed_frame.buf.size(), shed_frame.tag,
                          nullptr);

    WorkerState &worker = *workerStates[queue.worker];
    {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.wake = true;
    }
    worker.workAvailable.notify_one();
    return SubmitStatus::Accepted;
}

bool
Engine::submitEvents(std::uint64_t session, std::uint64_t sequence,
                     const PathEvent *events, std::size_t count)
{
    std::vector<std::uint8_t> frame;
    wire::appendEventFrame(frame, session, sequence, events, count);
    return submit(std::move(frame));
}

std::uint64_t
Engine::submitBuffer(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t routed = 0;
    std::size_t offset = 0;
    wire::FrameHeader header;
    while (offset < size) {
        std::size_t frame_end = 0;
        const wire::DecodeStatus status = wire::peekFrameHeader(
            data, size, offset, header, frame_end);
        if (status == wire::DecodeStatus::Ok) {
            submit(std::vector<std::uint8_t>(data + offset,
                                             data + frame_end));
            ++routed;
            offset = frame_end;
            continue;
        }
        // Quarantine the unparseable region as one lost frame and
        // resync at the next CRC-valid frame boundary.
        framesSubmitted.fetch_add(1, std::memory_order_relaxed);
        countReject(status);
        offset = wire::findNextFrame(data, size, offset + 1);
    }
    return routed;
}

void
Engine::flushDelayed(bool all)
{
    for (;;) {
        std::vector<std::uint8_t> frame;
        std::uint64_t tag = 0;
        {
            std::lock_guard<std::mutex> lock(delayMu);
            if (delayed.empty())
                return;
            if (!all && delayed.front().releaseAt >
                            framesSubmitted.load(
                                std::memory_order_relaxed))
                return;
            frame = std::move(delayed.front().bytes);
            tag = delayed.front().tag;
            delayed.pop_front();
        }
        delayedDelivered.fetch_add(1, std::memory_order_relaxed);
        if (tmDelayedDelivered)
            tmDelayedDelivered->add(1);
        // Already counted in framesSubmitted at original submission.
        FrameBuf buf(std::move(frame));
        routeFrame(buf, tag, /*blocking=*/true);
    }
}

void
Engine::attributeDecodeError(const std::uint8_t *data,
                             std::size_t size)
{
    const SessionConfig &scfg = cfg.sessions.session;
    if (scfg.errorBudget == 0)
        return;
    wire::FrameHeader header;
    std::size_t frame_end = 0;
    if (wire::peekFrameHeader(data, size, 0, header, frame_end) !=
        wire::DecodeStatus::Ok)
        return; // no session id worth trusting

    bool poisoned = false;
    std::uint32_t generation = 0;
    table.withSessionLocked(header.session, [&](Session &session) {
        if (session.noteDecodeError()) {
            poisoned = true;
            generation = session.generation();
        }
    });
    if (!poisoned)
        return;

    sessionsPoisoned.fetch_add(1, std::memory_order_relaxed);
    if (tmPoisoned)
        tmPoisoned->add(1);
    // Evict-and-rebuild, with exponential re-admission backoff: each
    // poisoning doubles the number of frames dropped before the
    // fresh session accepts traffic again.
    const std::uint64_t backoff =
        scfg.backoffBaseFrames
        << std::min<std::uint32_t>(generation,
                                   scfg.backoffMaxExponent);
    table.rebuildSessionLocked(header.session, [&](Session &session) {
        session.enterBackoff(backoff, generation + 1);
    });
    if (tmRebuilt)
        tmRebuilt->add(1);
}

void
Engine::completeUnapplied(const std::uint8_t *data, std::size_t size,
                          std::uint64_t tag,
                          std::unique_lock<std::mutex> *shard_lock)
{
    if (!frameCallback)
        return;
    FrameOutcome outcome;
    wire::FrameHeader header;
    std::size_t frame_end = 0;
    if (wire::peekFrameHeader(data, size, 0, header, frame_end) ==
        wire::DecodeStatus::Ok) {
        outcome.session = header.session;
        outcome.sequence = header.sequence;
    }
    outcome.tag = tag;
    // The callback may re-enter the engine (stats, export): never
    // hold the stripe lock across it.
    if (shard_lock)
        shard_lock->unlock();
    frameCallback(outcome);
    if (shard_lock)
        shard_lock->lock();
}

void
Engine::processSessionState(const wire::DecodedFrame &scratch,
                            std::uint64_t tag,
                            std::vector<std::uint8_t> &state_scratch,
                            std::unique_lock<std::mutex> &shard_lock)
{
    const std::uint64_t session = scratch.header.session;
    state_scratch.clear();
    if (scratch.state.request) {
        // Export request: reply with the session's snapshot. An
        // absent session exports as a fresh/empty snapshot
        // (sawFrame=false), so migration of a session the backend
        // never saw degrades to a clean rebuild on the new owner.
        wire::SessionState snapshot;
        snapshot.predictionDelay =
            cfg.sessions.session.predictionDelay;
        table.peekSessionLocked(session, [&](const Session &s) {
            s.exportState(snapshot);
        });
        wire::appendSessionStateFrame(state_scratch, session,
                                      scratch.header.sequence,
                                      snapshot);
        sessionsExportedCount.fetch_add(1,
                                        std::memory_order_relaxed);
        if (tmExported)
            tmExported->add(1);
    } else {
        table.installSessionLocked(session, [&](Session &s) {
            s.importState(scratch.state);
        });
        sessionsImportedCount.fetch_add(1,
                                        std::memory_order_relaxed);
        if (tmImported)
            tmImported->add(1);
    }
    framesAppliedCount.fetch_add(1, std::memory_order_relaxed);

    if (frameCallback) {
        FrameOutcome outcome;
        outcome.session = session;
        outcome.sequence = scratch.header.sequence;
        outcome.tag = tag;
        outcome.applied = true;
        if (scratch.state.request)
            outcome.stateReply = &state_scratch;
        shard_lock.unlock();
        frameCallback(outcome);
        shard_lock.lock();
    }
}

void
Engine::processFrame(const std::uint8_t *data, std::size_t size,
                     std::uint64_t tag, wire::DecodedFrame &scratch,
                     std::vector<wire::PredictionRecord> &preds,
                     std::vector<std::uint8_t> &state_scratch,
                     std::uint64_t span_ns,
                     std::unique_lock<std::mutex> &shard_lock)
{
    // Stage spans: a sampled frame (span_ns != 0) costs three clock
    // reads here - queue-wait end / decode start, decode end /
    // predict start, predict end. Unsampled frames pay one branch.
    std::uint64_t stage_start = 0;
    if (span_ns != 0 && spans) {
        stage_start = telemetry::monotonicNanos();
        spans->recordStage(telemetry::Stage::QueueWait,
                           stage_start - span_ns);
    }

    std::size_t offset = 0;
    const wire::DecodeStatus status =
        wire::decodeFrame(data, size, offset, scratch);
    if (status != wire::DecodeStatus::Ok) {
        countReject(status);
        attributeDecodeError(data, size);
        // The frame passed the header peek at submit, so a tagged
        // caller counted it in flight and is owed a completion.
        completeUnapplied(data, size, tag, &shard_lock);
        return;
    }
    if (scratch.header.kind == wire::FrameKind::SessionState) {
        // Migration traffic: import a snapshot or answer an export
        // request. Counted as decoded+applied so frame conservation
        // holds; never span-sampled past queue-wait (the stage-set
        // contract covers PathEvents frames only).
        framesDecoded.fetch_add(1, std::memory_order_relaxed);
        if (tmFramesDecoded)
            tmFramesDecoded->add(1);
        processSessionState(scratch, tag, state_scratch, shard_lock);
        return;
    }
    if (scratch.header.kind != wire::FrameKind::PathEvents) {
        // The serving path consumes path events; other frame kinds
        // are interchange/reply formats (see wire_format.hh).
        countReject(wire::DecodeStatus::BadKind);
        completeUnapplied(data, size, tag, &shard_lock);
        return;
    }

    framesDecoded.fetch_add(1, std::memory_order_relaxed);
    if (tmFramesDecoded)
        tmFramesDecoded->add(1);

    // Decode and predict are only recorded past the successful-decode
    // PathEvents gate, and predict wraps withSession (which runs for
    // backoff/alloc-dropped frames too) - so the sampled sets of the
    // decode, predict and downstream reply stages are identical and
    // per-stage counts check out frame-for-frame (the netcheck
    // conservation gate relies on this).
    if (stage_start != 0) {
        const std::uint64_t now = telemetry::monotonicNanos();
        spans->recordStage(telemetry::Stage::Decode,
                           now - stage_start);
        stage_start = now;
    }

    bool applied = false;
    bool readmitted = false;
    std::uint64_t predicted = 0;
    preds.clear();
    const bool want_records = static_cast<bool>(frameCallback);
    const bool resident = table.withSessionLocked(
        scratch.header.session, [&](Session &session) {
            if (session.consumeBackoffSlot()) {
                // Re-admission backoff: drop the frame; the last
                // dropped frame re-admits the session.
                if (!session.inBackoff())
                    readmitted = true;
                return;
            }
            applied = true;
            predicted = session.apply(
                scratch, want_records ? &preds : nullptr);
        });
    if (stage_start != 0)
        spans->recordStage(telemetry::Stage::Predict,
                           telemetry::monotonicNanos() -
                               stage_start);
    if (resident && applied) {
        framesAppliedCount.fetch_add(1, std::memory_order_relaxed);
        eventsProcessed.fetch_add(scratch.events.size(),
                                  std::memory_order_relaxed);
        if (tmEvents)
            tmEvents->add(scratch.events.size());
        if (predicted != 0) {
            predictionsMade.fetch_add(predicted,
                                      std::memory_order_relaxed);
            if (tmPredictions)
                tmPredictions->add(predicted);
        }
    } else if (!resident) {
        // Session creation refused (injected allocation failure):
        // the decoded frame is dropped, visibly.
        allocDropped.fetch_add(1, std::memory_order_relaxed);
    } else {
        backoffDropped.fetch_add(1, std::memory_order_relaxed);
        if (tmBackoffDropped)
            tmBackoffDropped->add(1);
        if (readmitted) {
            sessionsReadmitted.fetch_add(1,
                                         std::memory_order_relaxed);
            if (tmReadmitted)
                tmReadmitted->add(1);
        }
    }

    if (frameCallback) {
        // Every decoded frame gets a completion - dropped ones too,
        // so a pipelined client is never left waiting on a frame the
        // engine consumed but chose not to apply. The stripe lock is
        // released for the duration (the callback may re-enter the
        // engine; the scratch the outcome points into is this
        // worker's own).
        FrameOutcome outcome;
        outcome.session = scratch.header.session;
        outcome.sequence = scratch.header.sequence;
        outcome.tag = tag;
        outcome.events =
            static_cast<std::uint32_t>(scratch.events.size());
        outcome.applied = applied;
        outcome.predictions = preds.data();
        outcome.predictionCount = preds.size();
        outcome.spanSampled = stage_start != 0;
        shard_lock.unlock();
        frameCallback(outcome);
        shard_lock.lock();
    }
}

void
Engine::noteFrameDone(std::uint64_t count)
{
    if (pendingFrames.fetch_sub(count, std::memory_order_acq_rel) ==
        count) {
        std::lock_guard<std::mutex> lock(drainMu);
        drainCv.notify_all();
    }
}

void
Engine::workerLoop(std::size_t worker_index)
{
    WorkerState &self = *workerStates[worker_index];
    wire::DecodedFrame scratch;
    std::vector<wire::PredictionRecord> predScratch;
    std::vector<std::uint8_t> stateScratch;
    std::vector<QueuedFrame> batch;
    // Busy/idle accounting: one clock read per sweep (not per frame).
    // Busy covers sweeping and processing, idle the parked wait.
    std::uint64_t mark = telemetry::monotonicNanos();

    while (true) {
        self.heartbeat.fetch_add(1, std::memory_order_relaxed);
        bool did_work = false;
        for (const std::size_t shard_index : self.shards) {
            ShardQueue &queue = *queues[shard_index];
            batch.clear();
            if (queue.ring) {
                queue.ring->popBatch(batch, cfg.maxBatchFrames);
                if (batch.empty())
                    continue;
                // Batch-notify: blocked producers register in
                // spaceWaiters, so the common case (nobody blocked)
                // costs one load here and no lock.
                if (queue.spaceWaiters.load(
                        std::memory_order_seq_cst) != 0) {
                    {
                        std::lock_guard<std::mutex> lock(
                            queue.spaceMu);
                    }
                    queue.spaceAvailable.notify_all();
                }
                if (tmQueueDepth)
                    tmQueueDepth->set(static_cast<std::int64_t>(
                        std::min(queue.ring->size(),
                                 cfg.queueCapacityFrames)));
                if (tmShardDepth[shard_index])
                    tmShardDepth[shard_index]->set(
                        static_cast<std::int64_t>(
                            std::min(queue.ring->size(),
                                     cfg.queueCapacityFrames)));
            } else {
                {
                    std::lock_guard<std::mutex> lock(queue.mu);
                    const std::size_t n = std::min(
                        queue.frames.size(), cfg.maxBatchFrames);
                    for (std::size_t i = 0; i < n; ++i) {
                        batch.push_back(
                            std::move(queue.frames.front()));
                        queue.frames.pop_front();
                    }
                    if (n > 0) {
                        if (tmQueueDepth)
                            tmQueueDepth->set(
                                static_cast<std::int64_t>(
                                    queue.frames.size()));
                        if (tmShardDepth[shard_index])
                            tmShardDepth[shard_index]->set(
                                static_cast<std::int64_t>(
                                    queue.frames.size()));
                    }
                }
                if (batch.empty())
                    continue;
                queue.spaceAvailable.notify_all();
            }
            did_work = true;

            batchesPopped.fetch_add(1, std::memory_order_relaxed);
            if (tmBatchSize)
                tmBatchSize->record(batch.size());
            if (tmShardFrames[shard_index])
                tmShardFrames[shard_index]->add(batch.size());

            // Thread-affine session access: one stripe-lock
            // acquisition covers the whole batch; processFrame
            // releases it only around completion callbacks.
            {
                auto shard_lock = table.lockShard(shard_index);
                for (const QueuedFrame &frame : batch)
                    processFrame(frame.buf.data(), frame.buf.size(),
                                 frame.tag, scratch, predScratch,
                                 stateScratch, frame.spanNs,
                                 shard_lock);
            }
            noteFrameDone(batch.size());
        }
        if (did_work) {
            const std::uint64_t now = telemetry::monotonicNanos();
            self.busyNs.fetch_add(now - mark,
                                  std::memory_order_relaxed);
            if (tmWorkerBusy[worker_index])
                tmWorkerBusy[worker_index]->add(now - mark);
            mark = now;
            if (fault::kCompiledIn && injector &&
                injector->armed(fault::Site::WorkerStall) &&
                injector->shouldInject(fault::Site::WorkerStall)) {
                // Cooperative injected stall: park until the
                // watchdog notices and releases us (or shutdown).
                workersStalledCount.fetch_add(
                    1, std::memory_order_relaxed);
                if (tmWorkerStalled)
                    tmWorkerStalled->add(1);
                if (tmInjected[static_cast<std::size_t>(
                        fault::Site::WorkerStall)])
                    tmInjected[static_cast<std::size_t>(
                                   fault::Site::WorkerStall)]
                        ->add(1);
                self.stalled.store(true, std::memory_order_release);
                while (!self.stallRelease.load(
                           std::memory_order_acquire) &&
                       !stopping.load(std::memory_order_acquire))
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                self.stalled.store(false, std::memory_order_relaxed);
                self.stallRelease.store(false,
                                        std::memory_order_relaxed);
            }
            continue;
        }

        // Nothing found this sweep. Dekker handshake, consumer half:
        // announce the intent to sleep, fence, then re-check the
        // rings - any producer that pushed after our sweep either
        // sees sleeping==true (and notifies) or published before the
        // fence (and the re-check finds the frame).
        const bool lock_free =
            !self.shards.empty() && queues[self.shards[0]]->ring;
        if (lock_free) {
            self.sleeping.store(true, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            bool found = false;
            for (const std::size_t shard_index : self.shards) {
                if (!queues[shard_index]->ring->empty()) {
                    found = true;
                    break;
                }
            }
            if (found && !stopping.load(std::memory_order_acquire)) {
                self.sleeping.store(false,
                                    std::memory_order_relaxed);
                continue;
            }
        }

        std::unique_lock<std::mutex> lock(self.mu);
        if (stopping.load(std::memory_order_acquire)) {
            self.sleeping.store(false, std::memory_order_relaxed);
            // Drain-before-stop means the queues are already empty
            // by the time stopping is observed; double-check anyway.
            bool all_empty = true;
            for (const std::size_t shard_index : self.shards) {
                ShardQueue &queue = *queues[shard_index];
                if (queue.ring) {
                    all_empty = all_empty && queue.ring->empty();
                } else {
                    std::lock_guard<std::mutex> qlock(queue.mu);
                    all_empty =
                        all_empty && queue.frames.empty();
                }
            }
            if (all_empty)
                return;
            continue;
        }
        const std::uint64_t before_wait = telemetry::monotonicNanos();
        self.busyNs.fetch_add(before_wait - mark,
                              std::memory_order_relaxed);
        if (tmWorkerBusy[worker_index])
            tmWorkerBusy[worker_index]->add(before_wait - mark);
        if (lock_free) {
            // Timed park: the fence handshake above makes a missed
            // notify nearly impossible; the timeout makes even that
            // self-heal (see kParkTimeout).
            self.workAvailable.wait_for(lock, kParkTimeout, [&] {
                return self.wake ||
                       stopping.load(std::memory_order_acquire);
            });
        } else {
            self.workAvailable.wait(lock, [&] {
                return self.wake ||
                       stopping.load(std::memory_order_acquire);
            });
        }
        self.wake = false;
        self.sleeping.store(false, std::memory_order_relaxed);
        mark = telemetry::monotonicNanos();
        self.idleNs.fetch_add(mark - before_wait,
                              std::memory_order_relaxed);
        if (tmWorkerIdle[worker_index])
            tmWorkerIdle[worker_index]->add(mark - before_wait);
    }
}

void
Engine::watchdogLoop()
{
    std::vector<std::uint64_t> last_beat(workerStates.size(), 0);
    std::unique_lock<std::mutex> lock(watchdogMu);
    while (!stopping.load(std::memory_order_acquire)) {
        watchdogCv.wait_for(
            lock, std::chrono::milliseconds(cfg.watchdogIntervalMs),
            [&] { return stopping.load(std::memory_order_acquire); });
        if (stopping.load(std::memory_order_acquire))
            return;
        for (std::size_t w = 0; w < workerStates.size(); ++w) {
            WorkerState &worker = *workerStates[w];
            if (worker.stalled.load(std::memory_order_acquire)) {
                // Injected stall: release the worker and count the
                // recovery.
                worker.stallRelease.store(true,
                                          std::memory_order_release);
                workersUnstalledCount.fetch_add(
                    1, std::memory_order_relaxed);
                if (tmWorkerUnstalled)
                    tmWorkerUnstalled->add(1);
                continue;
            }
            const std::uint64_t beat =
                worker.heartbeat.load(std::memory_order_relaxed);
            if (beat == last_beat[w] &&
                pendingFrames.load(std::memory_order_acquire) > 0) {
                // A silent worker while frames are pending. This is
                // an observation, not proof - the pending frames may
                // belong to another worker's shards - so it counts
                // and warns without intervening.
                stallDetections.fetch_add(1,
                                          std::memory_order_relaxed);
                if (!warnedStall.exchange(true,
                                          std::memory_order_relaxed))
                    warn("engine: watchdog saw a silent worker with "
                         "pending frames");
            }
            last_beat[w] = beat;
        }
    }
}

void
Engine::drain()
{
    // Delayed frames count as unfinished work: deliver them first so
    // a drained engine has truly processed everything it accepted.
    flushDelayed(true);
    if (workers.empty())
        return; // serial mode processes inline; nothing queued
    std::unique_lock<std::mutex> lock(drainMu);
    drainCv.wait(lock, [&] {
        return pendingFrames.load(std::memory_order_acquire) == 0;
    });
}

void
Engine::shutdown()
{
    flushDelayed(true);
    if (workers.empty() && !watchdog.joinable())
        return;
    if (!workers.empty()) {
        drain();
        stopping.store(true, std::memory_order_release);
        for (const auto &worker : workerStates) {
            {
                std::lock_guard<std::mutex> lock(worker->mu);
                worker->wake = true;
            }
            worker->workAvailable.notify_all();
        }
        for (std::thread &thread : workers)
            thread.join();
        workers.clear();
    } else {
        stopping.store(true, std::memory_order_release);
    }
    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdogMu);
        }
        watchdogCv.notify_all();
        watchdog.join();
    }
}

EngineStats
Engine::stats() const
{
    EngineStats stats;
    stats.framesSubmitted =
        framesSubmitted.load(std::memory_order_relaxed);
    stats.framesDecoded =
        framesDecoded.load(std::memory_order_relaxed);
    stats.rejects.truncated =
        rejectCounts[0].load(std::memory_order_relaxed);
    stats.rejects.badMagic =
        rejectCounts[1].load(std::memory_order_relaxed);
    stats.rejects.badKind =
        rejectCounts[2].load(std::memory_order_relaxed);
    stats.rejects.badLength =
        rejectCounts[3].load(std::memory_order_relaxed);
    stats.rejects.badCrc =
        rejectCounts[4].load(std::memory_order_relaxed);
    stats.rejects.badPayload =
        rejectCounts[5].load(std::memory_order_relaxed);
    stats.framesRejected = stats.rejects.total();
    stats.eventsProcessed =
        eventsProcessed.load(std::memory_order_relaxed);
    stats.predictions =
        predictionsMade.load(std::memory_order_relaxed);
    stats.batches = batchesPopped.load(std::memory_order_relaxed);

    const SessionTableStats table_stats = table.stats();
    stats.sessionsCreated = table_stats.created;
    stats.sessionsEvicted = table_stats.evicted;
    stats.sessionsIdleEvicted = table_stats.idleEvicted;
    stats.sessionsLive = table_stats.live;
    stats.sessionsExported =
        sessionsExportedCount.load(std::memory_order_relaxed);
    stats.sessionsImported =
        sessionsImportedCount.load(std::memory_order_relaxed);

    if (injector) {
        stats.fault.injectedBitFlips =
            injector->counters(fault::Site::WireBitFlip).injected;
        stats.fault.injectedTruncations =
            injector->counters(fault::Site::WireTruncate).injected;
        stats.fault.injectedDrops =
            injector->counters(fault::Site::FrameDrop).injected;
        stats.fault.injectedDelays =
            injector->counters(fault::Site::FrameDelay).injected;
        stats.fault.injectedStalls =
            injector->counters(fault::Site::WorkerStall).injected;
        stats.fault.injectedAllocFails =
            injector->counters(fault::Site::AllocFail).injected;
    }
    stats.fault.corruptFrames =
        corruptFrames.load(std::memory_order_relaxed);
    stats.fault.framesQuarantined = stats.rejects.total();
    stats.fault.delayedDelivered =
        delayedDelivered.load(std::memory_order_relaxed);
    stats.fault.sessionsPoisoned =
        sessionsPoisoned.load(std::memory_order_relaxed);
    stats.fault.sessionsRebuilt = table_stats.rebuilt;
    stats.fault.sessionsReadmitted =
        sessionsReadmitted.load(std::memory_order_relaxed);
    stats.fault.backoffDroppedFrames =
        backoffDropped.load(std::memory_order_relaxed);
    stats.fault.allocDroppedFrames =
        allocDropped.load(std::memory_order_relaxed);
    stats.fault.shedFrames =
        framesShed.load(std::memory_order_relaxed);
    stats.fault.workersStalled =
        workersStalledCount.load(std::memory_order_relaxed);
    stats.fault.workersUnstalled =
        workersUnstalledCount.load(std::memory_order_relaxed);
    stats.fault.stallDetections =
        stallDetections.load(std::memory_order_relaxed);
    stats.fault.framesApplied =
        framesAppliedCount.load(std::memory_order_relaxed);

    stats.queueHighWater.reserve(queues.size());
    stats.queueDepth.reserve(queues.size());
    stats.queueBackpressureWaits.reserve(queues.size());
    for (const auto &queue : queues) {
        if (queue->ring) {
            // Lock-free backend: the accounting is all atomic.
            stats.queueHighWater.push_back(
                queue->highWater.load(std::memory_order_relaxed));
            stats.queueDepth.push_back(
                std::min(queue->ring->size(),
                         cfg.queueCapacityFrames));
            const std::uint64_t waits =
                queue->backpressureWaits.load(
                    std::memory_order_relaxed);
            stats.queueBackpressureWaits.push_back(waits);
            stats.backpressureWaits += waits;
            continue;
        }
        std::lock_guard<std::mutex> lock(queue->mu);
        stats.queueHighWater.push_back(
            queue->highWater.load(std::memory_order_relaxed));
        stats.queueDepth.push_back(queue->frames.size());
        const std::uint64_t waits =
            queue->backpressureWaits.load(std::memory_order_relaxed);
        stats.queueBackpressureWaits.push_back(waits);
        stats.backpressureWaits += waits;
        if (queue->degradation)
            stats.fault.degradedEntries +=
                queue->degradation->degradedEntries();
    }
    stats.workerBusyNs.reserve(workerStates.size());
    stats.workerIdleNs.reserve(workerStates.size());
    for (const auto &worker : workerStates) {
        stats.workerBusyNs.push_back(
            worker->busyNs.load(std::memory_order_relaxed));
        stats.workerIdleNs.push_back(
            worker->idleNs.load(std::memory_order_relaxed));
    }
    return stats;
}

std::vector<PathIndex>
Engine::predictionsFor(std::uint64_t session_id) const
{
    std::vector<PathIndex> predictions;
    table.peekSession(session_id, [&](const Session &session) {
        predictions = session.predictions();
    });
    return predictions;
}

bool
Engine::exportSession(std::uint64_t session_id,
                      wire::SessionState &out) const
{
    out = wire::SessionState{};
    out.predictionDelay = cfg.sessions.session.predictionDelay;
    const bool resident =
        table.peekSession(session_id, [&](const Session &session) {
            session.exportState(out);
        });
    if (resident) {
        sessionsExportedCount.fetch_add(1, std::memory_order_relaxed);
        if (tmExported)
            tmExported->add(1);
    }
    return resident;
}

void
Engine::importSession(std::uint64_t session_id,
                      const wire::SessionState &state)
{
    table.installSession(session_id, [&](Session &session) {
        session.importState(state);
    });
    sessionsImportedCount.fetch_add(1, std::memory_order_relaxed);
    if (tmImported)
        tmImported->add(1);
}

} // namespace hotpath::engine
