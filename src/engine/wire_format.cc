#include "engine/wire_format.hh"

#include <array>

#include "sim/trace_log.hh"
#include "support/logging.hh"

namespace hotpath::wire
{

namespace
{

constexpr std::uint8_t kMagic0 = 'H';
constexpr std::uint8_t kMagic1 = 'F';
constexpr std::size_t kCrcBytes = 4;

/** CRC-32 lookup table (IEEE polynomial, reflected: 0xEDB88320). */
std::array<std::uint32_t, 256>
buildCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> kCrcTable = buildCrcTable();

void
appendU32le(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
readU32le(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void
appendDelta(std::vector<std::uint8_t> &out, std::uint64_t prev,
            std::uint64_t cur)
{
    appendVarint(out, zigzagEncode(static_cast<std::int64_t>(cur) -
                                   static_cast<std::int64_t>(prev)));
}

/**
 * Read one zigzag delta from the cursor `p` and apply it to `prev`;
 * returns false when the varint is malformed or the result leaves
 * [0, 2^32). This is the payload hot loop (five calls per event for
 * a PathEvents frame), so the overwhelmingly common case - a
 * single-byte varint, i.e. a delta in [-64, 63] - is decoded with a
 * fused zigzag+add before falling back to the general loop.
 */
inline bool
readDelta32(const std::uint8_t *&p, const std::uint8_t *end,
            std::uint32_t &prev)
{
    std::int64_t delta;
    if (p < end && *p < 0x80) {
        const std::uint8_t byte = *p++;
        delta = static_cast<std::int64_t>(byte >> 1) ^
                -static_cast<std::int64_t>(byte & 1);
    } else {
        std::uint64_t raw = 0;
        unsigned shift = 0;
        for (;;) {
            if (p >= end || shift >= 70)
                return false;
            const std::uint8_t byte = *p++;
            raw |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                break;
            shift += 7;
        }
        delta = zigzagDecode(raw);
    }
    const std::int64_t next = static_cast<std::int64_t>(prev) + delta;
    if (next < 0 || next > static_cast<std::int64_t>(~std::uint32_t{0}))
        return false;
    prev = static_cast<std::uint32_t>(next);
    return true;
}

/**
 * Shared header writer: everything from `kind` through `payloadLen`,
 * then the payload, then the CRC over kind..payload.
 */
void
appendFrame(std::vector<std::uint8_t> &out, FrameKind kind,
            std::uint64_t session, std::uint64_t sequence,
            std::uint64_t count,
            const std::vector<std::uint8_t> &payload)
{
    // Worst-case frame envelope: magic + kind + four 10-byte varints
    // + payload + CRC. One reservation up front instead of letting
    // the vector regrow through the header/payload/CRC appends.
    out.reserve(out.size() + 3 + 4 * 10 + payload.size() + kCrcBytes);
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    const std::size_t crc_begin = out.size();
    out.push_back(static_cast<std::uint8_t>(kind));
    appendVarint(out, session);
    appendVarint(out, sequence);
    appendVarint(out, count);
    appendVarint(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    appendU32le(out,
                crc32(out.data() + crc_begin, out.size() - crc_begin));
}

/**
 * Parse the header fields at `offset` (which must point at the
 * magic). Fills the header plus the payload/CRC geometry.
 */
DecodeStatus
parseHeader(const std::uint8_t *data, std::size_t size,
            std::size_t offset, FrameHeader &header,
            std::size_t &crc_begin, std::size_t &payload_begin,
            std::size_t &payload_len, std::uint64_t &count,
            std::size_t &frame_end)
{
    if (size - offset < 2)
        return DecodeStatus::Truncated;
    if (data[offset] != kMagic0 || data[offset + 1] != kMagic1)
        return DecodeStatus::BadMagic;
    std::size_t cur = offset + 2;
    crc_begin = cur;

    if (cur >= size)
        return DecodeStatus::Truncated;
    const std::uint8_t kind = data[cur++];
    if (kind != static_cast<std::uint8_t>(FrameKind::PathEvents) &&
        kind != static_cast<std::uint8_t>(FrameKind::BlockTrace) &&
        kind != static_cast<std::uint8_t>(FrameKind::Predictions) &&
        kind != static_cast<std::uint8_t>(FrameKind::SessionState))
        return DecodeStatus::BadKind;
    header.kind = static_cast<FrameKind>(kind);

    std::uint64_t payload_bytes = 0;
    if (!readVarint(data, size, cur, header.session) ||
        !readVarint(data, size, cur, header.sequence) ||
        !readVarint(data, size, cur, count) ||
        !readVarint(data, size, cur, payload_bytes))
        return DecodeStatus::Truncated;
    if (count > kMaxFrameEvents || payload_bytes > kMaxPayloadBytes)
        return DecodeStatus::BadLength;

    payload_begin = cur;
    payload_len = static_cast<std::size_t>(payload_bytes);
    if (size - cur < payload_len ||
        size - cur - payload_len < kCrcBytes)
        return DecodeStatus::Truncated;
    frame_end = payload_begin + payload_len + kCrcBytes;
    return DecodeStatus::Ok;
}

/**
 * Decode a SessionState payload in [cur, payload_end). `count` is
 * the frame-header entry count, which must equal counters + retired
 * + fragments. Leaves `cur` at payload_end on success.
 */
bool
decodeSessionState(const std::uint8_t *data, std::size_t payload_end,
                   std::size_t &cur, std::uint64_t count,
                   SessionState &state)
{
    std::uint64_t flags = 0;
    if (!readVarint(data, payload_end, cur, flags) || flags > 1)
        return false;
    state.request = flags == 1;
    if (state.request)
        return count == 0;

    std::uint64_t saw = 0;
    if (!readVarint(data, payload_end, cur, state.predictionDelay) ||
        !readVarint(data, payload_end, cur, state.lastSequence) ||
        !readVarint(data, payload_end, cur, saw) || saw > 1 ||
        !readVarint(data, payload_end, cur, state.cacheClock))
        return false;
    state.sawFrame = saw == 1;

    std::uint64_t n = 0;
    if (!readVarint(data, payload_end, cur, n) ||
        n > kMaxFrameEvents)
        return false;
    state.counters.reserve(n);
    std::uint64_t key = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0;
        SessionCounterEntry entry;
        if (!readVarint(data, payload_end, cur, delta) ||
            !readVarint(data, payload_end, cur, entry.count) ||
            key > ~std::uint64_t{0} - delta)
            return false;
        key += delta;
        entry.key = key;
        state.counters.push_back(entry);
    }

    if (!readVarint(data, payload_end, cur, n) ||
        n > kMaxFrameEvents)
        return false;
    state.retired.reserve(n);
    std::uint64_t head = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0;
        if (!readVarint(data, payload_end, cur, delta))
            return false;
        head += delta;
        if (head > ~std::uint32_t{0})
            return false;
        state.retired.push_back(static_cast<std::uint32_t>(head));
    }

    if (!readVarint(data, payload_end, cur, n) ||
        n > kMaxFrameEvents)
        return false;
    state.fragments.reserve(n);
    std::uint64_t path = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0;
        std::uint64_t instructions = 0;
        SessionFragmentEntry entry;
        if (!readVarint(data, payload_end, cur, delta) ||
            !readVarint(data, payload_end, cur, instructions) ||
            !readVarint(data, payload_end, cur, entry.executions) ||
            !readVarint(data, payload_end, cur, entry.lastUse))
            return false;
        path += delta;
        if (path > ~std::uint32_t{0} ||
            instructions > ~std::uint32_t{0})
            return false;
        entry.path = static_cast<PathIndex>(path);
        entry.instructions =
            static_cast<std::uint32_t>(instructions);
        state.fragments.push_back(entry);
    }

    if (!readVarint(data, payload_end, cur, state.framesApplied) ||
        !readVarint(data, payload_end, cur, state.eventsProcessed) ||
        !readVarint(data, payload_end, cur, state.cachedEvents) ||
        !readVarint(data, payload_end, cur,
                    state.interpretedEvents) ||
        !readVarint(data, payload_end, cur, state.predictions) ||
        !readVarint(data, payload_end, cur, state.sequenceGaps) ||
        !readVarint(data, payload_end, cur, state.decodeErrors))
        return false;
    return count == state.counters.size() + state.retired.size() +
                        state.fragments.size();
}

} // namespace

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok: return "ok";
      case DecodeStatus::Truncated: return "truncated";
      case DecodeStatus::BadMagic: return "bad-magic";
      case DecodeStatus::BadKind: return "bad-kind";
      case DecodeStatus::BadLength: return "bad-length";
      case DecodeStatus::BadCrc: return "bad-crc";
      case DecodeStatus::BadPayload: return "bad-payload";
    }
    return "unknown";
}

void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
readVarint(const std::uint8_t *data, std::size_t size,
           std::size_t &offset, std::uint64_t &v)
{
    std::uint64_t result = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (offset >= size)
            return false;
        const std::uint8_t byte = data[offset++];
        result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            v = result;
            return true;
        }
    }
    return false; // more than 10 continuation bytes
}

std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed)
{
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = kCrcTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

void
appendEventFrame(std::vector<std::uint8_t> &out, std::uint64_t session,
                 std::uint64_t sequence, const PathEvent *events,
                 std::size_t count)
{
    HOTPATH_ASSERT(count <= kMaxFrameEvents,
                   "event frame exceeds kMaxFrameEvents");
    std::vector<std::uint8_t> payload;
    payload.reserve(count * 5);
    PathEvent prev; // field-wise delta baseline: zeros via kInvalid?
    prev.path = 0;
    prev.head = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const PathEvent &e = events[i];
        appendDelta(payload, prev.path, e.path);
        appendDelta(payload, prev.head, e.head);
        appendDelta(payload, prev.blocks, e.blocks);
        appendDelta(payload, prev.branches, e.branches);
        appendDelta(payload, prev.instructions, e.instructions);
        prev = e;
    }
    appendFrame(out, FrameKind::PathEvents, session, sequence, count,
                payload);
}

void
appendEventFrame(std::vector<std::uint8_t> &out, std::uint64_t session,
                 std::uint64_t sequence,
                 const std::vector<PathEvent> &events)
{
    appendEventFrame(out, session, sequence, events.data(),
                     events.size());
}

void
appendBlockFrame(std::vector<std::uint8_t> &out, std::uint64_t session,
                 std::uint64_t sequence, const BlockId *blocks,
                 std::size_t count)
{
    HOTPATH_ASSERT(count <= kMaxFrameEvents,
                   "block frame exceeds kMaxFrameEvents");
    std::vector<std::uint8_t> payload;
    payload.reserve(count * 2);
    BlockId prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        appendDelta(payload, prev, blocks[i]);
        prev = blocks[i];
    }
    appendFrame(out, FrameKind::BlockTrace, session, sequence, count,
                payload);
}

void
appendPredictionFrame(std::vector<std::uint8_t> &out,
                      std::uint64_t session, std::uint64_t sequence,
                      const PredictionRecord *records,
                      std::size_t count)
{
    HOTPATH_ASSERT(count <= kMaxFrameEvents,
                   "prediction frame exceeds kMaxFrameEvents");
    std::vector<std::uint8_t> payload;
    payload.reserve(count * 4);
    PredictionRecord prev;
    for (std::size_t i = 0; i < count; ++i) {
        const PredictionRecord &r = records[i];
        appendDelta(payload, prev.head, r.head);
        appendDelta(payload, prev.path, r.path);
        prev = r;
    }
    appendFrame(out, FrameKind::Predictions, session, sequence, count,
                payload);
}

void
appendSessionStateFrame(std::vector<std::uint8_t> &out,
                        std::uint64_t session, std::uint64_t sequence,
                        const SessionState &state)
{
    std::vector<std::uint8_t> payload;
    if (state.request) {
        appendVarint(payload, 1); // flags: export request
        appendFrame(out, FrameKind::SessionState, session, sequence,
                    0, payload);
        return;
    }
    const std::uint64_t entries =
        state.counters.size() + state.retired.size() +
        state.fragments.size();
    HOTPATH_ASSERT(entries <= kMaxFrameEvents,
                   "session-state frame exceeds kMaxFrameEvents");
    payload.reserve(entries * 4 + 96);
    appendVarint(payload, 0); // flags: snapshot
    appendVarint(payload, state.predictionDelay);
    appendVarint(payload, state.lastSequence);
    appendVarint(payload, state.sawFrame ? 1 : 0);
    appendVarint(payload, state.cacheClock);

    appendVarint(payload, state.counters.size());
    std::uint64_t prev_key = 0;
    for (const SessionCounterEntry &c : state.counters) {
        HOTPATH_ASSERT(c.key >= prev_key,
                       "session-state counters must ascend");
        appendVarint(payload, c.key - prev_key);
        appendVarint(payload, c.count);
        prev_key = c.key;
    }

    appendVarint(payload, state.retired.size());
    std::uint64_t prev_head = 0;
    for (const std::uint32_t h : state.retired) {
        appendVarint(payload, h - prev_head);
        prev_head = h;
    }

    appendVarint(payload, state.fragments.size());
    std::uint64_t prev_path = 0;
    for (const SessionFragmentEntry &f : state.fragments) {
        appendVarint(payload, f.path - prev_path);
        appendVarint(payload, f.instructions);
        appendVarint(payload, f.executions);
        appendVarint(payload, f.lastUse);
        prev_path = f.path;
    }

    appendVarint(payload, state.framesApplied);
    appendVarint(payload, state.eventsProcessed);
    appendVarint(payload, state.cachedEvents);
    appendVarint(payload, state.interpretedEvents);
    appendVarint(payload, state.predictions);
    appendVarint(payload, state.sequenceGaps);
    appendVarint(payload, state.decodeErrors);

    appendFrame(out, FrameKind::SessionState, session, sequence,
                entries, payload);
}

std::vector<std::uint8_t>
encodeEventStream(const std::vector<PathEvent> &stream,
                  std::uint64_t session, std::size_t frame_events)
{
    HOTPATH_ASSERT(frame_events >= 1 &&
                       frame_events <= kMaxFrameEvents,
                   "invalid frame_events");
    std::vector<std::uint8_t> out;
    // Size the stream buffer once from the batch hint: ~5 payload
    // bytes per delta-encoded event plus a generous per-frame
    // envelope, so the whole encode runs without a reallocation in
    // the common (loop-burst) case.
    const std::size_t frames =
        stream.empty() ? 1
                       : (stream.size() + frame_events - 1) /
                             frame_events;
    out.reserve(stream.size() * 5 + frames * 48);
    std::uint64_t sequence = 0;
    std::size_t i = 0;
    do {
        const std::size_t n =
            std::min(frame_events, stream.size() - i);
        appendEventFrame(out, session, sequence++, stream.data() + i,
                         n);
        i += n;
    } while (i < stream.size());
    return out;
}

DecodeStatus
peekFrameHeader(const std::uint8_t *data, std::size_t size,
                std::size_t offset, FrameHeader &header,
                std::size_t &frame_end)
{
    std::size_t crc_begin = 0;
    std::size_t payload_begin = 0;
    std::size_t payload_len = 0;
    std::uint64_t count = 0;
    return parseHeader(data, size, offset, header, crc_begin,
                       payload_begin, payload_len, count, frame_end);
}

DecodeStatus
decodeFrame(const std::uint8_t *data, std::size_t size,
            std::size_t &offset, DecodedFrame &out)
{
    std::size_t crc_begin = 0;
    std::size_t payload_begin = 0;
    std::size_t payload_len = 0;
    std::uint64_t count = 0;
    std::size_t frame_end = 0;
    const DecodeStatus header_status =
        parseHeader(data, size, offset, out.header, crc_begin,
                    payload_begin, payload_len, count, frame_end);
    if (header_status != DecodeStatus::Ok)
        return header_status;

    const std::size_t payload_end = payload_begin + payload_len;
    const std::uint32_t want = readU32le(data + payload_end);
    if (crc32(data + crc_begin, payload_end - crc_begin) != want)
        return DecodeStatus::BadCrc;

    out.events.clear();
    out.blocks.clear();
    out.predictions.clear();
    out.state = SessionState{};
    std::size_t cur = payload_begin;
    if (out.header.kind == FrameKind::SessionState) {
        if (!decodeSessionState(data, payload_end, cur, count,
                                out.state))
            return DecodeStatus::BadPayload;
    } else {
        // Batched delta decode: one pointer cursor over the whole
        // payload straight into the (reused) flat output array - no
        // per-field offset/bounds bookkeeping, no per-event growth.
        const std::uint8_t *p = data + payload_begin;
        const std::uint8_t *pend = data + payload_end;
        if (out.header.kind == FrameKind::Predictions) {
            out.predictions.resize(count);
            PredictionRecord prev;
            for (std::uint64_t i = 0; i < count; ++i) {
                if (!readDelta32(p, pend, prev.head) ||
                    !readDelta32(p, pend, prev.path))
                    return DecodeStatus::BadPayload;
                out.predictions[i] = prev;
            }
        } else if (out.header.kind == FrameKind::PathEvents) {
            out.events.resize(count);
            PathEvent prev;
            prev.path = 0;
            prev.head = 0;
            for (std::uint64_t i = 0; i < count; ++i) {
                if (!readDelta32(p, pend, prev.path) ||
                    !readDelta32(p, pend, prev.head) ||
                    !readDelta32(p, pend, prev.blocks) ||
                    !readDelta32(p, pend, prev.branches) ||
                    !readDelta32(p, pend, prev.instructions))
                    return DecodeStatus::BadPayload;
                out.events[i] = prev;
            }
        } else {
            out.blocks.resize(count);
            BlockId prev = 0;
            for (std::uint64_t i = 0; i < count; ++i) {
                if (!readDelta32(p, pend, prev))
                    return DecodeStatus::BadPayload;
                out.blocks[i] = prev;
            }
        }
        cur = static_cast<std::size_t>(p - data);
    }
    if (cur != payload_end)
        return DecodeStatus::BadPayload; // trailing junk in payload
    offset = frame_end;
    return DecodeStatus::Ok;
}

std::size_t
findNextFrame(const std::uint8_t *data, std::size_t size,
              std::size_t from)
{
    FrameHeader header;
    for (std::size_t at = from; at + 2 <= size; ++at) {
        if (data[at] != kMagic0 || data[at + 1] != kMagic1)
            continue;
        std::size_t crc_begin = 0;
        std::size_t payload_begin = 0;
        std::size_t payload_len = 0;
        std::uint64_t count = 0;
        std::size_t frame_end = 0;
        if (parseHeader(data, size, at, header, crc_begin,
                        payload_begin, payload_len, count,
                        frame_end) != DecodeStatus::Ok)
            continue;
        const std::size_t payload_end = payload_begin + payload_len;
        if (crc32(data + crc_begin, payload_end - crc_begin) ==
            readU32le(data + payload_end))
            return at;
    }
    return size;
}

std::size_t
findFrameBoundary(const std::uint8_t *data, std::size_t size,
                  std::size_t from, bool *complete)
{
    FrameHeader header;
    for (std::size_t at = from; at < size; ++at) {
        if (data[at] != kMagic0)
            continue;
        if (at + 1 < size && data[at + 1] != kMagic1)
            continue;
        std::size_t crc_begin = 0;
        std::size_t payload_begin = 0;
        std::size_t payload_len = 0;
        std::uint64_t count = 0;
        std::size_t frame_end = 0;
        const DecodeStatus status =
            parseHeader(data, size, at, header, crc_begin,
                        payload_begin, payload_len, count, frame_end);
        if (status == DecodeStatus::Ok) {
            const std::size_t payload_end =
                payload_begin + payload_len;
            if (crc32(data + crc_begin, payload_end - crc_begin) ==
                readU32le(data + payload_end)) {
                *complete = true;
                return at;
            }
            continue; // CRC-invalid candidate: keep scanning
        }
        if (status == DecodeStatus::Truncated) {
            // Plausible frame still arriving: hand the tail back to
            // the caller. If more bytes later prove it corrupt, the
            // next resync resumes from here, so no byte is scanned
            // twice as complete garbage.
            *complete = false;
            return at;
        }
        // BadKind / BadLength / BadMagic: corrupt candidate, go on.
    }
    *complete = false;
    return size;
}

std::vector<std::uint8_t>
encodeTraceLog(const TraceLog &log, std::uint64_t session,
               std::size_t frame_events)
{
    HOTPATH_ASSERT(frame_events >= 1 &&
                       frame_events <= kMaxFrameEvents,
                   "invalid frame_events");
    const std::vector<BlockId> &seq = log.sequence();
    std::vector<std::uint8_t> out;
    std::uint64_t sequence = 0;
    std::size_t i = 0;
    do {
        const std::size_t n = std::min(frame_events, seq.size() - i);
        appendBlockFrame(out, session, sequence++, seq.data() + i, n);
        i += n;
    } while (i < seq.size());
    return out;
}

DecodeStatus
decodeTraceLog(const std::uint8_t *data, std::size_t size,
               TraceLog &out)
{
    std::size_t offset = 0;
    DecodedFrame frame;
    while (offset < size) {
        const DecodeStatus status =
            decodeFrame(data, size, offset, frame);
        if (status != DecodeStatus::Ok)
            return status;
        if (frame.header.kind != FrameKind::BlockTrace)
            return DecodeStatus::BadKind;
        out.appendAll(frame.blocks);
    }
    return DecodeStatus::Ok;
}

std::uint64_t
decodeTraceLogResilient(const std::uint8_t *data, std::size_t size,
                        TraceLog &out, ResyncStats *stats)
{
    ResyncStats local;
    std::size_t offset = 0;
    DecodedFrame frame;
    while (offset < size) {
        const std::size_t at = offset;
        const DecodeStatus status =
            decodeFrame(data, size, offset, frame);
        if (status == DecodeStatus::Ok) {
            if (frame.header.kind == FrameKind::BlockTrace) {
                out.appendAll(frame.blocks);
                ++local.framesDecoded;
            } else {
                // Valid frame of a foreign kind: quarantine it whole
                // (decodeFrame already advanced past it).
                ++local.framesQuarantined;
                local.bytesSkipped += offset - at;
            }
            continue;
        }
        // Quarantine: skip at least one byte, then resync at the
        // next frame whose CRC checks out.
        ++local.framesQuarantined;
        const std::size_t next = findNextFrame(data, size, at + 1);
        local.bytesSkipped += next - at;
        offset = next;
    }
    if (stats != nullptr)
        *stats = local;
    return local.framesDecoded;
}

} // namespace hotpath::wire
