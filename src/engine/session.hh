/**
 * @file
 * One client's prediction state inside the serving engine.
 *
 * A Session embeds the same components the in-process pipeline uses -
 * a NET predictor (head counters) and a fragment cache - so that
 * feeding a session the event stream of one client reproduces, event
 * for event, what an in-process Dynamo-style replay of that client
 * would do. That equivalence is the engine's determinism contract and
 * is asserted by tests/engine_test.cc.
 *
 * Sessions are single-threaded by construction: the engine routes all
 * frames of a session to one shard, and a shard is only ever drained
 * by one worker, so no locking lives here.
 */

#ifndef HOTPATH_ENGINE_SESSION_HH
#define HOTPATH_ENGINE_SESSION_HH

#include <cstdint>
#include <vector>

#include "dynamo/fragment_cache.hh"
#include "engine/wire_format.hh"
#include "predict/net_predictor.hh"

namespace hotpath::engine
{

/** Per-session predictor and cache parameters. */
struct SessionConfig
{
    /** NET prediction delay (head executions before a prediction). */
    std::uint64_t predictionDelay = 50;

    /** Re-arm head counters after each prediction (NET default). */
    bool reArm = true;

    /** Per-session fragment cache capacity in instructions (0 = no
     *  cap). */
    std::uint64_t cacheCapacityInstr = 0;

    /** Cache policy when the capacity cap is hit. */
    FragmentCache::EvictionPolicy cachePolicy =
        FragmentCache::EvictionPolicy::EvictLru;

    /**
     * Keep the ordered log of predicted paths. The determinism tests
     * compare these logs across engine configurations; serving runs
     * leave it off to keep sessions small.
     */
    bool recordPredictions = false;
};

/** Counters one session accumulates over its lifetime. */
struct SessionStats
{
    std::uint64_t framesApplied = 0;
    std::uint64_t eventsProcessed = 0;
    /** Events answered from the fragment cache. */
    std::uint64_t cachedEvents = 0;
    /** Events that went through the profiler/predictor. */
    std::uint64_t interpretedEvents = 0;
    std::uint64_t predictions = 0;
    /** Frames whose sequence number skipped ahead (lost frames). */
    std::uint64_t sequenceGaps = 0;
};

/** One client's predictor, fragment cache and statistics. */
class Session
{
  public:
    Session(std::uint64_t id, const SessionConfig &config);

    std::uint64_t id() const { return sessionId; }

    /**
     * Process one path execution: cached paths short-circuit (they
     * run from the fragment cache and bypass profiling), everything
     * else feeds the NET predictor; a prediction inserts the path
     * into the session's cache. Returns true when this event
     * triggered a prediction.
     */
    bool consume(const PathEvent &event);

    /**
     * Apply one decoded frame in order: sequence-gap accounting, then
     * consume() for every event. The frame must belong to this
     * session. Returns the number of predictions it triggered.
     */
    std::uint64_t apply(const wire::DecodedFrame &frame);

    const SessionStats &stats() const { return st; }

    /** Ordered predicted paths (empty unless recordPredictions). */
    const std::vector<PathIndex> &predictions() const
    {
        return predictionLog;
    }

    /** Live head counters (the session's counter space). */
    std::size_t countersAllocated() const
    {
        return predictor.countersAllocated();
    }

    const FragmentCache &cache() const { return fragments; }

  private:
    std::uint64_t sessionId;
    SessionConfig cfg;
    NetPredictor predictor;
    FragmentCache fragments;
    SessionStats st;
    std::vector<PathIndex> predictionLog;
    bool sawFrame = false;
    std::uint64_t lastSequence = 0;
};

} // namespace hotpath::engine

#endif // HOTPATH_ENGINE_SESSION_HH
