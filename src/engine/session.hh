/**
 * @file
 * One client's prediction state inside the serving engine.
 *
 * A Session embeds the same components the in-process pipeline uses -
 * a NET predictor (head counters) and a fragment cache - so that
 * feeding a session the event stream of one client reproduces, event
 * for event, what an in-process Dynamo-style replay of that client
 * would do. That equivalence is the engine's determinism contract and
 * is asserted by tests/engine_test.cc.
 *
 * Sessions are single-threaded by construction: the engine routes all
 * frames of a session to one shard, and a shard is only ever drained
 * by one worker, so no locking lives here.
 */

#ifndef HOTPATH_ENGINE_SESSION_HH
#define HOTPATH_ENGINE_SESSION_HH

#include <cstdint>
#include <vector>

#include "dynamo/fragment_cache.hh"
#include "engine/wire_format.hh"
#include "predict/net_predictor.hh"

/** The streaming prediction engine: sessions, the sharded session
 *  table, and the worker/queue machinery that serves them. */
namespace hotpath::engine
{

/** Per-session predictor and cache parameters. */
struct SessionConfig
{
    /** NET prediction delay (head executions before a prediction). */
    std::uint64_t predictionDelay = 50;

    /** Re-arm head counters after each prediction (NET default). */
    bool reArm = true;

    /**
     * Exponential counter decay after a prediction: head counters
     * restart at count >> decayShift instead of zero (or instead of
     * retiring under reArm = false), so re-hot heads re-arm cheaply.
     * 0 = off (paper-exact restart/retirement).
     */
    std::uint32_t decayShift = 0;

    /** Per-session fragment cache capacity in instructions (0 = no
     *  cap). */
    std::uint64_t cacheCapacityInstr = 0;

    /** Cache policy when the capacity cap is hit. */
    FragmentCache::EvictionPolicy cachePolicy =
        FragmentCache::EvictionPolicy::EvictLru;

    /**
     * Keep the ordered log of predicted paths. The determinism tests
     * compare these logs across engine configurations; serving runs
     * leave it off to keep sessions small.
     */
    bool recordPredictions = false;

    /**
     * Decode errors (CRC/payload failures attributable to this
     * session) tolerated before the session is declared poisoned and
     * rebuilt from scratch. 0 disables the budget: errors are counted
     * but never poison.
     */
    std::uint64_t errorBudget = 0;

    /** Re-admission backoff after the first poisoning, measured in
     *  decoded frames dropped (doubles with each poisoning). */
    std::uint64_t backoffBaseFrames = 16;

    /** Cap on the backoff doubling: backoff never exceeds
     *  backoffBaseFrames << backoffMaxExponent. */
    std::uint32_t backoffMaxExponent = 10;
};

/** Counters one session accumulates over its lifetime. */
struct SessionStats
{
    /** Frames applied to the predictor. */
    std::uint64_t framesApplied = 0;
    /** Events consumed across all applied frames. */
    std::uint64_t eventsProcessed = 0;
    /** Events answered from the fragment cache. */
    std::uint64_t cachedEvents = 0;
    /** Events that went through the profiler/predictor. */
    std::uint64_t interpretedEvents = 0;
    /** Predictions (hot-path promotions) made. */
    std::uint64_t predictions = 0;
    /** Frames whose sequence number skipped ahead (lost frames). */
    std::uint64_t sequenceGaps = 0;
    /** Decode errors attributed to this session identity. */
    std::uint64_t decodeErrors = 0;
};

/** One client's predictor, fragment cache and statistics. */
class Session
{
  public:
    /** Build a fresh session (empty predictor and cache). */
    Session(std::uint64_t id, const SessionConfig &config);

    /** The client identity this session serves. */
    std::uint64_t id() const { return sessionId; }

    /**
     * Process one path execution: cached paths short-circuit (they
     * run from the fragment cache and bypass profiling), everything
     * else feeds the NET predictor; a prediction inserts the path
     * into the session's cache. Returns true when this event
     * triggered a prediction.
     */
    bool consume(const PathEvent &event);

    /**
     * Apply one decoded frame in order: sequence-gap accounting, then
     * consume() for every event. The frame must belong to this
     * session. Returns the number of predictions it triggered. When
     * `predictions_out` is non-null, every prediction the frame
     * triggered is appended to it as a (head, path) record - the
     * serving layer encodes these back to the originating connection.
     */
    std::uint64_t
    apply(const wire::DecodedFrame &frame,
          std::vector<wire::PredictionRecord> *predictions_out =
              nullptr);

    /** Lifetime counters. */
    const SessionStats &stats() const { return st; }

    /** Ordered predicted paths (empty unless recordPredictions). */
    const std::vector<PathIndex> &predictions() const
    {
        return predictionLog;
    }

    /** Live head counters (the session's counter space). */
    std::size_t countersAllocated() const
    {
        return predictor.countersAllocated();
    }

    /** The session's current prediction delay (τ). */
    std::uint64_t predictionDelay() const
    {
        return cfg.predictionDelay;
    }

    /**
     * Retune the session's prediction delay online - the adaptive
     * control plane's per-session knob. Accumulated head counters are
     * kept (a head already past a smaller delay predicts on its next
     * execution); the caller must hold the session's shard serialization
     * (worker thread or cross-thread stripe lock).
     */
    void retune(std::uint64_t prediction_delay);

    /** The session's fragment cache (read-only). */
    const FragmentCache &cache() const { return fragments; }

    // Error budget & re-admission backoff --------------------------

    /**
     * Record one decode error attributed to this session identity.
     * Returns true when the error budget (SessionConfig::errorBudget)
     * is now exhausted - the session is *poisoned* and the engine
     * rebuilds it (ShardedSessionTable::rebuildSession). Always
     * returns false when the budget is disabled (0).
     */
    bool noteDecodeError();

    /**
     * Start re-admission backoff on a freshly rebuilt session: the
     * next `frames` decoded frames for this identity are dropped
     * before the session accepts traffic again. `generation` is the
     * number of poisonings this identity has suffered, carried across
     * rebuilds so the backoff can grow exponentially.
     */
    void enterBackoff(std::uint64_t frames, std::uint32_t generation);

    /** True while re-admission backoff is still dropping frames. */
    bool inBackoff() const { return backoffLeft > 0; }

    /** Decoded frames still to be dropped before re-admission. */
    std::uint64_t backoffRemaining() const { return backoffLeft; }

    /**
     * Consume one backoff slot for an arriving decoded frame.
     * Returns true when the frame must be dropped (backoff was
     * active); false once the session is (re)admitted.
     */
    bool consumeBackoffSlot();

    /** Number of times this session identity has been poisoned. */
    std::uint32_t generation() const { return poisonGeneration; }

    // Migration (wire-serializable predictor state) ----------------

    /**
     * Snapshot everything that influences this session's future
     * predictions into `out`: NET counters, retired heads, cached
     * fragments with exact LRU stamps, sequence tracking, and the
     * lifetime statistics. Entries are emitted sorted so the encoded
     * wire bytes are deterministic. The prediction log
     * (recordPredictions) and backoff state are deliberately not
     * exported - the log is a debugging artifact and backoff is local
     * damage control, neither affects what gets predicted next.
     */
    void exportState(wire::SessionState &out) const;

    /**
     * Rebuild this session from an exported snapshot. Must be called
     * on a fresh session (the engine installs a new Session and
     * imports into it); feeding the original event suffix afterwards
     * reproduces the exporter's predictions bit-identically.
     */
    void importState(const wire::SessionState &in);

  private:
    std::uint64_t sessionId;
    SessionConfig cfg;
    NetPredictor predictor;
    FragmentCache fragments;
    SessionStats st;
    std::vector<PathIndex> predictionLog;
    bool sawFrame = false;
    std::uint64_t lastSequence = 0;
    std::uint64_t backoffLeft = 0;
    std::uint32_t poisonGeneration = 0;
};

} // namespace hotpath::engine

#endif // HOTPATH_ENGINE_SESSION_HH
