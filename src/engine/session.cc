#include "engine/session.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hotpath::engine
{

Session::Session(std::uint64_t id, const SessionConfig &config)
    : sessionId(id), cfg(config),
      predictor(config.predictionDelay, config.reArm,
                config.decayShift),
      fragments(config.cacheCapacityInstr, config.cachePolicy)
{
}

void
Session::retune(std::uint64_t prediction_delay)
{
    cfg.predictionDelay = prediction_delay;
    predictor.setDelay(prediction_delay);
}

bool
Session::consume(const PathEvent &event)
{
    ++st.eventsProcessed;

    // Predicted paths execute from the session's fragment cache and
    // never reach the profiler - exactly the in-process replay route.
    if (fragments.find(event.path) != nullptr) {
        ++st.cachedEvents;
        return false;
    }

    ++st.interpretedEvents;
    if (!predictor.observe(event))
        return false;

    ++st.predictions;
    fragments.insert(event.path, event.instructions);
    if (cfg.recordPredictions)
        predictionLog.push_back(event.path);
    return true;
}

std::uint64_t
Session::apply(const wire::DecodedFrame &frame,
               std::vector<wire::PredictionRecord> *predictions_out)
{
    HOTPATH_ASSERT(frame.header.session == sessionId,
                   "frame routed to the wrong session");
    ++st.framesApplied;

    const std::uint64_t sequence = frame.header.sequence;
    if (sawFrame && sequence != lastSequence + 1)
        ++st.sequenceGaps;
    sawFrame = true;
    lastSequence = sequence;

    std::uint64_t predicted = 0;
    for (const PathEvent &event : frame.events) {
        if (!consume(event))
            continue;
        ++predicted;
        if (predictions_out != nullptr)
            predictions_out->push_back({event.head, event.path});
    }
    return predicted;
}

void
Session::exportState(wire::SessionState &out) const
{
    out = wire::SessionState{};
    out.predictionDelay = cfg.predictionDelay;
    out.lastSequence = lastSequence;
    out.sawFrame = sawFrame;
    out.cacheClock = fragments.clockValue();

    predictor.forEachCounter(
        [&out](std::uint64_t key, std::uint64_t count) {
            out.counters.push_back({key, count});
        });
    std::sort(out.counters.begin(), out.counters.end(),
              [](const wire::SessionCounterEntry &a,
                 const wire::SessionCounterEntry &b) {
                  return a.key < b.key;
              });

    for (const HeadIndex head : predictor.retiredHeads())
        out.retired.push_back(head);
    std::sort(out.retired.begin(), out.retired.end());

    fragments.forEach([&out](const Fragment &fragment) {
        out.fragments.push_back({fragment.path,
                                 fragment.instructions,
                                 fragment.executions,
                                 fragment.lastUse});
    });
    std::sort(out.fragments.begin(), out.fragments.end(),
              [](const wire::SessionFragmentEntry &a,
                 const wire::SessionFragmentEntry &b) {
                  return a.path < b.path;
              });

    out.framesApplied = st.framesApplied;
    out.eventsProcessed = st.eventsProcessed;
    out.cachedEvents = st.cachedEvents;
    out.interpretedEvents = st.interpretedEvents;
    out.predictions = st.predictions;
    out.sequenceGaps = st.sequenceGaps;
    out.decodeErrors = st.decodeErrors;
}

void
Session::importState(const wire::SessionState &in)
{
    HOTPATH_ASSERT(st.framesApplied == 0 && fragments.size() == 0,
                   "importState requires a fresh session");
    // Adopt the exporter's prediction delay so a τ retuned online by
    // the control plane survives migration (a no-op when both ends
    // run the same static config).
    if (in.predictionDelay != 0)
        retune(in.predictionDelay);
    for (const wire::SessionCounterEntry &entry : in.counters)
        predictor.restoreCounter(entry.key, entry.count);
    for (const std::uint32_t head : in.retired)
        predictor.restoreRetired(head);
    for (const wire::SessionFragmentEntry &fragment : in.fragments)
        fragments.restore(fragment.path, fragment.instructions,
                          fragment.executions, fragment.lastUse);
    fragments.setClockValue(in.cacheClock);

    lastSequence = in.lastSequence;
    sawFrame = in.sawFrame;
    st.framesApplied = in.framesApplied;
    st.eventsProcessed = in.eventsProcessed;
    st.cachedEvents = in.cachedEvents;
    st.interpretedEvents = in.interpretedEvents;
    st.predictions = in.predictions;
    st.sequenceGaps = in.sequenceGaps;
    st.decodeErrors = in.decodeErrors;
}

bool
Session::noteDecodeError()
{
    ++st.decodeErrors;
    return cfg.errorBudget != 0 && st.decodeErrors >= cfg.errorBudget;
}

void
Session::enterBackoff(std::uint64_t frames, std::uint32_t generation)
{
    backoffLeft = frames;
    poisonGeneration = generation;
}

bool
Session::consumeBackoffSlot()
{
    if (backoffLeft == 0)
        return false;
    --backoffLeft;
    return true;
}

} // namespace hotpath::engine
