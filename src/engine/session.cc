#include "engine/session.hh"

#include "support/logging.hh"

namespace hotpath::engine
{

Session::Session(std::uint64_t id, const SessionConfig &config)
    : sessionId(id), cfg(config),
      predictor(config.predictionDelay, config.reArm),
      fragments(config.cacheCapacityInstr, config.cachePolicy)
{
}

bool
Session::consume(const PathEvent &event)
{
    ++st.eventsProcessed;

    // Predicted paths execute from the session's fragment cache and
    // never reach the profiler - exactly the in-process replay route.
    if (fragments.find(event.path) != nullptr) {
        ++st.cachedEvents;
        return false;
    }

    ++st.interpretedEvents;
    if (!predictor.observe(event))
        return false;

    ++st.predictions;
    fragments.insert(event.path, event.instructions);
    if (cfg.recordPredictions)
        predictionLog.push_back(event.path);
    return true;
}

std::uint64_t
Session::apply(const wire::DecodedFrame &frame,
               std::vector<wire::PredictionRecord> *predictions_out)
{
    HOTPATH_ASSERT(frame.header.session == sessionId,
                   "frame routed to the wrong session");
    ++st.framesApplied;

    const std::uint64_t sequence = frame.header.sequence;
    if (sawFrame && sequence != lastSequence + 1)
        ++st.sequenceGaps;
    sawFrame = true;
    lastSequence = sequence;

    std::uint64_t predicted = 0;
    for (const PathEvent &event : frame.events) {
        if (!consume(event))
            continue;
        ++predicted;
        if (predictions_out != nullptr)
            predictions_out->push_back({event.head, event.path});
    }
    return predicted;
}

bool
Session::noteDecodeError()
{
    ++st.decodeErrors;
    return cfg.errorBudget != 0 && st.decodeErrors >= cfg.errorBudget;
}

void
Session::enterBackoff(std::uint64_t frames, std::uint32_t generation)
{
    backoffLeft = frames;
    poisonGeneration = generation;
}

bool
Session::consumeBackoffSlot()
{
    if (backoffLeft == 0)
        return false;
    --backoffLeft;
    return true;
}

} // namespace hotpath::engine
