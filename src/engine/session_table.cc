#include "engine/session_table.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace hotpath::engine
{

namespace
{

/** SplitMix64 finalizer: decorrelates adjacent session ids so shard
 *  assignment stays balanced even for sequential id allocation. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

ShardedSessionTable::ShardedSessionTable(SessionTableConfig config)
    : cfg(std::move(config))
{
    const std::size_t count =
        roundUpPow2(cfg.shardCount == 0 ? 1 : cfg.shardCount);
    shards.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        shards.push_back(std::make_unique<Shard>());

    perShardCap = cfg.maxSessions == 0
        ? 0
        : (cfg.maxSessions + count - 1) / count;

    tmCreated = telemetry::counter("engine.sessions.created");
    tmEvicted = telemetry::counter("engine.sessions.evicted");
    tmIdleEvicted =
        telemetry::counter("engine.sessions.evicted.idle");
    tmLive = telemetry::gauge("engine.sessions.live");
    tmLockWait = telemetry::histogram("engine.table.lock.wait.ns");
}

SessionConfig
ShardedSessionTable::makeSessionConfig() const
{
    SessionConfig session = cfg.session;
    const std::uint64_t dyn =
        dynamicDelay.load(std::memory_order_relaxed);
    if (dyn != 0)
        session.predictionDelay = dyn;
    return session;
}

std::size_t
ShardedSessionTable::shardOf(std::uint64_t session_id) const
{
    return static_cast<std::size_t>(mix64(session_id)) &
           (shards.size() - 1);
}

std::unique_lock<std::mutex>
ShardedSessionTable::lockShard(std::size_t shard_index)
{
    Shard &shard = *shards[shard_index];
    std::unique_lock<std::mutex> lock(shard.mu, std::defer_lock);
    if (tmLockWait) {
        // Time the stripe-lock acquisition (two clock reads per
        // batch - only when telemetry is attached).
        const std::uint64_t before = telemetry::monotonicNanos();
        lock.lock();
        tmLockWait->record(telemetry::monotonicNanos() - before);
    } else {
        lock.lock();
    }
    return lock;
}

bool
ShardedSessionTable::withSessionLocked(std::uint64_t session_id,
                                       SessionFn fn)
{
    Shard &shard = *shards[shardOf(session_id)];
    const std::uint64_t tick =
        activityClock.fetch_add(1, std::memory_order_relaxed) + 1;

    auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end()) {
        if (allocFailHook && allocFailHook()) {
            ++shard.allocFailures;
            return false;
        }
        if (perShardCap != 0 &&
            shard.sessions.size() >= perShardCap) {
            // Shard full: drop its least-recently-active session.
            const std::uint64_t victim = shard.lru.back();
            shard.lru.pop_back();
            shard.sessions.erase(victim);
            ++shard.evicted;
            if (tmEvicted)
                tmEvicted->add(1);
            if (tmLive)
                tmLive->add(-1);
        }
        shard.lru.push_front(session_id);
        Shard::Entry entry;
        entry.session =
            std::make_unique<Session>(session_id,
                                      makeSessionConfig());
        entry.lruPos = shard.lru.begin();
        it = shard.sessions.emplace(session_id, std::move(entry))
                 .first;
        ++shard.created;
        if (tmCreated)
            tmCreated->add(1);
        if (tmLive)
            tmLive->add(1);
    } else if (it->second.lruPos != shard.lru.begin()) {
        // Refresh recency: this session is active again.
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         it->second.lruPos);
    }
    it->second.lastActive = tick;

    fn(*it->second.session);
    return true;
}

bool
ShardedSessionTable::withSession(std::uint64_t session_id,
                                 SessionFn fn)
{
    auto lock = lockShard(shardOf(session_id));
    return withSessionLocked(session_id, fn);
}

void
ShardedSessionTable::rebuildSessionLocked(std::uint64_t session_id,
                                          SessionFn init)
{
    Shard &shard = *shards[shardOf(session_id)];

    auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end()) {
        // Evicted between poisoning and rebuild: recreate.
        shard.lru.push_front(session_id);
        Shard::Entry entry;
        entry.session =
            std::make_unique<Session>(session_id,
                                      makeSessionConfig());
        entry.lruPos = shard.lru.begin();
        entry.lastActive =
            activityClock.load(std::memory_order_relaxed);
        it = shard.sessions.emplace(session_id, std::move(entry))
                 .first;
        ++shard.created;
        if (tmCreated)
            tmCreated->add(1);
        if (tmLive)
            tmLive->add(1);
    } else {
        it->second.session =
            std::make_unique<Session>(session_id,
                                      makeSessionConfig());
    }
    ++shard.rebuilt;
    init(*it->second.session);
}

void
ShardedSessionTable::rebuildSession(std::uint64_t session_id,
                                    SessionFn init)
{
    auto lock = lockShard(shardOf(session_id));
    rebuildSessionLocked(session_id, init);
}

void
ShardedSessionTable::installSessionLocked(std::uint64_t session_id,
                                          SessionFn init)
{
    Shard &shard = *shards[shardOf(session_id)];

    auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end()) {
        shard.lru.push_front(session_id);
        Shard::Entry entry;
        entry.session =
            std::make_unique<Session>(session_id,
                                      makeSessionConfig());
        entry.lruPos = shard.lru.begin();
        it = shard.sessions.emplace(session_id, std::move(entry))
                 .first;
        ++shard.created;
        if (tmCreated)
            tmCreated->add(1);
        if (tmLive)
            tmLive->add(1);
    } else {
        it->second.session =
            std::make_unique<Session>(session_id,
                                      makeSessionConfig());
        if (it->second.lruPos != shard.lru.begin())
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second.lruPos);
    }
    it->second.lastActive =
        activityClock.load(std::memory_order_relaxed);
    init(*it->second.session);
}

void
ShardedSessionTable::installSession(std::uint64_t session_id,
                                    SessionFn init)
{
    auto lock = lockShard(shardOf(session_id));
    installSessionLocked(session_id, init);
}

void
ShardedSessionTable::setAllocFailHook(std::function<bool()> hook)
{
    allocFailHook = std::move(hook);
}

bool
ShardedSessionTable::peekSessionLocked(std::uint64_t session_id,
                                       ConstSessionFn fn) const
{
    const Shard &shard = *shards[shardOf(session_id)];
    const auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end())
        return false;
    fn(*it->second.session);
    return true;
}

bool
ShardedSessionTable::peekSession(std::uint64_t session_id,
                                 ConstSessionFn fn) const
{
    const Shard &shard = *shards[shardOf(session_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end())
        return false;
    fn(*it->second.session);
    return true;
}

bool
ShardedSessionTable::mutateSession(std::uint64_t session_id,
                                   SessionFn fn)
{
    Shard &shard = *shards[shardOf(session_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end())
        return false;
    fn(*it->second.session);
    return true;
}

void
ShardedSessionTable::forEach(ConstSessionFn fn) const
{
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        for (const auto &[id, entry] : shard->sessions)
            fn(*entry.session);
    }
}

bool
ShardedSessionTable::erase(std::uint64_t session_id)
{
    Shard &shard = *shards[shardOf(session_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end())
        return false;
    shard.lru.erase(it->second.lruPos);
    shard.sessions.erase(it);
    if (tmLive)
        tmLive->add(-1);
    return true;
}

std::size_t
ShardedSessionTable::evictIdle(std::uint64_t max_age)
{
    const std::uint64_t now =
        activityClock.load(std::memory_order_relaxed);
    std::size_t evicted = 0;
    for (const auto &shard_ptr : shards) {
        Shard &shard = *shard_ptr;
        std::lock_guard<std::mutex> lock(shard.mu);
        // Per-shard LRU order matches lastActive order (every touch
        // moves the entry to the front with a newer tick), so the
        // sweep only ever inspects the stale tail.
        while (!shard.lru.empty()) {
            const std::uint64_t victim = shard.lru.back();
            const auto it = shard.sessions.find(victim);
            HOTPATH_ASSERT(it != shard.sessions.end(),
                           "LRU entry without a session");
            // `now` was sampled before this shard's lock: a racing
            // withSession can stamp a newer tick, and unsigned
            // `now - lastActive` would wrap to ~2^64 and evict a
            // session touched an instant ago.
            if (it->second.lastActive > now ||
                now - it->second.lastActive <= max_age)
                break;
            shard.lru.pop_back();
            shard.sessions.erase(it);
            ++shard.idleEvicted;
            ++evicted;
            if (tmIdleEvicted)
                tmIdleEvicted->add(1);
            if (tmLive)
                tmLive->add(-1);
        }
    }
    return evicted;
}

std::size_t
ShardedSessionTable::liveSessions() const
{
    std::size_t live = 0;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        live += shard->sessions.size();
    }
    return live;
}

SessionTableStats
ShardedSessionTable::stats() const
{
    SessionTableStats stats;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        stats.created += shard->created;
        stats.evicted += shard->evicted;
        stats.idleEvicted += shard->idleEvicted;
        stats.rebuilt += shard->rebuilt;
        stats.allocFailures += shard->allocFailures;
        stats.live += shard->sessions.size();
    }
    return stats;
}

} // namespace hotpath::engine
