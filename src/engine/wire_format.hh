/**
 * @file
 * The binary wire format for branch-event batches (the engine's
 * ingestion currency).
 *
 * A *frame* carries one batch of events for one session:
 *
 *   magic      2 bytes   'H' 'F'
 *   kind       1 byte    1 = path events, 2 = block trace,
 *                        3 = prediction replies, 4 = session state
 *   session    varint    client/session identifier
 *   sequence   varint    per-session frame sequence number
 *   count      varint    events in the payload
 *   payloadLen varint    payload size in bytes
 *   payload    bytes     delta-encoded events (see below)
 *   crc        4 bytes   CRC-32 (little endian) over kind..payload
 *
 * Integers are LEB128 varints; deltas are zigzag-mapped so small
 * negative jumps stay small on the wire. Path-event payloads encode
 * each field as a delta against the previous event in the frame
 * (loop bursts repeat the same path, so a burst costs 5 bytes per
 * event); block-trace payloads encode consecutive block ids as
 * deltas - the software analogue of PC-delta branch-trace formats.
 *
 * Decoding is defensive, not trusting: every malformed input maps to
 * a DecodeStatus instead of a panic, because frames arrive from
 * outside the process. The CRC covers the header fields after the
 * magic as well as the payload, so any single corrupted byte in a
 * frame is detected.
 */

#ifndef HOTPATH_ENGINE_WIRE_FORMAT_HH
#define HOTPATH_ENGINE_WIRE_FORMAT_HH

#include <cstdint>
#include <vector>

#include "cfg/types.hh"
#include "paths/path_event.hh"

namespace hotpath
{

class TraceLog;

/** The CRC-framed varint wire format; see the file comment. */
namespace wire
{

/** What a frame's payload contains. */
enum class FrameKind : std::uint8_t
{
    /** Delta-encoded PathEvent batch. */
    PathEvents = 1,
    /** Delta-encoded basic-block id trace. */
    BlockTrace = 2,
    /** Delta-encoded prediction records (server -> client replies). */
    Predictions = 3,
    /** Serialized per-session predictor state (migration traffic). */
    SessionState = 4,
};

/**
 * One hot-path prediction as it travels back to the client: the path
 * head whose counter crossed the delay threshold and the predicted
 * tail fragment (dense path id) promoted into the fragment cache.
 */
struct PredictionRecord
{
    /** Head block whose execution triggered the prediction. */
    HeadIndex head = 0;
    /** Predicted hot path (tail fragment) id. */
    PathIndex path = 0;
};

/** One NET-predictor counter as it travels in a SessionState frame. */
struct SessionCounterEntry
{
    /** Counter-table key (head index biased by one; see NetPredictor). */
    std::uint64_t key = 0;
    /** Observed execution count for that key. */
    std::uint64_t count = 0;
};

/** One cached fragment as it travels in a SessionState frame. */
struct SessionFragmentEntry
{
    /** Promoted hot-path (fragment) id. */
    PathIndex path = 0;
    /** Fragment size in instructions (occupancy accounting). */
    std::uint32_t instructions = 0;
    /** Times the cached fragment has been executed. */
    std::uint64_t executions = 0;
    /** LRU clock stamp of the fragment's last touch. */
    std::uint64_t lastUse = 0;
};

/**
 * The wire-serializable snapshot of one Session: every byte of state
 * that influences future predictions (NET counter table, retired
 * heads, fragment cache with exact LRU stamps, sequence tracking)
 * plus the session's lifetime statistics. Importing a snapshot into a
 * fresh Session continues the event stream bit-identically - same
 * predictions, same cache hits, same eviction order - which is what
 * makes live migration between backends lossless.
 *
 * A frame whose `request` flag is set carries no state: it asks the
 * receiving engine to export the named session and reply with a
 * populated SessionState frame (the router's migration handshake).
 */
struct SessionState
{
    /** True for an export request, false for a state snapshot. */
    bool request = false;
    /** NET prediction delay the exporter ran with (sanity echo). */
    std::uint64_t predictionDelay = 0;
    /** Last applied frame sequence number. */
    std::uint64_t lastSequence = 0;
    /** Whether any frame was ever applied (lastSequence is valid). */
    bool sawFrame = false;
    /** Fragment-cache LRU clock at export time. */
    std::uint64_t cacheClock = 0;
    /** Live NET counters, strictly ascending by key. */
    std::vector<SessionCounterEntry> counters;
    /** Retired (given-up) head indices, strictly ascending. */
    std::vector<std::uint32_t> retired;
    /** Cached fragments, strictly ascending by path id. */
    std::vector<SessionFragmentEntry> fragments;
    /** Lifetime frames applied. */
    std::uint64_t framesApplied = 0;
    /** Lifetime events consumed. */
    std::uint64_t eventsProcessed = 0;
    /** Lifetime events served from the fragment cache. */
    std::uint64_t cachedEvents = 0;
    /** Lifetime events interpreted (profiled). */
    std::uint64_t interpretedEvents = 0;
    /** Lifetime predictions made. */
    std::uint64_t predictions = 0;
    /** Lifetime sequence gaps observed. */
    std::uint64_t sequenceGaps = 0;
    /** Lifetime decode errors attributed to this session. */
    std::uint64_t decodeErrors = 0;
};

/** Frame metadata (everything before the payload). */
struct FrameHeader
{
    /** Client/session identifier. */
    std::uint64_t session = 0;
    /** Per-session frame sequence number. */
    std::uint64_t sequence = 0;
    /** Payload encoding. */
    FrameKind kind = FrameKind::PathEvents;
};

/** Outcome of decoding one frame. */
enum class DecodeStatus
{
    /** Frame decoded and CRC-verified. */
    Ok,
    /** Buffer ends before the frame does (stream cut short). */
    Truncated,
    /** Missing the 'H''F' frame magic. */
    BadMagic,
    /** Unknown FrameKind byte. */
    BadKind,
    /** count/payloadLen exceed the sanity caps. */
    BadLength,
    /** CRC-32 mismatch (corruption in flight). */
    BadCrc,
    /** Payload does not decode to exactly `count` in-range events. */
    BadPayload,
};

/** Stable name for reports and tests. */
const char *decodeStatusName(DecodeStatus status);

/** One decoded frame; exactly one payload vector is populated. */
struct DecodedFrame
{
    /** The frame's metadata. */
    FrameHeader header;
    /** Payload for FrameKind::PathEvents. */
    std::vector<PathEvent> events;
    /** Payload for FrameKind::BlockTrace. */
    std::vector<BlockId> blocks;
    /** Payload for FrameKind::Predictions. */
    std::vector<PredictionRecord> predictions;
    /** Payload for FrameKind::SessionState. */
    SessionState state;
};

/** Decoder sanity cap on events per frame. */
constexpr std::size_t kMaxFrameEvents = std::size_t{1} << 20;
/** Decoder sanity cap on payload bytes per frame. */
constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 26;

// Primitive encodings (exposed for the property tests) -------------

/** Append a LEB128 varint. */
void appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v);

/**
 * Read a LEB128 varint at `offset`, advancing it. Returns false on
 * truncation or a varint longer than 10 bytes.
 */
bool readVarint(const std::uint8_t *data, std::size_t size,
                std::size_t &offset, std::uint64_t &v);

/** Zigzag map signed -> unsigned (small magnitudes stay small). */
std::uint64_t zigzagEncode(std::int64_t v);
/** Inverse of zigzagEncode. */
std::int64_t zigzagDecode(std::uint64_t v);

/** CRC-32 (IEEE 802.3 polynomial, bit-reflected). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size,
                    std::uint32_t seed = 0);

// Frame encoding ---------------------------------------------------

/** Append one path-event frame for `session` to `out`. */
void appendEventFrame(std::vector<std::uint8_t> &out,
                      std::uint64_t session, std::uint64_t sequence,
                      const PathEvent *events, std::size_t count);

/** Vector convenience overload of appendEventFrame. */
void appendEventFrame(std::vector<std::uint8_t> &out,
                      std::uint64_t session, std::uint64_t sequence,
                      const std::vector<PathEvent> &events);

/** Append one block-trace frame for `session` to `out`. */
void appendBlockFrame(std::vector<std::uint8_t> &out,
                      std::uint64_t session, std::uint64_t sequence,
                      const BlockId *blocks, std::size_t count);

/**
 * Append one prediction-reply frame for `session` to `out`. The
 * sequence echoes the event frame the predictions came from, so a
 * pipelined client can match replies to its in-flight submissions.
 */
void appendPredictionFrame(std::vector<std::uint8_t> &out,
                           std::uint64_t session,
                           std::uint64_t sequence,
                           const PredictionRecord *records,
                           std::size_t count);

/**
 * Append one session-state frame for `session` to `out`. When
 * `state.request` is true the payload is the one-byte export-request
 * marker; otherwise the full snapshot is delta-encoded (counter keys,
 * retired heads, and fragment paths must be strictly ascending -
 * Session::exportState emits them sorted, which also makes the
 * encoded bytes deterministic regardless of hash-table iteration
 * order).
 */
void appendSessionStateFrame(std::vector<std::uint8_t> &out,
                             std::uint64_t session,
                             std::uint64_t sequence,
                             const SessionState &state);

/**
 * Encode a whole event stream as consecutive frames (sequence 0..n)
 * of at most `frame_events` events each. This is the one on-disk /
 * on-wire event encoding; workload/stream_io delegates to it.
 */
std::vector<std::uint8_t>
encodeEventStream(const std::vector<PathEvent> &stream,
                  std::uint64_t session,
                  std::size_t frame_events = 4096);

// Frame decoding ---------------------------------------------------

/**
 * Parse only the header of the frame at `offset` (no payload walk,
 * no CRC). `frame_end` receives the offset one past the frame's CRC.
 * This is what the engine's ingest path uses to route a frame to its
 * shard without paying for a full decode.
 */
DecodeStatus peekFrameHeader(const std::uint8_t *data,
                             std::size_t size, std::size_t offset,
                             FrameHeader &header,
                             std::size_t &frame_end);

/**
 * Fully decode (and CRC-check) the frame at `offset`. On Ok,
 * `offset` advances past the frame and `out` holds the events.
 * On any error `offset` is untouched.
 */
DecodeStatus decodeFrame(const std::uint8_t *data, std::size_t size,
                         std::size_t &offset, DecodedFrame &out);

// Corruption recovery ----------------------------------------------

/**
 * Scan forward from `from` for the next offset at which a complete,
 * CRC-valid frame begins (magic, parseable header, matching CRC).
 * Returns `size` when no such frame exists. This is the resync
 * primitive: after a corrupt frame, skip to the next trustworthy
 * frame boundary instead of abandoning the rest of the buffer. A
 * candidate magic inside a corrupt region is rejected unless the
 * whole frame it claims checks out, so resync cannot fabricate
 * events from garbage.
 */
std::size_t findNextFrame(const std::uint8_t *data, std::size_t size,
                          std::size_t from);

/**
 * Streaming variant of findNextFrame for socket reassembly buffers,
 * where the last frame is usually still arriving. Scans forward from
 * `from` for the next offset holding either a complete CRC-valid
 * frame (`*complete = true`) or a plausible frame cut short by the
 * end of the buffer (`*complete = false`: keep those bytes and retry
 * after the next read). Returns `size` with `*complete = false` when
 * everything up to the end is garbage and can be discarded.
 */
std::size_t findFrameBoundary(const std::uint8_t *data,
                              std::size_t size, std::size_t from,
                              bool *complete);

/** What a resilient multi-frame decode survived. */
struct ResyncStats
{
    /** Frames decoded and delivered. */
    std::uint64_t framesDecoded = 0;
    /** Corrupt frames quarantined (skipped after a failed decode). */
    std::uint64_t framesQuarantined = 0;
    /** Bytes discarded while scanning for the next valid frame. */
    std::uint64_t bytesSkipped = 0;
};

// sim::TraceLog round trip -----------------------------------------

/**
 * Encode a recorded execution trace as block-trace frames (the
 * "export a native run, serve it later" path).
 */
std::vector<std::uint8_t> encodeTraceLog(const TraceLog &log,
                                         std::uint64_t session,
                                         std::size_t frame_events = 4096);

/**
 * Decode consecutive block-trace frames back into `out` (appending,
 * in frame order). Stops at the first malformed frame and returns
 * its status; Ok means the whole buffer decoded.
 */
DecodeStatus decodeTraceLog(const std::uint8_t *data,
                            std::size_t size, TraceLog &out);

/**
 * Like decodeTraceLog, but a malformed frame is quarantined and the
 * decode resyncs at the next CRC-valid frame boundary
 * (findNextFrame) instead of stopping. Appends every decodable
 * frame's blocks to `out` in buffer order; `stats` (optional)
 * receives the damage accounting. Returns the number of frames
 * delivered.
 */
std::uint64_t decodeTraceLogResilient(const std::uint8_t *data,
                                      std::size_t size, TraceLog &out,
                                      ResyncStats *stats = nullptr);

} // namespace wire
} // namespace hotpath

#endif // HOTPATH_ENGINE_WIRE_FORMAT_HH
