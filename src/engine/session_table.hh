/**
 * @file
 * Sharded session registry with striped locks and LRU idle eviction.
 *
 * Sessions are partitioned across shards by a mixed hash of the
 * session id; each shard holds its own mutex, hash map and LRU list,
 * so concurrent traffic for different clients contends only when it
 * lands on the same stripe. A capacity cap bounds the table's memory:
 * creating a session in a full shard evicts that shard's
 * least-recently-active session first (idle clients fall out, hot
 * clients stay resident).
 *
 * The shard partition doubles as the engine's ordering domain: the
 * engine assigns every shard to exactly one worker, so all activity
 * on one session is serialized without per-session locks.
 *
 * Two access planes share the stripes:
 *
 *  - The worker plane (`lockShard()` + the `*Locked` variants) is
 *    the frame hot path. The owning worker takes the stripe lock
 *    ONCE per drained batch and then touches its sessions lock-free,
 *    so the per-frame cost is a hash lookup, not a mutex round trip.
 *    Visitor callbacks are `FunctionRef`s - no `std::function`
 *    allocation per frame.
 *  - The cross-thread plane (everything else: `withSession`,
 *    `peekSession`, `evictIdle`, `stats`, export/import) locks per
 *    call, exactly as before. This is how admin threads, idle sweeps
 *    and migration interleave safely with worker batches.
 */

#ifndef HOTPATH_ENGINE_SESSION_TABLE_HH
#define HOTPATH_ENGINE_SESSION_TABLE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/session.hh"
#include "support/function_ref.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
class Histogram;
} // namespace telemetry

namespace engine
{

/** Session table parameters. */
struct SessionTableConfig
{
    /** Lock stripes; rounded up to a power of two. */
    std::size_t shardCount = 16;

    /**
     * Cap on resident sessions across the whole table (0 = no cap).
     * Enforced per shard at ceil(maxSessions / shardCount).
     */
    std::size_t maxSessions = 0;

    /** Configuration for every created session. */
    SessionConfig session;
};

/** Lifetime counters for the table. */
struct SessionTableStats
{
    /** Sessions created (including re-creations after eviction). */
    std::uint64_t created = 0;
    /** Sessions evicted by the LRU capacity cap. */
    std::uint64_t evicted = 0;
    /** Sessions retired by evictIdle() (idle sweep). */
    std::uint64_t idleEvicted = 0;
    /** Poisoned sessions replaced in place (rebuildSession). */
    std::uint64_t rebuilt = 0;
    /** Session creations refused by the allocation-failure hook. */
    std::uint64_t allocFailures = 0;
    /** Sessions currently resident. */
    std::size_t live = 0;
};

/** Non-allocating visitor over a mutable session. */
using SessionFn = support::FunctionRef<void(Session &)>;
/** Non-allocating visitor over a read-only session. */
using ConstSessionFn = support::FunctionRef<void(const Session &)>;

/** Striped-lock session map; see file comment. */
class ShardedSessionTable
{
  public:
    /** Build an empty table with config.shardCount stripes. */
    explicit ShardedSessionTable(SessionTableConfig config);

    /** Actual shard count (power of two). */
    std::size_t shardCount() const { return shards.size(); }

    /** Shard that owns `session_id` (stable mixed hash). */
    std::size_t shardOf(std::uint64_t session_id) const;

    // Worker plane (batch-scoped shard ownership) ------------------

    /**
     * Acquire shard `shard_index`'s stripe lock and hand it to the
     * caller. The engine's worker takes this once per drained batch;
     * while held, the worker may use the `*Locked` variants below on
     * any session of that shard without further locking. Lock-wait
     * time is recorded in engine.table.lock.wait.ns when telemetry
     * is attached.
     */
    std::unique_lock<std::mutex> lockShard(std::size_t shard_index);

    /**
     * withSession() without the lock round trip: the caller must
     * hold `session_id`'s shard lock (lockShard). Same semantics
     * otherwise - find-or-create with LRU/cap/alloc-hook handling,
     * activity stamp, LRU refresh; returns false only when creation
     * was refused by the allocation-failure hook.
     */
    bool withSessionLocked(std::uint64_t session_id, SessionFn fn);

    /** rebuildSession() for a caller already holding the shard
     *  lock. */
    void rebuildSessionLocked(std::uint64_t session_id,
                              SessionFn init);

    /** installSession() for a caller already holding the shard
     *  lock. */
    void installSessionLocked(std::uint64_t session_id,
                              SessionFn init);

    /** peekSession() for a caller already holding the shard lock. */
    bool peekSessionLocked(std::uint64_t session_id,
                           ConstSessionFn fn) const;

    // Cross-thread plane (per-call locking) ------------------------

    /**
     * Run `fn` on the session, creating it (possibly evicting the
     * shard's LRU session) if absent. The shard lock is held for the
     * duration, serializing against every other access to sessions
     * in the same stripe. Returns false - without running `fn` - only
     * when the session had to be created and the allocation-failure
     * hook refused the allocation.
     */
    bool withSession(std::uint64_t session_id, SessionFn fn);

    /**
     * Replace a poisoned session with a fresh one in place (same id,
     * same LRU position; counters and predictor state are discarded).
     * `init` runs on the replacement under the shard lock - the
     * engine uses it to arm re-admission backoff. Creates the session
     * if it was not resident (eviction may have raced the rebuild).
     * The allocation-failure hook is NOT consulted: recovery must not
     * be starved by the fault it is recovering from.
     */
    void rebuildSession(std::uint64_t session_id, SessionFn init);

    /**
     * Replace (or create) a session with a fresh one and run `init`
     * on it under the shard lock - the migration import path: the
     * engine installs an exported snapshot via Session::importState.
     * Identical to rebuildSession except it is not counted as a
     * poison-recovery rebuild and refreshes the LRU position (an
     * imported session is active, not damaged). The
     * allocation-failure hook is NOT consulted: migration must not be
     * starved by injected allocation faults.
     */
    void installSession(std::uint64_t session_id, SessionFn init);

    /**
     * Install a hook consulted before each *new* session allocation;
     * returning true makes the allocation fail (withSession returns
     * false). Used by the fault injector to simulate allocation
     * failure; pass nullptr to uninstall. Not thread-safe against
     * concurrent table use - install before traffic starts.
     */
    void setAllocFailHook(std::function<bool()> hook);

    /**
     * Run `fn` on the session if it is resident; returns false
     * without creating anything when it is not. Does not refresh the
     * session's LRU position (peeking is not activity).
     */
    bool peekSession(std::uint64_t session_id,
                     ConstSessionFn fn) const;

    /**
     * Mutable peekSession: run `fn` on the session if resident,
     * without creating it and without refreshing its LRU position (a
     * control-plane retune is not client activity). The adaptive
     * controller's per-session knob path.
     */
    bool mutateSession(std::uint64_t session_id, SessionFn fn);

    /**
     * Override the prediction delay given to sessions created from
     * here on (0 restores the configured default). Existing sessions
     * are untouched - the controller retunes them individually via
     * mutateSession. Thread-safe (relaxed atomic: creations racing a
     * retune pick up either delay, and the next epoch converges
     * them).
     */
    void setDefaultPredictionDelay(std::uint64_t delay)
    {
        dynamicDelay.store(delay, std::memory_order_relaxed);
    }

    /** The delay new sessions receive right now (dynamic override or
     *  the configured default). */
    std::uint64_t defaultPredictionDelay() const
    {
        const std::uint64_t dyn =
            dynamicDelay.load(std::memory_order_relaxed);
        return dyn != 0 ? dyn : cfg.session.predictionDelay;
    }

    /** Visit every resident session (shard by shard, under locks). */
    void forEach(ConstSessionFn fn) const;

    /** Drop one session; returns true if it was resident. */
    bool erase(std::uint64_t session_id);

    /**
     * Retire every session whose last activity is more than `max_age`
     * activity ticks in the past, and return how many were evicted.
     * The table keeps a logical activity clock - each withSession()
     * access is one tick - so "age" is measured in how much traffic
     * the table as a whole has seen since the session was touched,
     * not wall time; a quiet table never ages anyone out. This is the
     * server's idle-connection sweep companion: when a connection
     * times out, the matching predictor state goes too.
     */
    std::size_t evictIdle(std::uint64_t max_age);

    /** Current value of the logical activity clock (ticks). */
    std::uint64_t activityTicks() const
    {
        return activityClock.load(std::memory_order_relaxed);
    }

    /** Number of resident sessions (sums the shards, under locks). */
    std::size_t liveSessions() const;

    /** Aggregated lifetime counters across all shards. */
    SessionTableStats stats() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        /** Most-recently-active session ids at the front. */
        std::list<std::uint64_t> lru;
        struct Entry
        {
            std::unique_ptr<Session> session;
            std::list<std::uint64_t>::iterator lruPos;
            /** Activity-clock tick of the last withSession access. */
            std::uint64_t lastActive = 0;
        };
        std::unordered_map<std::uint64_t, Entry> sessions;
        std::uint64_t created = 0;
        std::uint64_t evicted = 0;
        std::uint64_t idleEvicted = 0;
        std::uint64_t rebuilt = 0;
        std::uint64_t allocFailures = 0;
    };

    /** cfg.session with the dynamic delay override applied - what
     *  every creation site actually instantiates. */
    SessionConfig makeSessionConfig() const;

    SessionTableConfig cfg;
    std::size_t perShardCap; // 0 = uncapped
    std::vector<std::unique_ptr<Shard>> shards;
    std::function<bool()> allocFailHook;
    /** Table-wide logical clock; one tick per withSession access. */
    std::atomic<std::uint64_t> activityClock{0};
    /** Control-plane override of cfg.session.predictionDelay for new
     *  sessions (0 = no override). */
    std::atomic<std::uint64_t> dynamicDelay{0};

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmCreated = nullptr;
    telemetry::Counter *tmEvicted = nullptr;
    telemetry::Counter *tmIdleEvicted = nullptr;
    telemetry::Gauge *tmLive = nullptr;
    /** Stripe-lock acquisition wait (lockShard + the cross-thread
     *  plane); a fat tail here means cross-thread sweeps are
     *  stalling behind long worker batches. */
    telemetry::Histogram *tmLockWait = nullptr;
};

} // namespace engine
} // namespace hotpath

#endif // HOTPATH_ENGINE_SESSION_TABLE_HH
