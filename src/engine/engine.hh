/**
 * @file
 * The streaming prediction engine: concurrent ingestion of wire-format
 * branch-event frames into per-session NET predictors.
 *
 * Data flow:
 *
 *   producers --submit(frame bytes)--> per-shard bounded MPSC rings
 *        --> worker threads: decode + CRC-check + Session::apply
 *
 * The ingest path only peeks the frame header (cheap varint reads) to
 * route the frame by session id; all decode and prediction work runs
 * on the worker that owns the target shard. Every shard is owned by
 * exactly one worker, and a shard's queue is FIFO, so frames of one
 * session are processed in submission order - which is what makes the
 * engine's per-session predictions deterministic and bit-identical to
 * a serial in-process replay, regardless of worker count or thread
 * scheduling. (Callers that split one session's frames across
 * producer threads forfeit the submission order, and with it the
 * guarantee.)
 *
 * Scaling model (see docs/ARCHITECTURE.md "Threading and memory
 * model" for the full picture):
 *
 *  - Handoff is a bounded lock-free MPSC ring per shard
 *    (support/mpsc_ring.hh): producers enqueue with one CAS, no
 *    mutex, and only touch a condition variable on the full-queue
 *    slow path. Workers batch-pop and only notify sleepers
 *    (batch-notify, Dekker-style sleeping flag + seq_cst fences,
 *    with short waits as a liveness backstop).
 *  - Session ownership is thread-affine per batch: the owning worker
 *    takes its shard's table stripe lock ONCE per drained batch
 *    (ShardedSessionTable::lockShard) and then reaches sessions with
 *    plain lookups; cross-thread operations (idle sweeps,
 *    export/import, admin stats) still lock per call and interleave
 *    between batches.
 *  - Frames move without payload copies: submit() moves the caller's
 *    buffer, and submitShared() routes a frame as an offset/length
 *    slice of a caller-owned shared buffer (producers that pre-encode
 *    many frames into one buffer pay zero per-frame allocation).
 *  - Decode runs into per-worker reusable scratch (DecodedFrame,
 *    prediction records, state replies), so the steady-state worker
 *    loop allocates nothing.
 *
 * Backpressure: a full shard queue blocks submit() until the owning
 * worker drains room (counted in engine.backpressure.waits). This
 * bounds memory under overload instead of dropping or buffering
 * without limit. Under OverloadPolicy::DropOldest the shard keeps the
 * original mutex+deque queue instead of the lock-free ring: shedding
 * the *oldest* queued frame requires producers to pop, which only the
 * locked backend supports (resilience traffic is not the scaling
 * path).
 *
 * With workerThreads == 0 the engine runs in serial fallback mode:
 * submit() decodes and applies the frame inline on the caller's
 * thread, with no queues and no locks beyond the session table's.
 *
 * Resilience: the engine degrades instead of dying. Corrupt frames
 * are quarantined (counted, skipped) rather than aborting the
 * session; a session that keeps producing decode errors exhausts its
 * error budget, is rebuilt from scratch and re-admitted after an
 * exponential backoff; a watchdog releases stalled workers; and
 * under sustained queue saturation a Dynamo-style spike detector
 * (DegradationPolicy, shared with the fragment-cache flush heuristic
 * in src/dynamo/flush.hh) switches a shard to drop-oldest load
 * shedding. Every such path is observable through
 * `engine.fault.*` / `engine.recovered.*` metrics and
 * EngineStats::fault. Faults themselves can be injected
 * deterministically via EngineConfig::faults
 * (support/fault_injector.hh) to exercise all of it in tests and the
 * ext_fault_resilience bench.
 */

#ifndef HOTPATH_ENGINE_ENGINE_HH
#define HOTPATH_ENGINE_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dynamo/flush.hh"
#include "engine/session_table.hh"
#include "engine/wire_format.hh"
#include "support/fault_injector.hh"
#include "support/mpsc_ring.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
class Histogram;
class SpanRecorder;
} // namespace telemetry

namespace engine
{

/** What to do with new frames when a shard queue is saturated. */
enum class OverloadPolicy
{
    /** Block the producer until the worker drains room (default). */
    Block,
    /**
     * Normally block, but once the shard's DegradationPolicy judges
     * the saturation a sustained overload spike, shed the *oldest*
     * queued frame to admit the new one (freshest-data-wins), counted
     * in engine.recovered.shed.frames. Selecting this policy keeps
     * the shard queues on the locked mutex+deque backend (producers
     * must be able to pop the oldest frame).
     */
    DropOldest,
};

/** Outcome of a nonblocking trySubmit(). */
enum class SubmitStatus
{
    /** Frame routed (or rejected-and-counted); ownership taken. */
    Accepted,
    /** Header did not parse; frame counted as rejected. */
    Rejected,
    /**
     * The target shard queue is saturated and the caller asked not
     * to block. The frame is untouched and uncounted - retry later.
     */
    Backpressure,
};

/**
 * What happened to one consumed frame, delivered to the completion
 * callback (EngineConfig-independent: install with
 * Engine::setFrameCallback). Every frame the engine takes ownership
 * of fires exactly one completion - including frames that fail the
 * full decode (bad CRC/payload), frames of non-PathEvents kinds and
 * frames shed under overload - so a caller that counts submissions
 * against completions (the net server's per-connection in-flight
 * ledger) always balances. `predictions` points at worker-local
 * scratch that is only valid for the duration of the callback.
 */
struct FrameOutcome
{
    /** Session the frame belonged to (0 when even the header was
     *  unreadable). */
    std::uint64_t session = 0;
    /** The frame's sequence number (0 when the header was
     *  unreadable). */
    std::uint64_t sequence = 0;
    /** Caller-supplied routing tag from submit()/trySubmit() (the
     *  net server stores the originating connection id here). */
    std::uint64_t tag = 0;
    /** Events the frame carried (0 unless it decoded). */
    std::uint32_t events = 0;
    /** False when the frame was consumed without being applied:
     *  decode failure, non-PathEvents kind, re-admission backoff,
     *  allocation failure or overload shedding. */
    bool applied = false;
    /** Predictions the frame triggered (callback-scoped storage). */
    const wire::PredictionRecord *predictions = nullptr;
    /** Number of records behind `predictions`. */
    std::size_t predictionCount = 0;
    /** True when this frame carries a sampled stage span: the engine
     *  timed its decode/queue-wait/predict stages, and the callback
     *  owner should time the encode and write-flush stages (the net
     *  server does). Always false for unsampled frames and for
     *  frames that failed the full decode. */
    bool spanSampled = false;
    /** For a SessionState export request: the fully encoded
     *  SessionState reply frame the callback owner must send back
     *  instead of a Predictions reply (worker-local scratch, only
     *  valid for the duration of the callback). nullptr for every
     *  other frame. */
    const std::vector<std::uint8_t> *stateReply = nullptr;
};

/**
 * Completion callback for consumed frames. Runs on the worker that
 * owns the frame's shard (or on the submitting thread in serial
 * mode), so per-session invocations are ordered for frames that
 * reach a worker; a frame shed under overload completes on the
 * submitting thread and may overtake its session's in-flight
 * frames. The worker releases its shard stripe lock for the duration
 * of each invocation, so the callback may call back into the engine
 * (stats, export); keep it cheap regardless - the shard's other
 * sessions wait behind it.
 */
using FrameCallback = std::function<void(const FrameOutcome &)>;

/** Engine parameters. */
struct EngineConfig
{
    /** Worker threads consuming the shard queues; 0 = serial mode
     *  (submit processes frames inline). */
    std::size_t workerThreads = 4;

    /** Per-shard queue bound in frames; producers block when full.
     *  Under OverloadPolicy::Block (lock-free rings) the bound is
     *  rounded up to a power of two. */
    std::size_t queueCapacityFrames = 256;

    /** Frames a worker drains from one shard per batch (also the
     *  span of one stripe-lock hold). */
    std::size_t maxBatchFrames = 64;

    /** Session table (shard count, capacity cap, session config). */
    SessionTableConfig sessions;

    /** Behaviour when a shard queue saturates. */
    OverloadPolicy overloadPolicy = OverloadPolicy::Block;

    /** Overload spike detector tuning (one policy per shard);
     *  only consulted under OverloadPolicy::DropOldest. */
    DegradationPolicyConfig degradation;

    /** Deterministic fault-injection plan; the default (nothing
     *  armed) creates no injector and adds no work to any path. */
    fault::FaultPlan faults;

    /**
     * Watchdog poll interval in milliseconds; 0 = no watchdog
     * thread. Auto-set to 10 ms when a WorkerStall fault is armed in
     * a threaded engine, so injected stalls are always released.
     */
    std::uint64_t watchdogIntervalMs = 0;

    /** How long an injected FrameDelay holds a frame, measured in
     *  subsequently submitted frames. */
    std::uint64_t delayWindowFrames = 8;

    /**
     * Sample every Nth submitted frame for pipeline stage spans
     * (queue-wait, decode, predict; see telemetry/span.hh); 0 = off.
     * Only for engines fed directly by producers - when a net::Server
     * fronts the engine, the server samples at the socket-read
     * boundary instead (Engine::setSpanRecorder) and this must stay 0.
     */
    std::uint64_t spanSampleEvery = 0;

    /** Emit sampled stages as StageSpan trace records too (only
     *  meaningful with spanSampleEvery != 0). */
    bool spanTrace = false;
};

/** Why a submitted frame was rejected. */
struct RejectBreakdown
{
    /** Frame shorter than its header/payload claims. */
    std::uint64_t truncated = 0;
    /** Missing 'H''F' frame magic. */
    std::uint64_t badMagic = 0;
    /** Unknown or unexpected frame kind. */
    std::uint64_t badKind = 0;
    /** count/payloadLen beyond the sanity caps. */
    std::uint64_t badLength = 0;
    /** CRC-32 mismatch (corruption in flight). */
    std::uint64_t badCrc = 0;
    /** Payload did not decode to the declared events. */
    std::uint64_t badPayload = 0;

    /** Sum of all reject reasons. */
    std::uint64_t
    total() const
    {
        return truncated + badMagic + badKind + badLength + badCrc +
               badPayload;
    }
};

/**
 * Fault and recovery accounting. The `injected*` counters say what
 * the fault plan did to the traffic; the rest say how the engine
 * absorbed it. Frame conservation holds at any quiescent point
 * (after drain()):
 *
 *   framesSubmitted == framesRejected + injectedDrops + shedFrames
 *                      + framesDecoded
 *   framesDecoded   == framesApplied + backoffDroppedFrames
 *                      + allocDroppedFrames
 *
 * so no frame is ever lost silently - every injected fault shows up
 * in exactly one recovery counter.
 */
struct FaultRecoveryStats
{
    /** Injected single-bit frame corruptions. */
    std::uint64_t injectedBitFlips = 0;
    /** Injected frame truncations. */
    std::uint64_t injectedTruncations = 0;
    /** Injected frame drops (simulated network loss). */
    std::uint64_t injectedDrops = 0;
    /** Injected frame delays (held + redelivered out of order). */
    std::uint64_t injectedDelays = 0;
    /** Injected worker stalls. */
    std::uint64_t injectedStalls = 0;
    /** Injected allocation failures (session creation refused). */
    std::uint64_t injectedAllocFails = 0;
    /** Distinct frames damaged by bit-flip and/or truncation. */
    std::uint64_t corruptFrames = 0;

    /** Corrupt frames quarantined (== framesRejected; every reject
     *  is a quarantine, never an abort). */
    std::uint64_t framesQuarantined = 0;
    /** Delayed frames redelivered (none remain held after drain). */
    std::uint64_t delayedDelivered = 0;
    /** Sessions that exhausted their error budget. */
    std::uint64_t sessionsPoisoned = 0;
    /** Poisoned sessions replaced with a fresh session. */
    std::uint64_t sessionsRebuilt = 0;
    /** Rebuilt sessions re-admitted after backoff expired. */
    std::uint64_t sessionsReadmitted = 0;
    /** Decoded frames dropped during re-admission backoff. */
    std::uint64_t backoffDroppedFrames = 0;
    /** Decoded frames dropped because session creation failed. */
    std::uint64_t allocDroppedFrames = 0;
    /** Frames shed (oldest-first) in degraded overload mode. */
    std::uint64_t shedFrames = 0;
    /** Times any shard entered degraded (load-shedding) mode. */
    std::uint64_t degradedEntries = 0;
    /** Workers parked by an injected stall. */
    std::uint64_t workersStalled = 0;
    /** Stalled workers released by the watchdog. */
    std::uint64_t workersUnstalled = 0;
    /** Watchdog observations of a silent worker with pending work. */
    std::uint64_t stallDetections = 0;
    /** Frames decoded AND applied to a session. */
    std::uint64_t framesApplied = 0;
};

/** Consistent snapshot of the engine's accounting. */
struct EngineStats
{
    /** Frames handed to submit(). */
    std::uint64_t framesSubmitted = 0;
    /** Frames that decoded cleanly. */
    std::uint64_t framesDecoded = 0;
    /** Frames rejected (sum of `rejects`). */
    std::uint64_t framesRejected = 0;
    /** Reject reasons. */
    RejectBreakdown rejects;

    /** Events consumed by sessions. */
    std::uint64_t eventsProcessed = 0;
    /** Predictions made across all sessions. */
    std::uint64_t predictions = 0;
    /** Worker batches popped from shard queues. */
    std::uint64_t batches = 0;

    /** Sessions created by the table. */
    std::uint64_t sessionsCreated = 0;
    /** Sessions evicted by the LRU cap. */
    std::uint64_t sessionsEvicted = 0;
    /** Sessions retired by the idle sweep (evictIdleSessions). */
    std::uint64_t sessionsIdleEvicted = 0;
    /** Sessions currently resident. */
    std::size_t sessionsLive = 0;
    /** Session snapshots exported (API calls + export requests). */
    std::uint64_t sessionsExported = 0;
    /** Session snapshots imported (API calls + SessionState
     *  frames). */
    std::uint64_t sessionsImported = 0;

    /** Times submit() blocked on a full shard queue. */
    std::uint64_t backpressureWaits = 0;

    /** Fault-injection and recovery accounting. */
    FaultRecoveryStats fault;

    /** Per-shard queue high-water marks (frames). */
    std::vector<std::size_t> queueHighWater;

    /** Per-shard queue depth at snapshot time (frames). */
    std::vector<std::size_t> queueDepth;

    /** Per-shard producer blocks on a saturated queue (sums to
     *  `backpressureWaits`). */
    std::vector<std::uint64_t> queueBackpressureWaits;

    /** Per-worker nanoseconds spent processing frames (empty in
     *  serial mode). */
    std::vector<std::uint64_t> workerBusyNs;

    /** Per-worker nanoseconds spent parked waiting for work. */
    std::vector<std::uint64_t> workerIdleNs;
};

/** The serving engine; see file comment. */
class Engine
{
  public:
    /** Build the engine; spawns workers (and, when configured, the
     *  watchdog) immediately. */
    explicit Engine(EngineConfig config);

    /** Drains and stops the workers. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Ingest one encoded frame. The header is peeked to route the
     * frame; a frame whose header does not parse is rejected here
     * (returns false). Blocks while the target shard's queue is full.
     * Payload errors (bad CRC, bad payload) surface asynchronously in
     * stats().framesRejected. Must not be called during or after
     * shutdown(). `tag` is an opaque value carried to the completion
     * callback (see FrameOutcome::tag). The buffer is moved, never
     * copied.
     */
    bool submit(std::vector<std::uint8_t> frame,
                std::uint64_t tag = 0);

    /**
     * Ingest one frame as an [offset, offset+length) slice of a
     * shared caller buffer - the zero-copy producer path: the engine
     * never copies the payload, only refcounts the buffer, so a
     * producer that pre-encodes a whole session's frames into one
     * buffer pays no per-frame allocation at all. The slice must be
     * exactly one frame. The buffer must stay immutable while any
     * slice of it is in flight. Like trySubmit(), the fault-injection
     * preamble does not apply (it would have to mutate the shared
     * bytes); unlike trySubmit(), a full queue blocks.
     */
    bool submitShared(
        std::shared_ptr<const std::vector<std::uint8_t>> buffer,
        std::size_t offset, std::size_t length,
        std::uint64_t tag = 0);

    /**
     * Nonblocking submit for event-loop callers: behaves like
     * submit() except that a saturated shard queue returns
     * SubmitStatus::Backpressure immediately, leaving `frame` intact
     * and uncounted so the caller can park it and retry. Unlike
     * submit(), the fault-injection preamble (drop/corrupt/delay) is
     * not applied - a network caller's faults happen on the socket,
     * not in the producer.
     *
     * `span_ns` != 0 marks the frame as span-sampled by the caller
     * and carries the caller's enqueue timestamp
     * (telemetry::monotonicNanos()): the engine records the frame's
     * queue-wait, decode and predict stages against the recorder
     * installed with setSpanRecorder(), and sets
     * FrameOutcome::spanSampled so the caller can time the reply
     * stages. Pass 0 (the default) for unsampled frames.
     */
    SubmitStatus trySubmit(std::vector<std::uint8_t> &frame,
                           std::uint64_t tag = 0,
                           std::uint64_t span_ns = 0);

    /**
     * Nonblocking submitShared(): ingest one frame as an
     * [offset, offset+length) slice of a shared caller buffer, but
     * return SubmitStatus::Backpressure instead of blocking when the
     * target shard queue is saturated - the zero-copy ingest path for
     * event-loop callers (the net server submits socket read-buffer
     * slices through here). On Backpressure nothing is counted and
     * the caller's buffer reference is untouched - retry the same
     * slice later. Like trySubmit(), the fault-injection preamble is
     * not applied. `span_ns` as in trySubmit().
     */
    SubmitStatus trySubmitShared(
        const std::shared_ptr<const std::vector<std::uint8_t>>
            &buffer,
        std::size_t offset, std::size_t length, std::uint64_t tag = 0,
        std::uint64_t span_ns = 0);

    /**
     * Install (or clear, with nullptr) the stage-span recorder used
     * for span-sampled frames. The engine owns a recorder itself
     * when EngineConfig::spanSampleEvery != 0; a fronting net::Server
     * installs its own instead (it samples at the socket-read
     * boundary). Not thread-safe against in-flight traffic: install
     * before the first submit, clear only after a drain.
     */
    void setSpanRecorder(telemetry::SpanRecorder *recorder);

    /** The active span recorder (engine-owned or installed), or
     *  nullptr when stage spans are off. */
    const telemetry::SpanRecorder *spanRecorder() const
    {
        return spans;
    }

    /**
     * Install (or clear, with nullptr) the per-frame completion
     * callback. Not thread-safe against in-flight traffic: install
     * before the first submit. Enabling the callback also makes
     * workers collect the (head, path) prediction records each frame
     * triggers, which the callback receives.
     */
    void setFrameCallback(FrameCallback callback);

    /**
     * Retire sessions idle for more than `max_age` table activity
     * ticks (ShardedSessionTable::evictIdle). Safe to call
     * concurrently with traffic; a retired session that speaks again
     * is recreated from scratch, so callers should sweep with ages
     * well past their clients' silence threshold.
     */
    std::size_t evictIdleSessions(std::uint64_t max_age);

    // Adaptive control plane hooks (src/control) -------------------

    /**
     * Retune one resident session's prediction delay (τ) online.
     * Returns false - without creating anything - when the session is
     * not resident. Safe against concurrent traffic (stripe lock);
     * the retune takes effect between frames, and frames of one
     * session stay deterministic for a given decision sequence
     * because the controller itself is epoch-driven.
     */
    bool retuneSession(std::uint64_t session_id,
                       std::uint64_t prediction_delay);

    /** Override the prediction delay for sessions created from here
     *  on (0 restores the configured default); resident sessions are
     *  untouched. */
    void setDefaultPredictionDelay(std::uint64_t delay)
    {
        table.setDefaultPredictionDelay(delay);
    }

    /**
     * Force overload shedding on (or back to automatic with false).
     * Only meaningful under OverloadPolicy::DropOldest: while forced,
     * a saturated shard sheds its oldest queued frame immediately
     * instead of waiting for the spike detector to judge the
     * saturation sustained. Under OverloadPolicy::Block the flag is
     * recorded but has no effect (the lock-free rings cannot shed) -
     * the adaptive controller's queue-pressure response.
     */
    void setForcedShedding(bool on)
    {
        forcedShed.store(on, std::memory_order_relaxed);
    }

    /** True while forced shedding is active. */
    bool forcedShedding() const
    {
        return forcedShed.load(std::memory_order_relaxed);
    }

    /**
     * Convenience producer: encode `count` events as one frame for
     * `session` and submit it.
     */
    bool submitEvents(std::uint64_t session, std::uint64_t sequence,
                      const PathEvent *events, std::size_t count);

    /**
     * Ingest a buffer of consecutive frames. Frames that parse are
     * routed individually; a region that does not parse is
     * quarantined and ingestion resyncs at the next CRC-valid frame
     * boundary (wire::findNextFrame) instead of abandoning the rest
     * of the buffer. Returns the number of frames routed. (Frames
     * are copied out of the caller's transient buffer; producers
     * that control the buffer lifetime should use submitShared.)
     */
    std::uint64_t submitBuffer(const std::uint8_t *data,
                               std::size_t size);

    /** Block until every queued (and delayed) frame has been fully
     *  processed. */
    void drain();

    /** Drain, then stop and join the workers (idempotent). */
    void shutdown();

    /** True when running in serial fallback mode (no workers). */
    bool serial() const { return workers.empty() && cfg.workerThreads == 0; }

    /** Aggregate accounting (takes the stripe locks briefly). */
    EngineStats stats() const;

    /** Read-only access to a resident session (false if absent). */
    bool
    withSessionStats(
        std::uint64_t session_id,
        const std::function<void(const Session &)> &fn) const
    {
        return table.peekSession(session_id, fn);
    }

    /**
     * Snapshot a resident session's predictor state into `out`
     * (Session::exportState). Returns false - leaving `out` as a
     * fresh/empty snapshot - when the session is not resident. Safe
     * against concurrent traffic (stripe lock), but the snapshot is
     * only stream-consistent if the caller has stopped feeding the
     * session; the router's migration protocol guarantees that by
     * parking the session's frames first.
     */
    bool exportSession(std::uint64_t session_id,
                       wire::SessionState &out) const;

    /**
     * Install a session rebuilt from an exported snapshot (replacing
     * any resident session of the same id). Feeding the original
     * event suffix afterwards continues the exporter's prediction
     * stream bit-identically. The allocation-failure hook is not
     * consulted (migration must not be starved by injected faults).
     */
    void importSession(std::uint64_t session_id,
                       const wire::SessionState &state);

    /** Ordered predicted paths of one session (empty if absent; only
     *  populated when the session config records predictions). */
    std::vector<PathIndex> predictionsFor(std::uint64_t session_id) const;

    /** The underlying session table (read-only). */
    const ShardedSessionTable &sessions() const { return table; }

    /** The fault injector, or nullptr when no fault is armed. */
    const fault::FaultInjector *faultInjector() const
    {
        return injector.get();
    }

  private:
    /**
     * One routed frame's bytes: either an owned buffer (submit /
     * trySubmit moved the caller's vector in) or a refcounted
     * [off, off+len) slice of a shared buffer (submitShared). Owned
     * by value so it can ride through the lock-free ring.
     */
    struct FrameBuf
    {
        std::vector<std::uint8_t> owned;
        std::shared_ptr<const std::vector<std::uint8_t>> shared;
        std::uint32_t off = 0;
        std::uint32_t len = 0;

        FrameBuf() = default;
        explicit FrameBuf(std::vector<std::uint8_t> bytes)
            : owned(std::move(bytes))
        {
        }
        FrameBuf(
            std::shared_ptr<const std::vector<std::uint8_t>> buffer,
            std::size_t offset, std::size_t length)
            : shared(std::move(buffer)),
              off(static_cast<std::uint32_t>(offset)),
              len(static_cast<std::uint32_t>(length))
        {
        }

        const std::uint8_t *
        data() const
        {
            return shared ? shared->data() + off : owned.data();
        }
        std::size_t
        size() const
        {
            return shared ? len : owned.size();
        }
    };

    /** One queued frame plus its caller routing tag. */
    struct QueuedFrame
    {
        FrameBuf buf;
        std::uint64_t tag = 0;
        /** Enqueue timestamp of a span-sampled frame (0 =
         *  unsampled). */
        std::uint64_t spanNs = 0;
    };

    /**
     * One shard's handoff queue. Exactly one backend is active per
     * engine: the lock-free ring under OverloadPolicy::Block (the
     * scaling path), the mutex+deque under DropOldest (producers
     * must be able to shed the oldest frame, and the spike detector
     * runs per submit under the lock). `spaceAvailable` pairs with
     * `mu` in deque mode and with `spaceMu` in ring mode (the modes
     * never coexist).
     */
    struct ShardQueue
    {
        // Ring backend (OverloadPolicy::Block).
        std::unique_ptr<support::MpscRing<QueuedFrame>> ring;
        std::mutex spaceMu;
        /** Producers currently parked on a full ring; consumers only
         *  touch spaceMu when this is nonzero. */
        std::atomic<std::uint32_t> spaceWaiters{0};

        // Deque backend (OverloadPolicy::DropOldest).
        std::mutex mu;
        std::deque<QueuedFrame> frames;
        // Overload spike detector (consulted under mu).
        std::unique_ptr<DegradationPolicy> degradation;

        // Shared accounting and ownership.
        std::condition_variable spaceAvailable;
        std::atomic<std::size_t> highWater{0};
        std::atomic<std::uint64_t> backpressureWaits{0};
        std::size_t worker = 0; // owning worker index
    };

    struct WorkerState
    {
        std::mutex mu;
        std::condition_variable workAvailable;
        bool wake = false;
        /** Set (with a seq_cst fence) before the worker re-checks
         *  its rings and parks; producers fence after pushing and
         *  only notify when they observe it - the Dekker handshake
         *  that makes batch-notify safe. */
        std::atomic<bool> sleeping{false};
        std::vector<std::size_t> shards; // owned shard indices
        // Liveness signals read by the watchdog.
        std::atomic<std::uint64_t> heartbeat{0};
        std::atomic<bool> stalled{false};
        std::atomic<bool> stallRelease{false};
        // Utilization accounting (relaxed; read by stats()). Busy
        // covers batch processing, idle covers the parked wait.
        std::atomic<std::uint64_t> busyNs{0};
        std::atomic<std::uint64_t> idleNs{0};
    };

    struct DelayedFrame
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t tag = 0;
        std::uint64_t releaseAt = 0; // framesSubmitted watermark
    };

    void workerLoop(std::size_t worker_index);
    void watchdogLoop();

    /** Decode + apply one frame on the owning worker (or inline in
     *  serial mode); fires the completion callback when installed.
     *  The caller holds the frame's shard stripe lock in
     *  `shard_lock`; it is released around callback invocations.
     *  `span_ns` != 0 marks a span-sampled frame carrying its
     *  enqueue timestamp. `state_scratch` receives the encoded
     *  SessionState reply when the frame is an export request. */
    void processFrame(const std::uint8_t *data, std::size_t size,
                      std::uint64_t tag, wire::DecodedFrame &scratch,
                      std::vector<wire::PredictionRecord> &preds,
                      std::vector<std::uint8_t> &state_scratch,
                      std::uint64_t span_ns,
                      std::unique_lock<std::mutex> &shard_lock);

    /** Apply one decoded SessionState frame (import or export
     *  request) and fire its completion; shard lock held as in
     *  processFrame(). */
    void processSessionState(const wire::DecodedFrame &scratch,
                             std::uint64_t tag,
                             std::vector<std::uint8_t> &state_scratch,
                             std::unique_lock<std::mutex> &shard_lock);

    /** Post-injection routing shared by submit(), submitShared(),
     *  trySubmit(), submitBuffer() and delayed redelivery: header
     *  peek, reject, enqueue or inline. On Backpressure (nonblocking
     *  callers only) `frame` is left intact. `span_ns` as in
     *  processFrame(). */
    SubmitStatus routeFrame(FrameBuf &frame, std::uint64_t tag,
                            bool blocking, std::uint64_t span_ns = 0);

    /** Attribute a decode failure to its session's error budget;
     *  poisons/rebuilds when the budget is exhausted. Caller holds
     *  the frame's shard stripe lock. */
    void attributeDecodeError(const std::uint8_t *data,
                              std::size_t size);

    /** Fire the completion callback (applied=false, no predictions)
     *  for a frame the engine consumed without applying: decode
     *  failures, non-PathEvents kinds, overload-shed frames. The
     *  session/sequence are recovered from the frame header (zeros
     *  when even the header is unreadable). `shard_lock`, when
     *  non-null, is released around the callback. */
    void completeUnapplied(const std::uint8_t *data, std::size_t size,
                           std::uint64_t tag,
                           std::unique_lock<std::mutex> *shard_lock);

    /** Redeliver held delayed frames (all of them when `all`). */
    void flushDelayed(bool all);

    void countReject(wire::DecodeStatus status);
    void noteFrameDone(std::uint64_t count = 1);

    /** Record a shard queue's post-push occupancy (high-water CAS
     *  max, clamped to the configured capacity because ring size()
     *  can transiently overshoot; depth gauges). */
    void noteQueueDepth(ShardQueue &queue, std::size_t shard_index,
                        std::size_t depth);

    /** Wake a worker if (and only if) it is parked - the batch-notify
     *  half of the Dekker handshake; see WorkerState::sleeping. */
    void wakeWorker(WorkerState &worker);

    EngineConfig cfg;
    ShardedSessionTable table;
    std::unique_ptr<fault::FaultInjector> injector;

    std::vector<std::unique_ptr<ShardQueue>> queues;
    std::vector<std::unique_ptr<WorkerState>> workerStates;
    std::vector<std::thread> workers;
    std::thread watchdog;

    std::atomic<bool> stopping{false};
    /** Control-plane override: shed on saturation without waiting
     *  for the spike detector (DropOldest backend only). */
    std::atomic<bool> forcedShed{false};
    std::atomic<bool> warnedReject{false};
    std::atomic<bool> warnedStall{false};
    std::atomic<std::uint64_t> pendingFrames{0};
    /** Serial-mode decode scratch (serial submit is single-caller). */
    wire::DecodedFrame serialScratch;
    /** Serial-mode prediction-record scratch. */
    std::vector<wire::PredictionRecord> serialPredScratch;
    /** Serial-mode SessionState reply scratch. */
    std::vector<std::uint8_t> serialStateScratch;
    /** Per-frame completion callback; empty unless installed. */
    FrameCallback frameCallback;
    mutable std::mutex drainMu;
    std::condition_variable drainCv;
    std::mutex watchdogMu;
    std::condition_variable watchdogCv;
    std::mutex delayMu;
    std::deque<DelayedFrame> delayed;

    // Aggregates maintained with relaxed atomics (read by stats()).
    std::atomic<std::uint64_t> framesSubmitted{0};
    std::atomic<std::uint64_t> framesDecoded{0};
    std::atomic<std::uint64_t> eventsProcessed{0};
    std::atomic<std::uint64_t> predictionsMade{0};
    std::atomic<std::uint64_t> batchesPopped{0};
    std::atomic<std::uint64_t> rejectCounts[6]{};

    // Fault/recovery accounting (see FaultRecoveryStats).
    std::atomic<std::uint64_t> corruptFrames{0};
    std::atomic<std::uint64_t> delayedDelivered{0};
    std::atomic<std::uint64_t> sessionsPoisoned{0};
    std::atomic<std::uint64_t> sessionsReadmitted{0};
    std::atomic<std::uint64_t> backoffDropped{0};
    std::atomic<std::uint64_t> allocDropped{0};
    std::atomic<std::uint64_t> framesShed{0};
    std::atomic<std::uint64_t> framesAppliedCount{0};
    mutable std::atomic<std::uint64_t> sessionsExportedCount{0};
    std::atomic<std::uint64_t> sessionsImportedCount{0};
    std::atomic<std::uint64_t> workersStalledCount{0};
    std::atomic<std::uint64_t> workersUnstalledCount{0};
    std::atomic<std::uint64_t> stallDetections{0};

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmFramesDecoded = nullptr;
    telemetry::Counter *tmFramesRejected = nullptr;
    telemetry::Counter *tmEvents = nullptr;
    telemetry::Counter *tmPredictions = nullptr;
    telemetry::Counter *tmBackpressure = nullptr;
    telemetry::Counter *tmExported = nullptr;
    telemetry::Counter *tmImported = nullptr;
    telemetry::Gauge *tmQueueHighWater = nullptr;
    telemetry::Gauge *tmQueueDepth = nullptr;
    telemetry::Histogram *tmBatchSize = nullptr;
    std::vector<telemetry::Counter *> tmShardFrames;
    // Contention/utilization instruments (eagerly registered so every
    // shard and worker appears in reports even at zero).
    std::vector<telemetry::Gauge *> tmShardDepth;
    std::vector<telemetry::Counter *> tmShardBlocked;
    std::vector<telemetry::Counter *> tmWorkerBusy;
    std::vector<telemetry::Counter *> tmWorkerIdle;

    // Stage-span recorder: engine-owned when cfg.spanSampleEvery != 0,
    // else whatever setSpanRecorder() installed (the net server's).
    std::unique_ptr<telemetry::SpanRecorder> ownedSpans;
    telemetry::SpanRecorder *spans = nullptr;

    // Resilience telemetry; created only when a resilience feature
    // (fault plan, error budget, shedding, watchdog) is enabled so
    // default runs keep their RunReports unchanged.
    telemetry::Counter *tmInjected[fault::kSiteCount] = {};
    telemetry::Counter *tmCorruptFrames = nullptr;
    telemetry::Counter *tmQuarantined = nullptr;
    telemetry::Counter *tmDelayedDelivered = nullptr;
    telemetry::Counter *tmPoisoned = nullptr;
    telemetry::Counter *tmRebuilt = nullptr;
    telemetry::Counter *tmReadmitted = nullptr;
    telemetry::Counter *tmBackoffDropped = nullptr;
    telemetry::Counter *tmAllocFailures = nullptr;
    telemetry::Counter *tmShed = nullptr;
    telemetry::Counter *tmOverloadSpikes = nullptr;
    telemetry::Counter *tmWorkerStalled = nullptr;
    telemetry::Counter *tmWorkerUnstalled = nullptr;
};

} // namespace engine
} // namespace hotpath

#endif // HOTPATH_ENGINE_ENGINE_HH
