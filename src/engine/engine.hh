/**
 * @file
 * The streaming prediction engine: concurrent ingestion of wire-format
 * branch-event frames into per-session NET predictors.
 *
 * Data flow:
 *
 *   producers --submit(frame bytes)--> per-shard bounded MPSC queues
 *        --> worker threads: decode + CRC-check + Session::apply
 *
 * The ingest path only peeks the frame header (cheap varint reads) to
 * route the frame by session id; all decode and prediction work runs
 * on the worker that owns the target shard. Every shard is owned by
 * exactly one worker, and a shard's queue is FIFO, so frames of one
 * session are processed in submission order - which is what makes the
 * engine's per-session predictions deterministic and bit-identical to
 * a serial in-process replay, regardless of worker count or thread
 * scheduling. (Callers that split one session's frames across
 * producer threads forfeit the submission order, and with it the
 * guarantee.)
 *
 * Backpressure: a full shard queue blocks submit() until the owning
 * worker drains room (counted in engine.backpressure.waits). This
 * bounds memory under overload instead of dropping or buffering
 * without limit.
 *
 * With workerThreads == 0 the engine runs in serial fallback mode:
 * submit() decodes and applies the frame inline on the caller's
 * thread, with no queues and no locks beyond the session table's.
 */

#ifndef HOTPATH_ENGINE_ENGINE_HH
#define HOTPATH_ENGINE_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/session_table.hh"
#include "engine/wire_format.hh"

namespace hotpath
{

namespace telemetry
{
class Counter;
class Gauge;
class Histogram;
} // namespace telemetry

namespace engine
{

/** Engine parameters. */
struct EngineConfig
{
    /** Worker threads consuming the shard queues; 0 = serial mode
     *  (submit processes frames inline). */
    std::size_t workerThreads = 4;

    /** Per-shard queue bound in frames; producers block when full. */
    std::size_t queueCapacityFrames = 256;

    /** Frames a worker drains from one shard per batch. */
    std::size_t maxBatchFrames = 64;

    /** Session table (shard count, capacity cap, session config). */
    SessionTableConfig sessions;
};

/** Why a submitted frame was rejected. */
struct RejectBreakdown
{
    std::uint64_t truncated = 0;
    std::uint64_t badMagic = 0;
    std::uint64_t badKind = 0;
    std::uint64_t badLength = 0;
    std::uint64_t badCrc = 0;
    std::uint64_t badPayload = 0;

    std::uint64_t
    total() const
    {
        return truncated + badMagic + badKind + badLength + badCrc +
               badPayload;
    }
};

/** Consistent snapshot of the engine's accounting. */
struct EngineStats
{
    std::uint64_t framesSubmitted = 0;
    std::uint64_t framesDecoded = 0;
    std::uint64_t framesRejected = 0;
    RejectBreakdown rejects;

    std::uint64_t eventsProcessed = 0;
    std::uint64_t predictions = 0;
    std::uint64_t batches = 0;

    std::uint64_t sessionsCreated = 0;
    std::uint64_t sessionsEvicted = 0;
    std::size_t sessionsLive = 0;

    std::uint64_t backpressureWaits = 0;

    /** Per-shard queue high-water marks (frames). */
    std::vector<std::size_t> queueHighWater;
};

/** The serving engine; see file comment. */
class Engine
{
  public:
    explicit Engine(EngineConfig config);

    /** Drains and stops the workers. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Ingest one encoded frame. The header is peeked to route the
     * frame; a frame whose header does not parse is rejected here
     * (returns false). Blocks while the target shard's queue is full.
     * Payload errors (bad CRC, bad payload) surface asynchronously in
     * stats().framesRejected. Must not be called during or after
     * shutdown().
     */
    bool submit(std::vector<std::uint8_t> frame);

    /**
     * Convenience producer: encode `count` events as one frame for
     * `session` and submit it.
     */
    bool submitEvents(std::uint64_t session, std::uint64_t sequence,
                      const PathEvent *events, std::size_t count);

    /** Block until every queued frame has been fully processed. */
    void drain();

    /** Drain, then stop and join the workers (idempotent). */
    void shutdown();

    bool serial() const { return workers.empty() && cfg.workerThreads == 0; }

    /** Aggregate accounting (takes the stripe locks briefly). */
    EngineStats stats() const;

    /** Read-only access to a resident session (false if absent). */
    bool
    withSessionStats(
        std::uint64_t session_id,
        const std::function<void(const Session &)> &fn) const
    {
        return table.peekSession(session_id, fn);
    }

    /** Ordered predicted paths of one session (empty if absent; only
     *  populated when the session config records predictions). */
    std::vector<PathIndex> predictionsFor(std::uint64_t session_id) const;

    const ShardedSessionTable &sessions() const { return table; }

  private:
    struct ShardQueue
    {
        std::mutex mu;
        std::condition_variable spaceAvailable;
        std::deque<std::vector<std::uint8_t>> frames;
        std::size_t highWater = 0;
        std::uint64_t backpressureWaits = 0;
        std::size_t worker = 0; // owning worker index
    };

    struct WorkerState
    {
        std::mutex mu;
        std::condition_variable workAvailable;
        bool wake = false;
        std::vector<std::size_t> shards; // owned shard indices
    };

    void workerLoop(std::size_t worker_index);

    /** Decode + apply one frame on the owning worker (or inline in
     *  serial mode). */
    void processFrame(const std::vector<std::uint8_t> &frame,
                      wire::DecodedFrame &scratch);

    void countReject(wire::DecodeStatus status);
    void noteFrameDone(std::uint64_t count = 1);

    EngineConfig cfg;
    ShardedSessionTable table;

    std::vector<std::unique_ptr<ShardQueue>> queues;
    std::vector<std::unique_ptr<WorkerState>> workerStates;
    std::vector<std::thread> workers;

    std::atomic<bool> stopping{false};
    std::atomic<bool> warnedReject{false};
    std::atomic<std::uint64_t> pendingFrames{0};
    /** Serial-mode decode scratch (serial submit is single-caller). */
    wire::DecodedFrame serialScratch;
    mutable std::mutex drainMu;
    std::condition_variable drainCv;

    // Aggregates maintained with relaxed atomics (read by stats()).
    std::atomic<std::uint64_t> framesSubmitted{0};
    std::atomic<std::uint64_t> framesDecoded{0};
    std::atomic<std::uint64_t> eventsProcessed{0};
    std::atomic<std::uint64_t> predictionsMade{0};
    std::atomic<std::uint64_t> batchesPopped{0};
    std::atomic<std::uint64_t> rejectCounts[6]{};

    // Telemetry handles; nullptr when telemetry is not attached.
    telemetry::Counter *tmFramesDecoded = nullptr;
    telemetry::Counter *tmFramesRejected = nullptr;
    telemetry::Counter *tmEvents = nullptr;
    telemetry::Counter *tmPredictions = nullptr;
    telemetry::Counter *tmBackpressure = nullptr;
    telemetry::Gauge *tmQueueHighWater = nullptr;
    telemetry::Gauge *tmQueueDepth = nullptr;
    telemetry::Histogram *tmBatchSize = nullptr;
    std::vector<telemetry::Counter *> tmShardFrames;
};

} // namespace engine
} // namespace hotpath

#endif // HOTPATH_ENGINE_ENGINE_HH
