/**
 * @file
 * Tests for phased workloads: rotation mapping, per-phase hot sets,
 * stream layout, and the phase-change signal they create.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "metrics/oracle.hh"
#include "workload/phased.hh"

using namespace hotpath;

namespace
{

WorkloadConfig
smallConfig()
{
    WorkloadConfig config;
    config.flowScale = 1e-4;
    return config;
}

} // namespace

TEST(PhasedWorkloadTest, PhasesUseDisjointIdRanges)
{
    PhasedWorkload phased(specTarget("deltablue"), smallConfig(), 3);
    const std::size_t n = phased.base().numPaths();
    EXPECT_EQ(phased.numPaths(), 3 * n);
    EXPECT_EQ(phased.numHeads(), 3 * phased.base().numHeads());

    // Each phase's image is a bijection onto its own id range.
    std::unordered_set<PathIndex> image;
    for (PathIndex p = 0; p < n; ++p) {
        const PathIndex mapped = phased.mapPath(p, 1);
        EXPECT_EQ(phased.phaseOfPath(mapped), 1u);
        EXPECT_EQ(phased.basePath(mapped), p);
        image.insert(mapped);
    }
    EXPECT_EQ(image.size(), n);

    // Phase 0 is the identity.
    for (PathIndex p = 0; p < 20; ++p)
        EXPECT_EQ(phased.mapPath(p, 0), p);
}

TEST(PhasedWorkloadTest, HotSetsChangeCompletelyAcrossPhases)
{
    PhasedWorkload phased(specTarget("deltablue"), smallConfig(), 3);

    const auto hot0 = phased.hotPathsOfPhase(0);
    const auto hot1 = phased.hotPathsOfPhase(1);
    std::unordered_set<PathIndex> set0(hot0.begin(), hot0.end());
    for (PathIndex p : hot1)
        EXPECT_FALSE(set0.count(p)) << "hot sets overlap";
}

TEST(PhasedWorkloadTest, PhaseAtMapsTimeToPhase)
{
    PhasedWorkload phased(specTarget("deltablue"), smallConfig(), 4);
    const std::uint64_t len = phased.phaseLength();
    EXPECT_EQ(phased.phaseAt(0), 0u);
    EXPECT_EQ(phased.phaseAt(len - 1), 0u);
    EXPECT_EQ(phased.phaseAt(len), 1u);
    EXPECT_EQ(phased.phaseAt(4 * len + 5), 3u); // clamped
    EXPECT_EQ(phased.totalFlow(), 4 * len);
}

TEST(PhasedWorkloadTest, StreamRealizesPerPhaseHotSets)
{
    PhasedWorkload phased(specTarget("deltablue"), smallConfig(), 2);
    const std::vector<PathEvent> stream = phased.materializeStream();
    ASSERT_EQ(stream.size(), phased.totalFlow());

    // Oracle per phase: the rotated hot tier must dominate its phase.
    for (std::size_t k = 0; k < 2; ++k) {
        OracleProfile oracle;
        const std::uint64_t begin = k * phased.phaseLength();
        const std::uint64_t end = begin + phased.phaseLength();
        for (std::uint64_t t = begin; t < end; ++t)
            oracle.onPathEvent(stream[t], t);

        std::uint64_t hot_flow = 0;
        for (PathIndex p : phased.hotPathsOfPhase(k))
            hot_flow += oracle.frequency(p);
        const double share = 100.0 * static_cast<double>(hot_flow) /
                             static_cast<double>(oracle.totalFlow());
        EXPECT_NEAR(share, specTarget("deltablue").hotFlowPercent,
                    0.5)
            << "phase " << k;
    }
}

TEST(PhasedWorkloadTest, EventsCarryTheRelocatedPathsMetadata)
{
    PhasedWorkload phased(specTarget("deltablue"), smallConfig(), 2);
    const std::vector<PathEvent> stream = phased.materializeStream();
    const CalibratedWorkload &base = phased.base();
    // Sample the second phase: ids live in the phase's ranges, and
    // head/shape agree with eventFor (and with the base path behind
    // the relocated id).
    for (std::uint64_t t = phased.phaseLength();
         t < phased.phaseLength() + 1000; ++t) {
        const PathEvent &event = stream[t];
        EXPECT_EQ(phased.phaseOfPath(event.path), 1u);
        EXPECT_GE(event.head, base.numHeads());
        const PathEvent expected = phased.eventFor(event.path);
        EXPECT_EQ(event.head, expected.head);
        EXPECT_EQ(event.blocks,
                  base.blocksOf(phased.basePath(event.path)));
    }
}

TEST(PhasedWorkloadTest, StalePathsNeverExecuteAgain)
{
    PhasedWorkload phased(specTarget("deltablue"), smallConfig(), 3);
    const std::vector<PathEvent> stream = phased.materializeStream();
    for (std::uint64_t t = 0; t < stream.size(); ++t) {
        EXPECT_EQ(phased.phaseOfPath(stream[t].path),
                  phased.phaseAt(t));
    }
}

TEST(PhasedWorkloadDeathTest, RejectsZeroPhases)
{
    EXPECT_DEATH(PhasedWorkload(specTarget("deltablue"),
                                smallConfig(), 0),
                 "at least one phase");
}
