/**
 * @file
 * Tests for the metrics layer: oracle profiles, HotPath sets, the
 * Section 3 hit/noise/MOC accounting (checked against hand-computed
 * streams and against the paper's closed formulas for path-profile
 * prediction), and the delay sweep machinery.
 */

#include <gtest/gtest.h>

#include "metrics/evaluation.hh"
#include "metrics/sweep.hh"
#include "predict/net_predictor.hh"
#include "predict/path_profile_predictor.hh"

using namespace hotpath;

namespace
{

PathEvent
event(PathIndex path, HeadIndex head = 0)
{
    PathEvent e;
    e.path = path;
    e.head = head;
    e.blocks = 4;
    e.branches = 3;
    e.instructions = 20;
    return e;
}

/** Stream with freq(p) = counts[p], round-robin interleaved. */
std::vector<PathEvent>
roundRobin(const std::vector<std::uint64_t> &counts)
{
    std::vector<PathEvent> stream;
    std::vector<std::uint64_t> left = counts;
    bool any = true;
    while (any) {
        any = false;
        for (PathIndex p = 0; p < counts.size(); ++p) {
            if (left[p] > 0) {
                --left[p];
                stream.push_back(event(p, p));
                any = true;
            }
        }
    }
    return stream;
}

} // namespace

TEST(OracleTest, CountsFrequencies)
{
    OracleProfile oracle;
    const std::vector<PathEvent> stream = roundRobin({5, 3, 1});
    for (std::uint64_t t = 0; t < stream.size(); ++t)
        oracle.onPathEvent(stream[t], t);

    EXPECT_EQ(oracle.totalFlow(), 9u);
    EXPECT_EQ(oracle.numPaths(), 3u);
    EXPECT_EQ(oracle.frequency(0), 5u);
    EXPECT_EQ(oracle.frequency(1), 3u);
    EXPECT_EQ(oracle.frequency(2), 1u);
    EXPECT_EQ(oracle.frequency(99), 0u);
}

TEST(OracleTest, HotSetIsStrictlyAboveThreshold)
{
    OracleProfile oracle;
    // 100 events total; h = 10% -> threshold 10 executions.
    const std::vector<PathEvent> stream = roundRobin({80, 10, 10});
    for (std::uint64_t t = 0; t < stream.size(); ++t)
        oracle.onPathEvent(stream[t], t);

    const std::vector<bool> hot = oracle.hotSet(0.10);
    EXPECT_TRUE(hot[0]);   // 80 > 10
    EXPECT_FALSE(hot[1]);  // 10 is not > 10
    EXPECT_FALSE(hot[2]);

    const HotSetStats stats = oracle.hotStats(0.10);
    EXPECT_EQ(stats.hotPaths, 1u);
    EXPECT_EQ(stats.hotFlow, 80u);
    EXPECT_DOUBLE_EQ(stats.hotFlowPercent(), 80.0);
}

TEST(EvaluationTest, PathProfileMatchesPaperFormulas)
{
    // Paper: Hits(P) = freq(P ^ Hot) - |P ^ Hot| * tau, with tau
    // profiled executions per predicted path.
    const std::vector<std::uint64_t> freqs = {1000, 500, 40, 2};
    const std::vector<PathEvent> stream = roundRobin(freqs);

    const std::uint64_t tau = 10;
    PathProfilePredictor predictor(tau);
    const EvalResult result =
        evaluatePredictor(stream, predictor, /*hot_fraction=*/0.05);

    // total = 1542, h = 77.1: hot = {0, 1}; paths 0,1,2 all reach 10
    // executions and are predicted; path 3 (freq 2) never is.
    EXPECT_EQ(result.totalFlow, 1542u);
    EXPECT_EQ(result.hotPaths, 2u);
    EXPECT_EQ(result.hotFlow, 1500u);
    EXPECT_EQ(result.predictedPaths, 3u);
    EXPECT_EQ(result.predictedHotPaths, 2u);
    EXPECT_EQ(result.predictedColdPaths, 1u);

    EXPECT_EQ(result.hits, (1000 - tau) + (500 - tau));
    EXPECT_EQ(result.noise, 40 - tau);
    EXPECT_EQ(result.missedOpportunity, 2 * tau);
    // Profiled flow: tau per predicted path + all of path 3.
    EXPECT_EQ(result.profiledFlow, 3 * tau + 2);

    EXPECT_NEAR(result.hitRatePercent(), 100.0 * 1480.0 / 1500.0,
                1e-9);
    EXPECT_NEAR(result.noiseRatePercent(), 100.0 * 30.0 / 1500.0,
                1e-9);
    EXPECT_NEAR(result.profiledFlowPercent(), 100.0 * 32.0 / 1542.0,
                1e-9);
}

TEST(EvaluationTest, ClosedFormMatchesMeasurementForPathProfile)
{
    // For path profile based prediction every predicted path is
    // profiled exactly tau times, so the paper's formula must equal
    // the event-measured hits at any delay.
    const std::vector<std::uint64_t> freqs = {5000, 900, 300, 80, 12};
    const std::vector<PathEvent> stream = roundRobin(freqs);
    for (const std::uint64_t tau : {5ull, 50ull, 500ull}) {
        PathProfilePredictor predictor(tau);
        const EvalResult result =
            evaluatePredictor(stream, predictor, 0.01);
        EXPECT_EQ(result.paperFormulaHits(tau), result.hits)
            << "tau " << tau;
    }
}

TEST(EvaluationTest, ZeroDelayViaDelayOneCapturesAlmostEverything)
{
    const std::vector<PathEvent> stream = roundRobin({100, 100});
    PathProfilePredictor predictor(1);
    const EvalResult result =
        evaluatePredictor(stream, predictor, 0.01);
    // Each path profiled exactly once (the triggering execution).
    EXPECT_EQ(result.profiledFlow, 2u);
    EXPECT_EQ(result.hits, 198u);
    EXPECT_EQ(result.noise, 0u);
}

TEST(EvaluationTest, NeverPredictingMeansEverythingProfiled)
{
    const std::vector<PathEvent> stream = roundRobin({50, 50});
    PathProfilePredictor predictor(1000);
    const EvalResult result =
        evaluatePredictor(stream, predictor, 0.01);
    EXPECT_EQ(result.predictedPaths, 0u);
    EXPECT_EQ(result.hits, 0u);
    EXPECT_EQ(result.noise, 0u);
    EXPECT_EQ(result.profiledFlow, result.totalFlow);
    EXPECT_DOUBLE_EQ(result.profiledFlowPercent(), 100.0);
}

TEST(EvaluationTest, PredictedPathsBypassThePredictor)
{
    // After path 0 is predicted, its executions must not feed the
    // predictor: with NET they must not advance the head counter.
    std::vector<PathEvent> stream;
    // Two paths at one head; path 0 executes twice (predicted at the
    // second), then 100 more times, then path 1 executes twice.
    stream.push_back(event(0, 0));
    stream.push_back(event(0, 0));
    for (int i = 0; i < 100; ++i)
        stream.push_back(event(0, 0));
    stream.push_back(event(1, 0));
    stream.push_back(event(1, 0));

    NetPredictor predictor(2);
    const EvalResult result = evaluatePredictor(stream, predictor, 0.0);
    // Head counter: 2 arrivals -> predict path 0. The 100 cached
    // executions don't count; path 1 needs 2 fresh arrivals and is
    // predicted exactly at the stream end.
    EXPECT_EQ(result.predictedPaths, 2u);
    EXPECT_EQ(predictor.cost().counterUpdates, 4u);
}

TEST(EvaluationTest, FlowConservation)
{
    const std::vector<std::uint64_t> freqs = {300, 200, 100, 30, 7};
    const std::vector<PathEvent> stream = roundRobin(freqs);
    NetPredictor predictor(5);
    const EvalResult result =
        evaluatePredictor(stream, predictor, 0.02);
    EXPECT_EQ(result.profiledFlow + result.hits + result.noise,
              result.totalFlow);
}

TEST(EvaluationTest, NetAndPathProfileAgreeOnSingleDominantPath)
{
    // One path per head: NET and path-profile prediction should make
    // identical predictions at the same delay.
    const std::vector<PathEvent> stream = roundRobin({500, 60, 8});
    PathProfilePredictor pp(10);
    NetPredictor net(10);
    const EvalResult a = evaluatePredictor(stream, pp, 0.05);
    const EvalResult b = evaluatePredictor(stream, net, 0.05);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.noise, b.noise);
    EXPECT_EQ(a.predictedPaths, b.predictedPaths);
    // ... but NET allocates one counter per head while path-profile
    // prediction allocates one per path (equal here by construction).
    EXPECT_EQ(a.countersAllocated, 3u);
    EXPECT_EQ(b.countersAllocated, 3u);
}

TEST(SweepTest, DefaultScheduleIsThePaperLadder)
{
    const std::vector<std::uint64_t> delays =
        defaultDelaySchedule(1000000);
    EXPECT_EQ(delays.front(), 10u);
    EXPECT_EQ(delays.back(), 1000000u);
    // 10,20,50,100,...,1000000: 16 points.
    EXPECT_EQ(delays.size(), 16u);
    for (std::size_t i = 1; i < delays.size(); ++i)
        EXPECT_GT(delays[i], delays[i - 1]);
}

TEST(SweepTest, ScheduleClampsToMaxDelay)
{
    const std::vector<std::uint64_t> delays = defaultDelaySchedule(300);
    EXPECT_EQ(delays.back(), 300u);
    for (std::uint64_t d : delays)
        EXPECT_LE(d, 300u);
}

TEST(SweepTest, ProfiledFlowGrowsWithDelay)
{
    const std::vector<std::uint64_t> freqs = {2000, 1000, 500, 100,
                                              50, 20, 20, 10};
    const std::vector<PathEvent> stream = roundRobin(freqs);
    OracleProfile oracle;
    for (std::uint64_t t = 0; t < stream.size(); ++t)
        oracle.onPathEvent(stream[t], t);

    const auto points = delaySweep(
        stream, oracle,
        [](std::uint64_t delay) {
            return std::make_unique<PathProfilePredictor>(delay);
        },
        {10, 50, 200, 1000}, 0.02);

    ASSERT_EQ(points.size(), 4u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].result.profiledFlowPercent(),
                  points[i - 1].result.profiledFlowPercent());
        EXPECT_LE(points[i].result.hitRatePercent(),
                  points[i - 1].result.hitRatePercent());
    }
}

TEST(SweepTest, InterpolationIsMonotoneAndClamped)
{
    const std::vector<std::uint64_t> freqs = {2000, 1000, 500, 100,
                                              50, 20, 20, 10};
    const std::vector<PathEvent> stream = roundRobin(freqs);
    OracleProfile oracle;
    for (std::uint64_t t = 0; t < stream.size(); ++t)
        oracle.onPathEvent(stream[t], t);

    const auto points = delaySweep(
        stream, oracle,
        [](std::uint64_t delay) {
            return std::make_unique<PathProfilePredictor>(delay);
        },
        {10, 50, 200, 1000}, 0.02);

    const double at_lo = hitRateAtProfiledFlow(points, 0.0);
    const double at_mid = hitRateAtProfiledFlow(points, 20.0);
    const double at_hi = hitRateAtProfiledFlow(points, 100.0);
    EXPECT_GE(at_lo, at_mid);
    EXPECT_GE(at_mid, at_hi);

    // Noise interpolation stays within [0, max noise].
    const double noise_mid = noiseRateAtProfiledFlow(points, 10.0);
    EXPECT_GE(noise_mid, 0.0);
}
