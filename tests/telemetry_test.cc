/**
 * @file
 * Unit tests for the telemetry subsystem: registry registration and
 * snapshots, log-scale histogram bucketing edge cases, JSONL trace
 * sink round-trips, the zero-overhead unattached path, log capture,
 * stage-span sampling determinism and lifecycle, the shared
 * percentile helpers, and the end-to-end acceptance check - a
 * Figure-5 style Dynamo run whose machine-readable report parses as
 * JSON and carries non-zero fragment-cache, predictor and histogram
 * data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamo/system.hh"
#include "predict/net_predictor.hh"
#include "support/logging.hh"
#include "telemetry/percentiles.hh"
#include "telemetry/run_report.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "workload/synthesis.hh"

using namespace hotpath;
using namespace hotpath::telemetry;

namespace
{

// Minimal recursive-descent JSON parser: enough to verify that the
// library's emitted reports and trace lines are well-formed and to
// extract values. Throws std::runtime_error on malformed input.

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &key) const
    {
        const auto it = members.find(key);
        if (it == members.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return members.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : src(text) {}

    JsonValue
    parse()
    {
        const JsonValue value = parseValue();
        skipSpace();
        if (pos != src.size())
            throw std::runtime_error("trailing JSON content");
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= src.size())
            throw std::runtime_error("unexpected end of JSON");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at " + std::to_string(pos));
        ++pos;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return value;
        }
        for (;;) {
            const JsonValue key = parseString();
            expect(':');
            value.members.emplace(key.text, parseValue());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return value;
        }
        for (;;) {
            value.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        expect('"');
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c == '\\') {
                if (pos >= src.size())
                    throw std::runtime_error("bad escape");
                const char esc = src[pos++];
                switch (esc) {
                  case 'n':
                    c = '\n';
                    break;
                  case 'r':
                    c = '\r';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > src.size())
                        throw std::runtime_error("bad \\u escape");
                    const unsigned code = static_cast<unsigned>(
                        std::stoul(src.substr(pos, 4), nullptr, 16));
                    pos += 4;
                    c = static_cast<char>(code);
                    break;
                  }
                  default:
                    c = esc;
                }
            }
            value.text.push_back(c);
        }
        expect('"');
        return value;
    }

    JsonValue
    parseBool()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Bool;
        if (src.compare(pos, 4, "true") == 0) {
            value.boolean = true;
            pos += 4;
        } else if (src.compare(pos, 5, "false") == 0) {
            pos += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return value;
    }

    JsonValue
    parseNull()
    {
        if (src.compare(pos, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos += 4;
        JsonValue value;
        return value;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '-' || src[pos] == '+' ||
                src[pos] == '.' || src[pos] == 'e' ||
                src[pos] == 'E'))
            ++pos;
        if (pos == start)
            throw std::runtime_error("bad number");
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        value.number = std::stod(src.substr(start, pos - start));
        return value;
    }

    const std::string &src;
    std::size_t pos = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace

// MetricRegistry -----------------------------------------------------

TEST(MetricRegistryTest, FindOrCreateReturnsSameInstrument)
{
    MetricRegistry registry;
    Counter &a = registry.counter("x.hits");
    Counter &b = registry.counter("x.hits");
    EXPECT_EQ(&a, &b);
    a.add(3);
    b.add(4);
    EXPECT_EQ(a.get(), 7u);

    Gauge &g = registry.gauge("x.level");
    EXPECT_EQ(&g, &registry.gauge("x.level"));
    Histogram &h = registry.histogram("x.sizes");
    EXPECT_EQ(&h, &registry.histogram("x.sizes"));
    EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndComplete)
{
    MetricRegistry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("c.level").set(-5);
    registry.histogram("d.sizes").record(10);

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "a.first");
    EXPECT_EQ(snap.counters[0].value, 1u);
    EXPECT_EQ(snap.counters[1].name, "b.second");
    EXPECT_EQ(snap.counters[1].value, 2u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, -5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].hist.count, 1u);
}

TEST(MetricRegistryTest, CountersAreThreadSafe)
{
    MetricRegistry registry;
    Counter &counter = registry.counter("x.parallel");
    constexpr int kThreads = 4;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kAdds; ++i)
                counter.add(1);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.get(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(GaugeTest, RecordMaxIsMonotonic)
{
    MetricRegistry registry;
    Gauge &gauge = registry.gauge("x.hwm");
    gauge.recordMax(10);
    gauge.recordMax(5);
    EXPECT_EQ(gauge.get(), 10);
    gauge.recordMax(20);
    EXPECT_EQ(gauge.get(), 20);
}

// Histogram bucketing ------------------------------------------------

TEST(HistogramTest, BucketEdges)
{
    // Zero gets its own bucket; bucket b holds [2^(b-1), 2^b - 1].
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf((1ull << 20) - 1), 20u);
    EXPECT_EQ(Histogram::bucketOf(1ull << 20), 21u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64u);

    EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(Histogram::bucketLowerBound(2), 2u);
    EXPECT_EQ(Histogram::bucketLowerBound(64), 1ull << 63);
}

TEST(HistogramTest, RecordZeroMaxAndOverflow)
{
    MetricRegistry registry;
    Histogram &hist = registry.histogram("x.sizes");
    const std::uint64_t max = ~std::uint64_t{0};

    hist.record(0);
    hist.record(1);
    hist.record(max);
    hist.record(max); // sum wraps mod 2^64: still well-defined

    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 4u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, max);
    EXPECT_EQ(snap.buckets[0], 1u);
    EXPECT_EQ(snap.buckets[1], 1u);
    EXPECT_EQ(snap.buckets[64], 2u);
    // 0 + 1 + max + max == max (unsigned wraparound).
    EXPECT_EQ(snap.sum, max);
}

TEST(HistogramTest, EmptySnapshotHasZeroMin)
{
    MetricRegistry registry;
    const HistogramSnapshot snap =
        registry.histogram("x.empty").snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 0u);
}

// JSONL trace sink ---------------------------------------------------

TEST(JsonlTraceSinkTest, RecordsRoundTripThroughJson)
{
    std::ostringstream out;
    TelemetrySession session(out);

    emit(TraceEventKind::FragmentInsert, "dynamo",
         {{"path", 7}, {"instructions", 40}});
    emit(TraceEventKind::Log, "log.warn", {},
         "quoted \"text\"\nwith\tescapes\\");

    session.traceSink()->flush();
    std::istringstream in(out.str());
    std::string line;

    ASSERT_TRUE(std::getline(in, line));
    const JsonValue first = parseJson(line);
    EXPECT_EQ(first.at("event").text, "fragment_insert");
    EXPECT_EQ(first.at("component").text, "dynamo");
    EXPECT_EQ(first.at("path").number, 7);
    EXPECT_EQ(first.at("instructions").number, 40);
    EXPECT_GE(first.at("t_ns").number, 0);

    ASSERT_TRUE(std::getline(in, line));
    const JsonValue second = parseJson(line);
    EXPECT_EQ(second.at("event").text, "log");
    EXPECT_EQ(second.at("detail").text,
              "quoted \"text\"\nwith\tescapes\\");

    EXPECT_FALSE(std::getline(in, line));
    EXPECT_EQ(session.traceSink()->recordsWritten(), 2u);
}

TEST(JsonlTraceSinkTest, TimestampsAreMonotonic)
{
    std::ostringstream out;
    TelemetrySession session(out);
    for (int i = 0; i < 5; ++i)
        emit(TraceEventKind::Prediction, "predict.net",
             {{"head", static_cast<std::uint64_t>(i)}});
    session.traceSink()->flush();

    std::istringstream in(out.str());
    std::string line;
    double last = -1;
    int lines = 0;
    while (std::getline(in, line)) {
        const double t = parseJson(line).at("t_ns").number;
        EXPECT_GE(t, last);
        last = t;
        ++lines;
    }
    EXPECT_EQ(lines, 5);
}

TEST(LogCaptureTest, WarnAndInformBecomeTraceRecords)
{
    std::ostringstream out;
    {
        TelemetrySession session(out);
        warn("captured warning");
        inform("captured info");
    }
    // Session destruction restored the default sink.
    std::istringstream in(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const JsonValue first = parseJson(line);
    EXPECT_EQ(first.at("event").text, "log");
    EXPECT_EQ(first.at("component").text, "log.warn");
    EXPECT_EQ(first.at("detail").text, "captured warning");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(parseJson(line).at("component").text, "log.inform");
}

// Unattached (zero-overhead) path ------------------------------------

TEST(UnattachedTest, AccessorsReturnNullAndEmitIsNoOp)
{
    ASSERT_EQ(attachedRegistry(), nullptr);
    ASSERT_EQ(attachedTraceSink(), nullptr);
    EXPECT_EQ(counter("x.c"), nullptr);
    EXPECT_EQ(gauge("x.g"), nullptr);
    EXPECT_EQ(histogram("x.h"), nullptr);
    emit(TraceEventKind::Prediction, "predict.net", {{"head", 1}});
}

TEST(UnattachedTest, InstrumentedComponentsRunWithoutTelemetry)
{
    ASSERT_EQ(attachedRegistry(), nullptr);
    NetPredictor predictor(3);
    PathEvent event;
    event.path = 0;
    event.head = 0;
    event.blocks = 4;
    event.branches = 3;
    event.instructions = 40;
    int predictions = 0;
    for (int i = 0; i < 9; ++i)
        predictions += predictor.observe(event) ? 1 : 0;
    EXPECT_EQ(predictions, 3);
}

TEST(UnattachedTest, SessionAttachesAndRestores)
{
    ASSERT_EQ(attachedRegistry(), nullptr);
    {
        TelemetrySession session;
        EXPECT_EQ(attachedRegistry(), &session.registry());
        {
            TelemetrySession inner;
            EXPECT_EQ(attachedRegistry(), &inner.registry());
        }
        EXPECT_EQ(attachedRegistry(), &session.registry());
    }
    EXPECT_EQ(attachedRegistry(), nullptr);
}

TEST(NullTraceSinkTest, DiscardsRecords)
{
    NullTraceSink sink;
    attachTraceSink(&sink);
    emit(TraceEventKind::CacheFlush, "dynamo", {{"fragments", 3}});
    attachTraceSink(nullptr);
    SUCCEED();
}

// Run report ---------------------------------------------------------

TEST(RunReportTest, ComponentGrouping)
{
    EXPECT_EQ(RunReport::componentOf("dynamo.cache.hits"), "dynamo");
    EXPECT_EQ(RunReport::componentOf("sim.blocks"), "sim");
    EXPECT_EQ(RunReport::componentOf("plain"), "global");
    EXPECT_EQ(RunReport::componentOf(".odd"), "global");
}

TEST(RunReportTest, CsvHasHeaderAndRows)
{
    MetricRegistry registry;
    registry.counter("a.hits").add(5);
    registry.gauge("a.level").set(7);
    registry.histogram("a.sizes").record(16);

    std::ostringstream out;
    RunReport::capture(registry, "csv_test").writeCsv(out);
    std::istringstream in(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "name,kind,value,count,sum,min,max");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "a.hits,counter,5,,,,");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "a.level,gauge,7,,,,");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "a.sizes,histogram,,1,16,16,16");
}

// --- stage spans (telemetry/span.hh) ------------------------------

TEST(SpanRecorderTest, DisabledRecorderSamplesNothing)
{
    SpanRecorder spans(SpanConfig{});
    EXPECT_FALSE(spans.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(spans.sampleFrame());
    // The disabled path counts nothing: no frames seen, no samples.
    EXPECT_EQ(spans.framesSeen(), 0u);
    EXPECT_EQ(spans.sampledFrames(), 0u);
}

TEST(SpanRecorderTest, SamplingIsDeterministic)
{
    // 1-in-4 sampling selects exactly frames 0, 4, 8, ... - a fixed
    // frame sequence always yields the identical sampled set, which
    // is what keeps conservation checks exact.
    SpanConfig config;
    config.sampleEvery = 4;
    SpanRecorder spans(config);
    ASSERT_TRUE(spans.enabled());
    EXPECT_EQ(spans.sampleEvery(), 4u);
    for (std::uint64_t frame = 0; frame < 21; ++frame)
        EXPECT_EQ(spans.sampleFrame(), frame % 4 == 0)
            << "frame " << frame;
    EXPECT_EQ(spans.framesSeen(), 21u);
    EXPECT_EQ(spans.sampledFrames(), 6u); // 0,4,8,12,16,20
}

TEST(SpanRecorderTest, RecordStageAccumulatesTotalsAndSnapshot)
{
    SpanConfig config;
    config.sampleEvery = 1;
    SpanRecorder spans(config);
    spans.recordStage(Stage::Decode, 100);
    spans.recordStage(Stage::Decode, 300);
    spans.recordStage(Stage::Decode, 0);

    const StageTotals totals = spans.totals(Stage::Decode);
    EXPECT_EQ(totals.count, 3u);
    EXPECT_EQ(totals.sumNs, 400u);

    const HistogramSnapshot snap = spans.stageSnapshot(Stage::Decode);
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 400u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 300u);

    // Untouched stages stay empty.
    EXPECT_EQ(spans.totals(Stage::WriteFlush).count, 0u);
    EXPECT_EQ(spans.stageSnapshot(Stage::WriteFlush).count, 0u);
}

TEST(SpanRecorderTest, RegistersStageHistogramsEagerlyWhenAttached)
{
    TelemetrySession session;
    SpanConfig config;
    config.sampleEvery = 8;
    SpanRecorder spans(config);
    spans.recordStage(Stage::Predict, 1234);

    const MetricsSnapshot snapshot = session.registry().snapshot();
    std::map<std::string, std::uint64_t> counts;
    for (const auto &hist : snapshot.histograms)
        counts[hist.name] = hist.hist.count;
    // Every stage histogram exists from construction - including the
    // ones nothing recorded into yet - so dashboards and the
    // golden-list audit see the full instrument set at zero.
    for (std::size_t s = 0; s < kStageCount; ++s) {
        const std::string name =
            std::string("net.stage.") +
            stageName(static_cast<Stage>(s)) + ".ns";
        ASSERT_TRUE(counts.count(name)) << name;
    }
    EXPECT_EQ(counts["net.stage.predict.ns"], 1u);
    EXPECT_EQ(counts["net.stage.read.ns"], 0u);
}

TEST(SpanRecorderTest, StageNamesAreStableWireNames)
{
    EXPECT_STREQ(stageName(Stage::Read), "read");
    EXPECT_STREQ(stageName(Stage::Decode), "decode");
    EXPECT_STREQ(stageName(Stage::QueueWait), "queue_wait");
    EXPECT_STREQ(stageName(Stage::Predict), "predict");
    EXPECT_STREQ(stageName(Stage::Encode), "encode");
    EXPECT_STREQ(stageName(Stage::WriteFlush), "write_flush");
}

// --- shared percentile helpers (telemetry/percentiles.hh) ---------

TEST(PercentilesTest, NearestRankMatchesHandComputedValues)
{
    const std::vector<std::uint64_t> sorted{10, 20, 30, 40, 50,
                                            60, 70, 80, 90, 100};
    EXPECT_EQ(percentileOfSorted(sorted, 0.0), 10u);
    EXPECT_EQ(percentileOfSorted(sorted, 0.50), 60u); // rank 4.5
    EXPECT_EQ(percentileOfSorted(sorted, 0.99), 100u);
    EXPECT_EQ(percentileOfSorted(sorted, 1.0), 100u);
    EXPECT_EQ(percentileOfSorted({}, 0.5), 0u);
}

TEST(PercentilesTest, PercentilesStructSortsAndExtracts)
{
    std::vector<std::uint64_t> samples{50, 10, 40, 30, 20};
    const Percentiles p = percentiles(samples);
    EXPECT_EQ(p.samples, 5u);
    EXPECT_EQ(p.p50, 30u);
    EXPECT_EQ(p.max, 50u);
    EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end()));
}

TEST(PercentilesTest, HistogramPercentileInterpolatesInsideBucket)
{
    TelemetrySession session;
    Histogram *hist = telemetry::histogram("ptest.ns");
    ASSERT_NE(hist, nullptr);
    // 100 values in the [64, 127] bucket: every percentile lands
    // inside that bucket, interpolated between its bounds.
    for (int i = 0; i < 100; ++i)
        hist->record(100);
    const HistogramSnapshot snap = hist->snapshot();
    const std::uint64_t p50 = percentileFromHistogram(snap, 0.50);
    EXPECT_GE(p50, 64u);
    EXPECT_LE(p50, 127u);
    EXPECT_LE(percentileFromHistogram(snap, 0.01), p50);
    EXPECT_GE(percentileFromHistogram(snap, 0.99), p50);
    EXPECT_EQ(percentileFromHistogram(HistogramSnapshot{}, 0.5), 0u);
    // HistogramSnapshot::percentile is the same math.
    EXPECT_EQ(snap.percentile(0.5), p50);
}

/**
 * The acceptance check: a Figure-5 style Dynamo run (NET, delay 50,
 * calibrated compress workload) with telemetry attached produces a
 * valid JSON run report with non-zero fragment-cache hit/miss
 * counters, predictor prediction counts and a populated
 * fragment-size histogram.
 */
TEST(RunReportTest, Fig5StyleRunProducesParsableNonZeroReport)
{
    TelemetrySession session;

    WorkloadConfig wconfig;
    wconfig.flowScale = 1e-2;
    CalibratedWorkload workload(specTarget("compress"), wconfig);

    DynamoConfig config;
    config.scheme = PredictionScheme::Net;
    config.predictionDelay = 50;
    config.enableFlush = false;
    DynamoSystem system(config);

    workload.generateStream(
        0, [&](const PathEvent &event, std::uint64_t t) {
            system.onPathEvent(event, t);
        });
    const DynamoReport report = system.report();
    EXPECT_GT(report.events, 0u);

    std::ostringstream out;
    RunReport::capture(session.registry(), "fig5_style")
        .writeJson(out);

    const JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("report").text, "fig5_style");
    EXPECT_EQ(root.at("schema").text, "hotpath.telemetry.v1");

    const JsonValue &dynamo = root.at("components").at("dynamo");
    EXPECT_GT(dynamo.at("counters").at("dynamo.cache.hits").number,
              0);
    EXPECT_GT(dynamo.at("counters").at("dynamo.cache.misses").number,
              0);

    const JsonValue &predict = root.at("components").at("predict");
    EXPECT_GT(
        predict.at("counters").at("predict.net.predictions").number,
        0);

    const JsonValue &hist = dynamo.at("histograms")
                                .at("dynamo.cache.fragment.bytes");
    EXPECT_GT(hist.at("count").number, 0);
    EXPECT_GT(hist.at("buckets").items.size(), 0u);
    // Cycle gauges were published by report().
    EXPECT_GT(
        dynamo.at("gauges").at("dynamo.cycles.cached").number, 0);

    // Counter-table instrumentation fired through the predictor.
    const JsonValue &profile = root.at("components").at("profile");
    EXPECT_GT(profile.at("counters")
                  .at("profile.counter_table.probes")
                  .number,
              0);
}
