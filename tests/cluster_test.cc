/**
 * @file
 * Cluster-tier tests: hash-ring determinism and minimal disruption,
 * SessionState wire round-trips (snapshot, export request, corrupt
 * frames resyncing), the export -> wire -> import bit-identity
 * property for arbitrary event suffixes, and the router end to end
 * over loopback - byte-identity with a single-server run, live
 * session migration on scale-up and drain-out, deterministic
 * failover with every accepted frame answered exactly once, and the
 * zero-backend synthesis path.
 *
 * Every server and router binds an ephemeral loopback port, so tests
 * run in parallel without port collisions.
 */

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/hash_ring.hh"
#include "cluster/router.hh"
#include "engine/engine.hh"
#include "engine/wire_format.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "net/socket.hh"
#include "telemetry/telemetry.hh"

using namespace hotpath;
using namespace hotpath::engine;

namespace
{

/** Loop-heavy deterministic event frames for one session (the same
 *  shape the serving-layer tests replay). */
std::vector<std::vector<std::uint8_t>>
makeFrames(std::uint64_t session, std::uint64_t first_sequence,
           std::size_t frames, std::size_t events_per_frame)
{
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t f = 0; f < frames; ++f) {
        const std::uint64_t sequence = first_sequence + f;
        std::vector<PathEvent> events;
        for (std::size_t i = 0; i < events_per_frame; ++i) {
            const std::uint32_t loop = static_cast<std::uint32_t>(
                (sequence * events_per_frame + i + session) % 8);
            PathEvent event;
            event.path = loop * 10;
            event.head = loop;
            event.blocks = 4 + loop;
            event.branches = 3 + loop;
            event.instructions = 30 + 5 * loop;
            events.push_back(event);
        }
        std::vector<std::uint8_t> frame;
        wire::appendEventFrame(frame, session, sequence, events);
        out.push_back(std::move(frame));
    }
    return out;
}

/** Engine config that records per-session predictions, so routed
 *  results can be compared with Engine::predictionsFor(). */
EngineConfig
recordingConfig(std::size_t workers)
{
    EngineConfig config;
    config.workerThreads = workers;
    config.sessions.shardCount = 8;
    config.sessions.session.predictionDelay = 13;
    config.sessions.session.recordPredictions = true;
    return config;
}

/** Server config tuned for fast tests (short maintenance tick). */
net::ServerConfig
testServerConfig()
{
    net::ServerConfig config;
    config.tickMs = 2;
    config.reactorThreads = 2;
    return config;
}

/** The predicted path ids a client received for one session, in
 *  sequence order (state replies excluded). */
std::vector<PathIndex>
clientPaths(const std::vector<net::PredictionReply> &replies,
            std::uint64_t session)
{
    std::vector<const net::PredictionReply *> mine;
    for (const auto &reply : replies)
        if (reply.session == session && !reply.isState)
            mine.push_back(&reply);
    std::sort(mine.begin(), mine.end(),
              [](const auto *a, const auto *b) {
                  return a->sequence < b->sequence;
              });
    std::vector<PathIndex> paths;
    for (const auto *reply : mine)
        for (const auto &record : reply->predictions)
            paths.push_back(record.path);
    return paths;
}

/** Assert every reply key (session, sequence) appears exactly once -
 *  the "answered exactly once" half of frame conservation. */
void
expectUniqueReplies(const std::vector<net::PredictionReply> &replies)
{
    std::set<std::pair<std::uint64_t, std::uint64_t>> keys;
    for (const auto &reply : replies)
        keys.emplace(reply.session, reply.sequence);
    EXPECT_EQ(keys.size(), replies.size())
        << "duplicate (session, sequence) replies";
}

/** A fleet of started in-process backends (Engine + net::Server). */
struct Fleet
{
    std::vector<std::unique_ptr<Engine>> engines;
    std::vector<std::unique_ptr<net::Server>> servers;
    std::vector<cluster::BackendAddress> addresses;

    explicit Fleet(std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            engines.push_back(
                std::make_unique<Engine>(recordingConfig(2)));
            servers.push_back(std::make_unique<net::Server>(
                *engines.back(), testServerConfig()));
            EXPECT_TRUE(servers.back()->start());
            addresses.push_back(
                {"127.0.0.1", servers.back()->port()});
        }
    }

    ~Fleet()
    {
        for (auto &server : servers)
            server->stop();
    }
};

/** Router config wired to a fleet, tuned for fast tests. */
cluster::RouterConfig
testRouterConfig(const Fleet &fleet)
{
    cluster::RouterConfig config;
    config.backends = fleet.addresses;
    config.tickMs = 2;
    config.connectAttempts = 3;
    config.retryBaseMs = 1;
    return config;
}

/** A ring mirroring the router's (same seed, same points), used to
 *  predict which backend owns which session. */
cluster::HashRing
mirrorRing(const cluster::RouterConfig &cfg,
           std::initializer_list<std::uint64_t> ids)
{
    cluster::HashRingConfig ringCfg;
    ringCfg.virtualNodes = cfg.virtualNodes;
    ringCfg.seed = cfg.ringSeed;
    cluster::HashRing ring(ringCfg);
    for (std::uint64_t id : ids)
        ring.addNode(id);
    return ring;
}

} // namespace

// --- consistent-hash ring -----------------------------------------

TEST(HashRing, DeterministicAcrossInstancesAndInsertionOrder)
{
    cluster::HashRingConfig cfg;
    cfg.seed = 0x5eed;
    cluster::HashRing forward(cfg);
    cluster::HashRing backward(cfg);
    for (std::uint64_t node : {0ull, 1ull, 2ull, 3ull, 4ull})
        forward.addNode(node);
    for (std::uint64_t node : {4ull, 2ull, 0ull, 3ull, 1ull})
        backward.addNode(node);

    for (std::uint64_t key = 0; key < 4096; ++key)
        ASSERT_EQ(forward.ownerOf(key), backward.ownerOf(key))
            << "key " << key;

    // A different seed produces a genuinely different map.
    cfg.seed = 0x5eee;
    cluster::HashRing reseeded(cfg);
    for (std::uint64_t node : {0ull, 1ull, 2ull, 3ull, 4ull})
        reseeded.addNode(node);
    std::size_t moved = 0;
    for (std::uint64_t key = 0; key < 4096; ++key)
        if (forward.ownerOf(key) != reseeded.ownerOf(key))
            ++moved;
    EXPECT_GT(moved, 0u);
}

TEST(HashRing, SpreadsKeysAcrossAllNodes)
{
    cluster::HashRing ring;
    for (std::uint64_t node = 0; node < 4; ++node)
        ring.addNode(node);
    std::map<std::uint64_t, std::size_t> load;
    for (std::uint64_t key = 0; key < 8192; ++key)
        ++load[ring.ownerOf(key)];
    ASSERT_EQ(load.size(), 4u);
    // With 64 virtual nodes each backend should land well away from
    // zero and from "everything" - a loose smoke bound, not a
    // distribution test.
    for (const auto &[node, count] : load) {
        EXPECT_GT(count, 8192u / 16) << "node " << node;
        EXPECT_LT(count, 8192u / 2) << "node " << node;
    }
}

TEST(HashRing, MinimalDisruptionOnAddAndRemove)
{
    cluster::HashRing ring;
    for (std::uint64_t node = 0; node < 3; ++node)
        ring.addNode(node);
    std::map<std::uint64_t, std::uint64_t> before;
    for (std::uint64_t key = 0; key < 8192; ++key)
        before[key] = ring.ownerOf(key);

    // Adding a node may only move keys ONTO the new node.
    ring.addNode(3);
    std::size_t movedToNew = 0;
    for (std::uint64_t key = 0; key < 8192; ++key) {
        const std::uint64_t owner = ring.ownerOf(key);
        if (owner != before[key]) {
            ASSERT_EQ(owner, 3u)
                << "key " << key
                << " reshuffled between surviving nodes";
            ++movedToNew;
        }
    }
    EXPECT_GT(movedToNew, 0u);

    // Removing it again restores the exact original map: keys may
    // only move OFF the removed node.
    ASSERT_TRUE(ring.removeNode(3));
    for (std::uint64_t key = 0; key < 8192; ++key)
        ASSERT_EQ(ring.ownerOf(key), before[key]) << "key " << key;
    EXPECT_FALSE(ring.removeNode(3));
}

// --- SessionState on the wire -------------------------------------

TEST(SessionStateWire, SnapshotRoundTripsByteForByte)
{
    // A real snapshot from a warmed engine, not a hand-built one.
    Engine donor(recordingConfig(2));
    for (const auto &frame : makeFrames(42, 0, 12, 64))
        ASSERT_TRUE(donor.submit(frame));
    donor.drain();

    wire::SessionState snapshot;
    ASSERT_TRUE(donor.exportSession(42, snapshot));
    EXPECT_TRUE(snapshot.sawFrame);
    EXPECT_FALSE(snapshot.counters.empty());

    std::vector<std::uint8_t> bytes;
    wire::appendSessionStateFrame(bytes, 42, 7, snapshot);

    std::size_t offset = 0;
    wire::DecodedFrame decoded;
    ASSERT_EQ(wire::decodeFrame(bytes.data(), bytes.size(), offset,
                                decoded),
              wire::DecodeStatus::Ok);
    EXPECT_EQ(offset, bytes.size());
    EXPECT_EQ(decoded.header.session, 42u);
    EXPECT_EQ(decoded.header.sequence, 7u);
    EXPECT_EQ(decoded.header.kind, wire::FrameKind::SessionState);
    EXPECT_FALSE(decoded.state.request);

    // Re-encoding the decoded snapshot reproduces the wire bytes
    // exactly - the encoding is canonical (sorted, delta-coded).
    std::vector<std::uint8_t> again;
    wire::appendSessionStateFrame(again, 42, 7, decoded.state);
    EXPECT_EQ(again, bytes);
}

TEST(SessionStateWire, RequestFrameRoundTrips)
{
    wire::SessionState request;
    request.request = true;
    std::vector<std::uint8_t> bytes;
    wire::appendSessionStateFrame(bytes, 9, 3, request);

    std::size_t offset = 0;
    wire::DecodedFrame decoded;
    ASSERT_EQ(wire::decodeFrame(bytes.data(), bytes.size(), offset,
                                decoded),
              wire::DecodeStatus::Ok);
    EXPECT_TRUE(decoded.state.request);
    EXPECT_EQ(decoded.header.session, 9u);
    EXPECT_EQ(decoded.header.sequence, 3u);
}

TEST(SessionStateWire, CorruptSnapshotResyncsToNextFrame)
{
    Engine donor(recordingConfig(2));
    for (const auto &frame : makeFrames(5, 0, 4, 32))
        ASSERT_TRUE(donor.submit(frame));
    donor.drain();
    wire::SessionState snapshot;
    ASSERT_TRUE(donor.exportSession(5, snapshot));

    std::vector<std::uint8_t> buffer;
    wire::appendSessionStateFrame(buffer, 5, 0, snapshot);
    const std::size_t corruptEnd = buffer.size();
    // Flip a payload byte: the frame must fail its CRC, and the
    // streaming boundary scan must land on the next frame.
    buffer[corruptEnd / 2] ^= 0x40;
    wire::appendEventFrame(
        buffer, 5, 1,
        std::vector<PathEvent>{PathEvent{10, 1, 5, 4, 35}});

    std::size_t offset = 0;
    wire::DecodedFrame decoded;
    const wire::DecodeStatus status = wire::decodeFrame(
        buffer.data(), buffer.size(), offset, decoded);
    EXPECT_TRUE(status == wire::DecodeStatus::BadCrc ||
                status == wire::DecodeStatus::BadPayload)
        << wire::decodeStatusName(status);
    EXPECT_EQ(offset, 0u);

    bool complete = false;
    const std::size_t next = wire::findFrameBoundary(
        buffer.data(), buffer.size(), 1, &complete);
    EXPECT_TRUE(complete);
    EXPECT_EQ(next, corruptEnd);
    offset = next;
    ASSERT_EQ(wire::decodeFrame(buffer.data(), buffer.size(), offset,
                                decoded),
              wire::DecodeStatus::Ok);
    EXPECT_EQ(decoded.header.kind, wire::FrameKind::PathEvents);
    EXPECT_EQ(decoded.header.sequence, 1u);
}

// --- export -> wire -> import bit-identity ------------------------

TEST(SessionMigration, ExportWireImportContinuesBitIdentically)
{
    constexpr std::uint64_t kSession = 77;
    constexpr std::size_t kFrames = 24;
    const auto frames = makeFrames(kSession, 0, kFrames, 64);

    // Property: for ANY split point, exporting after the prefix and
    // importing into a fresh engine continues the suffix with
    // byte-identical predictions and byte-identical end state.
    for (const std::size_t split : {std::size_t{1}, std::size_t{8},
                                    std::size_t{23}}) {
        Engine original(recordingConfig(2));
        for (std::size_t i = 0; i < split; ++i)
            ASSERT_TRUE(original.submit(frames[i]));
        original.drain();

        wire::SessionState snapshot;
        ASSERT_TRUE(original.exportSession(kSession, snapshot));
        std::vector<std::uint8_t> wireBytes;
        wire::appendSessionStateFrame(wireBytes, kSession, 0,
                                      snapshot);
        std::size_t offset = 0;
        wire::DecodedFrame decoded;
        ASSERT_EQ(wire::decodeFrame(wireBytes.data(),
                                    wireBytes.size(), offset,
                                    decoded),
                  wire::DecodeStatus::Ok);

        Engine migrated(recordingConfig(2));
        migrated.importSession(kSession, decoded.state);

        for (std::size_t i = split; i < kFrames; ++i) {
            ASSERT_TRUE(original.submit(frames[i]));
            ASSERT_TRUE(migrated.submit(frames[i]));
        }
        original.drain();
        migrated.drain();

        // The migrated engine's suffix predictions match the
        // original's, prediction for prediction.
        const auto originalPaths = original.predictionsFor(kSession);
        const auto migratedPaths = migrated.predictionsFor(kSession);
        ASSERT_LE(migratedPaths.size(), originalPaths.size())
            << "split " << split;
        EXPECT_TRUE(std::equal(migratedPaths.begin(),
                               migratedPaths.end(),
                               originalPaths.end() -
                                   static_cast<std::ptrdiff_t>(
                                       migratedPaths.size())))
            << "split " << split
            << ": suffix predictions diverged after migration";

        // And the end states are byte-identical on the wire: same
        // counters, same fragment cache (exact LRU stamps), same
        // lifetime statistics.
        wire::SessionState endOriginal, endMigrated;
        ASSERT_TRUE(original.exportSession(kSession, endOriginal));
        ASSERT_TRUE(migrated.exportSession(kSession, endMigrated));
        std::vector<std::uint8_t> bytesOriginal, bytesMigrated;
        wire::appendSessionStateFrame(bytesOriginal, kSession, 0,
                                      endOriginal);
        wire::appendSessionStateFrame(bytesMigrated, kSession, 0,
                                      endMigrated);
        EXPECT_EQ(bytesMigrated, bytesOriginal)
            << "split " << split
            << ": end-state snapshots differ on the wire";
    }
}

TEST(SessionMigration, ServerAnswersExportRequestsOverTcp)
{
    Engine eng(recordingConfig(2));
    net::Server server(eng, testServerConfig());
    ASSERT_TRUE(server.start());

    net::ClientConfig clientCfg;
    clientCfg.port = server.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    const auto frames = makeFrames(31, 0, 6, 48);
    for (const auto &frame : frames)
        ASSERT_TRUE(client.sendFrame(frame.data(), frame.size()));
    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(frames.size(), replies));

    // An export request comes back as a state snapshot identical to
    // a direct in-process export.
    wire::SessionState request;
    request.request = true;
    std::vector<std::uint8_t> requestBytes;
    wire::appendSessionStateFrame(requestBytes, 31, 99, request);
    ASSERT_TRUE(client.sendFrame(requestBytes.data(),
                                 requestBytes.size()));
    std::vector<net::PredictionReply> stateReplies;
    ASSERT_TRUE(client.awaitResponses(1, stateReplies));
    ASSERT_EQ(stateReplies.size(), 1u);
    ASSERT_TRUE(stateReplies[0].isState);
    EXPECT_EQ(stateReplies[0].sequence, 99u);

    wire::SessionState direct;
    ASSERT_TRUE(eng.exportSession(31, direct));
    std::vector<std::uint8_t> overTcp, inProcess;
    wire::appendSessionStateFrame(overTcp, 31, 0,
                                  stateReplies[0].state);
    wire::appendSessionStateFrame(inProcess, 31, 0, direct);
    EXPECT_EQ(overTcp, inProcess);

    // Exporting a session the engine has never seen yields a fresh
    // snapshot (sawFrame=false), still answered - migration of an
    // untouched session degrades to a clean rebuild, not an error.
    requestBytes.clear();
    wire::appendSessionStateFrame(requestBytes, 888, 5, request);
    ASSERT_TRUE(client.sendFrame(requestBytes.data(),
                                 requestBytes.size()));
    std::vector<net::PredictionReply> absentReplies;
    ASSERT_TRUE(client.awaitResponses(1, absentReplies));
    ASSERT_EQ(absentReplies.size(), 1u);
    ASSERT_TRUE(absentReplies[0].isState);
    EXPECT_FALSE(absentReplies[0].state.sawFrame);

    server.stop();
}

TEST(SessionMigration, TornAndCorruptStateFramesOverTcp)
{
    // Donor builds history in-process; its snapshot travels to the
    // server torn into 7-byte slivers, preceded by a corrupt copy
    // the server must resync past.
    Engine donor(recordingConfig(2));
    const auto prefix = makeFrames(64, 0, 8, 48);
    for (const auto &frame : prefix)
        ASSERT_TRUE(donor.submit(frame));
    donor.drain();
    wire::SessionState snapshot;
    ASSERT_TRUE(donor.exportSession(64, snapshot));

    Engine eng(recordingConfig(2));
    net::Server server(eng, testServerConfig());
    ASSERT_TRUE(server.start());
    net::ClientConfig clientCfg;
    clientCfg.port = server.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    std::vector<std::uint8_t> importFrame;
    wire::appendSessionStateFrame(importFrame, 64, 0, snapshot);

    // A corrupt copy of the snapshot first: the flipped payload byte
    // kills the CRC, the engine rejects the frame, and the server
    // still answers it (a reject completion reply). Then a garbage
    // run (no 'H' bytes) the reassembly buffer must resync past
    // before the real import arrives.
    std::vector<std::uint8_t> corrupt = importFrame;
    corrupt[corrupt.size() / 2] ^= 0x20;
    ASSERT_TRUE(client.sendFrame(corrupt.data(), corrupt.size()));
    const std::vector<std::uint8_t> garbage(23, 0xAB);
    ASSERT_TRUE(client.sendFrame(garbage.data(), garbage.size()));

    // Then the real import, torn into slivers.
    for (std::size_t off = 0; off < importFrame.size(); off += 7) {
        const std::size_t len =
            std::min<std::size_t>(7, importFrame.size() - off);
        ASSERT_TRUE(client.sendFrame(importFrame.data() + off, len));
    }
    // Two replies: the corrupt frame's reject completion and the
    // real import's ack.
    std::vector<net::PredictionReply> importAck;
    ASSERT_TRUE(client.awaitResponses(2, importAck));
    ASSERT_EQ(importAck.size(), 2u);

    // The suffix now continues the donor's stream bit-identically.
    const auto suffix = makeFrames(64, prefix.size(), 8, 48);
    for (const auto &frame : suffix) {
        ASSERT_TRUE(client.sendFrame(frame.data(), frame.size()));
        ASSERT_TRUE(donor.submit(frame));
    }
    donor.drain();
    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(suffix.size(), replies));

    const auto donorPaths = donor.predictionsFor(64);
    const auto servedPaths = clientPaths(replies, 64);
    ASSERT_LE(servedPaths.size(), donorPaths.size());
    EXPECT_TRUE(std::equal(servedPaths.begin(), servedPaths.end(),
                           donorPaths.end() -
                               static_cast<std::ptrdiff_t>(
                                   servedPaths.size())));

    server.stop();
    EXPECT_GE(server.stats().framesResynced, 1u);
    const EngineStats engineStats = eng.stats();
    EXPECT_EQ(engineStats.sessionsImported, 1u);
}

// --- the router, end to end ---------------------------------------

TEST(ClusterRouter, LoopbackMatchesSingleServerByteForByte)
{
    constexpr std::size_t kSessions = 8;
    constexpr std::size_t kFramesPerSession = 12;
    constexpr std::size_t kEventsPerFrame = 48;

    Fleet fleet(3);
    cluster::Router router(testRouterConfig(fleet));
    ASSERT_TRUE(router.start());

    net::ClientConfig clientCfg;
    clientCfg.port = router.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    Engine reference(recordingConfig(2));
    std::size_t sent = 0;
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame : makeFrames(
                 session, 0, kFramesPerSession, kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++sent;
        }
    }
    reference.drain();

    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(sent, replies));
    ASSERT_EQ(replies.size(), sent);
    expectUniqueReplies(replies);

    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        const auto routed = clientPaths(replies, session);
        EXPECT_EQ(routed, reference.predictionsFor(session))
            << "session " << session
            << ": routed serving disagrees with single-engine run";
        EXPECT_FALSE(routed.empty());
    }

    router.drain();
    const cluster::RouterStats stats = router.stats();
    router.stop();
    EXPECT_EQ(stats.framesIn, sent);
    EXPECT_EQ(stats.framesRouted, sent);
    EXPECT_EQ(stats.responsesOut, sent);
    EXPECT_EQ(stats.responsesSynthesized, 0u);
    EXPECT_EQ(stats.responsesDropped, 0u);
    EXPECT_EQ(stats.framesResynced, 0u);
    EXPECT_EQ(stats.failovers, 0u);
    EXPECT_EQ(stats.sessionsMigrated, 0u);
    EXPECT_EQ(stats.inFlightTotal, 0u);
    EXPECT_EQ(stats.parkedFrames, 0u);
    EXPECT_EQ(stats.backendsLive, 3u);

    // Every backend that owns sessions actually served them: the
    // router's routed count equals the sum of backend receipts.
    std::uint64_t backendFramesIn = 0;
    for (const auto &server : fleet.servers)
        backendFramesIn += server->stats().framesIn;
    EXPECT_EQ(backendFramesIn, sent);
}

TEST(ClusterRouter, ScaleUpMigratesPredictorHistory)
{
    constexpr std::size_t kSessions = 16;
    constexpr std::size_t kPhaseFrames = 8;
    constexpr std::size_t kEventsPerFrame = 32;

    Fleet fleet(2);
    const cluster::RouterConfig cfg = testRouterConfig(fleet);
    cluster::Router router(cfg);
    ASSERT_TRUE(router.start());

    // The third backend exists but is not in the ring yet.
    Engine lateEngine(recordingConfig(2));
    net::Server lateServer(lateEngine, testServerConfig());
    ASSERT_TRUE(lateServer.start());

    net::ClientConfig clientCfg;
    clientCfg.port = router.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    Engine reference(recordingConfig(2));
    std::size_t sent = 0;
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame : makeFrames(session, 0, kPhaseFrames,
                                            kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++sent;
        }
    }
    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(sent, replies));

    // Scale up mid-stream. The new node takes its ring arcs; every
    // session it inherits must carry its predictor history over.
    const std::uint64_t newId =
        router.addBackend({"127.0.0.1", lateServer.port()});
    EXPECT_EQ(newId, 2u);

    const cluster::HashRing before = mirrorRing(cfg, {0, 1});
    const cluster::HashRing after = mirrorRing(cfg, {0, 1, 2});
    std::size_t expectedMoved = 0;
    for (std::uint64_t session = 1; session <= kSessions; ++session)
        if (before.ownerOf(session) != after.ownerOf(session))
            ++expectedMoved;
    ASSERT_GE(expectedMoved, 1u)
        << "ring seed moved no sessions; test is vacuous";

    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame :
             makeFrames(session, kPhaseFrames, kPhaseFrames,
                        kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++sent;
        }
    }
    reference.drain();

    // Collect until every phase-2 frame is answered; migration
    // (export, import, unpark) completes inside this wait.
    std::vector<net::PredictionReply> all;
    while (all.size() < kSessions * kPhaseFrames) {
        std::vector<net::PredictionReply> more;
        ASSERT_TRUE(client.awaitResponses(1, more))
            << "phase-2 frame went unanswered";
        all.insert(all.end(), more.begin(), more.end());
    }
    expectUniqueReplies(all);

    // Byte-identity for EVERY session, including the migrated ones:
    // phase-2 predictions continue phase-1 history seamlessly.
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        const auto phase2 = clientPaths(all, session);
        const auto full = reference.predictionsFor(session);
        ASSERT_LE(phase2.size(), full.size()) << "session " << session;
        EXPECT_TRUE(std::equal(phase2.begin(), phase2.end(),
                               full.end() -
                                   static_cast<std::ptrdiff_t>(
                                       phase2.size())))
            << "session " << session
            << ": migration lost predictor history";
    }

    router.drain();
    const cluster::RouterStats stats = router.stats();
    router.stop();
    lateServer.stop();
    EXPECT_EQ(stats.sessionsMigrated, expectedMoved);
    EXPECT_GE(stats.migrationFrames, 2 * expectedMoved);
    EXPECT_GT(stats.migrationBytes, 0u);
    EXPECT_GE(stats.rehashes, 1u);
    EXPECT_EQ(stats.responsesDropped, 0u);
    EXPECT_EQ(stats.failovers, 0u);
    EXPECT_EQ(stats.parkedFrames, 0u);

    // The late engine really did import state, not rebuild from
    // scratch.
    EXPECT_EQ(lateEngine.stats().sessionsImported, expectedMoved);
}

TEST(ClusterRouter, RemoveBackendDrainsSessionsToSurvivors)
{
    constexpr std::size_t kSessions = 12;
    constexpr std::size_t kPhaseFrames = 6;
    constexpr std::size_t kEventsPerFrame = 32;

    Fleet fleet(3);
    const cluster::RouterConfig cfg = testRouterConfig(fleet);
    cluster::Router router(cfg);
    ASSERT_TRUE(router.start());

    net::ClientConfig clientCfg;
    clientCfg.port = router.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    Engine reference(recordingConfig(2));
    std::size_t sent = 0;
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame : makeFrames(session, 0, kPhaseFrames,
                                            kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++sent;
        }
    }
    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(sent, replies));

    const cluster::HashRing before = mirrorRing(cfg, {0, 1, 2});
    const cluster::HashRing after = mirrorRing(cfg, {0, 2});
    std::size_t expectedMoved = 0;
    for (std::uint64_t session = 1; session <= kSessions; ++session)
        if (before.ownerOf(session) == 1)
            ++expectedMoved;
    ASSERT_GE(expectedMoved, 1u)
        << "backend 1 owned no sessions; test is vacuous";
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        if (before.ownerOf(session) != 1) {
            ASSERT_EQ(after.ownerOf(session), before.ownerOf(session))
                << "survivor sessions must not reshuffle";
        }
    }

    router.removeBackend(1);

    std::size_t phase2 = 0;
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame :
             makeFrames(session, kPhaseFrames, kPhaseFrames,
                        kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++phase2;
        }
    }
    reference.drain();
    std::vector<net::PredictionReply> all;
    while (all.size() < phase2) {
        std::vector<net::PredictionReply> more;
        ASSERT_TRUE(client.awaitResponses(1, more))
            << "phase-2 frame went unanswered after removeBackend";
        all.insert(all.end(), more.begin(), more.end());
    }
    expectUniqueReplies(all);

    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        const auto paths = clientPaths(all, session);
        const auto full = reference.predictionsFor(session);
        ASSERT_LE(paths.size(), full.size()) << "session " << session;
        EXPECT_TRUE(std::equal(paths.begin(), paths.end(),
                               full.end() -
                                   static_cast<std::ptrdiff_t>(
                                       paths.size())))
            << "session " << session
            << ": drain-out lost predictor history";
    }

    router.drain();
    const cluster::RouterStats stats = router.stats();

    // The retired backend eventually leaves the topology entirely.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(2);
    bool reaped = false;
    while (std::chrono::steady_clock::now() < deadline) {
        const auto topo = router.topology();
        reaped = std::none_of(topo.begin(), topo.end(),
                              [](const auto &row) {
                                  return row.id == 1;
                              });
        if (reaped)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    router.stop();
    EXPECT_TRUE(reaped) << "retired backend never reaped";
    EXPECT_EQ(stats.sessionsMigrated, expectedMoved);
    EXPECT_EQ(stats.responsesDropped, 0u);
    EXPECT_EQ(stats.failovers, 0u);
}

TEST(ClusterRouter, FailoverAnswersEveryFrameExactlyOnce)
{
    constexpr std::size_t kSessions = 12;
    constexpr std::size_t kPhaseFrames = 6;
    constexpr std::size_t kEventsPerFrame = 32;

    Fleet fleet(3);
    const cluster::RouterConfig cfg = testRouterConfig(fleet);
    cluster::Router router(cfg);
    ASSERT_TRUE(router.start());

    net::ClientConfig clientCfg;
    clientCfg.port = router.port();
    clientCfg.responseTimeoutMs = 10000;
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    Engine reference(recordingConfig(2));
    std::size_t sent = 0;
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame : makeFrames(session, 0, kPhaseFrames,
                                            kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++sent;
        }
    }
    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(sent, replies));

    // Kill the backend that owns session 1. Its sessions lose their
    // history (nobody left to export from); everyone else's must
    // stay byte-identical.
    const cluster::HashRing ring = mirrorRing(cfg, {0, 1, 2});
    const std::uint64_t victim = ring.ownerOf(1);
    fleet.servers[victim]->stop();

    std::size_t phase2 = 0;
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        for (const auto &frame :
             makeFrames(session, kPhaseFrames, kPhaseFrames,
                        kEventsPerFrame)) {
            ASSERT_TRUE(
                client.sendFrame(frame.data(), frame.size()));
            ASSERT_TRUE(reference.submit(frame));
            ++phase2;
        }
    }
    reference.drain();

    // Every phase-2 frame is answered despite the dead backend -
    // detection, reconnect probe, failover and ledger replay all
    // happen inside this await.
    std::vector<net::PredictionReply> all;
    while (all.size() < phase2) {
        std::vector<net::PredictionReply> more;
        ASSERT_TRUE(client.awaitResponses(1, more))
            << "frame went unanswered after backend death ("
            << all.size() << "/" << phase2 << ")";
        all.insert(all.end(), more.begin(), more.end());
    }
    EXPECT_EQ(all.size(), phase2);
    expectUniqueReplies(all);

    // Sessions untouched by the failover continue byte-identically.
    for (std::uint64_t session = 1; session <= kSessions;
         ++session) {
        if (ring.ownerOf(session) == victim)
            continue;
        const auto paths = clientPaths(all, session);
        const auto full = reference.predictionsFor(session);
        ASSERT_LE(paths.size(), full.size()) << "session " << session;
        EXPECT_TRUE(std::equal(paths.begin(), paths.end(),
                               full.end() -
                                   static_cast<std::ptrdiff_t>(
                                       paths.size())))
            << "session " << session
            << ": failover disturbed an unrelated session";
    }

    router.drain();
    const cluster::RouterStats stats = router.stats();
    router.stop();
    EXPECT_EQ(stats.failovers, 1u);
    EXPECT_EQ(stats.backendsLive, 2u);
    EXPECT_EQ(stats.framesIn, sent + phase2);
    EXPECT_EQ(stats.responsesOut + stats.responsesSynthesized,
              sent + phase2);
    EXPECT_EQ(stats.responsesDropped, 0u);
    EXPECT_EQ(stats.inFlightTotal, 0u);
    EXPECT_EQ(stats.parkedFrames, 0u);
}

TEST(ClusterRouter, ZeroBackendsSynthesizesEmptyReplies)
{
    Fleet fleet(0);
    cluster::Router router(testRouterConfig(fleet));
    ASSERT_TRUE(router.start());

    net::ClientConfig clientCfg;
    clientCfg.port = router.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());

    const auto frames = makeFrames(3, 0, 5, 16);
    for (const auto &frame : frames)
        ASSERT_TRUE(client.sendFrame(frame.data(), frame.size()));

    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(frames.size(), replies));
    ASSERT_EQ(replies.size(), frames.size());
    expectUniqueReplies(replies);
    for (const auto &reply : replies) {
        EXPECT_EQ(reply.session, 3u);
        EXPECT_TRUE(reply.predictions.empty())
            << "synthesized replies must be empty";
    }

    router.drain();
    const cluster::RouterStats stats = router.stats();
    router.stop();
    EXPECT_EQ(stats.framesIn, frames.size());
    EXPECT_EQ(stats.responsesSynthesized, frames.size());
    EXPECT_EQ(stats.responsesOut, 0u);
    EXPECT_EQ(stats.backendsLive, 0u);
}

TEST(ClusterRouter, AdminEndpointServesMetricsTopologyAndStats)
{
    // Attach telemetry before anything registers, so /metrics sees
    // every eagerly-registered cluster.* instrument.
    telemetry::TelemetrySession session("");

    Fleet fleet(2);
    cluster::RouterConfig cfg = testRouterConfig(fleet);
    cfg.adminPort = 0;
    cluster::Router router(cfg);
    ASSERT_TRUE(router.start());
    ASSERT_NE(router.adminPort(), 0);

    net::ClientConfig clientCfg;
    clientCfg.port = router.port();
    net::Client client(clientCfg);
    ASSERT_TRUE(client.connect());
    const auto frames = makeFrames(11, 0, 8, 24);
    for (const auto &frame : frames)
        ASSERT_TRUE(client.sendFrame(frame.data(), frame.size()));
    std::vector<net::PredictionReply> replies;
    ASSERT_TRUE(client.awaitResponses(frames.size(), replies));

    const auto adminRequest = [&](const std::string &path) {
        net::Fd fd = net::connectTcp("127.0.0.1",
                                     router.adminPort());
        EXPECT_TRUE(fd.valid());
        if (!fd.valid())
            return std::string();
        const std::string request =
            "GET " + path + " HTTP/1.0\r\n\r\n";
        std::size_t off = 0;
        while (off < request.size()) {
            const ssize_t wrote =
                ::send(fd.get(), request.data() + off,
                       request.size() - off, MSG_NOSIGNAL);
            if (wrote > 0) {
                off += static_cast<std::size_t>(wrote);
                continue;
            }
            if (wrote < 0 && (errno == EINTR || errno == EAGAIN ||
                              errno == EWOULDBLOCK)) {
                pollfd pfd{fd.get(), POLLOUT, 0};
                ::poll(&pfd, 1, 20);
                continue;
            }
            return std::string();
        }
        std::string response;
        char buf[4096];
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(2000);
        while (std::chrono::steady_clock::now() < deadline) {
            const ssize_t got =
                ::read(fd.get(), buf, sizeof(buf));
            if (got > 0) {
                response.append(buf,
                                static_cast<std::size_t>(got));
                continue;
            }
            if (got == 0)
                break;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd pfd{fd.get(), POLLIN, 0};
                ::poll(&pfd, 1, 20);
                continue;
            }
            if (errno == EINTR)
                continue;
            return std::string();
        }
        return response;
    };

    const std::string health = adminRequest("/healthz");
    EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

    const std::string metrics = adminRequest("/metrics");
    EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
    for (const char *name :
         {"cluster_frames_in", "cluster_frames_routed",
          "cluster_backends_live", "cluster_backend_inflight",
          "cluster_rehash_events", "cluster_failovers",
          "cluster_migration_bytes", "cluster_backend_0_inflight",
          "cluster_backend_1_inflight"}) {
        EXPECT_NE(metrics.find(name), std::string::npos) << name;
    }

    const std::string stats = adminRequest("/stats");
    EXPECT_NE(stats.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(stats.find("application/json"), std::string::npos);
    EXPECT_NE(stats.find("\"cluster_frames_in\":" +
                         std::to_string(frames.size())),
              std::string::npos);
    EXPECT_NE(stats.find("\"cluster_responses_out\":" +
                         std::to_string(frames.size())),
              std::string::npos);
    EXPECT_NE(stats.find("\"backend_ids\":[0,1]"),
              std::string::npos);
    EXPECT_NE(stats.find("\"backend_alive\":[1,1]"),
              std::string::npos);

    const std::string topology = adminRequest("/topology");
    EXPECT_NE(topology.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(topology.find("\"backends\":["), std::string::npos);
    EXPECT_NE(topology.find("\"alive\":true"), std::string::npos);

    const std::string missing = adminRequest("/nonsense");
    EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"),
              std::string::npos);

    router.drain();
    router.stop();
}
