/**
 * @file
 * Tests for the fragment cache eviction policies (FlushAll vs LRU)
 * and their system-level accounting.
 */

#include <gtest/gtest.h>

#include "dynamo/fragment_cache.hh"
#include "dynamo/system.hh"

using namespace hotpath;

namespace
{

PathEvent
event(PathIndex path, std::uint32_t instructions = 40)
{
    PathEvent e;
    e.path = path;
    e.head = path;
    e.blocks = 8;
    e.branches = 8;
    e.instructions = instructions;
    return e;
}

} // namespace

TEST(CachePolicyTest, LruEvictsOldestUntilFit)
{
    FragmentCache cache(250, FragmentCache::EvictionPolicy::EvictLru);
    EXPECT_FALSE(cache.insert(1, 100));
    EXPECT_FALSE(cache.insert(2, 100));
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_FALSE(cache.insert(3, 100)); // evicts 2, not 1
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.flushes(), 0u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.occupancyInstructions(), 200u);
}

TEST(CachePolicyTest, LruEvictsMultipleForLargeFragment)
{
    FragmentCache cache(300, FragmentCache::EvictionPolicy::EvictLru);
    cache.insert(1, 100);
    cache.insert(2, 100);
    cache.insert(3, 100);
    cache.insert(4, 250); // must evict at least two victims
    EXPECT_GE(cache.evictions(), 2u);
    EXPECT_LE(cache.occupancyInstructions(), 300u + 250u);
    EXPECT_NE(cache.find(4), nullptr);
}

TEST(CachePolicyTest, FlushAllStillFlushesWholesale)
{
    FragmentCache cache(150, FragmentCache::EvictionPolicy::FlushAll);
    cache.insert(1, 100);
    EXPECT_TRUE(cache.insert(2, 100));
    EXPECT_EQ(cache.flushes(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CachePolicyTest, UnlimitedCacheNeverEvicts)
{
    FragmentCache cache(0, FragmentCache::EvictionPolicy::EvictLru);
    for (PathIndex p = 0; p < 1000; ++p)
        cache.insert(p, 100);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.size(), 1000u);
}

TEST(CachePolicyTest, FindRefreshesLruAge)
{
    FragmentCache cache(200, FragmentCache::EvictionPolicy::EvictLru);
    cache.insert(1, 100);
    cache.insert(2, 100);
    // Repeated use of 1 keeps it alive through many inserts.
    for (PathIndex p = 10; p < 20; ++p) {
        EXPECT_NE(cache.find(1), nullptr);
        cache.insert(p, 100);
    }
    EXPECT_NE(cache.find(1), nullptr);
}

TEST(CachePolicyTest, SystemChargesEvictionCost)
{
    DynamoConfig config;
    config.scheme = PredictionScheme::Net;
    config.predictionDelay = 1;
    config.enableFlush = false;
    config.cache.capacityBytes = 100 * config.cache.bytesPerInstr;
    config.cache.policy = CachePolicy::EvictLru;
    DynamoSystem system(config);

    std::uint64_t t = 0;
    for (PathIndex p = 0; p < 10; ++p)
        system.onPathEvent(event(p), t++);

    const DynamoReport report = system.report();
    EXPECT_GT(report.cacheEvictions, 0u);
    EXPECT_EQ(report.cacheFlushes, 0u);
    EXPECT_NEAR(report.flushCycles,
                static_cast<double>(report.cacheEvictions) *
                    config.costs.evictionCost,
                1e-9);
}

TEST(CachePolicyTest, LruSurvivesPhaseChangeWithoutDetector)
{
    // Two-phase toy: paths 0..4 hot, then 10..14 hot. With a cache
    // holding ~5 fragments, LRU must end up holding the second
    // phase's fragments without any flush.
    DynamoConfig config;
    config.scheme = PredictionScheme::Net;
    config.predictionDelay = 2;
    config.enableFlush = false;
    config.cache.capacityBytes = 5 * 40 * config.cache.bytesPerInstr;
    config.cache.policy = CachePolicy::EvictLru;
    config.cache.stubBytes = 0; // keep the five-fragment fit exact
    DynamoSystem system(config);

    std::uint64_t t = 0;
    for (int round = 0; round < 200; ++round)
        for (PathIndex p = 0; p < 5; ++p)
            system.onPathEvent(event(p), t++);
    for (int round = 0; round < 200; ++round)
        for (PathIndex p = 10; p < 15; ++p)
            system.onPathEvent(event(p), t++);

    EXPECT_EQ(system.report().cacheFlushes, 0u);
    EXPECT_GE(system.report().cacheEvictions, 5u);
    EXPECT_EQ(system.cache().size(), 5u);
    // All resident fragments belong to the second phase.
    for (PathIndex p = 10; p < 15; ++p)
        EXPECT_NE(system.cache().peek(p), nullptr);
}
