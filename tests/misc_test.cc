/**
 * @file
 * Edge-case batch: machine safety limits, behaviour phase corners,
 * report arithmetic, logging helpers and interface defaults that the
 * module-focused suites do not reach.
 */

#include <gtest/gtest.h>

#include "cfg/builder.hh"
#include "dynamo/system.hh"
#include "sim/machine.hh"
#include "support/logging.hh"

using namespace hotpath;

TEST(MachineSafetyTest, RunawayRecursionPanics)
{
    // Unconditional self-recursion blows the call-depth cap instead
    // of silently corrupting the stack.
    ProgramBuilder builder;
    ProcedureBuilder &main = builder.proc("main");
    main.block("entry", 1).call("rec", "done");
    main.block("done", 1).ret();
    ProcedureBuilder &rec = builder.proc("rec");
    rec.block("r", 1).call("rec", "r_done");
    rec.block("r_done", 1).ret();
    const Program prog = builder.build();

    BehaviorModel model(prog);
    model.finalize();

    MachineConfig config;
    config.seed = 1;
    config.maxCallDepth = 64;
    Machine machine(prog, model, config);
    EXPECT_DEATH(machine.run(10000), "call stack overflow");
}

TEST(MachineSafetyTest, ZeroRunExecutesNothing)
{
    ProgramBuilder builder;
    builder.proc("main").block("a", 1).ret();
    const Program prog = builder.build();
    BehaviorModel model(prog);
    model.finalize();
    Machine machine(prog, model, {.seed = 1});
    EXPECT_EQ(machine.run(0), 0u);
    EXPECT_EQ(machine.blocksExecuted(), 0u);
}

TEST(BehaviorPhaseTest, OpenEndedMiddlePhaseShadowsLaterOnes)
{
    ProgramBuilder builder;
    ProcedureBuilder &main = builder.proc("main");
    main.block("a", 1).cond("a", "b"); // self-loop conditional
    main.block("b", 1).ret();
    const Program prog = builder.build();

    BehaviorModel model(prog);
    PhaseSpec first;
    first.lengthBlocks = 10;
    PhaseSpec open; // lengthBlocks == 0: lasts forever
    PhaseSpec never;
    model.addPhase(first);
    model.addPhase(open);
    model.addPhase(never);
    model.finalize();

    EXPECT_EQ(model.phaseAt(0), 0u);
    EXPECT_EQ(model.phaseAt(9), 0u);
    EXPECT_EQ(model.phaseAt(10), 1u);
    EXPECT_EQ(model.phaseAt(1u << 30), 1u); // the open phase wins
}

TEST(DynamoReportTest, SpeedupEdges)
{
    DynamoReport report;
    EXPECT_DOUBLE_EQ(report.speedupPercent(), 0.0); // no cycles yet

    report.nativeCycles = 200.0;
    report.cachedCycles = 100.0;
    EXPECT_DOUBLE_EQ(report.speedupPercent(), 100.0);

    report.interpretCycles = 300.0;
    EXPECT_DOUBLE_EQ(report.speedupPercent(), -50.0);
}

TEST(LoggingTest, ConcatBuildsMessages)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingTest, WarnAndInformDoNotCrash)
{
    setInformEnabled(false);
    inform("suppressed");
    setInformEnabled(true);
    inform("visible");
    warn("warning text");
}

TEST(AssertTest, PassingAssertIsSilent)
{
    HOTPATH_ASSERT(1 + 1 == 2, "math still works");
}

TEST(AssertTest, FailingAssertAborts)
{
    EXPECT_DEATH(HOTPATH_ASSERT(false, "expected failure"),
                 "expected failure");
}

TEST(ListenerDefaultsTest, BaseListenerIgnoresEverything)
{
    // The default ExecutionListener implementations must be safe to
    // call (listeners override only what they need).
    ExecutionListener listener;
    BasicBlock block;
    TransferEvent event;
    listener.onBlock(block);
    listener.onTransfer(event);
    listener.onProgramEnd();
}

TEST(EventDefaultsTest, TransferEventDefaults)
{
    TransferEvent event;
    EXPECT_EQ(event.from, kInvalidBlock);
    EXPECT_EQ(event.to, kInvalidBlock);
    EXPECT_FALSE(event.taken);
    EXPECT_FALSE(event.backward);
}
