/**
 * @file
 * Tests for the thread pool and the parallel sweep runner: the pool's
 * task accounting, the serial/parallel equivalence guarantee (same
 * sweep, 1 worker vs N workers, identical SweepPoint vectors), and a
 * contention stress case meant to run under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "metrics/parallel_sweep.hh"
#include "metrics/sweep.hh"
#include "predict/net_predictor.hh"
#include "predict/path_profile_predictor.hh"
#include "support/random.hh"
#include "support/thread_pool.hh"

using namespace hotpath;

namespace
{

/** A multi-head stream with skewed path popularity. */
std::vector<PathEvent>
syntheticStream(std::size_t events, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<PathEvent> stream;
    stream.reserve(events);
    for (std::size_t i = 0; i < events; ++i) {
        const std::size_t head = rng.nextBounded(8);
        // Zipf-ish pick: most iterations take the head's path 0.
        const std::size_t local =
            rng.nextBool(0.7) ? 0 : 1 + rng.nextBounded(3);
        PathEvent event;
        event.path = static_cast<PathIndex>(head * 4 + local);
        event.head = static_cast<HeadIndex>(head);
        event.blocks = 5;
        event.branches = 4;
        event.instructions = 25;
        stream.push_back(event);
    }
    return stream;
}

OracleProfile
oracleFor(const std::vector<PathEvent> &stream)
{
    OracleProfile oracle;
    for (std::uint64_t t = 0; t < stream.size(); ++t)
        oracle.onPathEvent(stream[t], t);
    return oracle;
}

void
expectSamePoints(const std::vector<SweepPoint> &serial,
                 const std::vector<SweepPoint> &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SweepPoint &s = serial[i];
        const SweepPoint &p = parallel[i];
        EXPECT_EQ(s.delay, p.delay) << "point " << i;
        EXPECT_EQ(s.result.totalFlow, p.result.totalFlow);
        EXPECT_EQ(s.result.hotFlow, p.result.hotFlow);
        EXPECT_EQ(s.result.hotPaths, p.result.hotPaths);
        EXPECT_EQ(s.result.predictedPaths, p.result.predictedPaths);
        EXPECT_EQ(s.result.predictedHotPaths,
                  p.result.predictedHotPaths);
        EXPECT_EQ(s.result.predictedColdPaths,
                  p.result.predictedColdPaths);
        EXPECT_EQ(s.result.hits, p.result.hits) << "point " << i;
        EXPECT_EQ(s.result.noise, p.result.noise) << "point " << i;
        EXPECT_EQ(s.result.missedOpportunity,
                  p.result.missedOpportunity);
        EXPECT_EQ(s.result.profiledFlow, p.result.profiledFlow);
        EXPECT_EQ(s.result.countersAllocated,
                  p.result.countersAllocated);
        EXPECT_EQ(s.result.cost.counterUpdates,
                  p.result.cost.counterUpdates);
        EXPECT_EQ(s.result.cost.historyShifts,
                  p.result.cost.historyShifts);
        EXPECT_EQ(s.result.cost.tableUpdates,
                  p.result.cost.tableUpdates);
    }
}

} // namespace

TEST(ThreadPoolTest, InlinePoolRunsTasksOnCallingThread)
{
    ThreadPool pool(ThreadPoolConfig{0, 4});
    EXPECT_EQ(pool.threadCount(), 0u);

    int ran = 0;
    pool.submit([&] { ++ran; });
    pool.submit([&] { ++ran; });
    // Inline mode executes inside submit(); wait() is a no-op.
    EXPECT_EQ(ran, 2);
    pool.wait();
    EXPECT_EQ(pool.stats().tasksExecuted, 2u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallelFor(kTasks, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    EXPECT_EQ(pool.stats().tasksExecuted, kTasks);
}

TEST(ThreadPoolTest, BoundedQueueBlocksAndDrains)
{
    // A tiny queue forces submit() onto its blocking path; every task
    // must still run exactly once.
    ThreadPool pool(ThreadPoolConfig{2, 2});
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 64);
    EXPECT_EQ(pool.stats().tasksExecuted, 64u);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
    EXPECT_EQ(pool.stats().tasksExecuted, 0u);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ParallelSweepTest, MatchesSerialSweepAtAnyWorkerCount)
{
    const std::vector<PathEvent> stream = syntheticStream(20000, 77);
    const OracleProfile oracle = oracleFor(stream);
    const std::vector<std::uint64_t> delays =
        defaultDelaySchedule(5000);
    const PredictorFactory factory = [](std::uint64_t delay) {
        return std::make_unique<NetPredictor>(delay);
    };

    const std::vector<SweepPoint> serial =
        delaySweep(stream, oracle, factory, delays, 0.01);

    for (const std::size_t workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        const std::vector<SweepPoint> parallel = delaySweepParallel(
            stream, oracle, factory, delays, pool, 0.01);
        expectSamePoints(serial, parallel);
    }
}

TEST(ParallelSweepTest, MultiJobResultsStayInScheduleOrder)
{
    // Two streams x two predictor families: results must come back
    // indexed by job, never by completion order.
    const std::vector<PathEvent> stream_a = syntheticStream(8000, 1);
    const std::vector<PathEvent> stream_b = syntheticStream(12000, 2);
    const OracleProfile oracle_a = oracleFor(stream_a);
    const OracleProfile oracle_b = oracleFor(stream_b);
    const std::vector<std::uint64_t> delays =
        defaultDelaySchedule(2000);

    std::vector<SweepJob> jobs(4);
    jobs[0] = {&stream_a, &oracle_a,
               [](std::uint64_t d) {
                   return std::make_unique<NetPredictor>(d);
               },
               delays, 0.01};
    jobs[1] = {&stream_a, &oracle_a,
               [](std::uint64_t d) {
                   return std::make_unique<PathProfilePredictor>(d);
               },
               delays, 0.01};
    jobs[2] = {&stream_b, &oracle_b, jobs[0].factory, delays, 0.01};
    jobs[3] = {&stream_b, &oracle_b, jobs[1].factory, delays, 0.01};

    ThreadPool serial_pool(ThreadPoolConfig{0, 4});
    ThreadPool parallel_pool(4);
    const std::vector<std::vector<SweepPoint>> serial =
        runSweepJobs(jobs, serial_pool);
    const std::vector<std::vector<SweepPoint>> parallel =
        runSweepJobs(jobs, parallel_pool);

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), 4u);
    for (std::size_t j = 0; j < 4; ++j)
        expectSamePoints(serial[j], parallel[j]);

    // Sanity: the two streams genuinely differ, so an order mixup
    // would have been caught above.
    EXPECT_NE(serial[0][0].result.totalFlow,
              serial[2][0].result.totalFlow);
}

TEST(ParallelSweepStressTest, ConcurrentSweepsShareOnePool)
{
    // TSan target: several sweep batches reusing one pool
    // back-to-back, with the pool's accounting and the shared
    // read-only stream exercised from every worker.
    const std::vector<PathEvent> stream = syntheticStream(10000, 9);
    const OracleProfile oracle = oracleFor(stream);
    const std::vector<std::uint64_t> delays =
        defaultDelaySchedule(1000);
    const PredictorFactory factory = [](std::uint64_t delay) {
        return std::make_unique<NetPredictor>(delay);
    };

    ThreadPool pool(4);
    std::vector<SweepPoint> first;
    for (int round = 0; round < 8; ++round) {
        std::vector<SweepPoint> points = delaySweepParallel(
            stream, oracle, factory, delays, pool, 0.01);
        if (round == 0)
            first = std::move(points);
        else
            expectSamePoints(first, points);
    }
    EXPECT_EQ(pool.stats().tasksExecuted, 8 * delays.size());
}
