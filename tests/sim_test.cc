/**
 * @file
 * Unit tests for the simulation layer: behaviour models (including
 * phases), machine execution semantics (branch outcomes, calls and
 * returns, restarts), determinism, and trace record/replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cfg/builder.hh"
#include "sim/machine.hh"
#include "sim/trace_log.hh"

using namespace hotpath;

namespace
{

Program
makeDiamondLoop()
{
    ProgramBuilder builder;
    ProcedureBuilder &main = builder.proc("main");
    main.block("entry", 1).fallthrough("head");
    main.block("head", 1).cond("left", "right");
    main.block("left", 2).jump("latch");
    main.block("right", 3).fallthrough("latch");
    main.block("latch", 1).cond("head", "exit");
    main.block("exit", 1).ret();
    return builder.build();
}

Program
makeCallProgram()
{
    ProgramBuilder builder;
    ProcedureBuilder &main = builder.proc("main");
    main.block("entry", 1).call("helper", "after");
    main.block("after", 1).ret();
    ProcedureBuilder &helper = builder.proc("helper");
    helper.block("h", 2).ret();
    return builder.build();
}

/** Collects every event for inspection. */
class EventRecorder : public ExecutionListener
{
  public:
    void
    onBlock(const BasicBlock &block) override
    {
        blocks.push_back(block.id);
    }

    void
    onTransfer(const TransferEvent &event) override
    {
        transfers.push_back(event);
    }

    void onProgramEnd() override { ++programEnds; }

    std::vector<BlockId> blocks;
    std::vector<TransferEvent> transfers;
    int programEnds = 0;
};

} // namespace

TEST(BehaviorModelTest, DefaultsToHalf)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.finalize();
    EXPECT_EQ(model.numPhases(), 1u);
    EXPECT_DOUBLE_EQ(
        model.takenProbability(0, findBlock(prog, "head")), 0.5);
}

TEST(BehaviorModelTest, OverridesApply)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.setTakenProbability(findBlock(prog, "head"), 0.9);
    model.finalize();
    EXPECT_DOUBLE_EQ(
        model.takenProbability(0, findBlock(prog, "head")), 0.9);
}

TEST(BehaviorModelTest, PhaseScheduleAndInheritance)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    PhaseSpec phase0;
    phase0.lengthBlocks = 100;
    phase0.takenProbability[findBlock(prog, "head")] = 0.9;
    phase0.takenProbability[findBlock(prog, "latch")] = 0.95;
    PhaseSpec phase1; // overrides head only; latch inherited
    phase1.takenProbability[findBlock(prog, "head")] = 0.1;
    model.addPhase(phase0);
    model.addPhase(phase1);
    model.finalize();

    EXPECT_EQ(model.numPhases(), 2u);
    EXPECT_EQ(model.phaseAt(0), 0u);
    EXPECT_EQ(model.phaseAt(99), 0u);
    EXPECT_EQ(model.phaseAt(100), 1u);
    EXPECT_EQ(model.phaseAt(1u << 20), 1u);
    EXPECT_DOUBLE_EQ(
        model.takenProbability(1, findBlock(prog, "head")), 0.1);
    EXPECT_DOUBLE_EQ(
        model.takenProbability(1, findBlock(prog, "latch")), 0.95);
}

TEST(BehaviorModelDeathTest, RejectsProbabilityOnNonConditional)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.setTakenProbability(findBlock(prog, "entry"), 0.9);
    EXPECT_DEATH(model.finalize(), "non-conditional");
}

TEST(MachineTest, DeterministicGivenSeed)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.finalize();

    EventRecorder rec_a;
    Machine machine_a(prog, model, {.seed = 99});
    machine_a.addListener(&rec_a);
    machine_a.run(5000);

    EventRecorder rec_b;
    Machine machine_b(prog, model, {.seed = 99});
    machine_b.addListener(&rec_b);
    machine_b.run(5000);

    EXPECT_EQ(rec_a.blocks, rec_b.blocks);
}

TEST(MachineTest, TransfersFollowCfgEdges)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.finalize();

    EventRecorder rec;
    Machine machine(prog, model, {.seed = 1});
    machine.addListener(&rec);
    machine.run(10000);

    for (const TransferEvent &event : rec.transfers) {
        const BasicBlock &from = prog.block(event.from);
        if (from.kind == BranchKind::Call) {
            EXPECT_EQ(event.to, prog.procedure(from.callee).entry);
        } else if (from.kind == BranchKind::Return) {
            continue; // dynamic target
        } else {
            bool legal = false;
            for (BlockId succ : from.successors)
                legal |= succ == event.to;
            EXPECT_TRUE(legal);
        }
        EXPECT_EQ(event.backward,
                  isBackwardTransfer(event.site, event.target));
    }
}

TEST(MachineTest, ConditionalRespectsBias)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.setTakenProbability(findBlock(prog, "head"), 0.8);
    model.setTakenProbability(findBlock(prog, "latch"), 0.99);
    model.finalize();

    EventRecorder rec;
    Machine machine(prog, model, {.seed = 5});
    machine.addListener(&rec);
    machine.run(100000);

    const BlockId head = findBlock(prog, "head");
    std::uint64_t taken = 0;
    std::uint64_t total = 0;
    for (const TransferEvent &event : rec.transfers) {
        if (event.from == head) {
            ++total;
            taken += event.taken ? 1 : 0;
        }
    }
    ASSERT_GT(total, 1000u);
    EXPECT_NEAR(static_cast<double>(taken) / total, 0.8, 0.02);
}

TEST(MachineTest, CallsPushAndReturnsPop)
{
    const Program prog = makeCallProgram();
    BehaviorModel model(prog);
    model.finalize();

    EventRecorder rec;
    Machine machine(prog, model, {.seed = 1, .restartOnExit = false});
    machine.addListener(&rec);
    const std::uint64_t executed = machine.run(100);

    // entry -> h -> after, then main returns and the run ends.
    EXPECT_EQ(executed, 3u);
    const std::vector<BlockId> expected = {
        findBlock(prog, "entry"), findBlock(prog, "h"),
        findBlock(prog, "after")};
    EXPECT_EQ(rec.blocks, expected);
    EXPECT_EQ(rec.programEnds, 1);
    EXPECT_EQ(machine.programRuns(), 1u);
}

TEST(MachineTest, RestartOnExitLoopsForever)
{
    const Program prog = makeCallProgram();
    BehaviorModel model(prog);
    model.finalize();

    Machine machine(prog, model, {.seed = 1, .restartOnExit = true});
    const std::uint64_t executed = machine.run(300);
    EXPECT_EQ(executed, 300u);
    EXPECT_EQ(machine.programRuns(), 100u);
}

TEST(MachineTest, InstructionCountMatchesBlocks)
{
    const Program prog = makeCallProgram();
    BehaviorModel model(prog);
    model.finalize();

    Machine machine(prog, model, {.seed = 1, .restartOnExit = false});
    machine.run(100);
    EXPECT_EQ(machine.instructionsExecuted(), 1u + 2 + 1);
}

TEST(MachineTest, IndirectWeightsRespected)
{
    ProgramBuilder builder;
    ProcedureBuilder &main = builder.proc("main");
    main.block("sw", 1).indirect({"t0", "t1"});
    main.block("t0", 1).jump("back");
    main.block("t1", 1).jump("back");
    main.block("back", 1).jump("sw"); // backward: loops forever
    main.block("exit", 1).ret();
    const Program prog = builder.build();

    BehaviorModel model(prog);
    model.setIndirectWeights(findBlock(prog, "sw"), {0.9, 0.1});
    model.finalize();

    EventRecorder rec;
    Machine machine(prog, model, {.seed = 17});
    machine.addListener(&rec);
    machine.run(40000);

    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0;
    for (BlockId block : rec.blocks) {
        t0 += block == findBlock(prog, "t0") ? 1 : 0;
        t1 += block == findBlock(prog, "t1") ? 1 : 0;
    }
    const double frac =
        static_cast<double>(t0) / static_cast<double>(t0 + t1);
    EXPECT_NEAR(frac, 0.9, 0.02);
}

TEST(TraceLogTest, RecordsBlocks)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.finalize();

    TraceLog log;
    Machine machine(prog, model, {.seed = 2});
    machine.addListener(&log);
    machine.run(1000);
    EXPECT_EQ(log.size(), 1000u);
}

TEST(TraceLogTest, SaveLoadRoundTrip)
{
    TraceLog log;
    for (BlockId id : {0u, 1u, 2u, 1u, 2u, 3u})
        log.append(id);

    std::stringstream buffer;
    log.save(buffer);

    TraceLog loaded;
    loaded.load(buffer);
    EXPECT_EQ(loaded.sequence(), log.sequence());
}

TEST(TraceLogTest, ReplayReproducesLiveEventStream)
{
    const Program prog = makeDiamondLoop();
    BehaviorModel model(prog);
    model.setTakenProbability(findBlock(prog, "latch"), 0.98);
    model.finalize();

    TraceLog log;
    EventRecorder live;
    Machine machine(prog, model, {.seed = 3});
    machine.addListener(&log);
    machine.addListener(&live);
    machine.run(5000);

    EventRecorder replayed;
    log.replay(prog, {&replayed});

    EXPECT_EQ(replayed.blocks, live.blocks);
    // The live run has one more transfer than the replay only if the
    // machine emitted a transfer out of the last block; replay stops
    // at the last recorded block.
    ASSERT_LE(replayed.transfers.size(), live.transfers.size());
    for (std::size_t i = 0; i < replayed.transfers.size(); ++i) {
        EXPECT_EQ(replayed.transfers[i].from, live.transfers[i].from);
        EXPECT_EQ(replayed.transfers[i].to, live.transfers[i].to);
        EXPECT_EQ(replayed.transfers[i].taken, live.transfers[i].taken);
        EXPECT_EQ(replayed.transfers[i].backward,
                  live.transfers[i].backward);
        EXPECT_EQ(replayed.transfers[i].kind, live.transfers[i].kind);
    }
    EXPECT_EQ(replayed.programEnds, live.programEnds);
}

TEST(TraceLogDeathTest, ReplayRejectsIllegalTransition)
{
    const Program prog = makeDiamondLoop();
    TraceLog log;
    log.append(findBlock(prog, "entry"));
    log.append(findBlock(prog, "exit")); // entry falls through to head
    EXPECT_DEATH(log.replay(prog, {}), "illegal");
}
