/**
 * @file
 * Metric-registration audit for the observability plane.
 *
 * The serving stack promises eager registration: every engine.*,
 * net.*, cluster.* and control.* instrument exists in the registry -
 * and therefore in
 * RunReport and the /metrics endpoint - from component construction,
 * even when its value is still zero. Dashboards and alert rules bind
 * to metric names before traffic arrives, so a lazily-registered
 * instrument is an outage in the monitoring plane.
 *
 * The golden list below is the documented instrument set. Adding an
 * instrument to the engine or server without extending this list
 * (and the metric-name table in docs/OPERATIONS.md, which this list
 * mirrors) fails the audit; so does removing or renaming one.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/router.hh"
#include "control/controller.hh"
#include "engine/engine.hh"
#include "net/server.hh"
#include "support/fault_injector.hh"
#include "telemetry/run_report.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"

using namespace hotpath;

namespace
{

/**
 * The golden instrument list - keep in sync with the "Metric
 * reference" table in docs/OPERATIONS.md. Indexed instruments
 * (engine.shard.<i>.*, engine.worker.<w>.*) appear once with the
 * index normalized to N; fault sites and pipeline stages are
 * enumerated programmatically so a new Site or Stage enumerator
 * extends the expectation automatically.
 */
std::set<std::string>
goldenInstruments()
{
    std::set<std::string> names = {
        // Engine core (always registered).
        "engine.frames.decoded",
        "engine.frames.rejected",
        "engine.events",
        "engine.predictions",
        "engine.backpressure.waits",
        "engine.queue.highwater",
        "engine.queue.depth",
        "engine.batch.size",
        // Per-shard contention instruments (normalized index).
        "engine.shard.N.frames",
        "engine.shard.N.queue.depth",
        "engine.shard.N.backpressure.waits",
        // Per-worker utilization instruments (normalized index).
        "engine.worker.N.busy.ns",
        "engine.worker.N.idle.ns",
        // Session table.
        "engine.sessions.created",
        "engine.sessions.evicted",
        "engine.sessions.evicted.idle",
        "engine.sessions.live",
        "engine.sessions.exported",
        "engine.sessions.imported",
        "engine.table.lock.wait.ns",
        // Resilience (registered when any resilience feature is on).
        "engine.fault.frames.corrupted",
        "engine.fault.sessions.poisoned",
        "engine.fault.alloc.failures",
        "engine.fault.overload.spikes",
        "engine.fault.worker.stalled",
        "engine.recovered.frames.quarantined",
        "engine.recovered.frames.delayed.delivered",
        "engine.recovered.sessions.rebuilt",
        "engine.recovered.sessions.readmitted",
        "engine.recovered.backoff.frames",
        "engine.recovered.shed.frames",
        "engine.recovered.worker.unstalled",
        // Serving layer.
        "net.connections.accepted",
        "net.connections.closed",
        "net.connections.idle.closed",
        "net.connections.shed",
        "net.connections.reset",
        "net.connections.active",
        "net.accept.failures",
        "net.bytes.in",
        "net.bytes.out",
        "net.frames.in",
        "net.responses.out",
        "net.responses.dropped",
        "net.frames.resynced",
        "net.resync.bytes.skipped",
        "net.read.pauses",
        // Cluster routing tier.
        "cluster.connections.accepted",
        "cluster.connections.closed",
        "cluster.connections.active",
        "cluster.frames.in",
        "cluster.frames.routed",
        "cluster.frames.replayed",
        "cluster.frames.parked",
        "cluster.frames.resynced",
        "cluster.resync.bytes.skipped",
        "cluster.migration.frames",
        "cluster.migration.bytes",
        "cluster.responses.out",
        "cluster.responses.synthesized",
        "cluster.responses.dropped",
        "cluster.rehash.events",
        "cluster.sessions.migrated",
        "cluster.backend.reconnects",
        "cluster.backends.live",
        "cluster.backend.inflight",
        // Per-backend in-flight gauge (normalized index).
        "cluster.backend.N.inflight",
        "cluster.failovers",
        "cluster.weight.updates",
        "control.epochs",
        "control.decisions",
        "control.retunes",
        "control.shed.engaged",
        "control.shed.released",
        "control.shed.active",
        "control.queue.pressure",
        "control.sessions.observed",
    };
    for (std::size_t c = 0; c < control::kSessionClassCount; ++c)
        names.insert(std::string("control.class.") +
                     control::sessionClassName(
                         static_cast<control::SessionClass>(c)));
    for (std::size_t s = 0; s < fault::kSiteCount; ++s)
        names.insert(std::string("engine.fault.injected.") +
                     fault::siteName(static_cast<fault::Site>(s)));
    for (std::size_t s = 0; s < telemetry::kStageCount; ++s)
        names.insert(std::string("net.stage.") +
                     telemetry::stageName(
                         static_cast<telemetry::Stage>(s)) +
                     ".ns");
    return names;
}

/** Collapse a shard/worker index to N: "engine.shard.3.frames" ->
 *  "engine.shard.N.frames". */
std::string
normalizeIndexed(const std::string &name)
{
    for (const char *prefix :
         {"engine.shard.", "engine.worker.", "cluster.backend."}) {
        const std::size_t plen = std::string(prefix).size();
        if (name.rfind(prefix, 0) != 0)
            continue;
        std::size_t digits = plen;
        while (digits < name.size() &&
               std::isdigit(static_cast<unsigned char>(name[digits])))
            ++digits;
        if (digits > plen)
            return name.substr(0, plen) + "N" + name.substr(digits);
    }
    return name;
}

/** Every engine.* and net.* instrument name in the snapshot,
 *  indexed instruments normalized. */
std::set<std::string>
observedInstruments(const telemetry::MetricsSnapshot &snapshot)
{
    std::set<std::string> names;
    const auto keep = [&names](const std::string &name) {
        if (name.rfind("engine.", 0) == 0 ||
            name.rfind("net.", 0) == 0 ||
            name.rfind("cluster.", 0) == 0 ||
            name.rfind("control.", 0) == 0)
            names.insert(normalizeIndexed(name));
    };
    for (const auto &counter : snapshot.counters)
        keep(counter.name);
    for (const auto &gauge : snapshot.gauges)
        keep(gauge.name);
    for (const auto &hist : snapshot.histograms)
        keep(hist.name);
    return names;
}

} // namespace

TEST(ObservabilityAudit, EveryInstrumentRegistersEagerlyAtZero)
{
    telemetry::TelemetrySession session;

    // The fullest configuration: a resilient engine (watchdog on, so
    // the resilience instruments register) behind a span-sampling
    // server. No traffic flows - eager registration means every
    // instrument must already exist at zero.
    engine::EngineConfig engineCfg;
    engineCfg.workerThreads = 2;
    engineCfg.sessions.shardCount = 4;
    engineCfg.watchdogIntervalMs = 50;
    engine::Engine eng(engineCfg);

    net::ServerConfig serverCfg;
    serverCfg.spanSampleEvery = 64;
    net::Server server(eng, serverCfg);

    // A configured (never started) router: the cluster.* instruments
    // - including the per-backend in-flight gauge - must register at
    // construction, before any backend is reachable.
    cluster::RouterConfig routerCfg;
    routerCfg.backends = {{"127.0.0.1", 1}};
    cluster::Router router(routerCfg);

    // An attached (never stepped) adaptive controller: every
    // control.* instrument must exist before the first epoch.
    control::Controller controller(eng);

    const std::set<std::string> golden = goldenInstruments();
    const std::set<std::string> observed =
        observedInstruments(session.registry().snapshot());

    std::vector<std::string> undocumented;
    std::set_difference(observed.begin(), observed.end(),
                        golden.begin(), golden.end(),
                        std::back_inserter(undocumented));
    EXPECT_TRUE(undocumented.empty())
        << "instrument(s) registered but missing from the golden "
           "list (add them here AND to the metric table in "
           "docs/OPERATIONS.md): "
        << ::testing::PrintToString(undocumented);

    std::vector<std::string> unregistered;
    std::set_difference(golden.begin(), golden.end(),
                        observed.begin(), observed.end(),
                        std::back_inserter(unregistered));
    EXPECT_TRUE(unregistered.empty())
        << "documented instrument(s) never registered (lazy "
           "registration or a rename): "
        << ::testing::PrintToString(unregistered);

    eng.shutdown();
}

TEST(ObservabilityAudit, RunReportCarriesEveryInstrumentAtZero)
{
    telemetry::TelemetrySession session;

    engine::EngineConfig engineCfg;
    engineCfg.workerThreads = 1;
    engineCfg.sessions.shardCount = 2;
    engineCfg.watchdogIntervalMs = 50;
    engine::Engine eng(engineCfg);

    net::ServerConfig serverCfg;
    serverCfg.spanSampleEvery = 64;
    net::Server server(eng, serverCfg);

    std::ostringstream out;
    telemetry::RunReport::capture(session.registry(), "audit")
        .writeJson(out);
    const std::string report = out.str();

    // Spot the indexed and zero-valued instruments a lazy
    // registration scheme would drop.
    for (const char *name :
         {"engine.shard.0.queue.depth", "engine.shard.1.frames",
          "engine.worker.0.busy.ns", "engine.worker.0.idle.ns",
          "engine.table.lock.wait.ns", "net.stage.read.ns",
          "net.stage.write_flush.ns", "net.frames.in",
          "engine.fault.injected.bitflip"}) {
        EXPECT_NE(report.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << name << " missing from RunReport JSON";
    }

    eng.shutdown();
}

TEST(ObservabilityAudit, SpanDisabledServerSkipsStageHistograms)
{
    // With spans off the recorder must not register net.stage.*
    // histograms - the disabled path promises "a branch and nothing
    // else", and phantom all-zero stage histograms would suggest a
    // sampling server that never sampled.
    telemetry::TelemetrySession session;

    engine::EngineConfig engineCfg;
    engineCfg.workerThreads = 1;
    engineCfg.sessions.shardCount = 2;
    engine::Engine eng(engineCfg);
    net::Server server(eng, net::ServerConfig{});

    const telemetry::MetricsSnapshot snapshot =
        session.registry().snapshot();
    for (const auto &hist : snapshot.histograms)
        EXPECT_EQ(hist.name.rfind("net.stage.", 0),
                  std::string::npos)
            << hist.name << " registered with sampling disabled";

    eng.shutdown();
}
