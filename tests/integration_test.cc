/**
 * @file
 * End-to-end integration tests across the full pipeline:
 *
 *  generated program -> machine -> path splitter -> registry ->
 *  path events -> {oracle, NET, path-profile} -> Section 3 metrics,
 *
 * plus the Dynamo model on calibrated workloads. These are the tests
 * that tie the paper's claims together on this library: at short
 * delays NET's prediction quality matches path-profile prediction at
 * a fraction of the counter space and profiling operations.
 */

#include <gtest/gtest.h>

#include <set>

#include "dynamo/system.hh"
#include "metrics/evaluation.hh"
#include "metrics/sweep.hh"
#include "paths/registry.hh"
#include "paths/splitter.hh"
#include "predict/net_predictor.hh"
#include "predict/path_profile_predictor.hh"
#include "progen/generator.hh"
#include "sim/machine.hh"
#include "workload/synthesis.hh"

using namespace hotpath;

namespace
{

/** Run a synthetic program and collect the path-event stream. */
std::vector<PathEvent>
collectEvents(const SyntheticProgram &synth, std::uint64_t blocks,
              PathRegistry &registry)
{
    struct Buffer : PathEventSink
    {
        void
        onPathEvent(const PathEvent &event, std::uint64_t) override
        {
            events.push_back(event);
        }

        std::vector<PathEvent> events;
    } buffer;

    PathEventAdapter adapter(registry, buffer);
    PathSplitter splitter(adapter);
    Machine machine(synth.program(), synth.behavior(), {.seed = 1});
    machine.addListener(&splitter);
    machine.run(blocks);
    splitter.flush();
    return buffer.events;
}

} // namespace

TEST(IntegrationTest, CfgPipelineProducesConsistentEvents)
{
    ProgenConfig config;
    config.seed = 42;
    SyntheticProgram synth(config);

    PathRegistry registry;
    const std::vector<PathEvent> events =
        collectEvents(synth, 300000, registry);

    ASSERT_GT(events.size(), 10000u);

    // Precompute the call-continuation block set.
    std::set<BlockId> continuations;
    for (BlockId b = 0; b < synth.program().numBlocks(); ++b) {
        const BasicBlock &block = synth.program().block(b);
        if (block.kind == BranchKind::Call)
            continuations.insert(block.successors[0]);
    }

    for (const PathEvent &event : events) {
        ASSERT_LT(event.path, registry.numPaths());
        ASSERT_LT(event.head, registry.numHeads());
        const PathInfo &info = registry.info(event.path);
        EXPECT_EQ(info.head, event.head);
        EXPECT_EQ(info.blocks.size(), event.blocks);
        EXPECT_EQ(info.instructions, event.instructions);
        // Heads recorded by the registry are dynamic backward-branch
        // targets: static back-edge targets, call continuations
        // (returns to the caller are backward transfers under the
        // contiguous layout), or the program entry (the restart
        // return makes it one).
        const BlockId head_block = registry.headBlock(event.head);
        EXPECT_TRUE(
            synth.program().isBackwardTarget(head_block) ||
            continuations.count(head_block) > 0 ||
            head_block ==
                synth.program()
                    .procedure(synth.program().entryProcedure())
                    .entry);
    }
}

TEST(IntegrationTest, NetMatchesPathProfileQualityAtShortDelay)
{
    ProgenConfig config;
    config.seed = 7;
    config.dominantTakenProb = 0.9;
    SyntheticProgram synth(config);

    PathRegistry registry;
    const std::vector<PathEvent> events =
        collectEvents(synth, 500000, registry);

    PathProfilePredictor pp(50);
    NetPredictor net(50);
    const EvalResult pp_result = evaluatePredictor(events, pp, 0.001);
    const EvalResult net_result =
        evaluatePredictor(events, net, 0.001);

    // The paper's claim: same prediction quality at practically
    // relevant delays (we allow a few points of slack either way)...
    EXPECT_NEAR(net_result.hitRatePercent(),
                pp_result.hitRatePercent(), 5.0);
    EXPECT_GT(net_result.hitRatePercent(), 80.0);

    // ... at far lower cost: counters bounded by heads, and only
    // counter updates (no shifts, no table ops).
    EXPECT_LT(net_result.countersAllocated,
              pp_result.countersAllocated);
    EXPECT_LT(net_result.cost.total(), pp_result.cost.total());
    EXPECT_EQ(net_result.cost.historyShifts, 0u);
    EXPECT_GT(pp_result.cost.historyShifts, 0u);
}

TEST(IntegrationTest, HitRateFallsWithLongerDelays)
{
    ProgenConfig config;
    config.seed = 3;
    SyntheticProgram synth(config);

    PathRegistry registry;
    const std::vector<PathEvent> events =
        collectEvents(synth, 400000, registry);

    OracleProfile oracle;
    for (std::uint64_t t = 0; t < events.size(); ++t)
        oracle.onPathEvent(events[t], t);

    const auto points = delaySweep(
        events, oracle,
        [](std::uint64_t delay) {
            return std::make_unique<NetPredictor>(delay);
        },
        {10, 100, 1000, 10000}, 0.001);

    // Missed opportunity cost per predicted hot path rises with the
    // delay; the hit rate falls monotonically along the ladder. (The
    // aggregate MOC is not monotone: longer delays also shrink the
    // predicted set.)
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LE(points[i].result.hitRatePercent(),
                  points[i - 1].result.hitRatePercent() + 1e-9);
        const auto per_path = [](const EvalResult &r) {
            return r.predictedHotPaths == 0
                ? 0.0
                : static_cast<double>(r.missedOpportunity) /
                      static_cast<double>(r.predictedHotPaths);
        };
        EXPECT_GE(per_path(points[i].result),
                  per_path(points[i - 1].result));
    }
}

TEST(IntegrationTest, CalibratedWorkloadThroughDynamo)
{
    WorkloadConfig wconfig;
    wconfig.flowScale = 1e-4;
    CalibratedWorkload workload(specTarget("compress"), wconfig);

    DynamoConfig net_config;
    net_config.scheme = PredictionScheme::Net;
    net_config.predictionDelay = 50;
    DynamoSystem net(net_config);

    DynamoConfig pp_config = net_config;
    pp_config.scheme = PredictionScheme::PathProfile;
    DynamoSystem pp(pp_config);

    workload.generateStream(0, [&](const PathEvent &event,
                                   std::uint64_t t) {
        net.onPathEvent(event, t);
        pp.onPathEvent(event, t);
    });

    const DynamoReport net_report = net.report();
    const DynamoReport pp_report = pp.report();

    EXPECT_EQ(net_report.events, workload.totalFlow());
    // compress: dominant reuse -> NET accelerates, and it clearly
    // outperforms path profile based prediction (Figure 5's shape).
    EXPECT_GT(net_report.speedupPercent(), 0.0);
    EXPECT_GT(net_report.speedupPercent(),
              pp_report.speedupPercent() + 5.0);
}

TEST(IntegrationTest, DynamoBailsOutOnGccLikeWorkloads)
{
    WorkloadConfig wconfig;
    wconfig.flowScale = 1e-4;
    CalibratedWorkload workload(specTarget("gcc"), wconfig);

    DynamoConfig config;
    config.scheme = PredictionScheme::Net;
    config.predictionDelay = 50;
    config.bailCheckEvents = 100000;
    config.bailMaxInterpretedFraction = 0.15;
    DynamoSystem system(config);

    workload.generateStream(0, [&](const PathEvent &event,
                                   std::uint64_t t) {
        system.onPathEvent(event, t);
    });

    // gcc: tens of thousands of paths with weak reuse keep a third of
    // the flow in the interpreter. Dynamo gives up and hands control
    // back to the native binary.
    EXPECT_TRUE(system.report().bailedOut);

    // The same rule must NOT fire on a dominant-reuse program.
    CalibratedWorkload good(specTarget("compress"), wconfig);
    DynamoSystem keeper(config);
    good.generateStream(0, [&](const PathEvent &event,
                               std::uint64_t t) {
        keeper.onPathEvent(event, t);
    });
    EXPECT_FALSE(keeper.report().bailedOut);
}

TEST(IntegrationTest, CounterSpaceRatioMatchesTable2)
{
    // Figure 4's statement measured end to end on one workload:
    // NET counter space == #unique heads, path-profile == #paths.
    WorkloadConfig wconfig;
    wconfig.flowScale = 1e-4;
    CalibratedWorkload workload(specTarget("li"), wconfig);
    const std::vector<PathEvent> events = workload.materializeStream();

    PathProfilePredictor pp(1u << 30); // never predicts: pure profile
    NetPredictor net(1u << 30);
    for (const PathEvent &event : events) {
        pp.observe(event);
        net.observe(event);
    }
    EXPECT_EQ(pp.countersAllocated(), specTarget("li").paths);
    EXPECT_EQ(net.countersAllocated(), specTarget("li").heads);
}
